#!/usr/bin/env bash
# Sanitizer gate, three legs (README "Verification"):
#   1. plain build + ctest          (cmake -B build && ctest)
#   2. address,undefined sanitizers (this script, default)
#   3. thread sanitizer             (this script, `thread` argument)
#
# The address leg builds the tree under ASan+UBSan, runs the full ctest
# suite, and drives the chaos scenario through the instrumented flexran-sim
# binary. The thread leg builds under TSan and runs the concurrency surface
# -- the controller, concurrency, integration, fault-tolerance and
# sharded suites (parallel app execution, snapshot publishing, batched
# command flushing, concurrent shard app slots) -- plus the chaos
# scenarios.
#
# Usage:
#   tools/check.sh                 # address,undefined (the default)
#   tools/check.sh thread          # thread sanitizer leg
#   FLEXRAN_CHECK_JOBS=4 tools/check.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitize="${1:-address,undefined}"
build_dir="${repo_root}/build-sanitize-${sanitize//,/-}"
jobs="${FLEXRAN_CHECK_JOBS:-$(nproc)}"

echo "== configure (${sanitize}) -> ${build_dir}"
cmake -B "${build_dir}" -S "${repo_root}" -DFLEXRAN_SANITIZE="${sanitize}" >/dev/null

echo "== build"
cmake --build "${build_dir}" -j "${jobs}"

if [[ "${sanitize}" == "thread" ]]; then
  # TSan finds races, not leaks/UB; run the suites that exercise the
  # worker pool and the snapshot/command paths, as whole binaries.
  for t in controller_test concurrency_test integration_test fault_tolerance_test obs_test sharded_test; do
    echo "== ${t} under ${sanitize}"
    "${build_dir}/tests/${t}"
  done
else
  echo "== ctest"
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
fi

echo "== chaos scenario under ${sanitize}"
"${build_dir}/tools/flexran-sim" "${repo_root}/scenarios/chaos_recovery.yaml"

# Overload protection: a report flood must be shed class-aware on the
# updater thread while apps read snapshots concurrently -- the bounded
# ingest queue and throttle path under both sanitizer legs.
echo "== overload chaos scenario under ${sanitize}"
"${build_dir}/tools/flexran-sim" "${repo_root}/scenarios/chaos_overload.yaml"

if [[ "${sanitize}" != "thread" ]]; then
  # Delegated-control containment: faulty VSFs (throw / overrun / invalid
  # decisions) must be caught, quarantined and rolled back with zero
  # unscheduled TTIs -- exceptions and guard bookkeeping under ASan/UBSan.
  echo "== VSF chaos scenario under ${sanitize}"
  "${build_dir}/tools/flexran-sim" "${repo_root}/scenarios/chaos_vsf.yaml"
fi

# Master crash recovery: mid-run master restart under report-flood load
# with an overlapping agent partition -- incarnation fencing, checkpoint
# restore, paced re-sync admission and the app readiness barrier, on both
# sanitizer legs (restart() touches every controller subsystem).
echo "== master-crash chaos scenario under ${sanitize}"
"${build_dir}/tools/flexran-sim" "${repo_root}/scenarios/chaos_master.yaml"

# Two-tier sharded control plane: four agents split across two ShardCores,
# a fleet-wide report flood, then a crash of shard 0 alone -- per-shard
# bounded queues, per-shard checkpoints/recovery and the cross-shard
# isolation property, with shard app slots running concurrently on both
# sanitizer legs.
echo "== sharded-scale chaos scenario under ${sanitize}"
"${build_dir}/tools/flexran-sim" "${repo_root}/scenarios/sharded_scale.yaml"

# Observability: metrics registry, cycle tracing and the timestamp echo
# enabled on a chaos run -- probes read every migrated counter while the
# pipelined controller is under load, on both sanitizer legs.
echo "== metrics-enabled chaos scenario under ${sanitize}"
"${build_dir}/tools/flexran-sim" --metrics-json=/dev/null --metrics-prom=/dev/null \
  "${repo_root}/scenarios/chaos_metrics.yaml"

echo "== OK (${sanitize})"
