#!/usr/bin/env bash
# Sanitizer gate, three legs (README "Verification"):
#   1. plain build + ctest          (cmake -B build && ctest)
#   2. address,undefined sanitizers (this script, default)
#   3. thread sanitizer             (this script, `thread` argument)
#
# The address leg builds the tree under ASan+UBSan, runs the full ctest
# suite, and soaks every chaos scenario across a fixed seed sweep through
# the instrumented flexran-sim binary (--check: end-state invariants are
# exit codes). The thread leg builds under TSan and runs the concurrency surface
# -- the controller, concurrency, integration, fault-tolerance and
# sharded suites (parallel app execution, snapshot publishing, batched
# command flushing, concurrent shard app slots) -- plus the chaos
# scenarios.
#
# Usage:
#   tools/check.sh                 # address,undefined (the default)
#   tools/check.sh thread          # thread sanitizer leg
#   FLEXRAN_CHECK_JOBS=4 tools/check.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitize="${1:-address,undefined}"
build_dir="${repo_root}/build-sanitize-${sanitize//,/-}"
jobs="${FLEXRAN_CHECK_JOBS:-$(nproc)}"

echo "== configure (${sanitize}) -> ${build_dir}"
cmake -B "${build_dir}" -S "${repo_root}" -DFLEXRAN_SANITIZE="${sanitize}" >/dev/null

echo "== build"
cmake --build "${build_dir}" -j "${jobs}"

if [[ "${sanitize}" == "thread" ]]; then
  # TSan finds races, not leaks/UB; run the suites that exercise the
  # worker pool and the snapshot/command paths, as whole binaries.
  # net_test and proto_test ride along for the wire fast path
  # (docs/wire_fastpath.md): the span-delivery framing tests and the
  # encoder-reuse tests must stay clean when transports run threaded.
  for t in controller_test concurrency_test integration_test fault_tolerance_test obs_test sharded_test net_test proto_test; do
    echo "== ${t} under ${sanitize}"
    "${build_dir}/tests/${t}"
  done
else
  echo "== ctest"
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")

  # Wire fast-path allocation gate (docs/wire_fastpath.md): bench_wire
  # counts heap allocations per message on the steady-state encode /
  # decode / frame+reassemble paths via a counting operator-new hook.
  # Counts are exact and machine-independent, so any regression above
  # bench/wire_alloc_baseline.txt (currently all zeros) fails the gate.
  echo "== bench_wire allocation gate"
  "${build_dir}/bench/bench_wire" --check="${repo_root}/bench/wire_alloc_baseline.txt" \
    "${build_dir}/BENCH_wire.json"
fi

# Chaos soak: every chaos_*.yaml (recovery, overload, VSF containment,
# master crash, metrics-enabled) plus the sharded scale and failover
# scenarios, each across a fixed seed sweep, under the instrumented
# flexran-sim. --check turns end-state convergence into an exit code (all
# agents up, nothing recovering, no orphan unadopted, no adoption still
# pending), so a fault the control plane fails to absorb -- or any
# sanitizer report -- fails the gate. chaos_vsf.yaml is skipped under
# TSan (its containment path is single-threaded and throws on purpose;
# ASan/UBSan is the leg that matters for it); chaos_metrics.yaml keeps
# exercising the exporters with the output discarded. Every soak runs
# with --invariants=trap: the runtime InvariantMonitor
# (docs/chaos_fuzzing.md) aborts with a cycle trace the moment a safety
# property breaks mid-run, instead of waiting for the end-state check.
seeds=(1 7 13)
scenarios=("${repo_root}"/scenarios/chaos_*.yaml "${repo_root}/scenarios/sharded_scale.yaml" \
  "${repo_root}/scenarios/sharded_failover.yaml")
for scenario in "${scenarios[@]}"; do
  name="$(basename "${scenario}")"
  if [[ "${sanitize}" == "thread" && "${name}" == "chaos_vsf.yaml" ]]; then
    continue
  fi
  extra=()
  if [[ "${name}" == "chaos_metrics.yaml" ]]; then
    extra=(--metrics-json=/dev/null --metrics-prom=/dev/null)
  fi
  for seed in "${seeds[@]}"; do
    echo "== chaos soak: ${name} seed=${seed} under ${sanitize}"
    "${build_dir}/tools/flexran-sim" "${extra[@]}" --check --invariants=trap \
      --seed="${seed}" "${scenario}"
  done
done

# Fuzz leg (docs/chaos_fuzzing.md): deterministic chaos fuzzing over a
# fixed seed range under the instrumented binary. Each seed generates a
# randomized sharded topology + fault schedule, runs it under the
# InvariantMonitor, and fails the gate (exit 1) on any invariant
# violation or end-state divergence -- printing the minimized repro YAML
# so the failing seed is immediately replayable. The thread leg runs a
# shorter sweep: TSan's ~10x slowdown buys race coverage, not more seeds.
if [[ "${sanitize}" == "thread" ]]; then
  fuzz_runs=8
else
  fuzz_runs=32
fi
echo "== fuzz: seeds 1..${fuzz_runs} under ${sanitize}"
"${build_dir}/tools/flexran-fuzz" --seed=1 --runs="${fuzz_runs}" \
  --out="${build_dir}/repros"

echo "== OK (${sanitize})"
