#!/usr/bin/env bash
# Sanitizer gate: builds the tree under ASan+UBSan (and optionally TSan),
# runs the full ctest suite, and drives the chaos scenario through the
# instrumented flexran-sim binary.
#
# Usage:
#   tools/check.sh                 # address,undefined (the default)
#   tools/check.sh thread          # thread sanitizer instead
#   FLEXRAN_CHECK_JOBS=4 tools/check.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitize="${1:-address,undefined}"
build_dir="${repo_root}/build-sanitize-${sanitize//,/-}"
jobs="${FLEXRAN_CHECK_JOBS:-$(nproc)}"

echo "== configure (${sanitize}) -> ${build_dir}"
cmake -B "${build_dir}" -S "${repo_root}" -DFLEXRAN_SANITIZE="${sanitize}" >/dev/null

echo "== build"
cmake --build "${build_dir}" -j "${jobs}"

echo "== ctest"
(cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")

echo "== chaos scenario under ${sanitize}"
"${build_dir}/tools/flexran-sim" "${repo_root}/scenarios/chaos_recovery.yaml"

echo "== OK (${sanitize})"
