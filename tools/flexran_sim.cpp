// flexran_sim: run a declarative FlexRAN scenario from a YAML file.
//
//   flexran_sim scenario.yaml      # run the given scenario
//   flexran_sim --demo             # run a built-in two-cell demo
//   flexran_sim --help
//
// Scenario format: see src/scenario/config.h and docs/PROTOCOL.md.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/config.h"

namespace {

constexpr const char* kDemoScenario = R"(# flexran_sim --demo
duration_s: 4
stats_period_ttis: 1
remote_scheduler: false
enbs:
  - enb_id: 1
    name: macro-east
    dl_scheduler: local_rr
  - enb_id: 2
    name: macro-west
    dl_scheduler: local_pf
    control_delay_ms: 5
ues:
  - enb: 1
    cqi: 15
    traffic: full_buffer
  - enb: 1
    cqi: 8
    traffic: full_buffer
  - enb: 2
    cqi: 12
    traffic: cbr
    rate_mbps: 4
  - enb: 2
    cqi: 10
    traffic: cbr
    rate_mbps: 2
)";

void print_usage() {
  std::printf(
      "usage: flexran_sim <scenario.yaml> | --demo\n\n"
      "Runs a FlexRAN scenario (master controller + agent-enabled eNodeBs +\n"
      "UEs + traffic) inside the discrete-event simulator and prints per-UE\n"
      "throughput and controller statistics.\n\n"
      "Scenario keys: duration_s, stats_period_ttis, remote_scheduler,\n"
      "schedule_ahead_sf, enbs[] (enb_id, name, dl_scheduler, ul_scheduler,\n"
      "control_delay_ms), ues[] (enb, cqi, ul_cqi, traffic, rate_mbps).\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    print_usage();
    return 2;
  }
  const std::string arg = argv[1];
  if (arg == "--help" || arg == "-h") {
    print_usage();
    return 0;
  }

  std::string yaml;
  if (arg == "--demo") {
    yaml = kDemoScenario;
    std::printf("running built-in demo scenario:\n%s\n", kDemoScenario);
  } else {
    std::ifstream file(arg);
    if (!file) {
      std::fprintf(stderr, "flexran_sim: cannot open %s\n", arg.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    yaml = buffer.str();
  }

  auto spec = flexran::scenario::parse_scenario(yaml);
  if (!spec.ok()) {
    std::fprintf(stderr, "flexran_sim: bad scenario: %s\n", spec.error().message.c_str());
    return 1;
  }
  const auto summary = flexran::scenario::run_scenario(*spec);
  std::fputs(flexran::scenario::format_summary(summary).c_str(), stdout);
  return 0;
}
