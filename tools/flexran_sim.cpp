// flexran_sim: run a declarative FlexRAN scenario from a YAML file.
//
//   flexran_sim scenario.yaml                 # run the given scenario
//   flexran_sim --demo                        # run a built-in two-cell demo
//   flexran_sim --metrics-json[=FILE] s.yaml  # also dump periodic metrics JSON
//   flexran_sim --metrics-prom[=FILE] s.yaml  # also dump a Prometheus snapshot
//   flexran_sim --seed=N s.yaml               # override the scenario RNG seed
//   flexran_sim --check s.yaml                # exit 1 on end-state invariants
//   flexran_sim --invariants=MODE s.yaml      # runtime monitor: off|log|trap
//   flexran_sim --help
//
// Scenario format: see src/scenario/config.h and docs/PROTOCOL.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/config.h"

namespace {

constexpr const char* kDemoScenario = R"(# flexran_sim --demo
duration_s: 4
stats_period_ttis: 1
remote_scheduler: false
enbs:
  - enb_id: 1
    name: macro-east
    dl_scheduler: local_rr
  - enb_id: 2
    name: macro-west
    dl_scheduler: local_pf
    control_delay_ms: 5
ues:
  - enb: 1
    cqi: 15
    traffic: full_buffer
  - enb: 1
    cqi: 8
    traffic: full_buffer
  - enb: 2
    cqi: 12
    traffic: cbr
    rate_mbps: 4
  - enb: 2
    cqi: 10
    traffic: cbr
    rate_mbps: 2
)";

void print_usage() {
  std::printf(
      "usage: flexran_sim [--metrics-json[=FILE]] [--metrics-prom[=FILE]] "
      "[--seed=N] [--check] [--invariants=MODE] <scenario.yaml> | --demo\n\n"
      "Runs a FlexRAN scenario (master controller + agent-enabled eNodeBs +\n"
      "UEs + traffic) inside the discrete-event simulator and prints per-UE\n"
      "throughput and controller statistics.\n\n"
      "Scenario keys: duration_s, stats_period_ttis, remote_scheduler,\n"
      "schedule_ahead_sf, observability, metrics_period_s, enbs[] (enb_id,\n"
      "name, dl_scheduler, ul_scheduler, control_delay_ms), ues[] (enb, cqi,\n"
      "ul_cqi, traffic, rate_mbps).\n\n"
      "--metrics-json emits the periodic registry dumps (one JSON object per\n"
      "line); --metrics-prom emits a Prometheus text snapshot of the final\n"
      "state. Both imply `observability: true` and write to stdout unless a\n"
      "=FILE destination is given. See docs/observability.md.\n\n"
      "--seed=N overrides the scenario's base RNG seed (eNodeB i gets seed\n"
      "N+i), for chaos soaks sweeping seeds without editing the document.\n"
      "--check exits 1 when the run ends in a bad state: any agent not up,\n"
      "any shard still recovering, any orphan unadopted, any adoption still\n"
      "pending, or any runtime invariant violation the monitor recorded.\n"
      "See docs/fault_tolerance.md.\n\n"
      "--invariants=off|log|trap overrides the scenario's runtime\n"
      "InvariantMonitor mode: `log` counts violations into the summary,\n"
      "`trap` aborts with a cycle trace on the first one (what the chaos\n"
      "soaks run with). See docs/chaos_fuzzing.md.\n");
}

/// Writes `text` to `path`, or to stdout when `path` is empty.
bool emit(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "flexran_sim: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool want_json = false;
  bool want_prom = false;
  bool want_check = false;
  long long seed_override = -1;
  std::string invariants_override;
  std::string json_path;
  std::string prom_path;
  std::string scenario_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--metrics-json" || arg.rfind("--metrics-json=", 0) == 0) {
      want_json = true;
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        json_path = arg.substr(eq + 1);
      }
    } else if (arg == "--metrics-prom" || arg.rfind("--metrics-prom=", 0) == 0) {
      want_prom = true;
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        prom_path = arg.substr(eq + 1);
      }
    } else if (arg == "--check") {
      want_check = true;
    } else if (arg.rfind("--invariants=", 0) == 0) {
      invariants_override = arg.substr(std::strlen("--invariants="));
      if (invariants_override != "off" && invariants_override != "log" &&
          invariants_override != "trap") {
        std::fprintf(stderr, "flexran_sim: --invariants must be off | log | trap\n");
        return 2;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed_override = std::atoll(arg.c_str() + std::strlen("--seed="));
      if (seed_override < 1) {
        std::fprintf(stderr, "flexran_sim: --seed must be >= 1\n");
        return 2;
      }
    } else if (scenario_arg.empty()) {
      scenario_arg = arg;
    } else {
      print_usage();
      return 2;
    }
  }
  if (scenario_arg.empty()) {
    print_usage();
    return 2;
  }

  std::string yaml;
  if (scenario_arg == "--demo") {
    yaml = kDemoScenario;
    std::printf("running built-in demo scenario:\n%s\n", kDemoScenario);
  } else {
    std::ifstream file(scenario_arg);
    if (!file) {
      std::fprintf(stderr, "flexran_sim: cannot open %s\n", scenario_arg.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    yaml = buffer.str();
  }

  auto spec = flexran::scenario::parse_scenario(yaml);
  if (!spec.ok()) {
    std::fprintf(stderr, "flexran_sim: bad scenario: %s\n", spec.error().message.c_str());
    return 1;
  }
  if (want_json || want_prom) spec->observability = true;
  if (seed_override > 0) spec->seed = static_cast<std::uint64_t>(seed_override);
  if (!invariants_override.empty()) spec->invariants = invariants_override;
  const auto summary = flexran::scenario::run_scenario(*spec);
  std::fputs(flexran::scenario::format_summary(summary).c_str(), stdout);
  if (want_json) {
    std::string dumps;
    for (const auto& dump : summary.metrics_json) dumps += dump + "\n";
    if (!emit(json_path, dumps)) return 1;
  }
  if (want_prom && !emit(prom_path, summary.metrics_prometheus)) return 1;
  if (want_check) {
    // End-state invariants every chaos scenario is expected to restore,
    // whatever was injected mid-run. Violations mean the control plane
    // failed to converge, not that the fault fired.
    int bad = 0;
    const auto violation = [&bad](const char* what) {
      std::fprintf(stderr, "flexran_sim: check failed: %s\n", what);
      ++bad;
    };
    if (summary.agents_up != summary.agents_total) violation("not every agent ended up");
    if (summary.recovering_at_end) violation("a shard was still recovering at the end");
    if (summary.agents_orphaned > 0) violation("orphaned agents were never adopted");
    if (summary.failover_pending > 0) violation("adopted agents never finished re-sync");
    if (summary.invariant_violations > 0) violation("runtime invariants were violated");
    if (bad > 0) return 1;
    std::printf("check: ok (%d/%d agents up)\n", summary.agents_up, summary.agents_total);
  }
  return 0;
}
