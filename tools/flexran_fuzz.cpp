// flexran_fuzz: deterministic chaos fuzzing of the FlexRAN control plane
// (docs/chaos_fuzzing.md).
//
//   flexran_fuzz --seed=N                 # one seed: generate, run, verify
//   flexran_fuzz --seed=N --runs=K        # seeds N .. N+K-1
//   flexran_fuzz --seed=N --defect=stale_composite   # self-check defect
//   flexran_fuzz --seed=N --print-spec    # dump the generated scenario
//   flexran_fuzz --help
//
// Every run is bit-deterministic in the seed. On a violation the fault
// schedule is greedily minimized and a standalone repro scenario is
// written to <out>/repro_<seed>.yaml, replayable with
// `flexran-sim <file> --check`. Exit status: 0 when every seed was clean,
// 1 when any violated, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "verify/fuzzer.h"

namespace {

void print_usage() {
  std::printf(
      "usage: flexran_fuzz --seed=N [--runs=K] [--duration=S] [--max-faults=M]\n"
      "                    [--defect=stale_composite] [--out=DIR] [--no-minimize]\n"
      "                    [--print-spec]\n\n"
      "Generates K (default 1) randomized chaos scenarios from seeds N..N+K-1,\n"
      "runs each under the runtime InvariantMonitor, and checks both the\n"
      "invariants and the end-state convergence bar of `flexran-sim --check`.\n\n"
      "On a violation the fault schedule is minimized (drop --no-minimize to\n"
      "skip) and a standalone repro document is written to DIR (default\n"
      "`scenarios`) as repro_<seed>.yaml. --defect re-introduces a known bug\n"
      "(composite-cache invalidation removed) to prove the monitor catches\n"
      "it. --print-spec dumps each generated scenario before running it.\n"
      "See docs/chaos_fuzzing.md.\n");
}

long long parse_number(const char* arg, const char* prefix) {
  return std::atoll(arg + std::strlen(prefix));
}

}  // namespace

int main(int argc, char** argv) {
  flexran::verify::FuzzConfig config;
  long long seed = 0;
  long long runs = 1;
  bool minimize = true;
  bool print_spec = false;
  std::string out_dir = "scenarios";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg.rfind("--seed=", 0) == 0) {
      seed = parse_number(argv[i], "--seed=");
    } else if (arg.rfind("--runs=", 0) == 0) {
      runs = parse_number(argv[i], "--runs=");
    } else if (arg.rfind("--duration=", 0) == 0) {
      config.duration_s = std::atof(arg.c_str() + std::strlen("--duration="));
    } else if (arg.rfind("--max-faults=", 0) == 0) {
      config.max_faults = static_cast<int>(parse_number(argv[i], "--max-faults="));
    } else if (arg.rfind("--defect=", 0) == 0) {
      config.defect = arg.substr(std::strlen("--defect="));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out="));
    } else if (arg == "--no-minimize") {
      minimize = false;
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else {
      print_usage();
      return 2;
    }
  }
  if (seed < 1 || runs < 1 || config.duration_s < 3.0 || config.max_faults < 0) {
    std::fprintf(stderr,
                 "flexran_fuzz: need --seed >= 1, --runs >= 1, --duration >= 3, "
                 "--max-faults >= 0\n");
    return 2;
  }
  if (!config.defect.empty() && config.defect != "stale_composite") {
    std::fprintf(stderr, "flexran_fuzz: unknown --defect (try stale_composite)\n");
    return 2;
  }

  int violated_seeds = 0;
  for (long long i = 0; i < runs; ++i) {
    config.seed = static_cast<std::uint64_t>(seed + i);
    if (print_spec) {
      const auto spec = flexran::verify::generate_scenario(config);
      std::printf("--- seed %llu spec ---\n%s",
                  static_cast<unsigned long long>(config.seed),
                  flexran::scenario::scenario_to_yaml(spec).c_str());
    }
    const auto result = flexran::verify::fuzz_seed(config, minimize);
    if (!result.violated) {
      std::printf("seed %llu: ok (%zu faults, %llu checks)\n",
                  static_cast<unsigned long long>(result.seed),
                  result.spec.faults.size(),
                  static_cast<unsigned long long>(result.invariant_checks));
      continue;
    }
    ++violated_seeds;
    std::printf("seed %llu: VIOLATED (%zu faults -> %zu after minimization, "
                "%llu runs)\n",
                static_cast<unsigned long long>(result.seed),
                result.spec.faults.size(), result.minimized.faults.size(),
                static_cast<unsigned long long>(result.runs));
    for (const auto& reason : result.reasons) {
      std::printf("  reason: %s\n", reason.c_str());
    }
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string path =
        out_dir + "/repro_" + std::to_string(result.seed) + ".yaml";
    std::ofstream file(path);
    if (file) {
      file << result.repro;
      std::printf("  repro: %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "flexran_fuzz: cannot write %s\n", path.c_str());
    }
    std::printf("--- minimized repro ---\n%s", result.repro.c_str());
  }
  return violated_seeds > 0 ? 1 : 0;
}
