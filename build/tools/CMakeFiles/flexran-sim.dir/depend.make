# Empty dependencies file for flexran-sim.
# This may be replaced when dependencies are built.
