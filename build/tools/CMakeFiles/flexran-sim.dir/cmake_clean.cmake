file(REMOVE_RECURSE
  "CMakeFiles/flexran-sim.dir/flexran_sim.cpp.o"
  "CMakeFiles/flexran-sim.dir/flexran_sim.cpp.o.d"
  "flexran-sim"
  "flexran-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
