# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/lte_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/stack_test[1]_include.cmake")
include("/root/repo/build/tests/agent_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/wifi_test[1]_include.cmake")
