file(REMOVE_RECURSE
  "../bench/bench_fig7_signaling"
  "../bench/bench_fig7_signaling.pdb"
  "CMakeFiles/bench_fig7_signaling.dir/bench_fig7_signaling.cpp.o"
  "CMakeFiles/bench_fig7_signaling.dir/bench_fig7_signaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
