# Empty dependencies file for bench_fig7_signaling.
# This may be replaced when dependencies are built.
