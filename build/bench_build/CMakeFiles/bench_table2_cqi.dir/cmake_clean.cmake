file(REMOVE_RECURSE
  "../bench/bench_table2_cqi"
  "../bench/bench_table2_cqi.pdb"
  "CMakeFiles/bench_table2_cqi.dir/bench_table2_cqi.cpp.o"
  "CMakeFiles/bench_table2_cqi.dir/bench_table2_cqi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cqi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
