# Empty dependencies file for bench_table2_cqi.
# This may be replaced when dependencies are built.
