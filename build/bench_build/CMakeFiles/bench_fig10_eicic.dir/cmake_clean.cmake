file(REMOVE_RECURSE
  "../bench/bench_fig10_eicic"
  "../bench/bench_fig10_eicic.pdb"
  "CMakeFiles/bench_fig10_eicic.dir/bench_fig10_eicic.cpp.o"
  "CMakeFiles/bench_fig10_eicic.dir/bench_fig10_eicic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_eicic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
