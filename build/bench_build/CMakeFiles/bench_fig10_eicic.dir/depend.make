# Empty dependencies file for bench_fig10_eicic.
# This may be replaced when dependencies are built.
