
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_eicic.cpp" "bench_build/CMakeFiles/bench_fig10_eicic.dir/bench_fig10_eicic.cpp.o" "gcc" "bench_build/CMakeFiles/bench_fig10_eicic.dir/bench_fig10_eicic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/flexran_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/flexran_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/flexran_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/flexran_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/flexran_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flexran_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/flexran_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/flexran_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/flexran_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexran_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/flexran_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flexran_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
