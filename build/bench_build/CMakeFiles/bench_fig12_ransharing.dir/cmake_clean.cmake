file(REMOVE_RECURSE
  "../bench/bench_fig12_ransharing"
  "../bench/bench_fig12_ransharing.pdb"
  "CMakeFiles/bench_fig12_ransharing.dir/bench_fig12_ransharing.cpp.o"
  "CMakeFiles/bench_fig12_ransharing.dir/bench_fig12_ransharing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ransharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
