# Empty dependencies file for bench_fig11_dash.
# This may be replaced when dependencies are built.
