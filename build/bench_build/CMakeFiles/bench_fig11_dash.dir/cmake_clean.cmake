file(REMOVE_RECURSE
  "../bench/bench_fig11_dash"
  "../bench/bench_fig11_dash.pdb"
  "CMakeFiles/bench_fig11_dash.dir/bench_fig11_dash.cpp.o"
  "CMakeFiles/bench_fig11_dash.dir/bench_fig11_dash.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
