file(REMOVE_RECURSE
  "../bench/bench_delegation"
  "../bench/bench_delegation.pdb"
  "CMakeFiles/bench_delegation.dir/bench_delegation.cpp.o"
  "CMakeFiles/bench_delegation.dir/bench_delegation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
