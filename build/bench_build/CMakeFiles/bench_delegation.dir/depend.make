# Empty dependencies file for bench_delegation.
# This may be replaced when dependencies are built.
