# Empty compiler generated dependencies file for bench_fig8_master.
# This may be replaced when dependencies are built.
