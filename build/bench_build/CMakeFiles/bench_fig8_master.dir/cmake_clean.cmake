file(REMOVE_RECURSE
  "../bench/bench_fig8_master"
  "../bench/bench_fig8_master.pdb"
  "CMakeFiles/bench_fig8_master.dir/bench_fig8_master.cpp.o"
  "CMakeFiles/bench_fig8_master.dir/bench_fig8_master.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
