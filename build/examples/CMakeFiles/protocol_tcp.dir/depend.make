# Empty dependencies file for protocol_tcp.
# This may be replaced when dependencies are built.
