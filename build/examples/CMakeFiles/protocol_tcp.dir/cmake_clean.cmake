file(REMOVE_RECURSE
  "CMakeFiles/protocol_tcp.dir/protocol_tcp.cpp.o"
  "CMakeFiles/protocol_tcp.dir/protocol_tcp.cpp.o.d"
  "protocol_tcp"
  "protocol_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
