file(REMOVE_RECURSE
  "CMakeFiles/wifi_policy.dir/wifi_policy.cpp.o"
  "CMakeFiles/wifi_policy.dir/wifi_policy.cpp.o.d"
  "wifi_policy"
  "wifi_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
