# Empty compiler generated dependencies file for wifi_policy.
# This may be replaced when dependencies are built.
