file(REMOVE_RECURSE
  "CMakeFiles/ran_sharing.dir/ran_sharing.cpp.o"
  "CMakeFiles/ran_sharing.dir/ran_sharing.cpp.o.d"
  "ran_sharing"
  "ran_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
