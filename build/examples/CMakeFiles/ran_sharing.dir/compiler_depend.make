# Empty compiler generated dependencies file for ran_sharing.
# This may be replaced when dependencies are built.
