file(REMOVE_RECURSE
  "CMakeFiles/mec_dash.dir/mec_dash.cpp.o"
  "CMakeFiles/mec_dash.dir/mec_dash.cpp.o.d"
  "mec_dash"
  "mec_dash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mec_dash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
