# Empty compiler generated dependencies file for mec_dash.
# This may be replaced when dependencies are built.
