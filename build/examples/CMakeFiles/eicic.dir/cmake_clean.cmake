file(REMOVE_RECURSE
  "CMakeFiles/eicic.dir/eicic.cpp.o"
  "CMakeFiles/eicic.dir/eicic.cpp.o.d"
  "eicic"
  "eicic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eicic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
