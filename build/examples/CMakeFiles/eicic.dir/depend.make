# Empty dependencies file for eicic.
# This may be replaced when dependencies are built.
