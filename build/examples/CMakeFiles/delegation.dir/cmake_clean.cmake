file(REMOVE_RECURSE
  "CMakeFiles/delegation.dir/delegation.cpp.o"
  "CMakeFiles/delegation.dir/delegation.cpp.o.d"
  "delegation"
  "delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
