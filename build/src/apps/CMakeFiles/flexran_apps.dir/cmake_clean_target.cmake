file(REMOVE_RECURSE
  "libflexran_apps.a"
)
