file(REMOVE_RECURSE
  "CMakeFiles/flexran_apps.dir/eicic.cpp.o"
  "CMakeFiles/flexran_apps.dir/eicic.cpp.o.d"
  "CMakeFiles/flexran_apps.dir/lsa.cpp.o"
  "CMakeFiles/flexran_apps.dir/lsa.cpp.o.d"
  "CMakeFiles/flexran_apps.dir/mec_dash.cpp.o"
  "CMakeFiles/flexran_apps.dir/mec_dash.cpp.o.d"
  "CMakeFiles/flexran_apps.dir/mobility_manager.cpp.o"
  "CMakeFiles/flexran_apps.dir/mobility_manager.cpp.o.d"
  "CMakeFiles/flexran_apps.dir/monitoring.cpp.o"
  "CMakeFiles/flexran_apps.dir/monitoring.cpp.o.d"
  "CMakeFiles/flexran_apps.dir/ran_sharing.cpp.o"
  "CMakeFiles/flexran_apps.dir/ran_sharing.cpp.o.d"
  "CMakeFiles/flexran_apps.dir/remote_scheduler.cpp.o"
  "CMakeFiles/flexran_apps.dir/remote_scheduler.cpp.o.d"
  "libflexran_apps.a"
  "libflexran_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
