# Empty dependencies file for flexran_apps.
# This may be replaced when dependencies are built.
