file(REMOVE_RECURSE
  "CMakeFiles/flexran_proto.dir/messages.cpp.o"
  "CMakeFiles/flexran_proto.dir/messages.cpp.o.d"
  "CMakeFiles/flexran_proto.dir/wire.cpp.o"
  "CMakeFiles/flexran_proto.dir/wire.cpp.o.d"
  "libflexran_proto.a"
  "libflexran_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
