# Empty dependencies file for flexran_proto.
# This may be replaced when dependencies are built.
