file(REMOVE_RECURSE
  "libflexran_proto.a"
)
