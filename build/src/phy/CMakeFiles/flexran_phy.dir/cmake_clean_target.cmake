file(REMOVE_RECURSE
  "libflexran_phy.a"
)
