
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/flexran_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/flexran_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/error_model.cpp" "src/phy/CMakeFiles/flexran_phy.dir/error_model.cpp.o" "gcc" "src/phy/CMakeFiles/flexran_phy.dir/error_model.cpp.o.d"
  "/root/repo/src/phy/mobility.cpp" "src/phy/CMakeFiles/flexran_phy.dir/mobility.cpp.o" "gcc" "src/phy/CMakeFiles/flexran_phy.dir/mobility.cpp.o.d"
  "/root/repo/src/phy/radio_env.cpp" "src/phy/CMakeFiles/flexran_phy.dir/radio_env.cpp.o" "gcc" "src/phy/CMakeFiles/flexran_phy.dir/radio_env.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lte/CMakeFiles/flexran_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexran_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flexran_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
