file(REMOVE_RECURSE
  "CMakeFiles/flexran_phy.dir/channel.cpp.o"
  "CMakeFiles/flexran_phy.dir/channel.cpp.o.d"
  "CMakeFiles/flexran_phy.dir/error_model.cpp.o"
  "CMakeFiles/flexran_phy.dir/error_model.cpp.o.d"
  "CMakeFiles/flexran_phy.dir/mobility.cpp.o"
  "CMakeFiles/flexran_phy.dir/mobility.cpp.o.d"
  "CMakeFiles/flexran_phy.dir/radio_env.cpp.o"
  "CMakeFiles/flexran_phy.dir/radio_env.cpp.o.d"
  "libflexran_phy.a"
  "libflexran_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
