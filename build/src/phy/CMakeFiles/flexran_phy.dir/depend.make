# Empty dependencies file for flexran_phy.
# This may be replaced when dependencies are built.
