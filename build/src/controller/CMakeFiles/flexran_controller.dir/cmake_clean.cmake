file(REMOVE_RECURSE
  "CMakeFiles/flexran_controller.dir/arbiter.cpp.o"
  "CMakeFiles/flexran_controller.dir/arbiter.cpp.o.d"
  "CMakeFiles/flexran_controller.dir/master.cpp.o"
  "CMakeFiles/flexran_controller.dir/master.cpp.o.d"
  "CMakeFiles/flexran_controller.dir/rib.cpp.o"
  "CMakeFiles/flexran_controller.dir/rib.cpp.o.d"
  "CMakeFiles/flexran_controller.dir/rib_view.cpp.o"
  "CMakeFiles/flexran_controller.dir/rib_view.cpp.o.d"
  "CMakeFiles/flexran_controller.dir/task_manager.cpp.o"
  "CMakeFiles/flexran_controller.dir/task_manager.cpp.o.d"
  "libflexran_controller.a"
  "libflexran_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
