
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/arbiter.cpp" "src/controller/CMakeFiles/flexran_controller.dir/arbiter.cpp.o" "gcc" "src/controller/CMakeFiles/flexran_controller.dir/arbiter.cpp.o.d"
  "/root/repo/src/controller/master.cpp" "src/controller/CMakeFiles/flexran_controller.dir/master.cpp.o" "gcc" "src/controller/CMakeFiles/flexran_controller.dir/master.cpp.o.d"
  "/root/repo/src/controller/rib.cpp" "src/controller/CMakeFiles/flexran_controller.dir/rib.cpp.o" "gcc" "src/controller/CMakeFiles/flexran_controller.dir/rib.cpp.o.d"
  "/root/repo/src/controller/rib_view.cpp" "src/controller/CMakeFiles/flexran_controller.dir/rib_view.cpp.o" "gcc" "src/controller/CMakeFiles/flexran_controller.dir/rib_view.cpp.o.d"
  "/root/repo/src/controller/task_manager.cpp" "src/controller/CMakeFiles/flexran_controller.dir/task_manager.cpp.o" "gcc" "src/controller/CMakeFiles/flexran_controller.dir/task_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/flexran_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/flexran_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexran_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/flexran_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flexran_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
