# Empty dependencies file for flexran_controller.
# This may be replaced when dependencies are built.
