file(REMOVE_RECURSE
  "libflexran_controller.a"
)
