# Empty dependencies file for flexran_sim.
# This may be replaced when dependencies are built.
