file(REMOVE_RECURSE
  "CMakeFiles/flexran_sim.dir/sim_link.cpp.o"
  "CMakeFiles/flexran_sim.dir/sim_link.cpp.o.d"
  "CMakeFiles/flexran_sim.dir/simulator.cpp.o"
  "CMakeFiles/flexran_sim.dir/simulator.cpp.o.d"
  "libflexran_sim.a"
  "libflexran_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
