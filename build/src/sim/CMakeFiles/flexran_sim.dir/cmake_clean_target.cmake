file(REMOVE_RECURSE
  "libflexran_sim.a"
)
