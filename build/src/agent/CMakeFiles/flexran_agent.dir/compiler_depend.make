# Empty compiler generated dependencies file for flexran_agent.
# This may be replaced when dependencies are built.
