
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/agent.cpp" "src/agent/CMakeFiles/flexran_agent.dir/agent.cpp.o" "gcc" "src/agent/CMakeFiles/flexran_agent.dir/agent.cpp.o.d"
  "/root/repo/src/agent/agent_api.cpp" "src/agent/CMakeFiles/flexran_agent.dir/agent_api.cpp.o" "gcc" "src/agent/CMakeFiles/flexran_agent.dir/agent_api.cpp.o.d"
  "/root/repo/src/agent/control_module.cpp" "src/agent/CMakeFiles/flexran_agent.dir/control_module.cpp.o" "gcc" "src/agent/CMakeFiles/flexran_agent.dir/control_module.cpp.o.d"
  "/root/repo/src/agent/reports.cpp" "src/agent/CMakeFiles/flexran_agent.dir/reports.cpp.o" "gcc" "src/agent/CMakeFiles/flexran_agent.dir/reports.cpp.o.d"
  "/root/repo/src/agent/schedulers.cpp" "src/agent/CMakeFiles/flexran_agent.dir/schedulers.cpp.o" "gcc" "src/agent/CMakeFiles/flexran_agent.dir/schedulers.cpp.o.d"
  "/root/repo/src/agent/vsf.cpp" "src/agent/CMakeFiles/flexran_agent.dir/vsf.cpp.o" "gcc" "src/agent/CMakeFiles/flexran_agent.dir/vsf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stack/CMakeFiles/flexran_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flexran_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/flexran_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/flexran_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/flexran_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexran_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/flexran_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
