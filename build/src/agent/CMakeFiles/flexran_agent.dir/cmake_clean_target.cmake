file(REMOVE_RECURSE
  "libflexran_agent.a"
)
