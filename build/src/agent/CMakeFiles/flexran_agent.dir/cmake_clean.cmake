file(REMOVE_RECURSE
  "CMakeFiles/flexran_agent.dir/agent.cpp.o"
  "CMakeFiles/flexran_agent.dir/agent.cpp.o.d"
  "CMakeFiles/flexran_agent.dir/agent_api.cpp.o"
  "CMakeFiles/flexran_agent.dir/agent_api.cpp.o.d"
  "CMakeFiles/flexran_agent.dir/control_module.cpp.o"
  "CMakeFiles/flexran_agent.dir/control_module.cpp.o.d"
  "CMakeFiles/flexran_agent.dir/reports.cpp.o"
  "CMakeFiles/flexran_agent.dir/reports.cpp.o.d"
  "CMakeFiles/flexran_agent.dir/schedulers.cpp.o"
  "CMakeFiles/flexran_agent.dir/schedulers.cpp.o.d"
  "CMakeFiles/flexran_agent.dir/vsf.cpp.o"
  "CMakeFiles/flexran_agent.dir/vsf.cpp.o.d"
  "libflexran_agent.a"
  "libflexran_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
