# Empty dependencies file for flexran_util.
# This may be replaced when dependencies are built.
