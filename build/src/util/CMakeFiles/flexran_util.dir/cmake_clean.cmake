file(REMOVE_RECURSE
  "CMakeFiles/flexran_util.dir/bytes.cpp.o"
  "CMakeFiles/flexran_util.dir/bytes.cpp.o.d"
  "CMakeFiles/flexran_util.dir/logging.cpp.o"
  "CMakeFiles/flexran_util.dir/logging.cpp.o.d"
  "CMakeFiles/flexran_util.dir/result.cpp.o"
  "CMakeFiles/flexran_util.dir/result.cpp.o.d"
  "CMakeFiles/flexran_util.dir/rng.cpp.o"
  "CMakeFiles/flexran_util.dir/rng.cpp.o.d"
  "CMakeFiles/flexran_util.dir/stats.cpp.o"
  "CMakeFiles/flexran_util.dir/stats.cpp.o.d"
  "CMakeFiles/flexran_util.dir/strings.cpp.o"
  "CMakeFiles/flexran_util.dir/strings.cpp.o.d"
  "CMakeFiles/flexran_util.dir/yaml_lite.cpp.o"
  "CMakeFiles/flexran_util.dir/yaml_lite.cpp.o.d"
  "libflexran_util.a"
  "libflexran_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
