file(REMOVE_RECURSE
  "libflexran_util.a"
)
