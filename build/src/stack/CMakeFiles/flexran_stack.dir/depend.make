# Empty dependencies file for flexran_stack.
# This may be replaced when dependencies are built.
