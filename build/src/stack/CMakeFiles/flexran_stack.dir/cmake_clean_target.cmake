file(REMOVE_RECURSE
  "libflexran_stack.a"
)
