file(REMOVE_RECURSE
  "CMakeFiles/flexran_stack.dir/enodeb.cpp.o"
  "CMakeFiles/flexran_stack.dir/enodeb.cpp.o.d"
  "CMakeFiles/flexran_stack.dir/epc.cpp.o"
  "CMakeFiles/flexran_stack.dir/epc.cpp.o.d"
  "CMakeFiles/flexran_stack.dir/rlc.cpp.o"
  "CMakeFiles/flexran_stack.dir/rlc.cpp.o.d"
  "libflexran_stack.a"
  "libflexran_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
