# Empty compiler generated dependencies file for flexran_scenario.
# This may be replaced when dependencies are built.
