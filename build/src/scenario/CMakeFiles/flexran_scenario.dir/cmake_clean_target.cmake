file(REMOVE_RECURSE
  "libflexran_scenario.a"
)
