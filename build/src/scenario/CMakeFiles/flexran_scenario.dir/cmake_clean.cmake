file(REMOVE_RECURSE
  "CMakeFiles/flexran_scenario.dir/config.cpp.o"
  "CMakeFiles/flexran_scenario.dir/config.cpp.o.d"
  "CMakeFiles/flexran_scenario.dir/dash_session.cpp.o"
  "CMakeFiles/flexran_scenario.dir/dash_session.cpp.o.d"
  "CMakeFiles/flexran_scenario.dir/eicic_scenario.cpp.o"
  "CMakeFiles/flexran_scenario.dir/eicic_scenario.cpp.o.d"
  "CMakeFiles/flexran_scenario.dir/metrics.cpp.o"
  "CMakeFiles/flexran_scenario.dir/metrics.cpp.o.d"
  "CMakeFiles/flexran_scenario.dir/testbed.cpp.o"
  "CMakeFiles/flexran_scenario.dir/testbed.cpp.o.d"
  "libflexran_scenario.a"
  "libflexran_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
