file(REMOVE_RECURSE
  "libflexran_net.a"
)
