file(REMOVE_RECURSE
  "CMakeFiles/flexran_net.dir/framing.cpp.o"
  "CMakeFiles/flexran_net.dir/framing.cpp.o.d"
  "CMakeFiles/flexran_net.dir/sim_transport.cpp.o"
  "CMakeFiles/flexran_net.dir/sim_transport.cpp.o.d"
  "CMakeFiles/flexran_net.dir/tcp_transport.cpp.o"
  "CMakeFiles/flexran_net.dir/tcp_transport.cpp.o.d"
  "libflexran_net.a"
  "libflexran_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
