# Empty compiler generated dependencies file for flexran_net.
# This may be replaced when dependencies are built.
