file(REMOVE_RECURSE
  "libflexran_lte.a"
)
