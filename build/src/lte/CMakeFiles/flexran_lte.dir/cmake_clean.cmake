file(REMOVE_RECURSE
  "CMakeFiles/flexran_lte.dir/harq.cpp.o"
  "CMakeFiles/flexran_lte.dir/harq.cpp.o.d"
  "CMakeFiles/flexran_lte.dir/tables.cpp.o"
  "CMakeFiles/flexran_lte.dir/tables.cpp.o.d"
  "CMakeFiles/flexran_lte.dir/types.cpp.o"
  "CMakeFiles/flexran_lte.dir/types.cpp.o.d"
  "libflexran_lte.a"
  "libflexran_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
