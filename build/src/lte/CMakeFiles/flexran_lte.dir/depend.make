# Empty dependencies file for flexran_lte.
# This may be replaced when dependencies are built.
