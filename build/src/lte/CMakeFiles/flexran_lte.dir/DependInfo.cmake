
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lte/harq.cpp" "src/lte/CMakeFiles/flexran_lte.dir/harq.cpp.o" "gcc" "src/lte/CMakeFiles/flexran_lte.dir/harq.cpp.o.d"
  "/root/repo/src/lte/tables.cpp" "src/lte/CMakeFiles/flexran_lte.dir/tables.cpp.o" "gcc" "src/lte/CMakeFiles/flexran_lte.dir/tables.cpp.o.d"
  "/root/repo/src/lte/types.cpp" "src/lte/CMakeFiles/flexran_lte.dir/types.cpp.o" "gcc" "src/lte/CMakeFiles/flexran_lte.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/flexran_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
