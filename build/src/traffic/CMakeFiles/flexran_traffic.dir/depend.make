# Empty dependencies file for flexran_traffic.
# This may be replaced when dependencies are built.
