file(REMOVE_RECURSE
  "libflexran_traffic.a"
)
