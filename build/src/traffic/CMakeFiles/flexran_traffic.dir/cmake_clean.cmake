file(REMOVE_RECURSE
  "CMakeFiles/flexran_traffic.dir/dash.cpp.o"
  "CMakeFiles/flexran_traffic.dir/dash.cpp.o.d"
  "CMakeFiles/flexran_traffic.dir/tcp.cpp.o"
  "CMakeFiles/flexran_traffic.dir/tcp.cpp.o.d"
  "CMakeFiles/flexran_traffic.dir/udp.cpp.o"
  "CMakeFiles/flexran_traffic.dir/udp.cpp.o.d"
  "libflexran_traffic.a"
  "libflexran_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
