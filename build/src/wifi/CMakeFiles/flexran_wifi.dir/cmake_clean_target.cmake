file(REMOVE_RECURSE
  "libflexran_wifi.a"
)
