file(REMOVE_RECURSE
  "CMakeFiles/flexran_wifi.dir/control.cpp.o"
  "CMakeFiles/flexran_wifi.dir/control.cpp.o.d"
  "CMakeFiles/flexran_wifi.dir/wifi_ap.cpp.o"
  "CMakeFiles/flexran_wifi.dir/wifi_ap.cpp.o.d"
  "libflexran_wifi.a"
  "libflexran_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexran_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
