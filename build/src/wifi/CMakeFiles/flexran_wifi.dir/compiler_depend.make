# Empty compiler generated dependencies file for flexran_wifi.
# This may be replaced when dependencies are built.
