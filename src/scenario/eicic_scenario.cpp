#include "scenario/eicic_scenario.h"

#include "scenario/testbed.h"
#include "traffic/udp.h"

namespace flexran::scenario {

EicicScenarioResult run_eicic_scenario(const EicicScenarioConfig& config) {
  apps::register_usecase_vsfs();
  Testbed testbed(per_tti_master_config());

  // Macro first: it ticks before the pico each TTI, so the pico's CQI
  // samples see the macro's current-subframe activity.
  EnbSpec macro_spec;
  macro_spec.enb.enb_id = 1;
  macro_spec.enb.cells[0].cell_id = 1;
  macro_spec.agent.name = "macro";
  macro_spec.use_radio_env = true;
  macro_spec.seed = config.seed;
  auto& macro = testbed.add_enb(macro_spec);

  EnbSpec pico_spec;
  pico_spec.enb.enb_id = 2;
  pico_spec.enb.cells[0].cell_id = 2;
  pico_spec.agent.name = "pico";
  pico_spec.use_radio_env = true;
  pico_spec.seed = config.seed + 17;
  auto& pico = testbed.add_enb(pico_spec);

  // Geometry: macro UEs inside the pico's interference footprint; the pico
  // UE in the range-expansion zone, dominated by the macro unless it mutes.
  std::vector<lte::Rnti> macro_ues;
  for (int i = 0; i < 3; ++i) {
    stack::UeProfile ue;
    ue.radio_profile = phy::UeRadioProfile::from_distances(
        1, phy::kMacroTxPowerDbm, 0.30 + 0.02 * i, {{2, {phy::kPicoTxPowerDbm, 0.10}}});
    ue.attach_after_ttis = 10 + i;
    macro_ues.push_back(testbed.add_ue(0, std::move(ue)));
  }
  stack::UeProfile pico_ue_profile;
  pico_ue_profile.radio_profile = phy::UeRadioProfile::from_distances(
      2, phy::kPicoTxPowerDbm, 0.12, {{1, {phy::kMacroTxPowerDbm, 0.20}}});
  pico_ue_profile.attach_after_ttis = 10;
  const lte::Rnti pico_ue = testbed.add_ue(1, std::move(pico_ue_profile));

  if (config.mode != apps::EicicMode::uncoordinated) {
    apps::EicicConfig eicic;
    eicic.macro = macro.agent_id;
    eicic.small_cells = {pico.agent_id};
    eicic.pattern = lte::AbsPattern::per_frame(config.abs_per_frame);
    eicic.mode = config.mode;
    testbed.master().add_app(std::make_unique<apps::EicicCoordinatorApp>(eicic));
  }

  // Saturating downlink UDP toward the macro UEs; CBR toward the pico UE.
  testbed.on_tti([&testbed, &macro, macro_ues](std::int64_t) {
    for (const auto rnti : macro_ues) {
      const auto* ue = macro.data_plane->ue(rnti);
      if (ue != nullptr && ue->dl_queue.total_bytes() < 60'000) {
        (void)testbed.epc().downlink(rnti, 60'000);
      }
    }
  });
  traffic::UdpCbrSource pico_traffic(
      testbed.sim(), [&testbed, pico_ue](std::uint32_t bytes) {
        (void)testbed.epc().downlink(pico_ue, bytes);
      },
      config.small_cell_offered_mbps);
  pico_traffic.start();

  testbed.run_seconds(config.warmup_s);
  const auto macro_before = testbed.metrics().total_bytes_enb(1, lte::Direction::downlink);
  const auto pico_before = testbed.metrics().total_bytes_enb(2, lte::Direction::downlink);
  testbed.run_seconds(config.measure_s);
  const auto macro_bytes =
      testbed.metrics().total_bytes_enb(1, lte::Direction::downlink) - macro_before;
  const auto pico_bytes =
      testbed.metrics().total_bytes_enb(2, lte::Direction::downlink) - pico_before;

  EicicScenarioResult result;
  result.macro_mbps = Metrics::mbps(macro_bytes, config.measure_s);
  result.small_mbps = Metrics::mbps(pico_bytes, config.measure_s);
  result.network_mbps = result.macro_mbps + result.small_mbps;
  return result;
}

}  // namespace flexran::scenario
