#include "scenario/metrics.h"

namespace flexran::scenario {

void Metrics::record(lte::EnbId enb, lte::Rnti rnti, lte::Direction direction,
                     std::uint32_t bytes) {
  const Key key{enb, rnti, direction};
  totals_[key] += bytes;
  window_bytes_[key] += bytes;
}

void Metrics::sample_window(sim::TimeUs now) {
  const double window_s = sim::to_seconds(now - window_start_);
  if (window_s <= 0) return;
  const double time_s = sim::to_seconds(now);
  // Every key ever seen gets a point (zero-rate windows included) so series
  // show gaps in service, e.g. DASH buffer freezes.
  for (const auto& [key, total] : totals_) {
    (void)total;
    const auto it = window_bytes_.find(key);
    const std::uint64_t bytes = it == window_bytes_.end() ? 0 : it->second;
    series_[key].add(time_s, mbps(bytes, window_s));
  }
  window_bytes_.clear();
  window_start_ = now;
}

std::uint64_t Metrics::total_bytes(lte::EnbId enb, lte::Rnti rnti,
                                   lte::Direction direction) const {
  auto it = totals_.find(Key{enb, rnti, direction});
  return it == totals_.end() ? 0 : it->second;
}

std::uint64_t Metrics::total_bytes_enb(lte::EnbId enb, lte::Direction direction) const {
  std::uint64_t total = 0;
  for (const auto& [key, bytes] : totals_) {
    if (std::get<0>(key) == enb && std::get<2>(key) == direction) total += bytes;
  }
  return total;
}

std::uint64_t Metrics::total_bytes_all(lte::Direction direction) const {
  std::uint64_t total = 0;
  for (const auto& [key, bytes] : totals_) {
    if (std::get<2>(key) == direction) total += bytes;
  }
  return total;
}

const util::TimeSeries* Metrics::series(lte::EnbId enb, lte::Rnti rnti,
                                        lte::Direction direction) const {
  auto it = series_.find(Key{enb, rnti, direction});
  return it == series_.end() ? nullptr : &it->second;
}

void Metrics::reset() {
  totals_.clear();
  window_bytes_.clear();
  series_.clear();
}

}  // namespace flexran::scenario
