// Scenario-side bridge into the unified observability layer
// (docs/observability.md): registers the testbed components the master
// cannot see from its side of the wire -- agent-side signaling
// accountants, agent session counters, and per-link SimTransport frame
// counters -- as pull probes in the master's MetricsRegistry, and renders
// the one-block human summary the CLI prints.
//
// Everything here is export-time only (probes read existing accessors);
// nothing is added to any hot path.
#pragma once

#include <string>

#include "scenario/testbed.h"

namespace flexran::scenario {

/// Registers agent + control-link probes for every eNodeB currently in the
/// testbed. Call once, after the last add_enb and only when the master was
/// built with `obs.enabled` (probes into a disabled master would be the
/// registry's only content). Probes reference the testbed's eNodeBs, so
/// exports must happen before the testbed is torn down.
void register_testbed_probes(Testbed& testbed);

/// Renders the unified metrics block for the scenario summary: registry
/// size, cycle-stage breakdown, per-agent control-latency quantiles, and
/// the master-side signaling totals per category.
std::string format_metrics_block(Testbed& testbed);

}  // namespace flexran::scenario
