#include "scenario/config.h"

#include <algorithm>
#include <map>
#include <memory>

#include "apps/remote_scheduler.h"
#include "scenario/obs_export.h"
#include "traffic/udp.h"
#include "util/strings.h"
#include "util/yaml_lite.h"
#include "verify/invariants.h"

namespace flexran::scenario {

namespace {

util::Result<double> read_double(const util::YamlNode& node, const char* key,
                                 double fallback) {
  const auto* value = node.find(key);
  if (value == nullptr) return fallback;
  return value->as_double();
}

util::Result<long long> read_int(const util::YamlNode& node, const char* key,
                                 long long fallback) {
  const auto* value = node.find(key);
  if (value == nullptr) return fallback;
  return value->as_int();
}

std::string read_string(const util::YamlNode& node, const char* key,
                        const std::string& fallback) {
  const auto* value = node.find(key);
  return value == nullptr ? fallback : value->as_string();
}

util::Result<FaultKind> parse_fault_kind(const std::string& name) {
  if (name == "partition") return FaultKind::partition;
  if (name == "heal") return FaultKind::heal;
  if (name == "delay_spike") return FaultKind::delay_spike;
  if (name == "corrupt") return FaultKind::corrupt;
  if (name == "duplicate") return FaultKind::duplicate;
  if (name == "crash") return FaultKind::crash;
  if (name == "restart") return FaultKind::restart;
  if (name == "flap") return FaultKind::flap;
  if (name == "vsf_crash") return FaultKind::vsf_crash;
  if (name == "vsf_overrun") return FaultKind::vsf_overrun;
  if (name == "vsf_invalid") return FaultKind::vsf_invalid;
  if (name == "report_flood") return FaultKind::report_flood;
  if (name == "master_crash") return FaultKind::master_crash;
  if (name == "shard_kill") return FaultKind::shard_kill;
  if (name == "reorder") return FaultKind::reorder;
  if (name == "shard_drain") return FaultKind::shard_drain;
  return util::Error::invalid_argument(
      "fault kind must be partition | heal | delay_spike | corrupt | duplicate | reorder | "
      "crash | restart | flap | vsf_crash | vsf_overrun | vsf_invalid | report_flood | "
      "master_crash | shard_kill | shard_drain");
}

}  // namespace

util::Result<ScenarioSpec> parse_scenario(const std::string& yaml) {
  auto doc = util::parse_yaml(yaml);
  if (!doc.ok()) return doc.error();
  const util::YamlNode& root = doc.value();
  ScenarioSpec spec;

  auto duration = read_double(root, "duration_s", spec.duration_s);
  if (!duration.ok()) return duration.error();
  spec.duration_s = *duration;
  if (spec.duration_s <= 0) return util::Error::invalid_argument("duration_s must be > 0");

  auto period = read_int(root, "stats_period_ttis", spec.stats_period_ttis);
  if (!period.ok()) return period.error();
  if (*period < 1) return util::Error::invalid_argument("stats_period_ttis must be >= 1");
  spec.stats_period_ttis = static_cast<std::uint32_t>(*period);

  auto seed = read_int(root, "seed", static_cast<long long>(spec.seed));
  if (!seed.ok()) return seed.error();
  if (*seed < 1) return util::Error::invalid_argument("seed must be >= 1");
  spec.seed = static_cast<std::uint64_t>(*seed);

  auto shards = read_int(root, "shards", static_cast<long long>(spec.shards));
  if (!shards.ok()) return shards.error();
  if (*shards < 1) return util::Error::invalid_argument("shards must be >= 1");
  spec.shards = static_cast<std::size_t>(*shards);

  auto stall = read_int(root, "shard_stall_cycles", spec.shard_stall_cycles);
  if (!stall.ok()) return stall.error();
  if (*stall < 0) return util::Error::invalid_argument("shard_stall_cycles must be >= 0");
  spec.shard_stall_cycles = *stall;

  spec.remote_scheduler = read_string(root, "remote_scheduler", "false") == "true";
  auto ahead = read_int(root, "schedule_ahead_sf", spec.schedule_ahead_sf);
  if (!ahead.ok()) return ahead.error();
  spec.schedule_ahead_sf = static_cast<int>(*ahead);

  auto agent_timeout = read_double(root, "agent_timeout_ms", spec.agent_timeout_ms);
  if (!agent_timeout.ok()) return agent_timeout.error();
  spec.agent_timeout_ms = *agent_timeout;
  auto disconnect_timeout =
      read_double(root, "agent_disconnect_timeout_ms", spec.agent_disconnect_timeout_ms);
  if (!disconnect_timeout.ok()) return disconnect_timeout.error();
  spec.agent_disconnect_timeout_ms = *disconnect_timeout;
  auto request_timeout = read_double(root, "request_timeout_ms", spec.request_timeout_ms);
  if (!request_timeout.ok()) return request_timeout.error();
  spec.request_timeout_ms = *request_timeout;

  auto ingest_messages = read_int(root, "ingest_max_messages", spec.ingest_max_messages);
  if (!ingest_messages.ok()) return ingest_messages.error();
  if (*ingest_messages < 0) {
    return util::Error::invalid_argument("ingest_max_messages must be >= 0");
  }
  spec.ingest_max_messages = *ingest_messages;
  auto ingest_bytes = read_int(root, "ingest_max_bytes", spec.ingest_max_bytes);
  if (!ingest_bytes.ok()) return ingest_bytes.error();
  if (*ingest_bytes < 0) return util::Error::invalid_argument("ingest_max_bytes must be >= 0");
  spec.ingest_max_bytes = *ingest_bytes;

  spec.observability = read_string(root, "observability", "false") == "true";
  auto metrics_period = read_double(root, "metrics_period_s", spec.metrics_period_s);
  if (!metrics_period.ok()) return metrics_period.error();
  if (*metrics_period <= 0) {
    return util::Error::invalid_argument("metrics_period_s must be > 0");
  }
  spec.metrics_period_s = *metrics_period;

  spec.master_recovery = read_string(root, "master_recovery", "false") == "true";
  auto resync_rate = read_double(root, "resync_tokens_per_s", spec.resync_tokens_per_s);
  if (!resync_rate.ok()) return resync_rate.error();
  if (*resync_rate < 0) {
    return util::Error::invalid_argument("resync_tokens_per_s must be >= 0");
  }
  spec.resync_tokens_per_s = *resync_rate;
  auto resync_burst = read_double(root, "resync_burst", spec.resync_burst);
  if (!resync_burst.ok()) return resync_burst.error();
  if (*resync_burst < 1) return util::Error::invalid_argument("resync_burst must be >= 1");
  spec.resync_burst = *resync_burst;
  auto retry_after = read_double(root, "resync_retry_after_ms", spec.resync_retry_after_ms);
  if (!retry_after.ok()) return retry_after.error();
  if (*retry_after < 0) {
    return util::Error::invalid_argument("resync_retry_after_ms must be >= 0");
  }
  spec.resync_retry_after_ms = *retry_after;
  auto quorum = read_double(root, "readiness_quorum", spec.readiness_quorum);
  if (!quorum.ok()) return quorum.error();
  if (*quorum <= 0 || *quorum > 1) {
    return util::Error::invalid_argument("readiness_quorum must be in (0, 1]");
  }
  spec.readiness_quorum = *quorum;
  auto readiness_timeout =
      read_double(root, "readiness_timeout_ms", spec.readiness_timeout_ms);
  if (!readiness_timeout.ok()) return readiness_timeout.error();
  if (*readiness_timeout < 0) {
    return util::Error::invalid_argument("readiness_timeout_ms must be >= 0");
  }
  spec.readiness_timeout_ms = *readiness_timeout;
  spec.warm_checkpoint = read_string(root, "warm_checkpoint", "false") == "true";
  auto ckpt_period = read_double(root, "checkpoint_period_s", spec.checkpoint_period_s);
  if (!ckpt_period.ok()) return ckpt_period.error();
  if (*ckpt_period <= 0) {
    return util::Error::invalid_argument("checkpoint_period_s must be > 0");
  }
  spec.checkpoint_period_s = *ckpt_period;

  spec.invariants = read_string(root, "invariants", spec.invariants);
  if (spec.invariants != "off" && spec.invariants != "log" && spec.invariants != "trap") {
    return util::Error::invalid_argument("invariants must be off | log | trap");
  }
  spec.defect = read_string(root, "defect", spec.defect);
  if (!spec.defect.empty() && spec.defect != "stale_composite") {
    return util::Error::invalid_argument("defect must be stale_composite (or omitted)");
  }

  const auto* enbs = root.find("enbs");
  if (enbs == nullptr || !enbs->is_sequence() || enbs->items().empty()) {
    return util::Error::invalid_argument("scenario needs a non-empty 'enbs' sequence");
  }
  for (const auto& item : enbs->items()) {
    ScenarioEnbSpec enb;
    auto id = read_int(item, "enb_id", static_cast<long long>(spec.enbs.size() + 1));
    if (!id.ok()) return id.error();
    enb.enb_id = static_cast<lte::EnbId>(*id);
    enb.name = read_string(item, "name", "enb-" + std::to_string(enb.enb_id));
    auto shard_pin = read_int(item, "shard", enb.shard);
    if (!shard_pin.ok()) return shard_pin.error();
    if (*shard_pin >= 0 && static_cast<std::size_t>(*shard_pin) >= spec.shards) {
      return util::Error::invalid_argument("enb shard pin " + std::to_string(*shard_pin) +
                                           " out of range for " + std::to_string(spec.shards) +
                                           " shards");
    }
    enb.shard = *shard_pin;
    enb.dl_scheduler = read_string(item, "dl_scheduler", enb.dl_scheduler);
    enb.ul_scheduler = read_string(item, "ul_scheduler", enb.ul_scheduler);
    auto delay = read_double(item, "control_delay_ms", 0.0);
    if (!delay.ok()) return delay.error();
    enb.control_delay_ms = *delay;
    auto fallback = read_int(item, "remote_fallback_ttis", enb.remote_fallback_ttis);
    if (!fallback.ok()) return fallback.error();
    if (*fallback < 0) {
      return util::Error::invalid_argument("remote_fallback_ttis must be >= 0");
    }
    enb.remote_fallback_ttis = *fallback;
    enb.fallback_scheduler = read_string(item, "fallback_scheduler", enb.fallback_scheduler);
    auto rate = read_double(item, "control_rate_mbps", enb.control_rate_mbps);
    if (!rate.ok()) return rate.error();
    if (*rate < 0) return util::Error::invalid_argument("control_rate_mbps must be >= 0");
    enb.control_rate_mbps = *rate;
    auto send_budget = read_int(item, "send_budget_bytes", enb.send_budget_bytes);
    if (!send_budget.ok()) return send_budget.error();
    if (*send_budget < 0) {
      return util::Error::invalid_argument("send_budget_bytes must be >= 0");
    }
    enb.send_budget_bytes = *send_budget;
    spec.enbs.push_back(std::move(enb));
  }

  const auto* ues = root.find("ues");
  if (ues != nullptr) {
    if (!ues->is_sequence()) return util::Error::invalid_argument("'ues' must be a sequence");
    for (const auto& item : ues->items()) {
      ScenarioUeSpec ue;
      auto enb_ref = read_int(item, "enb", 1);
      if (!enb_ref.ok()) return enb_ref.error();
      ue.enb = static_cast<lte::EnbId>(*enb_ref);
      const bool known = std::any_of(spec.enbs.begin(), spec.enbs.end(),
                                     [&](const auto& e) { return e.enb_id == ue.enb; });
      if (!known) {
        return util::Error::invalid_argument("UE references unknown enb " +
                                             std::to_string(ue.enb));
      }
      auto cqi = read_int(item, "cqi", ue.cqi);
      if (!cqi.ok()) return cqi.error();
      if (*cqi < 1 || *cqi > 15) return util::Error::invalid_argument("cqi must be in 1..15");
      ue.cqi = static_cast<int>(*cqi);
      auto ul_cqi = read_int(item, "ul_cqi", ue.ul_cqi);
      if (!ul_cqi.ok()) return ul_cqi.error();
      ue.ul_cqi = static_cast<int>(*ul_cqi);
      ue.traffic = read_string(item, "traffic", ue.traffic);
      if (ue.traffic != "full_buffer" && ue.traffic != "cbr" && ue.traffic != "none") {
        return util::Error::invalid_argument("traffic must be full_buffer | cbr | none");
      }
      auto rate = read_double(item, "rate_mbps", ue.rate_mbps);
      if (!rate.ok()) return rate.error();
      ue.rate_mbps = *rate;
      ue.ul_traffic = read_string(item, "ul_traffic", ue.ul_traffic);
      if (ue.ul_traffic != "full_buffer" && ue.ul_traffic != "cbr" && ue.ul_traffic != "none") {
        return util::Error::invalid_argument("ul_traffic must be full_buffer | cbr | none");
      }
      auto ul_rate = read_double(item, "ul_rate_mbps", ue.ul_rate_mbps);
      if (!ul_rate.ok()) return ul_rate.error();
      ue.ul_rate_mbps = *ul_rate;
      if (const auto* trace = item.find("cqi_trace"); trace != nullptr) {
        if (!trace->is_sequence()) {
          return util::Error::invalid_argument("cqi_trace must be a sequence");
        }
        for (const auto& sample : trace->items()) {
          auto v = sample.as_int();
          if (!v.ok()) return v.error();
          if (*v < 0 || *v > 15) return util::Error::invalid_argument("trace CQI in 0..15");
          ue.cqi_trace.push_back(static_cast<int>(*v));
        }
        auto trace_period = read_double(item, "cqi_trace_period_ms", ue.cqi_trace_period_ms);
        if (!trace_period.ok()) return trace_period.error();
        if (*trace_period <= 0) {
          return util::Error::invalid_argument("cqi_trace_period_ms must be > 0");
        }
        ue.cqi_trace_period_ms = *trace_period;
      }
      spec.ues.push_back(std::move(ue));
    }
  }

  const auto* faults = root.find("faults");
  if (faults != nullptr) {
    if (!faults->is_sequence()) {
      return util::Error::invalid_argument("'faults' must be a sequence");
    }
    for (const auto& item : faults->items()) {
      FaultEvent fault;
      auto at = read_double(item, "at_s", fault.at_s);
      if (!at.ok()) return at.error();
      if (*at < 0) return util::Error::invalid_argument("fault at_s must be >= 0");
      fault.at_s = *at;
      auto kind = parse_fault_kind(read_string(item, "kind", "partition"));
      if (!kind.ok()) return kind.error();
      fault.kind = *kind;
      auto enb = read_int(item, "enb", fault.enb);
      if (!enb.ok()) return enb.error();
      fault.enb = static_cast<int>(*enb);
      if (fault.enb >= 0 && static_cast<std::size_t>(fault.enb) >= spec.enbs.size()) {
        return util::Error::invalid_argument("fault references unknown enb index " +
                                             std::to_string(fault.enb));
      }
      auto duration = read_double(item, "duration_s", fault.duration_s);
      if (!duration.ok()) return duration.error();
      fault.duration_s = *duration;
      auto delay = read_double(item, "delay_ms", fault.delay_ms);
      if (!delay.ok()) return delay.error();
      fault.delay_ms = *delay;
      auto count = read_int(item, "count", fault.count);
      if (!count.ok()) return count.error();
      if (*count < 1) return util::Error::invalid_argument("fault count must be >= 1");
      fault.count = static_cast<int>(*count);
      auto fault_period = read_double(item, "period_s", fault.period_s);
      if (!fault_period.ok()) return fault_period.error();
      if (*fault_period <= 0) return util::Error::invalid_argument("period_s must be > 0");
      fault.period_s = *fault_period;
      auto fault_shard = read_int(item, "shard", fault.shard);
      if (!fault_shard.ok()) return fault_shard.error();
      if (*fault_shard >= 0 && static_cast<std::size_t>(*fault_shard) >= spec.shards) {
        return util::Error::invalid_argument("fault references unknown shard " +
                                             std::to_string(*fault_shard));
      }
      fault.shard = static_cast<int>(*fault_shard);
      if (fault.kind == FaultKind::shard_kill || fault.kind == FaultKind::shard_drain) {
        // -1 ("every shard") would orphan the whole fleet with nobody left
        // to adopt it; failover needs a survivor, so the target is explicit.
        if (fault.shard < 0) {
          return util::Error::invalid_argument(std::string(to_string(fault.kind)) +
                                               " needs an explicit shard");
        }
        if (spec.shards < 2) {
          return util::Error::invalid_argument(std::string(to_string(fault.kind)) +
                                               " needs shards >= 2");
        }
      }
      spec.faults.push_back(fault);
    }
  }
  return spec;
}

ScenarioRunSummary run_scenario(const ScenarioSpec& spec) {
  ctrl::MasterConfig master_config = per_tti_master_config(spec.stats_period_ttis);
  master_config.agent_timeout_us = sim::from_ms(spec.agent_timeout_ms);
  master_config.agent_disconnect_timeout_us = sim::from_ms(spec.agent_disconnect_timeout_ms);
  master_config.request_timeout_us = sim::from_ms(spec.request_timeout_ms);
  master_config.overload.ingest.max_messages =
      static_cast<std::uint64_t>(spec.ingest_max_messages);
  master_config.overload.ingest.max_bytes = static_cast<std::uint64_t>(spec.ingest_max_bytes);
  master_config.obs.enabled = spec.observability;
  if (spec.master_recovery) {
    master_config.recovery.enabled = true;
    master_config.recovery.resync_tokens_per_s = spec.resync_tokens_per_s;
    master_config.recovery.resync_burst = spec.resync_burst;
    master_config.recovery.resync_retry_after_ms = spec.resync_retry_after_ms;
    master_config.recovery.readiness_quorum = spec.readiness_quorum;
    master_config.recovery.readiness_timeout_us = sim::from_ms(spec.readiness_timeout_ms);
    if (spec.warm_checkpoint) {
      // An in-memory sink survives the in-place restart (the scenario's
      // "process" is the Testbed) and keeps scenario runs hermetic.
      master_config.recovery.checkpoint_sink = std::make_shared<ctrl::MemoryCheckpointSink>();
      master_config.recovery.checkpoint_period_us = sim::from_seconds(spec.checkpoint_period_s);
    }
  }
  Testbed testbed(std::move(master_config), spec.shards);
  if (spec.shard_stall_cycles > 0) {
    testbed.coordinator().set_shard_stall_cycles(spec.shard_stall_cycles);
  }
  if (spec.remote_scheduler) {
    // The centralized scheduler works one shard's agents on that shard's
    // task manager: one instance per shard, not a composite app.
    for (std::size_t i = 0; i < testbed.coordinator().shard_count(); ++i) {
      apps::RemoteSchedulerConfig config;
      config.schedule_ahead_sf = spec.schedule_ahead_sf;
      testbed.coordinator().shard(i).add_app(
          std::make_unique<apps::RemoteSchedulerApp>(config));
    }
  }

  std::map<lte::EnbId, std::size_t> enb_index;
  for (const auto& enb_spec : spec.enbs) {
    EnbSpec out;
    out.enb.enb_id = enb_spec.enb_id;
    out.enb.cells[0].cell_id = enb_spec.enb_id;
    out.agent.name = enb_spec.name;
    out.agent.dl_scheduler = spec.remote_scheduler ? "remote" : enb_spec.dl_scheduler;
    out.agent.ul_scheduler = enb_spec.ul_scheduler;
    out.agent.remote_fallback_ttis = enb_spec.remote_fallback_ttis;
    out.agent.fallback_scheduler = enb_spec.fallback_scheduler;
    if (enb_spec.shard >= 0) out.shard = static_cast<std::size_t>(enb_spec.shard);
    out.seed = spec.seed + testbed.enbs().size();
    out.uplink.delay = sim::from_ms(enb_spec.control_delay_ms);
    out.downlink.delay = sim::from_ms(enb_spec.control_delay_ms);
    if (enb_spec.control_rate_mbps > 0) {
      out.uplink.rate_bps = static_cast<std::int64_t>(enb_spec.control_rate_mbps * 1e6);
    }
    enb_index[enb_spec.enb_id] = testbed.enbs().size();
    auto& enb = testbed.add_enb(out);
    if (enb_spec.send_budget_bytes > 0) {
      net::QueueBudget budget;
      budget.max_bytes = static_cast<std::uint64_t>(enb_spec.send_budget_bytes);
      enb.agent_side->set_send_budget(budget);
    }
  }

  struct LiveUe {
    lte::EnbId enb;
    std::size_t index;
    lte::Rnti rnti;
  };
  std::vector<LiveUe> live;
  std::vector<std::unique_ptr<traffic::UdpCbrSource>> sources;
  int stagger = 2;
  for (const auto& ue_spec : spec.ues) {
    const auto index = enb_index.at(ue_spec.enb);
    stack::UeProfile profile;
    if (ue_spec.cqi_trace.empty()) {
      profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(ue_spec.cqi);
    } else {
      profile.dl_channel = std::make_unique<phy::TraceCqiChannel>(
          ue_spec.cqi_trace, sim::from_ms(ue_spec.cqi_trace_period_ms), /*loop=*/true);
    }
    profile.ul_cqi = ue_spec.ul_cqi;
    profile.attach_after_ttis = stagger++;
    const auto rnti = testbed.add_ue(index, std::move(profile));
    live.push_back({ue_spec.enb, index, rnti});

    if (ue_spec.ul_traffic == "full_buffer") {
      auto* dp = testbed.enb(index).data_plane.get();
      testbed.on_tti([dp, rnti](std::int64_t) {
        const auto* ue = dp->ue(rnti);
        if (ue != nullptr && ue->connected() && ue->ul_buffer_bytes < 30'000) {
          dp->enqueue_ul(rnti, 30'000);
        }
      });
    } else if (ue_spec.ul_traffic == "cbr") {
      auto* dp = testbed.enb(index).data_plane.get();
      sources.push_back(std::make_unique<traffic::UdpCbrSource>(
          testbed.sim(), [dp, rnti](std::uint32_t bytes) { dp->enqueue_ul(rnti, bytes); },
          ue_spec.ul_rate_mbps));
      sources.back()->start();
    }

    if (ue_spec.traffic == "full_buffer") {
      auto* dp = testbed.enb(index).data_plane.get();
      testbed.on_tti([&testbed, dp, rnti](std::int64_t) {
        const auto* ue = dp->ue(rnti);
        if (ue != nullptr && ue->dl_queue.total_bytes() < 60'000) {
          (void)testbed.epc().downlink(rnti, 60'000);
        }
      });
    } else if (ue_spec.traffic == "cbr") {
      sources.push_back(std::make_unique<traffic::UdpCbrSource>(
          testbed.sim(),
          [&testbed, rnti](std::uint32_t bytes) { (void)testbed.epc().downlink(rnti, bytes); },
          ue_spec.rate_mbps));
      sources.back()->start();
    }
  }

  FaultInjector injector(testbed);
  injector.schedule_all(spec.faults);

  // Runtime verification (docs/chaos_fuzzing.md): the monitor re-checks the
  // control plane's safety invariants after every coordinator cycle. All
  // eNodeBs exist by now, so the I6 quarantine probes can bind directly to
  // each agent's VsfGuard counter.
  std::unique_ptr<verify::InvariantMonitor> monitor;
  if (spec.invariants != "off") {
    auto mode = verify::parse_mode(spec.invariants);
    monitor = std::make_unique<verify::InvariantMonitor>(
        testbed.coordinator(), mode.ok() ? *mode : verify::Mode::log);
    for (std::size_t i = 0; i < testbed.enbs().size(); ++i) {
      const auto* guard = &testbed.enbs()[i]->agent->vsf_guard();
      monitor->add_quarantine_probe(
          "enb" + std::to_string(i),
          [guard] { return guard->quarantined_invocations(); });
    }
    monitor->install();
  }
  if (spec.defect == "stale_composite") {
    // Self-check defect: composite-cache invalidation removed. The monitor
    // must catch the resulting stale union (I3).
    testbed.coordinator().set_fault_stale_composite(true);
  }

  ScenarioRunSummary summary;
  summary.observability = spec.observability;
  if (spec.observability) {
    // All eNodeBs exist now; bridge their agent/link counters into the
    // master's registry and collect a JSON dump every metrics period. The
    // probes (and the on_tti export) only run while the testbed is alive.
    register_testbed_probes(testbed);
    const auto period_ttis =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(spec.metrics_period_s * 1000.0));
    testbed.on_tti([&testbed, &summary, period_ttis](std::int64_t tti) {
      if (tti % period_ttis == 0) {
        summary.metrics_json.push_back(
            testbed.coordinator().metrics().json(testbed.sim().now()));
      }
    });
  }

  testbed.run_seconds(spec.duration_s);

  if (spec.observability) {
    summary.metrics_json.push_back(testbed.coordinator().metrics().json(testbed.sim().now()));
    summary.metrics_prometheus = testbed.coordinator().metrics().prometheus_text();
    summary.metrics_block = format_metrics_block(testbed);
  }
  summary.duration_s = spec.duration_s;
  for (const auto& ue : live) {
    UeRunResult result;
    result.enb = ue.enb;
    result.rnti = ue.rnti;
    const auto* context = testbed.enb(ue.index).data_plane->ue(ue.rnti);
    result.connected = context != nullptr && context->connected();
    result.cqi = context != nullptr ? context->reported_cqi : 0;
    result.dl_mbps = Metrics::mbps(
        testbed.metrics().total_bytes(ue.enb, ue.rnti, lte::Direction::downlink),
        spec.duration_s);
    result.ul_mbps = Metrics::mbps(
        testbed.metrics().total_bytes(ue.enb, ue.rnti, lte::Direction::uplink),
        spec.duration_s);
    summary.ues.push_back(result);
  }
  summary.master_cycles = testbed.coordinator().cycles_run();
  summary.rib_updates = testbed.coordinator().updates_applied();
  std::uint64_t up_bytes = 0;
  std::uint64_t down_bytes = 0;
  for (auto& enb : testbed.enbs()) {
    up_bytes += enb->agent->tx_accounting().total_bytes();
    down_bytes += testbed.coordinator().tx_accounting(enb->agent_id).total_bytes();
  }
  summary.uplink_signaling_mbps = Metrics::mbps(up_bytes, spec.duration_s);
  summary.downlink_signaling_mbps = Metrics::mbps(down_bytes, spec.duration_s);
  summary.faults_injected = injector.faults_injected();
  summary.requests_retried = testbed.coordinator().requests_retried();
  summary.requests_failed = testbed.coordinator().requests_failed();
  summary.fenced_updates = testbed.coordinator().fenced_updates();
  for (auto& enb : testbed.enbs()) {
    ++summary.agents_total;
    const auto* node = testbed.coordinator().find_agent(enb->agent_id);
    if (node != nullptr) {
      summary.agent_reconnects += node->reconnects;
      if (node->state == ctrl::SessionState::up) ++summary.agents_up;
    }
  }
  summary.policy_rollbacks = testbed.coordinator().policy_rollbacks();
  for (auto& enb : testbed.enbs()) {
    const auto& guard = enb->agent->vsf_guard();
    summary.vsf_failures += guard.vsf_failures();
    summary.vsf_quarantines += guard.quarantines();
    summary.vsf_fallback_decisions += guard.fallback_decisions();
    summary.unscheduled_slots += guard.unscheduled_slots();
    const std::string impl = enb->agent->mac().active_implementation(
        agent::MacControlModule::kDlSchedulerSlot);
    if (!impl.empty() &&
        !enb->agent->vsf_cache().is_quarantined(agent::MacControlModule::kName,
                                                agent::MacControlModule::kDlSchedulerSlot,
                                                impl)) {
      ++summary.agents_on_valid_policy;
    }
  }
  summary.overload_state = testbed.coordinator().overload_state();
  summary.overload_transitions = testbed.coordinator().overload_transitions();
  summary.ingest_shed = testbed.coordinator().ingest_shed();
  summary.ingest_coalesced = testbed.coordinator().ingest_coalesced();
  summary.ingest_peak_messages = testbed.coordinator().pending_peak_messages();
  summary.ingest_peak_bytes = testbed.coordinator().pending_peak_bytes();
  summary.throttle_renegotiations = testbed.coordinator().throttle_renegotiations();
  summary.updater_saturations = testbed.coordinator().updater_saturations();
  summary.master_restarts = testbed.coordinator().master_restarts();
  summary.resyncs_paced = testbed.coordinator().resyncs_paced();
  summary.commands_held = testbed.coordinator().commands_held();
  summary.checkpoints_saved = testbed.coordinator().checkpoints_saved();
  summary.policies_repushed = testbed.coordinator().policies_repushed();
  summary.recovering_at_end = testbed.coordinator().any_recovering();
  summary.time_to_ready_ms = sim::to_seconds(testbed.coordinator().last_recovery_duration()) * 1e3;
  for (auto& enb : testbed.enbs()) {
    summary.fenced_incarnation_messages += enb->agent->fenced_incarnation_messages();
  }
  for (auto& enb : testbed.enbs()) {
    ScenarioRunSummary::LinkStats link;
    link.uplink_tx = enb->agent_side->messages_sent();
    link.uplink_rx = enb->master_side->messages_received();
    link.uplink_dropped = enb->agent_side->frames_dropped();
    link.uplink_shed = enb->agent_side->frames_shed();
    link.downlink_tx = enb->master_side->messages_sent();
    link.downlink_rx = enb->agent_side->messages_received();
    link.downlink_dropped = enb->master_side->frames_dropped();
    link.downlink_shed = enb->master_side->frames_shed();
    summary.links.push_back(link);
  }
  summary.shards = testbed.coordinator().shard_count();
  if (summary.shards > 1) {
    for (std::size_t i = 0; i < summary.shards; ++i) {
      const auto& core = testbed.coordinator().shard(i);
      ScenarioRunSummary::ShardSummary shard;
      shard.agents = core.rib().agents().size();
      shard.rib_updates = core.updates_applied();
      shard.ingest_shed = core.ingest_shed();
      shard.master_restarts = core.master_restarts();
      shard.overload_state = core.overload_state();
      shard.recovering = core.recovering();
      shard.health = testbed.coordinator().shard_health(i);
      summary.shard_summaries.push_back(shard);
    }
  }
  const auto& coordinator = testbed.coordinator();
  summary.shards_failed = coordinator.shards_failed();
  summary.agents_adopted = coordinator.agents_adopted();
  summary.warm_adoptions = coordinator.warm_adoptions();
  summary.cold_adoptions = coordinator.cold_adoptions();
  summary.agents_drained = coordinator.agents_drained();
  summary.agents_orphaned = coordinator.agents_orphaned();
  summary.failover_pending = coordinator.failover_pending();
  summary.orphan_window_ms = sim::to_seconds(coordinator.last_orphan_window()) * 1e3;
  summary.failover_duration_ms = sim::to_seconds(coordinator.last_failover_duration()) * 1e3;
  if (monitor != nullptr) {
    summary.invariant_checks = monitor->checks_run();
    summary.invariant_violations = monitor->violations_total();
    summary.invariant_details = monitor->violation_summaries(8);
  }
  return summary;
}

std::string format_summary(const ScenarioRunSummary& summary) {
  std::string out = util::format("%-6s %-8s %-10s %6s %12s %12s\n", "enb", "rnti", "state",
                                 "CQI", "DL (Mb/s)", "UL (Mb/s)");
  for (const auto& ue : summary.ues) {
    out += util::format("%-6u %-8u %-10s %6d %12.2f %12.2f\n", ue.enb, ue.rnti,
                        ue.connected ? "connected" : "DETACHED", ue.cqi, ue.dl_mbps, ue.ul_mbps);
  }
  out += util::format(
      "\nmaster: %lld cycles, %llu RIB updates; signaling up %.3f Mb/s / down %.3f Mb/s "
      "over %.1f s\n",
      static_cast<long long>(summary.master_cycles),
      static_cast<unsigned long long>(summary.rib_updates), summary.uplink_signaling_mbps,
      summary.downlink_signaling_mbps, summary.duration_s);
  if (summary.faults_injected > 0) {
    out += util::format(
        "chaos: %llu faults, %u agent reconnects, %llu retries, %llu failed requests, "
        "%llu fenced updates; %d/%d agents re-synced\n",
        static_cast<unsigned long long>(summary.faults_injected), summary.agent_reconnects,
        static_cast<unsigned long long>(summary.requests_retried),
        static_cast<unsigned long long>(summary.requests_failed),
        static_cast<unsigned long long>(summary.fenced_updates), summary.agents_up,
        summary.agents_total);
  }
  if (summary.vsf_failures > 0 || summary.vsf_quarantines > 0 || summary.policy_rollbacks > 0) {
    out += util::format(
        "containment: %llu VSF failures, %llu quarantines, %llu fallback decisions, "
        "%llu rollbacks, %llu unscheduled TTIs; %d/%d agents on valid policy\n",
        static_cast<unsigned long long>(summary.vsf_failures),
        static_cast<unsigned long long>(summary.vsf_quarantines),
        static_cast<unsigned long long>(summary.vsf_fallback_decisions),
        static_cast<unsigned long long>(summary.policy_rollbacks),
        static_cast<unsigned long long>(summary.unscheduled_slots),
        summary.agents_on_valid_policy, summary.agents_total);
  }
  if (summary.overload_transitions > 0 || summary.ingest_shed > 0 ||
      summary.ingest_coalesced > 0) {
    out += util::format(
        "overload: state=%s, %llu transitions; ingest shed %llu / coalesced %llu, "
        "peak queue %llu msgs / %llu bytes; %llu throttle renegotiations, "
        "%llu saturated updater cycles\n",
        ctrl::to_string(summary.overload_state),
        static_cast<unsigned long long>(summary.overload_transitions),
        static_cast<unsigned long long>(summary.ingest_shed),
        static_cast<unsigned long long>(summary.ingest_coalesced),
        static_cast<unsigned long long>(summary.ingest_peak_messages),
        static_cast<unsigned long long>(summary.ingest_peak_bytes),
        static_cast<unsigned long long>(summary.throttle_renegotiations),
        static_cast<unsigned long long>(summary.updater_saturations));
  }
  if (summary.master_restarts > 0) {
    out += util::format(
        "recovery: %llu master restarts, ready in %.1f ms (%s); %llu paced re-syncs, "
        "%llu commands held, %llu incarnation-fenced messages, %llu checkpoints, "
        "%llu policies re-pushed\n",
        static_cast<unsigned long long>(summary.master_restarts), summary.time_to_ready_ms,
        summary.recovering_at_end ? "STILL RECOVERING" : "recovered",
        static_cast<unsigned long long>(summary.resyncs_paced),
        static_cast<unsigned long long>(summary.commands_held),
        static_cast<unsigned long long>(summary.fenced_incarnation_messages),
        static_cast<unsigned long long>(summary.checkpoints_saved),
        static_cast<unsigned long long>(summary.policies_repushed));
  }
  if (summary.shards_failed > 0 || summary.agents_drained > 0) {
    out += util::format(
        "failover: %llu shards failed, %llu adopted (%llu warm / %llu cold), "
        "%llu drained, %zu orphaned, %zu still pending; orphan window %.1f ms, "
        "adopted up in %.1f ms\n",
        static_cast<unsigned long long>(summary.shards_failed),
        static_cast<unsigned long long>(summary.agents_adopted),
        static_cast<unsigned long long>(summary.warm_adoptions),
        static_cast<unsigned long long>(summary.cold_adoptions),
        static_cast<unsigned long long>(summary.agents_drained), summary.agents_orphaned,
        summary.failover_pending, summary.orphan_window_ms, summary.failover_duration_ms);
  }
  if (summary.invariant_checks > 0) {
    out += util::format("invariants: %llu checks, %llu violations%s\n",
                        static_cast<unsigned long long>(summary.invariant_checks),
                        static_cast<unsigned long long>(summary.invariant_violations),
                        summary.invariant_violations == 0 ? " (clean)" : "");
    for (const auto& detail : summary.invariant_details) {
      out += "  ! " + detail + "\n";
    }
  }
  for (std::size_t i = 0; i < summary.shard_summaries.size(); ++i) {
    const auto& shard = summary.shard_summaries[i];
    const bool alive = shard.health == ctrl::Coordinator::ShardHealth::alive;
    out += util::format(
        "shard %zu: %zu agents, %llu RIB updates, %llu shed, %llu restarts, state=%s%s%s\n", i,
        shard.agents, static_cast<unsigned long long>(shard.rib_updates),
        static_cast<unsigned long long>(shard.ingest_shed),
        static_cast<unsigned long long>(shard.master_restarts),
        ctrl::to_string(shard.overload_state), shard.recovering ? " (RECOVERING)" : "",
        alive ? "" : util::format(" [%s]", ctrl::to_string(shard.health)).c_str());
  }
  for (std::size_t i = 0; i < summary.links.size(); ++i) {
    const auto& link = summary.links[i];
    out += util::format(
        "link %zu: up tx %llu rx %llu dropped %llu shed %llu | "
        "down tx %llu rx %llu dropped %llu shed %llu\n",
        i, static_cast<unsigned long long>(link.uplink_tx),
        static_cast<unsigned long long>(link.uplink_rx),
        static_cast<unsigned long long>(link.uplink_dropped),
        static_cast<unsigned long long>(link.uplink_shed),
        static_cast<unsigned long long>(link.downlink_tx),
        static_cast<unsigned long long>(link.downlink_rx),
        static_cast<unsigned long long>(link.downlink_dropped),
        static_cast<unsigned long long>(link.downlink_shed));
  }
  if (!summary.metrics_block.empty()) out += summary.metrics_block;
  return out;
}

std::string scenario_to_yaml(const ScenarioSpec& spec) {
  // Every scalar is emitted unconditionally (the parser accepts defaults
  // back), except fields whose empty/unset form has no YAML spelling.
  // %.3f quantizes times to 1 ms / rates to 1 kb/s -- the fuzzer only
  // generates values on that grid, so parse(emit(spec)) is exact.
  std::string out;
  out += util::format("duration_s: %.3f\n", spec.duration_s);
  out += util::format("stats_period_ttis: %u\n", spec.stats_period_ttis);
  out += util::format("seed: %llu\n", static_cast<unsigned long long>(spec.seed));
  out += util::format("shards: %zu\n", spec.shards);
  out += util::format("shard_stall_cycles: %lld\n",
                      static_cast<long long>(spec.shard_stall_cycles));
  out += util::format("remote_scheduler: %s\n", spec.remote_scheduler ? "true" : "false");
  out += util::format("schedule_ahead_sf: %d\n", spec.schedule_ahead_sf);
  out += util::format("agent_timeout_ms: %.3f\n", spec.agent_timeout_ms);
  out += util::format("agent_disconnect_timeout_ms: %.3f\n",
                      spec.agent_disconnect_timeout_ms);
  out += util::format("request_timeout_ms: %.3f\n", spec.request_timeout_ms);
  out += util::format("ingest_max_messages: %lld\n",
                      static_cast<long long>(spec.ingest_max_messages));
  out += util::format("ingest_max_bytes: %lld\n",
                      static_cast<long long>(spec.ingest_max_bytes));
  out += util::format("observability: %s\n", spec.observability ? "true" : "false");
  out += util::format("metrics_period_s: %.3f\n", spec.metrics_period_s);
  out += util::format("master_recovery: %s\n", spec.master_recovery ? "true" : "false");
  out += util::format("resync_tokens_per_s: %.3f\n", spec.resync_tokens_per_s);
  out += util::format("resync_burst: %.3f\n", spec.resync_burst);
  out += util::format("resync_retry_after_ms: %.3f\n", spec.resync_retry_after_ms);
  out += util::format("readiness_quorum: %.3f\n", spec.readiness_quorum);
  out += util::format("readiness_timeout_ms: %.3f\n", spec.readiness_timeout_ms);
  out += util::format("warm_checkpoint: %s\n", spec.warm_checkpoint ? "true" : "false");
  out += util::format("checkpoint_period_s: %.3f\n", spec.checkpoint_period_s);
  out += util::format("invariants: %s\n", spec.invariants.c_str());
  if (!spec.defect.empty()) out += util::format("defect: %s\n", spec.defect.c_str());
  out += "enbs:\n";
  for (const auto& enb : spec.enbs) {
    out += util::format("  - enb_id: %u\n", static_cast<unsigned>(enb.enb_id));
    out += util::format("    name: %s\n", enb.name.c_str());
    if (enb.shard >= 0) out += util::format("    shard: %lld\n",
                                            static_cast<long long>(enb.shard));
    out += util::format("    dl_scheduler: %s\n", enb.dl_scheduler.c_str());
    out += util::format("    ul_scheduler: %s\n", enb.ul_scheduler.c_str());
    out += util::format("    control_delay_ms: %.3f\n", enb.control_delay_ms);
    out += util::format("    remote_fallback_ttis: %lld\n",
                        static_cast<long long>(enb.remote_fallback_ttis));
    out += util::format("    fallback_scheduler: %s\n", enb.fallback_scheduler.c_str());
    out += util::format("    control_rate_mbps: %.3f\n", enb.control_rate_mbps);
    out += util::format("    send_budget_bytes: %lld\n",
                        static_cast<long long>(enb.send_budget_bytes));
  }
  if (!spec.ues.empty()) {
    out += "ues:\n";
    for (const auto& ue : spec.ues) {
      out += util::format("  - enb: %u\n", static_cast<unsigned>(ue.enb));
      out += util::format("    cqi: %d\n", ue.cqi);
      out += util::format("    ul_cqi: %d\n", ue.ul_cqi);
      out += util::format("    traffic: %s\n", ue.traffic.c_str());
      out += util::format("    rate_mbps: %.3f\n", ue.rate_mbps);
      out += util::format("    ul_traffic: %s\n", ue.ul_traffic.c_str());
      out += util::format("    ul_rate_mbps: %.3f\n", ue.ul_rate_mbps);
      if (!ue.cqi_trace.empty()) {
        out += "    cqi_trace:\n";
        for (int sample : ue.cqi_trace) out += util::format("      - %d\n", sample);
        out += util::format("    cqi_trace_period_ms: %.3f\n", ue.cqi_trace_period_ms);
      }
    }
  }
  if (!spec.faults.empty()) {
    out += "faults:\n";
    for (const auto& fault : spec.faults) {
      out += util::format("  - at_s: %.3f\n", fault.at_s);
      out += util::format("    kind: %s\n", to_string(fault.kind));
      out += util::format("    enb: %d\n", fault.enb);
      out += util::format("    duration_s: %.3f\n", fault.duration_s);
      out += util::format("    delay_ms: %.3f\n", fault.delay_ms);
      out += util::format("    count: %d\n", fault.count);
      out += util::format("    period_s: %.3f\n", fault.period_s);
      out += util::format("    shard: %d\n", fault.shard);
    }
  }
  return out;
}

}  // namespace flexran::scenario
