// The paper's Sec. 6.1 HetNet interference experiment, reusable by tests
// and the Fig. 10 bench: one macro cell (3 UEs, saturated) and one small
// cell (1 UE, lightly loaded) sharing a carrier in the interference
// environment, run under one of the three coordination modes.
#pragma once

#include "apps/eicic.h"

namespace flexran::scenario {

struct EicicScenarioConfig {
  apps::EicicMode mode = apps::EicicMode::optimized;
  double warmup_s = 1.0;
  double measure_s = 5.0;
  /// Offered load toward the small-cell UE; keep it below the ABS capacity
  /// so idle ABSs exist for the optimized mode to reclaim.
  double small_cell_offered_mbps = 2.0;
  int abs_per_frame = 4;
  std::uint64_t seed = 1;
};

struct EicicScenarioResult {
  double network_mbps = 0.0;
  double macro_mbps = 0.0;
  double small_mbps = 0.0;
};

EicicScenarioResult run_eicic_scenario(const EicicScenarioConfig& config);

}  // namespace flexran::scenario
