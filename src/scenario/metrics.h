// Experiment metrics: per-UE / per-direction delivered-byte counters with
// optional windowed throughput time series (the raw material of Figs. 6b,
// 9, 10, 11, 12).
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "lte/types.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace flexran::scenario {

class Metrics {
 public:
  using Key = std::tuple<lte::EnbId, lte::Rnti, lte::Direction>;

  /// Credits delivered application bytes.
  void record(lte::EnbId enb, lte::Rnti rnti, lte::Direction direction, std::uint32_t bytes);

  /// Closes the current window at `now` and appends per-key Mb/s points to
  /// the time series. Call at a fixed period.
  void sample_window(sim::TimeUs now);

  std::uint64_t total_bytes(lte::EnbId enb, lte::Rnti rnti, lte::Direction direction) const;
  std::uint64_t total_bytes_enb(lte::EnbId enb, lte::Direction direction) const;
  std::uint64_t total_bytes_all(lte::Direction direction) const;

  /// Mean throughput over [from, to] in Mb/s from the cumulative counters
  /// sampled against wall (simulated) time; requires bytes recorded in that
  /// span -- usually computed by the caller from totals. Convenience:
  static double mbps(std::uint64_t bytes, double seconds) {
    return seconds > 0 ? static_cast<double>(bytes) * 8.0 / seconds / 1e6 : 0.0;
  }

  /// Windowed Mb/s series for one key (empty if sampling never ran).
  const util::TimeSeries* series(lte::EnbId enb, lte::Rnti rnti, lte::Direction direction) const;
  const std::map<Key, util::TimeSeries>& all_series() const { return series_; }

  void reset();

 private:
  std::map<Key, std::uint64_t> totals_;
  std::map<Key, std::uint64_t> window_bytes_;
  std::map<Key, util::TimeSeries> series_;
  sim::TimeUs window_start_ = 0;
};

}  // namespace flexran::scenario
