// Testbed: the paper's experimental setup in a box. Wires a master
// controller to N agent-enabled eNodeBs over configurable control links
// inside one discrete-event simulation, with a shared radio environment,
// an EPC stub, and metrics. Every test, example and benchmark builds on
// this.
//
// Per-TTI ordering (TtiTicker priorities):
//   10+i  eNodeB i subframe_begin  (HARQ feedback, attach FSM, CQI
//         sampling, agent VSFs run, decisions applied)
//   500   master task-manager cycle (real-time mode)
//   800+i eNodeB i subframe_end    (channel stamping, PF averages)
//   900   metrics window sampling + per-TTI user hooks
// Control messages sent during a tick are delivered in separate simulator
// events (>= link latency later), so even a zero-latency channel gives the
// one-TTI pipeline a real deployment has.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "agent/agent.h"
#include "controller/coordinator.h"
#include "controller/master.h"
#include "net/sim_transport.h"
#include "phy/radio_env.h"
#include "scenario/metrics.h"
#include "sim/simulator.h"
#include "stack/enodeb.h"
#include "stack/epc.h"

namespace flexran::scenario {

struct EnbSpec {
  lte::EnbConfig enb;
  agent::AgentConfig agent;
  /// Agent -> master link.
  sim::LinkConfig uplink;
  /// Master -> agent link.
  sim::LinkConfig downlink;
  /// Attach the cell to the shared interference environment.
  bool use_radio_env = false;
  std::uint64_t seed = 1;
  /// Pin the agent to this shard instead of hash placement
  /// (docs/sharded_control.md). Ignored on a single-shard testbed.
  std::optional<std::size_t> shard;
};

class Testbed {
 public:
  struct Enb {
    std::unique_ptr<stack::EnodebDataPlane> data_plane;
    std::unique_ptr<agent::Agent> agent;
    net::SimTransport* master_side = nullptr;  // owned by transports below
    net::SimTransport* agent_side = nullptr;
    ctrl::AgentId agent_id = 0;
    net::SimTransportPair transports;

    /// Runtime latency control, both directions (netem equivalent).
    void set_control_latency(sim::TimeUs one_way) {
      master_side->set_delay(one_way);
      agent_side->set_delay(one_way);
    }
    /// Partitions (or heals) the control channel in both directions.
    void set_control_down(bool down) {
      master_side->set_down(down);
      agent_side->set_down(down);
    }
    /// Simulates an agent process crash: the session ends and all
    /// session-scoped agent state is lost. Nothing reconnects until
    /// restart_agent().
    void crash_agent() { agent->disconnect(); }
    /// Restarts a crashed agent: reconnects through the reconnect provider
    /// (new session epoch), backing off while the channel is partitioned.
    void restart_agent() { agent->schedule_reconnect(); }
  };

  /// `shards` > 1 builds a two-tier control plane (docs/sharded_control.md):
  /// `master_config` becomes the per-shard template and agents are placed
  /// by a stable hash of their enb_id (or an EnbSpec::shard pin). The
  /// default single shard is exactly the classic monolithic master.
  explicit Testbed(ctrl::MasterConfig master_config = {}, std::size_t shards = 1);

  Enb& add_enb(EnbSpec spec);

  sim::Simulator& sim() { return sim_; }
  /// Shard 0's core -- with the default single shard, *the* master.
  /// Single-shard tests/examples keep reading the control plane here;
  /// multi-shard code goes through coordinator().
  ctrl::MasterController& master() { return coordinator_.shard(0); }
  ctrl::Coordinator& coordinator() { return coordinator_; }
  const ctrl::Coordinator& coordinator() const { return coordinator_; }
  phy::RadioEnvironment& radio_env() { return env_; }
  stack::EpcStub& epc() { return epc_; }
  Metrics& metrics() { return metrics_; }
  std::vector<std::unique_ptr<Enb>>& enbs() { return enbs_; }
  Enb& enb(std::size_t index) { return *enbs_.at(index); }

  /// Registers a per-TTI hook (runs at priority 900, after everything).
  void on_tti(std::function<void(std::int64_t)> fn) { tti_hooks_.push_back(std::move(fn)); }

  /// Adds a delivery listener for eNodeB `enb_index` (metrics always get the
  /// bytes too). Used by traffic models needing per-UE feedback (TCP, DASH).
  void add_delivery_listener(std::size_t enb_index, stack::EnodebDataPlane::DeliveryFn fn) {
    delivery_listeners_.at(enb_index).push_back(std::move(fn));
  }
  /// Throughput window length for metrics time series.
  void set_metrics_window(sim::TimeUs window) { metrics_window_ = window; }

  /// Convenience UE creation: adds the UE to eNodeB `enb_index`, registers
  /// its EPC bearer under UE id == returned RNTI, and wires delivery into
  /// the metrics. The testbed assigns RNTIs that are unique across ALL its
  /// eNodeBs (real RNTIs are only cell-unique; global uniqueness keeps the
  /// EPC bearer keys and metrics unambiguous). Returns the RNTI.
  lte::Rnti add_ue(std::size_t enb_index, stack::UeProfile profile);

  /// Enables X2-equivalent handover orchestration: when any agent executes
  /// a handover, the detached UE context is re-established at the eNodeB
  /// owning the target cell (fresh RNTI), and the EPC bearer path is
  /// switched. Applies to eNodeBs added before and after the call.
  void enable_x2();
  /// Where a UE (identified by its stable UE id, the RNTI add_ue returned)
  /// currently lives. nullopt if released.
  struct UeLocation {
    std::size_t enb_index = 0;
    lte::Rnti rnti = lte::kInvalidRnti;
  };
  std::optional<UeLocation> locate_ue(lte::Rnti ue_id) const;
  /// Delivered bytes for a UE id across all cells it visited.
  std::uint64_t ue_total_bytes(lte::Rnti ue_id, lte::Direction direction) const;

  void run_ttis(int ttis);
  void run_seconds(double seconds) { run_ttis(static_cast<int>(seconds * 1000.0)); }
  std::int64_t current_tti() const { return sim_.current_tti(); }

 private:
  void start_ticker();
  void install_x2_sink(std::size_t enb_index);
  void perform_x2(std::size_t source_index, stack::UeProfile context, lte::CellId target,
                  lte::Rnti old_rnti);

  sim::Simulator sim_;
  sim::TtiTicker ticker_;
  phy::RadioEnvironment env_;
  ctrl::Coordinator coordinator_;
  stack::EpcStub epc_;
  Metrics metrics_;
  std::vector<std::unique_ptr<Enb>> enbs_;
  std::vector<std::vector<stack::EnodebDataPlane::DeliveryFn>> delivery_listeners_;
  std::vector<std::function<void(std::int64_t)>> tti_hooks_;
  sim::TimeUs metrics_window_ = sim::from_seconds(1.0);
  sim::TimeUs last_metrics_sample_ = 0;
  bool ticker_started_ = false;
  lte::Rnti next_rnti_ = 70;
  bool x2_enabled_ = false;
  /// Stable UE identity across handovers: current RNTI -> UE id, and the
  /// inverse whereabouts index.
  std::map<std::pair<std::size_t, lte::Rnti>, lte::Rnti> rnti_to_ue_;
  std::map<lte::Rnti, UeLocation> whereabouts_;
  std::map<std::pair<lte::Rnti, lte::Direction>, std::uint64_t> ue_bytes_;
};

/// Master configuration used by most experiments: per-TTI full statistics
/// reporting and subframe-level sync, i.e. the paper's worst-case signaling
/// configuration (Sec. 5.2.1).
ctrl::MasterConfig per_tti_master_config(std::uint32_t stats_period_ttis = 1);

}  // namespace flexran::scenario
