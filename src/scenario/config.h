// Declarative scenario descriptions: a YAML document specifying the
// master, eNodeBs, UEs, traffic and applications, parsed and executed
// against the testbed. This is the surface the `flexran_sim` CLI exposes;
// it reuses the same YAML-lite dialect as policy reconfiguration messages.
//
// Example:
//   duration_s: 5
//   stats_period_ttis: 1
//   remote_scheduler: false
//   enbs:
//     - enb_id: 1
//       name: macro
//       dl_scheduler: local_rr
//       control_delay_ms: 0
//   ues:
//     - enb: 1
//       cqi: 15
//       traffic: full_buffer     # full_buffer | cbr | none
//       rate_mbps: 5             # cbr only
#pragma once

#include <string>
#include <vector>

#include "scenario/fault_injector.h"
#include "scenario/testbed.h"

namespace flexran::scenario {

struct ScenarioEnbSpec {
  lte::EnbId enb_id = 1;
  std::string name = "enb";
  /// Pin this eNodeB's agent to an explicit shard (docs/sharded_control.md);
  /// -1 = stable-hash placement. Only meaningful with `shards` > 1.
  long long shard = -1;
  std::string dl_scheduler = "local_rr";
  std::string ul_scheduler = "local_rr";
  double control_delay_ms = 0.0;
  /// Agent autonomy under faults: fall back to a local DL scheduler when
  /// the master has been silent this many TTIs (0 = off).
  long long remote_fallback_ttis = 0;
  std::string fallback_scheduler = "local_rr";
  // ---- overload protection (docs/overload_protection.md) --------------------
  /// Agent -> master control-link serialization rate, Mb/s (0 = infinite).
  /// A finite rate makes report storms queue behind the serializer, which
  /// is what the agent-side send budget sheds against.
  double control_rate_mbps = 0.0;
  /// Agent-side send budget in bytes of link backlog: sheddable traffic
  /// (periodic stats, sync) beyond this is dropped at the transport rather
  /// than queued behind the serializer (0 = unbounded).
  long long send_budget_bytes = 0;
};

struct ScenarioUeSpec {
  lte::EnbId enb = 1;
  int cqi = 15;
  int ul_cqi = 8;
  std::string traffic = "full_buffer";
  double rate_mbps = 1.0;
  /// Uplink application traffic: "none" | "full_buffer" | "cbr".
  std::string ul_traffic = "none";
  double ul_rate_mbps = 1.0;
  /// Optional CQI trace (one sample per `cqi_trace_period_ms`); overrides
  /// the fixed `cqi` when non-empty.
  std::vector<int> cqi_trace;
  double cqi_trace_period_ms = 1000.0;
};

struct ScenarioSpec {
  double duration_s = 5.0;
  std::uint32_t stats_period_ttis = 1;
  /// Base RNG seed: eNodeB i runs with seed `seed + i`. The CLI's
  /// `--seed=N` overrides it, so chaos soaks can sweep seeds without
  /// editing the document.
  std::uint64_t seed = 1;
  // ---- two-tier control plane (docs/sharded_control.md) ---------------------
  /// ShardCore count under the Coordinator. 1 (default) is the classic
  /// monolithic master; > 1 places agents by stable hash of their enb_id
  /// (or a per-eNodeB `shard:` pin) and the summary grows per-shard lines.
  std::size_t shards = 1;
  /// Dead-shard watchdog (docs/sharded_control.md "Shard failover"): fail
  /// a shard that completes no cycle for this many coordinator cycles
  /// while owning agents (0 = off; throwing shards always fail fast).
  long long shard_stall_cycles = 0;
  /// Run the centralized scheduler app at the master (one instance per
  /// shard when sharded -- the scheduler is a per-shard, not a composite,
  /// app).
  bool remote_scheduler = false;
  int schedule_ahead_sf = 2;
  // ---- fault tolerance (docs/fault_tolerance.md) ----------------------------
  /// Master: mark agents stale / down after this much silence (0 = never).
  double agent_timeout_ms = 0.0;
  double agent_disconnect_timeout_ms = 0.0;
  /// Master: track requests and retry after this timeout (0 = off).
  double request_timeout_ms = 0.0;
  // ---- overload protection (docs/overload_protection.md) --------------------
  /// Master ingest budget for the bounded control-plane queue: messages /
  /// bytes of pending RIB updates. 0/0 = unbounded, overload machinery off.
  long long ingest_max_messages = 0;
  long long ingest_max_bytes = 0;
  // ---- observability (docs/observability.md) --------------------------------
  /// Enable the unified metrics layer: master registry + probes, cycle
  /// tracing, Envelope timestamp echo, periodic JSON dumps. Off (default)
  /// is seed-identical.
  bool observability = false;
  /// Period of the JSON metrics dumps collected during the run.
  double metrics_period_s = 1.0;
  // ---- master crash recovery (docs/fault_tolerance.md "Master restart") -----
  /// Enable incarnation epochs, paced re-sync admission and the app
  /// readiness barrier. Off (default) is seed-identical on the wire.
  bool master_recovery = false;
  /// Re-sync admission rate (agents/s) after a master restart; 0 = unpaced.
  double resync_tokens_per_s = 0.0;
  /// Token-bucket burst: agents admitted back-to-back before pacing bites.
  double resync_burst = 4.0;
  /// Backoff hint piggybacked to deferred agents while they wait.
  double resync_retry_after_ms = 50.0;
  /// Recovery ends when this fraction of known agents has re-synced ...
  double readiness_quorum = 1.0;
  /// ... or after this long, whichever comes first (0 = quorum only).
  double readiness_timeout_ms = 2000.0;
  /// Keep a warm checkpoint (in-memory sink) so a restart recovers via a
  /// delta re-sync instead of full config re-fetch.
  bool warm_checkpoint = false;
  /// Checkpoint period; only meaningful with warm_checkpoint.
  double checkpoint_period_s = 0.5;
  // ---- runtime verification (docs/chaos_fuzzing.md) -------------------------
  /// InvariantMonitor mode for the run: "off" (default; seed-identical),
  /// "log" (count + record violations in the summary -- the fuzzer's mode,
  /// so schedules can be minimized) or "trap" (abort with a cycle trace on
  /// the first violation -- what ctest scenarios and chaos soaks use).
  std::string invariants = "off";
  /// Deliberately re-introduced defect for monitor/fuzzer self-checks:
  /// "" (none) or "stale_composite" (composite-cache invalidation removed;
  /// the monitor must catch it). See docs/chaos_fuzzing.md.
  std::string defect;
  /// Scripted chaos timeline, executed by a FaultInjector during the run.
  std::vector<FaultEvent> faults;
  std::vector<ScenarioEnbSpec> enbs;
  std::vector<ScenarioUeSpec> ues;
};

/// Parses a scenario document; rejects unknown traffic kinds, missing
/// eNodeB references, and malformed values.
util::Result<ScenarioSpec> parse_scenario(const std::string& yaml);

struct UeRunResult {
  lte::EnbId enb = 0;
  lte::Rnti rnti = lte::kInvalidRnti;
  bool connected = false;
  int cqi = 0;
  double dl_mbps = 0.0;
  double ul_mbps = 0.0;
};

struct ScenarioRunSummary {
  std::vector<UeRunResult> ues;
  double duration_s = 0.0;
  std::int64_t master_cycles = 0;
  std::uint64_t rib_updates = 0;
  /// Aggregate agent->master / master->agent signaling, Mb/s.
  double uplink_signaling_mbps = 0.0;
  double downlink_signaling_mbps = 0.0;
  // ---- fault-tolerance outcome (non-zero only for chaos scenarios) ----------
  std::uint64_t faults_injected = 0;
  std::uint32_t agent_reconnects = 0;
  std::uint64_t requests_retried = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t fenced_updates = 0;
  /// Agents whose session is fully re-synced (state up) at the end.
  int agents_up = 0;
  int agents_total = 0;
  // ---- delegated-control containment (docs/delegation_safety.md) ------------
  std::uint64_t vsf_failures = 0;
  std::uint64_t vsf_quarantines = 0;
  std::uint64_t vsf_fallback_decisions = 0;
  /// TTIs where neither the active VSF nor the fallback produced a valid
  /// decision. The containment invariant is that this stays 0.
  std::uint64_t unscheduled_slots = 0;
  std::uint64_t policy_rollbacks = 0;
  /// Agents whose active DL scheduler is a non-quarantined implementation
  /// at the end of the run (should equal agents_total).
  int agents_on_valid_policy = 0;
  // ---- overload protection outcome (docs/overload_protection.md) ------------
  /// Master overload state at the end of the run (should be normal again
  /// once a flood clears) and how often the state machine moved.
  ctrl::OverloadState overload_state = ctrl::OverloadState::normal;
  std::uint64_t overload_transitions = 0;
  /// Bounded-ingest accounting: messages shed / coalesced at admission,
  /// and the peak queue footprint (the "bounded memory" invariant).
  std::uint64_t ingest_shed = 0;
  std::uint64_t ingest_coalesced = 0;
  std::uint64_t ingest_peak_messages = 0;
  std::uint64_t ingest_peak_bytes = 0;
  std::uint64_t throttle_renegotiations = 0;
  std::uint64_t updater_saturations = 0;
  // ---- master crash recovery outcome (docs/fault_tolerance.md) --------------
  std::uint64_t master_restarts = 0;
  std::uint64_t resyncs_paced = 0;
  std::uint64_t commands_held = 0;
  /// Agent-side fence: messages from a stale master incarnation dropped.
  std::uint64_t fenced_incarnation_messages = 0;
  std::uint64_t checkpoints_saved = 0;
  std::uint64_t policies_repushed = 0;
  /// True when the run ended with recovery still in progress (bad).
  bool recovering_at_end = false;
  /// Crash-to-readiness-barrier time of the last recovery, ms (0 = none).
  double time_to_ready_ms = 0.0;
  /// Per-eNodeB control-link frame counters (same order as the spec's
  /// enbs), uplink = agent -> master.
  struct LinkStats {
    std::uint64_t uplink_tx = 0;
    std::uint64_t uplink_rx = 0;
    std::uint64_t uplink_dropped = 0;
    std::uint64_t uplink_shed = 0;
    std::uint64_t downlink_tx = 0;
    std::uint64_t downlink_rx = 0;
    std::uint64_t downlink_dropped = 0;
    std::uint64_t downlink_shed = 0;
  };
  std::vector<LinkStats> links;
  // ---- two-tier control plane (docs/sharded_control.md) ---------------------
  /// Shard count the run used; the per-shard breakdown below is filled
  /// only when > 1 (single-shard output stays byte-identical).
  std::size_t shards = 1;
  struct ShardSummary {
    std::size_t agents = 0;
    std::uint64_t rib_updates = 0;
    std::uint64_t ingest_shed = 0;
    std::uint64_t master_restarts = 0;
    ctrl::OverloadState overload_state = ctrl::OverloadState::normal;
    bool recovering = false;
    ctrl::Coordinator::ShardHealth health = ctrl::Coordinator::ShardHealth::alive;
  };
  std::vector<ShardSummary> shard_summaries;
  // ---- shard failover outcome (docs/sharded_control.md "Shard failover") ----
  std::uint64_t shards_failed = 0;
  std::uint64_t agents_adopted = 0;
  std::uint64_t warm_adoptions = 0;
  std::uint64_t cold_adoptions = 0;
  std::uint64_t agents_drained = 0;
  /// Orphans no survivor could adopt (should stay 0 in every scenario).
  std::size_t agents_orphaned = 0;
  /// Adopted agents whose re-sync was still pending at the end (bad).
  std::size_t failover_pending = 0;
  /// Failure suspicion to last orphan re-homed / to every adoptee up, ms.
  double orphan_window_ms = 0.0;
  double failover_duration_ms = 0.0;
  // ---- runtime verification (docs/chaos_fuzzing.md) -------------------------
  /// Invariant checks the monitor ran (0 = monitor off) and violations it
  /// recorded; the first few violation details ride along for the CLI.
  std::uint64_t invariant_checks = 0;
  std::uint64_t invariant_violations = 0;
  std::vector<std::string> invariant_details;
  // ---- observability (docs/observability.md) --------------------------------
  /// True when the run had the metrics layer enabled (the fields below are
  /// empty otherwise).
  bool observability = false;
  /// Periodic registry dumps, one JSON object per metrics period (the last
  /// entry is the end-of-run state).
  std::vector<std::string> metrics_json;
  /// Prometheus text snapshot of the final registry state.
  std::string metrics_prometheus;
  /// Human-readable unified metrics block appended to the summary table.
  std::string metrics_block;
};

/// Builds the testbed from the spec, runs it, and collects the summary.
ScenarioRunSummary run_scenario(const ScenarioSpec& spec);

/// Renders the summary as the CLI's output table.
std::string format_summary(const ScenarioRunSummary& summary);

/// Serializes a spec back into the YAML-lite dialect parse_scenario reads.
/// Covers every field the chaos fuzzer generates, so
/// parse_scenario(scenario_to_yaml(spec)) reproduces the run exactly --
/// this is how minimized repros become standalone scenario files.
std::string scenario_to_yaml(const ScenarioSpec& spec);

}  // namespace flexran::scenario
