// Declarative scenario descriptions: a YAML document specifying the
// master, eNodeBs, UEs, traffic and applications, parsed and executed
// against the testbed. This is the surface the `flexran_sim` CLI exposes;
// it reuses the same YAML-lite dialect as policy reconfiguration messages.
//
// Example:
//   duration_s: 5
//   stats_period_ttis: 1
//   remote_scheduler: false
//   enbs:
//     - enb_id: 1
//       name: macro
//       dl_scheduler: local_rr
//       control_delay_ms: 0
//   ues:
//     - enb: 1
//       cqi: 15
//       traffic: full_buffer     # full_buffer | cbr | none
//       rate_mbps: 5             # cbr only
#pragma once

#include <string>
#include <vector>

#include "scenario/fault_injector.h"
#include "scenario/testbed.h"

namespace flexran::scenario {

struct ScenarioEnbSpec {
  lte::EnbId enb_id = 1;
  std::string name = "enb";
  std::string dl_scheduler = "local_rr";
  std::string ul_scheduler = "local_rr";
  double control_delay_ms = 0.0;
  /// Agent autonomy under faults: fall back to a local DL scheduler when
  /// the master has been silent this many TTIs (0 = off).
  long long remote_fallback_ttis = 0;
  std::string fallback_scheduler = "local_rr";
};

struct ScenarioUeSpec {
  lte::EnbId enb = 1;
  int cqi = 15;
  int ul_cqi = 8;
  std::string traffic = "full_buffer";
  double rate_mbps = 1.0;
  /// Uplink application traffic: "none" | "full_buffer" | "cbr".
  std::string ul_traffic = "none";
  double ul_rate_mbps = 1.0;
  /// Optional CQI trace (one sample per `cqi_trace_period_ms`); overrides
  /// the fixed `cqi` when non-empty.
  std::vector<int> cqi_trace;
  double cqi_trace_period_ms = 1000.0;
};

struct ScenarioSpec {
  double duration_s = 5.0;
  std::uint32_t stats_period_ttis = 1;
  /// Run the centralized scheduler app at the master.
  bool remote_scheduler = false;
  int schedule_ahead_sf = 2;
  // ---- fault tolerance (docs/fault_tolerance.md) ----------------------------
  /// Master: mark agents stale / down after this much silence (0 = never).
  double agent_timeout_ms = 0.0;
  double agent_disconnect_timeout_ms = 0.0;
  /// Master: track requests and retry after this timeout (0 = off).
  double request_timeout_ms = 0.0;
  /// Scripted chaos timeline, executed by a FaultInjector during the run.
  std::vector<FaultEvent> faults;
  std::vector<ScenarioEnbSpec> enbs;
  std::vector<ScenarioUeSpec> ues;
};

/// Parses a scenario document; rejects unknown traffic kinds, missing
/// eNodeB references, and malformed values.
util::Result<ScenarioSpec> parse_scenario(const std::string& yaml);

struct UeRunResult {
  lte::EnbId enb = 0;
  lte::Rnti rnti = lte::kInvalidRnti;
  bool connected = false;
  int cqi = 0;
  double dl_mbps = 0.0;
  double ul_mbps = 0.0;
};

struct ScenarioRunSummary {
  std::vector<UeRunResult> ues;
  double duration_s = 0.0;
  std::int64_t master_cycles = 0;
  std::uint64_t rib_updates = 0;
  /// Aggregate agent->master / master->agent signaling, Mb/s.
  double uplink_signaling_mbps = 0.0;
  double downlink_signaling_mbps = 0.0;
  // ---- fault-tolerance outcome (non-zero only for chaos scenarios) ----------
  std::uint64_t faults_injected = 0;
  std::uint32_t agent_reconnects = 0;
  std::uint64_t requests_retried = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t fenced_updates = 0;
  /// Agents whose session is fully re-synced (state up) at the end.
  int agents_up = 0;
  int agents_total = 0;
  // ---- delegated-control containment (docs/delegation_safety.md) ------------
  std::uint64_t vsf_failures = 0;
  std::uint64_t vsf_quarantines = 0;
  std::uint64_t vsf_fallback_decisions = 0;
  /// TTIs where neither the active VSF nor the fallback produced a valid
  /// decision. The containment invariant is that this stays 0.
  std::uint64_t unscheduled_slots = 0;
  std::uint64_t policy_rollbacks = 0;
  /// Agents whose active DL scheduler is a non-quarantined implementation
  /// at the end of the run (should equal agents_total).
  int agents_on_valid_policy = 0;
};

/// Builds the testbed from the spec, runs it, and collects the summary.
ScenarioRunSummary run_scenario(const ScenarioSpec& spec);

/// Renders the summary as the CLI's output table.
std::string format_summary(const ScenarioRunSummary& summary);

}  // namespace flexran::scenario
