// Wires a DASH client + TCP flow onto a testbed UE's default bearer: the
// full Sec. 6.2 MEC experiment path (video server behind the EPC, TCP over
// the LTE bearer, DASH adaptation at the UE, optionally assisted by the
// FlexRAN MEC application through set_bitrate_cap_mbps).
#pragma once

#include <memory>

#include "scenario/testbed.h"
#include "traffic/dash.h"
#include "traffic/tcp.h"

namespace flexran::scenario {

class DashSession {
 public:
  DashSession(Testbed& testbed, std::size_t enb_index, lte::Rnti rnti,
              traffic::DashVideo video, traffic::DashClientConfig config = {},
              traffic::TcpConfig tcp_config = {});

  traffic::DashClient& client() { return *client_; }
  const traffic::DashClient& client() const { return *client_; }
  traffic::TcpFlow& flow() { return *flow_; }
  lte::Rnti rnti() const { return rnti_; }

  void start() { client_->start(); }

 private:
  lte::Rnti rnti_;
  std::unique_ptr<traffic::TcpFlow> flow_;
  std::unique_ptr<traffic::DashClient> client_;
};

}  // namespace flexran::scenario
