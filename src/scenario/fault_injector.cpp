#include "scenario/fault_injector.h"

#include "agent/schedulers.h"
#include "util/logging.h"
#include "util/strings.h"

namespace flexran::scenario {

namespace {
// Request-id range reserved for report_flood registrations, far above
// anything the master or scenario apps hand out.
constexpr std::uint32_t kFloodRequestIdBase = 0xF1000000u;
}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::partition: return "partition";
    case FaultKind::heal: return "heal";
    case FaultKind::delay_spike: return "delay_spike";
    case FaultKind::corrupt: return "corrupt";
    case FaultKind::duplicate: return "duplicate";
    case FaultKind::crash: return "crash";
    case FaultKind::restart: return "restart";
    case FaultKind::flap: return "flap";
    case FaultKind::vsf_crash: return "vsf_crash";
    case FaultKind::vsf_overrun: return "vsf_overrun";
    case FaultKind::vsf_invalid: return "vsf_invalid";
    case FaultKind::report_flood: return "report_flood";
    case FaultKind::master_crash: return "master_crash";
    case FaultKind::shard_kill: return "shard_kill";
    case FaultKind::reorder: return "reorder";
    case FaultKind::shard_drain: return "shard_drain";
  }
  return "?";
}

void FaultInjector::schedule(const FaultEvent& event) {
  testbed_->sim().at(sim::from_seconds(event.at_s), [this, event] { apply(event); });
}

template <typename Fn>
void FaultInjector::for_each_target(int enb, Fn&& fn) {
  auto& enbs = testbed_->enbs();
  if (enb >= 0) {
    if (static_cast<std::size_t>(enb) < enbs.size()) fn(*enbs[enb]);
    return;
  }
  for (auto& target : enbs) fn(*target);
}

void FaultInjector::note(const FaultEvent& event, const std::string& extra) {
  LogEntry entry;
  entry.at = testbed_->sim().now();
  entry.description = util::format("%s enb=%d%s", to_string(event.kind), event.enb,
                                   extra.empty() ? "" : (" " + extra).c_str());
  FLEXRAN_LOG(info, "chaos") << "t=" << sim::to_seconds(entry.at) << "s inject "
                             << entry.description;
  log_.push_back(std::move(entry));
}

void FaultInjector::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::partition: {
      note(event, event.duration_s > 0
                      ? util::format("for %.3fs", event.duration_s)
                      : std::string());
      for_each_target(event.enb, [](Testbed::Enb& enb) { enb.set_control_down(true); });
      if (event.duration_s > 0) {
        FaultEvent heal = event;
        heal.kind = FaultKind::heal;
        heal.at_s = sim::to_seconds(testbed_->sim().now()) + event.duration_s;
        schedule(heal);
      }
      break;
    }
    case FaultKind::heal:
      note(event);
      for_each_target(event.enb, [](Testbed::Enb& enb) { enb.set_control_down(false); });
      break;
    case FaultKind::delay_spike: {
      note(event, util::format("to %.1fms", event.delay_ms));
      // Capture per-eNodeB baselines so the revert restores asymmetric
      // configurations correctly.
      std::vector<std::pair<Testbed::Enb*, sim::TimeUs>> baselines;
      for_each_target(event.enb, [&](Testbed::Enb& enb) {
        baselines.emplace_back(&enb, enb.master_side->delay());
        enb.set_control_latency(sim::from_ms(event.delay_ms));
      });
      if (event.duration_s > 0) {
        testbed_->sim().after(sim::from_seconds(event.duration_s), [baselines] {
          for (const auto& [enb, delay] : baselines) enb->set_control_latency(delay);
        });
      }
      break;
    }
    case FaultKind::corrupt:
      note(event, util::format("%d frames", event.count));
      for_each_target(event.enb, [&](Testbed::Enb& enb) {
        enb.master_side->corrupt_next(event.count);
        enb.agent_side->corrupt_next(event.count);
      });
      break;
    case FaultKind::duplicate:
      note(event, util::format("%d frames", event.count));
      for_each_target(event.enb, [&](Testbed::Enb& enb) {
        enb.master_side->duplicate_next(event.count);
        enb.agent_side->duplicate_next(event.count);
      });
      break;
    case FaultKind::reorder: {
      note(event, util::format("%d frames", event.count));
      // Each endpoint gets its own shuffle seed derived from the injection
      // order, so two reorder events on one link do not replay the same
      // permutation.
      const auto seed = 0x5eedULL + static_cast<std::uint64_t>(log_.size());
      for_each_target(event.enb, [&](Testbed::Enb& enb) {
        enb.master_side->reorder_next(event.count, seed);
        enb.agent_side->reorder_next(event.count, seed + 1);
      });
      // Deadline flush: frames held back on a channel that goes quiet (or
      // gets partitioned next) must still arrive eventually.
      testbed_->sim().after(sim::from_ms(200.0), [this, event] {
        for_each_target(event.enb, [](Testbed::Enb& enb) {
          enb.master_side->reorder_flush();
          enb.agent_side->reorder_flush();
        });
      });
      break;
    }
    case FaultKind::crash:
      note(event, event.duration_s > 0
                      ? util::format("restart in %.3fs", event.duration_s)
                      : std::string());
      for_each_target(event.enb, [](Testbed::Enb& enb) { enb.crash_agent(); });
      if (event.duration_s > 0) {
        FaultEvent restart = event;
        restart.kind = FaultKind::restart;
        restart.at_s = sim::to_seconds(testbed_->sim().now()) + event.duration_s;
        schedule(restart);
      }
      break;
    case FaultKind::restart:
      note(event);
      for_each_target(event.enb, [](Testbed::Enb& enb) { enb.restart_agent(); });
      break;
    case FaultKind::flap: {
      note(event, util::format("%d cycles of %.3fs", event.count, event.period_s));
      const sim::TimeUs period = sim::from_seconds(event.period_s);
      for (int cycle = 0; cycle < event.count; ++cycle) {
        const sim::TimeUs down_at = 2 * cycle * period;
        testbed_->sim().after(down_at, [this, event] {
          for_each_target(event.enb, [](Testbed::Enb& enb) { enb.set_control_down(true); });
        });
        testbed_->sim().after(down_at + period, [this, event] {
          for_each_target(event.enb, [](Testbed::Enb& enb) { enb.set_control_down(false); });
        });
      }
      break;
    }
    case FaultKind::vsf_crash:
    case FaultKind::vsf_overrun:
    case FaultKind::vsf_invalid: {
      const char* impl = event.kind == FaultKind::vsf_crash      ? "faulty_crash"
                         : event.kind == FaultKind::vsf_overrun ? "faulty_overrun"
                                                                : "faulty_invalid";
      note(event, util::format("impl=%s", impl));
      // The faulty implementations are opt-in (never registered by the
      // Agent); injecting one makes it resolvable at updation time.
      agent::register_faulty_vsfs();
      // Deliver the fault through the legitimate delegation path -- VSF
      // updation then policy reconfiguration (paper Sec. 4.3.1) -- so the
      // whole containment chain is exercised: guard fallback, quarantine,
      // triggered events, and the master's policy rollback.
      for_each_target(event.enb, [&](Testbed::Enb& enb) {
        // Seed a known-good policy first (the built-in round-robin ships in
        // every cache), so the master has something to roll back to when
        // the quarantine event arrives.
        (void)testbed_->master().send_policy(
            enb.agent_id, "mac:\n  dl_ue_scheduler:\n    behavior: local_rr\n");
        (void)testbed_->master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", impl);
        (void)testbed_->master().send_policy(
            enb.agent_id,
            std::string("mac:\n  dl_ue_scheduler:\n    behavior: ") + impl + "\n");
      });
      break;
    }
    case FaultKind::report_flood: {
      note(event, util::format("%d regs%s", event.count,
                               event.duration_s > 0
                                   ? util::format(" for %.3fs", event.duration_s).c_str()
                                   : ""));
      // Registered straight at the ReportsManager, bypassing the master's
      // request accounting -- this is load the master did not ask for and
      // cannot renegotiate away, exactly what the Envelope throttle hint
      // exists for. Request ids live in a reserved range so the flood
      // never collides with (or cancels) legitimate registrations.
      for_each_target(event.enb, [&](Testbed::Enb& enb) {
        const std::int64_t now_sf = enb.agent->api().current_subframe();
        for (int i = 0; i < event.count; ++i) {
          proto::StatsRequest request;
          request.request_id = kFloodRequestIdBase + static_cast<std::uint32_t>(i);
          request.mode = proto::ReportMode::periodic;
          request.periodicity_ttis = 1;
          request.flags = proto::stats_flags::kAll;
          enb.agent->reports().register_request(request, now_sf);
        }
      });
      if (event.duration_s > 0) {
        testbed_->sim().after(sim::from_seconds(event.duration_s), [this, event] {
          for_each_target(event.enb, [&](Testbed::Enb& enb) {
            for (int i = 0; i < event.count; ++i) {
              enb.agent->reports().cancel_request(kFloodRequestIdBase +
                                                  static_cast<std::uint32_t>(i));
            }
          });
        });
      }
      break;
    }
    case FaultKind::master_crash: {
      note(event, util::format("shard=%d %s", event.shard,
                               event.duration_s > 0
                                   ? util::format("restart in %.3fs", event.duration_s).c_str()
                                   : "restart immediately"));
      auto& coordinator = testbed_->coordinator();
      const int shard = event.shard;
      // A shard crash only takes down the links of the agents that shard
      // owns -- its peers' control loops never notice. The blast radius IS
      // the isolation property the two-tier split buys.
      auto targets_shard = [&coordinator, shard](const Testbed::Enb& enb) {
        if (shard < 0) return true;
        const auto owner = coordinator.shard_of(enb.agent_id);
        return owner.has_value() && *owner == static_cast<std::size_t>(shard);
      };
      // The dead window: nothing is processed or delivered in either
      // direction -- exactly what the fleet observes of a crashed master.
      for (auto& enb : testbed_->enbs()) {
        if (targets_shard(*enb)) enb->set_control_down(true);
      }
      testbed_->sim().after(sim::from_seconds(event.duration_s), [this, targets_shard, shard] {
        // Heal the links first so the restarted master's incarnation
        // announcement reaches the fleet.
        for (auto& enb : testbed_->enbs()) {
          if (targets_shard(*enb)) enb->set_control_down(false);
        }
        auto& coord = testbed_->coordinator();
        for (std::size_t i = 0; i < coord.shard_count(); ++i) {
          if (shard < 0 || static_cast<std::size_t>(shard) == i) coord.shard(i).restart();
        }
      });
      break;
    }
    case FaultKind::shard_kill: {
      auto& coordinator = testbed_->coordinator();
      std::size_t adopted = 0;
      if (event.shard >= 0 &&
          static_cast<std::size_t>(event.shard) < coordinator.shard_count()) {
        adopted = coordinator.kill_shard(static_cast<std::size_t>(event.shard));
      }
      note(event, util::format("shard=%d adopted=%zu", event.shard, adopted));
      break;
    }
    case FaultKind::shard_drain: {
      auto& coordinator = testbed_->coordinator();
      util::Status status = util::Error::invalid_argument("no such shard");
      if (event.shard >= 0 &&
          static_cast<std::size_t>(event.shard) < coordinator.shard_count()) {
        status = coordinator.drain_shard(static_cast<std::size_t>(event.shard));
      }
      note(event, util::format("shard=%d %s", event.shard,
                               status.ok() ? "started"
                                           : ("rejected: " + status.error().message).c_str()));
      break;
    }
  }
}

}  // namespace flexran::scenario
