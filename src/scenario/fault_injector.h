// Chaos-injection harness (docs/fault_tolerance.md): scripts control-plane
// faults against a Testbed from a declarative timeline -- partitions, link
// flaps, delay spikes, message corruption, and agent crash/restart. Every
// injected fault lands as an ordinary simulator event, so chaos runs are
// fully deterministic and replayable.
#pragma once

#include <string>
#include <vector>

#include "scenario/testbed.h"

namespace flexran::scenario {

enum class FaultKind {
  /// Control channel down both ways; heals after duration_s (if > 0).
  partition,
  /// Control channel back up (explicit heal; partitions with a duration
  /// heal themselves).
  heal,
  /// One-way latency jumps to delay_ms; restores after duration_s (if > 0).
  delay_spike,
  /// The next `count` frames delivered at each endpoint arrive corrupted.
  corrupt,
  /// The next `count` frames delivered at each endpoint arrive twice,
  /// back to back (retransmit-after-lost-ack duplicates). The session
  /// layer's xid/epoch dedup must make every copy a no-op.
  duplicate,
  /// The next `count` frames delivered at each endpoint are held back and
  /// released in a deterministically shuffled order (multipath / kernel
  /// requeue reordering). SimLink itself never reorders -- the shuffle
  /// happens at the SimTransport endpoint, past the link's FIFO delivery
  /// floor -- so this is the only source of out-of-order arrival, and the
  /// session xid/epoch layer must absorb it. Frames still held 200 ms
  /// later are flushed, so a follow-up partition cannot strand them.
  reorder,
  /// Agent process crash: session torn down, nothing reconnects until a
  /// restart fault (or restart_after_s).
  crash,
  /// Restart a crashed agent (new session epoch, reconnect with backoff).
  restart,
  /// `count` down/up cycles of period_s each (rapid link flapping).
  flap,
  // Delegated-control faults (docs/delegation_safety.md): push a known-bad
  // DL scheduler VSF through the normal master-side updation + policy path.
  // The agent's VsfGuard must contain it: same-TTI fallback, quarantine
  // after N consecutive failures, and a master-side rollback to the
  // last-known-good policy.
  /// VSF that throws on every invocation.
  vsf_crash,
  /// VSF whose declared cost busts the per-TTI deadline budget.
  vsf_overrun,
  /// VSF emitting decisions that fail validation (overlap, bad RNTI/MCS).
  vsf_invalid,
  /// Overload fault (docs/overload_protection.md): registers `count`
  /// extra every-TTI full-flag periodic reports directly at the agent's
  /// ReportsManager (as a buggy/malicious northbound tool would), then
  /// cancels them after duration_s. The master's bounded queues, watchdog
  /// and throttling must degrade statistics gracefully while commands
  /// keep flowing.
  report_flood,
  /// Master process crash (docs/fault_tolerance.md "Master restart"): the
  /// targeted shard's control links go dead both ways for duration_s, then
  /// that shard restarts in place -- volatile state (RIB, sessions,
  /// in-flight requests, pending policies) is lost, a new incarnation is
  /// announced, and its fleet re-syncs under admission pacing. `enb` is
  /// ignored; `shard` picks the crashing core (-1 = every shard, which on
  /// a single-shard testbed is the classic whole-master crash).
  master_crash,
  /// Shard death without restart (docs/sharded_control.md "Shard
  /// failover"): declares shard `shard` dead at the Coordinator, which
  /// re-homes every orphaned agent onto the surviving shards (warm from
  /// the dead shard's last checkpoint when one exists). Unlike
  /// master_crash the core never comes back -- recovery is adoption, not
  /// restart. `enb` and `duration_s` are ignored; `shard` must name a
  /// specific shard (-1 is rejected at parse time).
  shard_kill,
  /// Planned shard migration (docs/sharded_control.md "Shard failover"):
  /// starts drain_shard(shard) -- quiesce, then one agent per coordinator
  /// cycle handed to the survivors with a live durable export; the shard
  /// ends `drained`. `shard` must name a specific shard (-1 is rejected at
  /// parse time); a drain that loses the race to another drain or to the
  /// shard's death is logged as rejected, not an error.
  shard_drain,
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  /// When the fault fires, seconds of simulated time.
  double at_s = 0.0;
  FaultKind kind = FaultKind::partition;
  /// Target eNodeB index in the testbed; -1 = every eNodeB.
  int enb = -1;
  /// Auto-revert horizon for partition / delay_spike; crash uses it as
  /// restart_after_s. 0 = no auto-revert.
  double duration_s = 0.0;
  /// delay_spike: one-way latency while spiking.
  double delay_ms = 0.0;
  /// corrupt: frames to corrupt per endpoint; flap: down/up cycles.
  int count = 1;
  /// flap: length of each down (and each up) phase.
  double period_s = 0.05;
  /// master_crash: shard index to crash; -1 = every shard.
  int shard = -1;
};

class FaultInjector {
 public:
  explicit FaultInjector(Testbed& testbed) : testbed_(&testbed) {}

  /// Schedules one fault on the testbed's simulator timeline.
  void schedule(const FaultEvent& event);
  void schedule_all(const std::vector<FaultEvent>& events) {
    for (const auto& event : events) schedule(event);
  }

  struct LogEntry {
    sim::TimeUs at = 0;
    std::string description;
  };
  /// Everything injected so far, in firing order.
  const std::vector<LogEntry>& log() const { return log_; }
  std::uint64_t faults_injected() const { return log_.size(); }

 private:
  void apply(const FaultEvent& event);
  /// Applies `fn` to the targeted eNodeB(s); `enb == -1` fans out.
  template <typename Fn>
  void for_each_target(int enb, Fn&& fn);
  void note(const FaultEvent& event, const std::string& extra = "");

  Testbed* testbed_;
  std::vector<LogEntry> log_;
};

}  // namespace flexran::scenario
