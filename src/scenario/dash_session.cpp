#include "scenario/dash_session.h"

namespace flexran::scenario {

DashSession::DashSession(Testbed& testbed, std::size_t enb_index, lte::Rnti rnti,
                         traffic::DashVideo video, traffic::DashClientConfig config,
                         traffic::TcpConfig tcp_config) : rnti_(rnti) {
  stack::EnodebDataPlane* dp = testbed.enb(enb_index).data_plane.get();
  auto& epc = testbed.epc();

  flow_ = std::make_unique<traffic::TcpFlow>(
      testbed.sim(),
      [&epc, rnti](std::uint32_t bytes) { (void)epc.downlink(rnti, bytes); },
      [dp, rnti]() -> std::uint32_t {
        const auto* ue = dp->ue(rnti);
        return ue != nullptr ? ue->dl_queue.total_bytes() : 0;
      },
      tcp_config);
  client_ = std::make_unique<traffic::DashClient>(testbed.sim(), *flow_, std::move(video),
                                                  config);

  traffic::TcpFlow* flow = flow_.get();
  testbed.add_delivery_listener(
      enb_index, [flow, rnti](lte::Rnti r, std::uint32_t bytes, lte::Direction direction) {
        if (r == rnti && direction == lte::Direction::downlink) flow->on_delivered(bytes);
      });
  traffic::DashClient* client = client_.get();
  testbed.on_tti([flow, client](std::int64_t tti) {
    flow->on_tti(tti);
    client->on_tti(tti);
  });
}

}  // namespace flexran::scenario
