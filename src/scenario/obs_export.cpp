#include "scenario/obs_export.h"

#include "obs/metrics.h"
#include "util/strings.h"

namespace flexran::scenario {

namespace {

constexpr proto::MessageCategory kAllCategories[] = {
    proto::MessageCategory::agent_management, proto::MessageCategory::sync,
    proto::MessageCategory::stats, proto::MessageCategory::commands,
    proto::MessageCategory::delegation};
constexpr net::TrafficClass kAllClasses[] = {
    net::TrafficClass::session, net::TrafficClass::command, net::TrafficClass::config,
    net::TrafficClass::event,   net::TrafficClass::sync,    net::TrafficClass::stats};

}  // namespace

void register_testbed_probes(Testbed& testbed) {
  // The coordinator's registry: shard 0's own on a single-shard testbed,
  // the shared process-wide one when sharded. Agent/link probes are keyed
  // by agent id and link index, which are globally unique either way.
  auto& m = testbed.coordinator().metrics();
  for (std::size_t i = 0; i < testbed.enbs().size(); ++i) {
    Testbed::Enb* enb = testbed.enbs()[i].get();
    const std::string agent_label = std::to_string(enb->agent_id);
    const std::string link_label = std::to_string(i);

    // Agent-side signaling accountants -- the far end of the master's
    // signaling_{tx,rx} probes; equality across the pair is the rx-parity
    // invariant the accounting tests assert.
    for (const proto::MessageCategory category : kAllCategories) {
      const std::string cat_label = proto::to_string(category);
      m.register_probe(obs::labeled("agent_signaling_tx_bytes",
                                    {{"agent", agent_label}, {"category", cat_label}}),
                       [enb, category] {
                         return static_cast<double>(enb->agent->tx_accounting().bytes(category));
                       });
      m.register_probe(obs::labeled("agent_signaling_rx_bytes",
                                    {{"agent", agent_label}, {"category", cat_label}}),
                       [enb, category] {
                         return static_cast<double>(enb->agent->rx_accounting().bytes(category));
                       });
    }
    m.register_probe(obs::labeled("agent_messages_received", {{"agent", agent_label}}),
                     [enb] { return static_cast<double>(enb->agent->messages_received()); });
    m.register_probe(obs::labeled("agent_fenced_messages", {{"agent", agent_label}}),
                     [enb] { return static_cast<double>(enb->agent->fenced_messages()); });
    m.register_probe(obs::labeled("agent_reconnect_attempts", {{"agent", agent_label}}),
                     [enb] { return static_cast<double>(enb->agent->reconnect_attempts()); });
    m.register_probe(obs::labeled("agent_missed_deadlines", {{"agent", agent_label}}), [enb] {
      return static_cast<double>(enb->agent->missed_deadline_decisions());
    });
    m.register_probe(obs::labeled("agent_queued_decisions", {{"agent", agent_label}}),
                     [enb] { return static_cast<double>(enb->agent->queued_decisions()); });

    // Control-link frame counters (SimTransport), uplink = agent -> master.
    struct Direction {
      const char* name;
      net::SimTransport* tx_end;
      net::SimTransport* rx_end;
    };
    for (const auto& dir : {Direction{"up", enb->agent_side, enb->master_side},
                            Direction{"down", enb->master_side, enb->agent_side}}) {
      const std::string dir_label = dir.name;
      net::SimTransport* tx_end = dir.tx_end;
      net::SimTransport* rx_end = dir.rx_end;
      m.register_probe(
          obs::labeled("link_frames_tx", {{"link", link_label}, {"dir", dir_label}}),
          [tx_end] { return static_cast<double>(tx_end->messages_sent()); });
      m.register_probe(
          obs::labeled("link_frames_rx", {{"link", link_label}, {"dir", dir_label}}),
          [rx_end] { return static_cast<double>(rx_end->messages_received()); });
      m.register_probe(
          obs::labeled("link_frames_dropped", {{"link", link_label}, {"dir", dir_label}}),
          [tx_end] { return static_cast<double>(tx_end->frames_dropped()); });
      m.register_probe(
          obs::labeled("link_frames_shed", {{"link", link_label}, {"dir", dir_label}}),
          [tx_end] { return static_cast<double>(tx_end->frames_shed()); });
      m.register_probe(
          obs::labeled("link_frames_corrupted", {{"link", link_label}, {"dir", dir_label}}),
          [tx_end] { return static_cast<double>(tx_end->frames_corrupted()); });
      for (const net::TrafficClass cls : kAllClasses) {
        m.register_probe(
            obs::labeled("link_frames_shed_class", {{"link", link_label},
                                                    {"dir", dir_label},
                                                    {"class", net::to_string(cls)}}),
            [tx_end, cls] { return static_cast<double>(tx_end->frames_shed(cls)); });
      }
    }
  }
}

std::string format_metrics_block(Testbed& testbed) {
  auto& coordinator = testbed.coordinator();
  const auto& traces = testbed.master().cycle_traces();
  std::string out = util::format("metrics: %zu series, %llu cycles traced\n",
                                 coordinator.metrics().size(),
                                 static_cast<unsigned long long>(traces.recorded()));
  for (std::size_t i = 0; i < coordinator.shard_count(); ++i) {
    const auto& shard_traces = coordinator.shard(i).cycle_traces();
    const auto updater = shard_traces.updater_us();
    const auto event = shard_traces.event_us();
    const auto apps = shard_traces.apps_us();
    const auto flush = shard_traces.flush_us();
    out += util::format(
        "  %scycle us (mean/max): updater %.1f/%.1f, events %.1f/%.1f, apps %.1f/%.1f, "
        "flush %.1f/%.1f\n",
        coordinator.shard_count() > 1 ? util::format("shard %zu ", i).c_str() : "",
        updater.mean(), updater.max(), event.mean(), event.max(), apps.mean(), apps.max(),
        flush.mean(), flush.max());
  }
  for (auto& enb : testbed.enbs()) {
    const auto* latency = coordinator.control_latency(enb->agent_id);
    if (latency == nullptr || latency->count() == 0) continue;
    out += util::format(
        "  control latency agent %u: p50 %.0f us, p95 %.0f us, p99 %.0f us (%llu samples)\n",
        static_cast<unsigned>(enb->agent_id), latency->p50(), latency->p95(), latency->p99(),
        static_cast<unsigned long long>(latency->count()));
  }
  std::string tx_part;
  std::string rx_part;
  for (const proto::MessageCategory category : kAllCategories) {
    std::uint64_t tx = 0;
    std::uint64_t rx = 0;
    for (auto& enb : testbed.enbs()) {
      tx += coordinator.tx_accounting(enb->agent_id).bytes(category);
      rx += coordinator.rx_accounting(enb->agent_id).bytes(category);
    }
    tx_part += util::format(" %s %llu", proto::to_string(category),
                            static_cast<unsigned long long>(tx));
    rx_part += util::format(" %s %llu", proto::to_string(category),
                            static_cast<unsigned long long>(rx));
  }
  out += "  signaling bytes tx (master->agent):" + tx_part + "\n";
  out += "  signaling bytes rx (agent->master):" + rx_part + "\n";
  return out;
}

}  // namespace flexran::scenario
