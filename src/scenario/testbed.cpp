#include "scenario/testbed.h"

namespace flexran::scenario {

namespace {
ctrl::CoordinatorConfig coordinator_config(ctrl::MasterConfig master_config,
                                           std::size_t shards) {
  ctrl::CoordinatorConfig config;
  config.shards = shards;
  config.shard = std::move(master_config);
  // Multi-shard runs must never share one checkpoint sink: the shards
  // would clobber each other's saves and a restarted shard could restore
  // its neighbor's agent set. Testbed runs are hermetic, so each shard
  // gets its own in-memory sink (single-shard keeps the template's sink
  // untouched, including one a test injected to inspect).
  if (shards > 1 && config.shard.recovery.checkpoint_sink != nullptr) {
    config.checkpoint_sink_factory = [](std::size_t) {
      return std::make_shared<ctrl::MemoryCheckpointSink>();
    };
  }
  return config;
}
}  // namespace

Testbed::Testbed(ctrl::MasterConfig master_config, std::size_t shards)
    : ticker_(sim_), coordinator_(sim_, coordinator_config(std::move(master_config), shards)) {}

void Testbed::start_ticker() {
  if (ticker_started_) return;
  ticker_started_ = true;
  // Master cycle at 500; per-eNodeB subscriptions are added in add_enb.
  ticker_.subscribe([this](std::int64_t) { coordinator_.run_cycle(); }, 500);
  ticker_.subscribe(
      [this](std::int64_t tti) {
        for (auto& hook : tti_hooks_) hook(tti);
        if (sim_.now() - last_metrics_sample_ >= metrics_window_) {
          metrics_.sample_window(sim_.now());
          last_metrics_sample_ = sim_.now();
        }
      },
      900);
  ticker_.start();
}

Testbed::Enb& Testbed::add_enb(EnbSpec spec) {
  start_ticker();
  auto enb = std::make_unique<Enb>();
  enb->data_plane = std::make_unique<stack::EnodebDataPlane>(
      sim_, spec.enb, spec.use_radio_env ? &env_ : nullptr, spec.seed);
  spec.agent.enb_id = spec.enb.enb_id;
  enb->agent = std::make_unique<agent::Agent>(sim_, *enb->data_plane, spec.agent);
  enb->transports = net::make_sim_transport_pair(sim_, spec.downlink, spec.uplink);
  enb->master_side = enb->transports.a.get();
  enb->agent_side = enb->transports.b.get();
  // The eNodeB identifier is the durable placement key: the same fleet
  // hashes to the same shards run after run.
  enb->agent_id = coordinator_.add_agent(*enb->master_side, spec.enb.enb_id, spec.shard);
  enb->agent->connect(*enb->agent_side);
  net::SimTransport* agent_side = enb->agent_side;
  enb->agent->set_reconnect_provider([agent_side]() -> net::Transport* {
    // A real TCP connect to the master fails while the channel is
    // partitioned; refuse until the uplink heals so reconnect backoff is
    // exercised the way a deployment would see it.
    return agent_side->down() ? nullptr : agent_side;
  });

  stack::EnodebDataPlane* dp = enb->data_plane.get();
  const lte::EnbId enb_id = spec.enb.enb_id;
  const std::size_t index_for_listeners = enbs_.size();
  delivery_listeners_.emplace_back();
  dp->set_delivery_callback([this, enb_id, index_for_listeners](
                                lte::Rnti rnti, std::uint32_t bytes, lte::Direction direction) {
    metrics_.record(enb_id, rnti, direction, bytes);
    auto ue_it = rnti_to_ue_.find({index_for_listeners, rnti});
    if (ue_it != rnti_to_ue_.end()) {
      ue_bytes_[{ue_it->second, direction}] += bytes;
    }
    for (const auto& listener : delivery_listeners_[index_for_listeners]) {
      listener(rnti, bytes, direction);
    }
  });
  if (x2_enabled_) install_x2_sink(index_for_listeners);

  const int index = static_cast<int>(enbs_.size());
  ticker_.subscribe([dp](std::int64_t tti) { dp->subframe_begin(tti); }, 10 + index);
  ticker_.subscribe([dp](std::int64_t tti) { dp->subframe_end(tti); }, 800 + index);

  enbs_.push_back(std::move(enb));
  return *enbs_.back();
}

lte::Rnti Testbed::add_ue(std::size_t enb_index, stack::UeProfile profile) {
  Enb& enb = *enbs_.at(enb_index);
  if (profile.config.rnti == lte::kInvalidRnti) profile.config.rnti = next_rnti_++;
  const lte::Rnti rnti = enb.data_plane->add_ue(std::move(profile));
  epc_.register_bearer(rnti, enb.data_plane.get(), rnti);
  rnti_to_ue_[{enb_index, rnti}] = rnti;  // UE id == first RNTI
  whereabouts_[rnti] = UeLocation{enb_index, rnti};
  return rnti;
}

void Testbed::enable_x2() {
  x2_enabled_ = true;
  for (std::size_t i = 0; i < enbs_.size(); ++i) install_x2_sink(i);
}

void Testbed::install_x2_sink(std::size_t enb_index) {
  enbs_[enb_index]->agent->set_handover_sink(
      [this, enb_index](stack::UeProfile context, lte::CellId target, lte::Rnti old_rnti) {
        perform_x2(enb_index, std::move(context), target, old_rnti);
      });
}

void Testbed::perform_x2(std::size_t source_index, stack::UeProfile context, lte::CellId target,
                         lte::Rnti old_rnti) {
  auto ue_it = rnti_to_ue_.find({source_index, old_rnti});
  const lte::Rnti ue_id = ue_it != rnti_to_ue_.end() ? ue_it->second : old_rnti;
  if (ue_it != rnti_to_ue_.end()) rnti_to_ue_.erase(ue_it);

  Enb* target_enb = nullptr;
  std::size_t target_index = 0;
  for (std::size_t i = 0; i < enbs_.size(); ++i) {
    if (enbs_[i]->data_plane->cell_id() == target) {
      target_enb = enbs_[i].get();
      target_index = i;
      break;
    }
  }
  if (target_enb == nullptr) {
    // No neighbor owning the target cell: the UE is released.
    whereabouts_.erase(ue_id);
    epc_.remove_bearer(ue_id);
    return;
  }

  context.config.rnti = next_rnti_++;
  const lte::Rnti new_rnti = target_enb->data_plane->add_ue(std::move(context));
  (void)epc_.move_bearer(ue_id, target_enb->data_plane.get(), new_rnti);
  rnti_to_ue_[{target_index, new_rnti}] = ue_id;
  whereabouts_[ue_id] = UeLocation{target_index, new_rnti};
}

std::optional<Testbed::UeLocation> Testbed::locate_ue(lte::Rnti ue_id) const {
  auto it = whereabouts_.find(ue_id);
  if (it == whereabouts_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Testbed::ue_total_bytes(lte::Rnti ue_id, lte::Direction direction) const {
  auto it = ue_bytes_.find({ue_id, direction});
  return it == ue_bytes_.end() ? 0 : it->second;
}

void Testbed::run_ttis(int ttis) {
  start_ticker();
  sim_.run_until((sim_.current_tti() + ttis) * sim::kTtiUs + sim::kTtiUs / 2);
}

ctrl::MasterConfig per_tti_master_config(std::uint32_t stats_period_ttis) {
  ctrl::MasterConfig config;
  proto::StatsRequest stats;
  stats.request_id = 1;
  stats.mode = proto::ReportMode::periodic;
  stats.periodicity_ttis = stats_period_ttis;
  stats.flags = proto::stats_flags::kAll;
  config.default_stats_request = stats;
  config.subscribe_events = {proto::EventType::subframe_tick, proto::EventType::ue_attach,
                             proto::EventType::ue_detach, proto::EventType::rach_attempt,
                             proto::EventType::scheduling_request};
  return config;
}

}  // namespace flexran::scenario
