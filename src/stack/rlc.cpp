#include "stack/rlc.h"

#include <algorithm>

namespace flexran::stack {

int default_lc_group(lte::Lcid lcid) { return lcid <= lte::kSrb1 + 1 ? 0 : 2; }

void RlcQueue::enqueue(lte::Lcid lcid, std::uint32_t bytes) {
  if (bytes == 0) return;
  Channel& channel = channels_[lcid];
  channel.packets.push_back(bytes);
  channel.bytes += bytes;
  total_bytes_ += bytes;
}

std::uint32_t RlcQueue::dequeue(std::int64_t tb_bits) {
  std::uint32_t drained = 0;
  for (auto& [lcid, channel] : channels_) {
    (void)lcid;
    if (tb_bits <= 0) break;
    if (channel.bytes == 0) continue;
    // Budget in application bytes after L2 overhead.
    auto budget =
        static_cast<std::uint32_t>(static_cast<double>(tb_bits) / (8.0 * kL2OverheadFactor));
    while (budget > 0 && !channel.packets.empty()) {
      std::uint32_t& head = channel.packets.front();
      const std::uint32_t take = std::min(head, budget);
      head -= take;
      budget -= take;
      channel.bytes -= take;
      total_bytes_ -= take;
      drained += take;
      tb_bits -= static_cast<std::int64_t>(static_cast<double>(take) * 8.0 * kL2OverheadFactor);
      if (head == 0) channel.packets.pop_front();
    }
  }
  return drained;
}

std::uint32_t RlcQueue::dequeue_lcid(lte::Lcid lcid, std::int64_t tb_bits) {
  auto it = channels_.find(lcid);
  if (it == channels_.end()) return 0;
  Channel& channel = it->second;
  auto budget =
      static_cast<std::uint32_t>(static_cast<double>(tb_bits) / (8.0 * kL2OverheadFactor));
  std::uint32_t drained = 0;
  while (budget > 0 && !channel.packets.empty()) {
    std::uint32_t& head = channel.packets.front();
    const std::uint32_t take = std::min(head, budget);
    head -= take;
    budget -= take;
    channel.bytes -= take;
    total_bytes_ -= take;
    drained += take;
    if (head == 0) channel.packets.pop_front();
  }
  return drained;
}

std::uint32_t RlcQueue::bytes_for_lcid(lte::Lcid lcid) const {
  auto it = channels_.find(lcid);
  return it == channels_.end() ? 0 : it->second.bytes;
}

std::uint32_t RlcQueue::bytes_for_lc_group(int lcg) const {
  std::uint32_t bytes = 0;
  for (const auto& [lcid, channel] : channels_) {
    if (default_lc_group(lcid) == lcg) bytes += channel.bytes;
  }
  return bytes;
}

}  // namespace flexran::stack
