#include "stack/epc.h"

namespace flexran::stack {

void EpcStub::register_bearer(UeId ue, EnodebDataPlane* enb, lte::Rnti rnti, lte::Lcid lcid) {
  bearers_[ue] = Bearer{enb, rnti, lcid};
}

void EpcStub::remove_bearer(UeId ue) { bearers_.erase(ue); }

util::Status EpcStub::move_bearer(UeId ue, EnodebDataPlane* target_enb, lte::Rnti new_rnti) {
  auto it = bearers_.find(ue);
  if (it == bearers_.end()) return util::Error::not_found("move_bearer: unknown UE");
  it->second.enb = target_enb;
  it->second.rnti = new_rnti;
  return {};
}

util::Status EpcStub::downlink(UeId ue, std::uint32_t bytes) {
  auto it = bearers_.find(ue);
  if (it == bearers_.end()) return util::Error::not_found("downlink: unknown UE");
  it->second.enb->enqueue_dl(it->second.rnti, it->second.lcid, bytes);
  downlink_bytes_ += bytes;
  return {};
}

const EpcStub::Bearer* EpcStub::bearer(UeId ue) const {
  auto it = bearers_.find(ue);
  return it == bearers_.end() ? nullptr : &it->second;
}

}  // namespace flexran::stack
