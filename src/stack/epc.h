// EPC stub (substitution for openair-cn, see DESIGN.md): routes downlink
// traffic onto the right eNodeB/RNTI bearer and switches the path on
// handover. Uplink traffic terminates here via the data-plane delivery
// callback, so per-UE counters live with the traffic models instead.
#pragma once

#include <cstdint>
#include <map>

#include "stack/enodeb.h"

namespace flexran::stack {

/// Core-network-side UE identity (IMSI stand-in).
using UeId = std::uint32_t;

class EpcStub {
 public:
  struct Bearer {
    EnodebDataPlane* enb = nullptr;  // not owned
    lte::Rnti rnti = lte::kInvalidRnti;
    lte::Lcid lcid = lte::kDefaultDrb;
  };

  void register_bearer(UeId ue, EnodebDataPlane* enb, lte::Rnti rnti,
                       lte::Lcid lcid = lte::kDefaultDrb);
  void remove_bearer(UeId ue);
  /// Handover path switch.
  util::Status move_bearer(UeId ue, EnodebDataPlane* target_enb, lte::Rnti new_rnti);

  /// Injects downlink application bytes toward the UE.
  util::Status downlink(UeId ue, std::uint32_t bytes);

  const Bearer* bearer(UeId ue) const;
  std::uint64_t downlink_bytes() const { return downlink_bytes_; }

 private:
  std::map<UeId, Bearer> bearers_;
  std::uint64_t downlink_bytes_ = 0;
};

}  // namespace flexran::stack
