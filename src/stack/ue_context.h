// Per-UE state held by the eNodeB data plane. This models both the
// eNodeB-side context (RLC queues, HARQ, RRC state) and the quantities the
// real system learns from the UE over the air (CQI reports, buffer status),
// which a system-level simulation can co-locate (see DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "lte/harq.h"
#include "lte/types.h"
#include "phy/channel.h"
#include "phy/mobility.h"
#include "phy/radio_env.h"
#include "stack/rlc.h"

namespace flexran::stack {

/// RRC connection state machine (simplified 36.331).
enum class RrcState : std::uint8_t {
  idle = 0,        // added but RACH not yet performed
  connecting = 1,  // RACH done, RRC setup signaling in flight on SRB1
  connected = 2,
};

const char* to_string(RrcState state);

/// Bytes of RRC signaling that must be delivered on SRB1 for the attach
/// handshake to complete (connection setup + reconfiguration).
constexpr std::uint32_t kRrcSetupBytes = 400;

/// TTIs a UE waits in `connecting` before restarting RACH.
constexpr std::int64_t kAttachTimeoutTtis = 2000;

/// How a UE's radio is described when it is added to an eNodeB.
struct UeProfile {
  lte::UeConfig config;
  /// Downlink channel model (exclusive with radio_profile).
  std::unique_ptr<phy::ChannelModel> dl_channel;
  /// Interference-mode description (exclusive with dl_channel); the eNodeB's
  /// RadioEnvironment computes SINR from it.
  std::optional<phy::UeRadioProfile> radio_profile;
  /// Mobility: when set, radio_profile is re-derived from the track every
  /// TTI (shared so the track survives handover to another eNodeB).
  std::shared_ptr<const phy::MobilityTrack> mobility;
  /// Uplink capability cap (UE power limits); CQI the UL scheduler sees.
  int ul_cqi = 8;
  /// TTIs after add_ue before the UE performs RACH.
  std::int64_t attach_after_ttis = 1;
};

struct UeContext {
  lte::UeConfig config;
  RrcState rrc_state = RrcState::idle;

  std::unique_ptr<phy::ChannelModel> dl_channel;
  std::optional<phy::UeRadioProfile> radio_profile;
  std::shared_ptr<const phy::MobilityTrack> mobility;
  int ul_cqi = 8;

  RlcQueue dl_queue;
  std::uint32_t ul_buffer_bytes = 0;
  bool ul_sr_pending = false;  // scheduling request to surface as an event

  /// DRX (36.321 simplified): awake for the first on_duration TTIs of each
  /// cycle; cycle 0 = DRX off.
  std::uint16_t drx_cycle_ttis = 0;
  std::uint16_t drx_on_duration_ttis = 0;
  bool drx_sleeping(std::int64_t subframe) const {
    return drx_cycle_ttis > 0 && (subframe % drx_cycle_ttis) >= drx_on_duration_ttis;
  }

  lte::HarqEntity dl_harq;
  /// Carrier aggregation: separate HARQ processes on the secondary carrier
  /// (per-carrier HARQ entities, 36.321).
  lte::HarqEntity dl_harq_scell;
  bool scell_active = false;

  // Attach bookkeeping.
  std::int64_t rach_at_subframe = 0;
  std::int64_t attach_deadline = 0;
  std::uint32_t setup_bytes_delivered = 0;

  // Latest sampled CQIs (what the UE would report).
  int reported_cqi = 0;
  /// CQI measured on protected (ABS) resources -- used by eICIC-aware
  /// schedulers (36.331 restricted measurements).
  int reported_cqi_protected = 0;

  /// Proportional-fair average delivered DL rate, bits per TTI (EWMA).
  double avg_dl_rate_bits = 0.0;
  /// DL bytes credited during the current TTI (feeds the PF average).
  std::uint32_t dl_bytes_this_tti = 0;

  // Lifetime counters.
  std::uint64_t dl_bytes_delivered = 0;
  std::uint64_t ul_bytes_received = 0;
  std::uint64_t dl_blocks_nacked = 0;
  std::uint64_t dl_blocks_acked = 0;

  bool connected() const { return rrc_state == RrcState::connected; }
};

}  // namespace flexran::stack
