// RLC transmission queues. Each UE has one queue per logical channel; the
// MAC drains them against scheduled transport blocks. Queue sizes are the
// statistic the FlexRAN agent reports to the master ("transmission queue
// size", paper Table 1).
//
// Modeling notes (see DESIGN.md): queues track bytes per logical channel
// (packet boundaries are preserved for burstiness but segmentation is
// byte-granular, as RLC AM effectively provides), and PDCP/RLC/MAC header
// overhead is charged at dequeue time via kL2OverheadFactor, calibrated so
// 27.7 Mb/s of PHY TBS carries ~25.5 Mb/s of application bytes (Fig. 6b).
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "lte/types.h"

namespace flexran::stack {

/// L2 header + padding overhead: TBS bits consumed per application byte is
/// 8 * kL2OverheadFactor.
constexpr double kL2OverheadFactor = 1.08;

/// Default mapping of logical channels to LCGs for BSR purposes: SRBs in
/// LCG 0, DRBs in LCG 2 (a common eNodeB configuration).
int default_lc_group(lte::Lcid lcid);

class RlcQueue {
 public:
  /// Enqueue `bytes` of SDU data on `lcid` (one packet).
  void enqueue(lte::Lcid lcid, std::uint32_t bytes);

  /// Drains up to `tb_bits` of transport block capacity across logical
  /// channels in priority order (lowest LCID first, so SRBs preempt DRBs).
  /// Returns application bytes removed.
  std::uint32_t dequeue(std::int64_t tb_bits);

  /// Drains from a single logical channel only.
  std::uint32_t dequeue_lcid(lte::Lcid lcid, std::int64_t tb_bits);

  std::uint32_t bytes_for_lcid(lte::Lcid lcid) const;
  std::uint32_t bytes_for_lc_group(int lcg) const;
  std::uint32_t total_bytes() const { return total_bytes_; }
  bool empty() const { return total_bytes_ == 0; }

  /// Transport block bits needed to fully drain the queue.
  std::int64_t bits_needed() const {
    return static_cast<std::int64_t>(static_cast<double>(total_bytes_) * 8.0 * kL2OverheadFactor) +
           (total_bytes_ > 0 ? 8 : 0);
  }

 private:
  struct Channel {
    std::deque<std::uint32_t> packets;  // per-packet byte counts
    std::uint32_t bytes = 0;
  };

  std::map<lte::Lcid, Channel> channels_;
  std::uint32_t total_bytes_ = 0;
};

}  // namespace flexran::stack
