#include "stack/enodeb.h"

#include <algorithm>
#include <cassert>

#include "lte/tables.h"
#include "util/logging.h"

namespace flexran::stack {

namespace {
/// Window (TTIs) of the proportional-fair rate average.
constexpr double kPfWindowTtis = 100.0;
}  // namespace

const char* to_string(RrcState state) {
  switch (state) {
    case RrcState::idle: return "idle";
    case RrcState::connecting: return "connecting";
    case RrcState::connected: return "connected";
  }
  return "?";
}

EnodebDataPlane::EnodebDataPlane(sim::Simulator& sim, lte::EnbConfig config,
                                 phy::RadioEnvironment* env, std::uint64_t seed)
    : sim_(sim), config_(std::move(config)), env_(env), error_model_(seed) {}

// ------------------------------------------------------------ UE lifecycle

lte::Rnti EnodebDataPlane::add_ue(UeProfile profile) {
  lte::Rnti rnti = profile.config.rnti;
  if (rnti == lte::kInvalidRnti) rnti = next_rnti_++;
  UeContext ue;
  ue.config = profile.config;
  ue.config.rnti = rnti;
  ue.config.primary_cell = cell_id();
  ue.dl_channel = std::move(profile.dl_channel);
  ue.radio_profile = profile.radio_profile;
  ue.mobility = std::move(profile.mobility);
  if (ue.mobility != nullptr) {
    ue.radio_profile = ue.mobility->profile_at(sim_.now(), cell_id());
  }
  ue.ul_cqi = profile.ul_cqi;
  ue.rach_at_subframe = std::max<std::int64_t>(current_subframe_ + 1, 0) + profile.attach_after_ttis;
  ues_.emplace(rnti, std::move(ue));
  return rnti;
}

util::Status EnodebDataPlane::remove_ue(lte::Rnti rnti) {
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return util::Error::not_found("remove_ue: unknown rnti");
  const bool was_connected = it->second.connected();
  ues_.erase(it);
  pending_retx_.erase(rnti);
  std::erase_if(in_flight_, [rnti](const InFlight& f) { return f.rnti == rnti; });
  if (was_connected && listener_ != nullptr) listener_->on_ue_detached(rnti, current_subframe_);
  return {};
}

util::Result<UeProfile> EnodebDataPlane::trigger_handover(lte::Rnti rnti) {
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return util::Error::not_found("handover: unknown rnti");
  UeProfile profile;
  profile.config = it->second.config;
  profile.config.primary_cell = 0;
  profile.dl_channel = std::move(it->second.dl_channel);
  profile.radio_profile = it->second.radio_profile;
  profile.mobility = it->second.mobility;
  profile.ul_cqi = it->second.ul_cqi;
  profile.attach_after_ttis = 1;
  const bool was_connected = it->second.connected();
  ues_.erase(it);
  pending_retx_.erase(rnti);
  std::erase_if(in_flight_, [rnti](const InFlight& f) { return f.rnti == rnti; });
  if (was_connected && listener_ != nullptr) listener_->on_ue_detached(rnti, current_subframe_);
  return profile;
}

// ----------------------------------------------------------------- TTI flow

void EnodebDataPlane::subframe_begin(std::int64_t subframe) {
  current_subframe_ = subframe;
  dl_prbs_last_tti_ = 0;
  ul_prbs_last_tti_ = 0;
  // This cell is silent until a decision allocates downlink PRBs.
  if (env_ != nullptr) env_->set_transmitting(cell_id(), false);

  process_harq_feedback(subframe);
  process_attach_fsm(subframe);
  sample_cqi(subframe);

  if (listener_ != nullptr) listener_->on_subframe_start(subframe);
}

void EnodebDataPlane::subframe_end(std::int64_t subframe) {
  // Stamp the channel actually experienced by this subframe's transmissions
  // (the full active set is known only now).
  for (auto& flight : in_flight_) {
    if (flight.tx_subframe != subframe || flight.actual_cqi >= 0 ||
        flight.direction != lte::Direction::downlink) {
      continue;
    }
    const auto it = ues_.find(flight.rnti);
    if (it == ues_.end()) {
      flight.actual_cqi = 0;
    } else if (flight.carrier == 0) {
      flight.actual_cqi = current_dl_cqi(it->second);
    } else {
      // The SCell sits on its own frequency: no inter-cell interference
      // coupling, so the clean (protected) channel applies.
      flight.actual_cqi = it->second.reported_cqi_protected;
    }
  }
  // Proportional-fair averages advance every TTI, delivered or not.
  for (auto& [rnti, ue] : ues_) {
    (void)rnti;
    const double delivered_bits = static_cast<double>(ue.dl_bytes_this_tti) * 8.0;
    ue.avg_dl_rate_bits += (delivered_bits - ue.avg_dl_rate_bits) / kPfWindowTtis;
    ue.dl_bytes_this_tti = 0;
  }
}

void EnodebDataPlane::process_attach_fsm(std::int64_t subframe) {
  for (auto& [rnti, ue] : ues_) {
    switch (ue.rrc_state) {
      case RrcState::idle:
        if (subframe >= ue.rach_at_subframe) {
          ue.rrc_state = RrcState::connecting;
          ue.attach_deadline = subframe + kAttachTimeoutTtis;
          ue.setup_bytes_delivered = 0;
          ue.dl_queue.enqueue(lte::kSrb1, kRrcSetupBytes);
          if (listener_ != nullptr) listener_->on_rach(rnti, subframe);
        }
        break;
      case RrcState::connecting:
        if (subframe > ue.attach_deadline) {
          // RRC setup timed out; restart RACH (drain stale SRB signaling).
          (void)ue.dl_queue.dequeue_lcid(lte::kSrb1, 1'000'000'000);
          ue.rrc_state = RrcState::idle;
          ue.rach_at_subframe = subframe + 1;
        }
        break;
      case RrcState::connected:
        break;
    }
  }
}

void EnodebDataPlane::process_harq_feedback(std::int64_t subframe) {
  const std::int64_t feedback_for = subframe - lte::kHarqFeedbackDelayTtis;
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->tx_subframe != feedback_for) {
      ++it;
      continue;
    }
    InFlight flight = *it;
    it = in_flight_.erase(it);

    auto ue_it = ues_.find(flight.rnti);
    if (ue_it == ues_.end()) continue;  // UE left meanwhile
    UeContext& ue = ue_it->second;

    const int actual_cqi =
        flight.direction == lte::Direction::downlink ? std::max(flight.actual_cqi, 0) : ue.ul_cqi;
    const bool ok = error_model_.transport_block_ok(flight.mcs, actual_cqi, flight.retx_count);

    if (flight.direction == lte::Direction::downlink) {
      lte::HarqEntity& harq = flight.carrier == 0 ? ue.dl_harq : ue.dl_harq_scell;
      if (ok) {
        harq.ack(flight.harq_pid);
        ++ue.dl_blocks_acked;
        deliver(ue, flight.rnti, flight.app_bytes, lte::Direction::downlink, subframe);
      } else {
        ++ue.dl_blocks_nacked;
        if (harq.nack(flight.harq_pid)) {
          flight.retx_count += 1;
          flight.actual_cqi = -1;
          pending_retx_[flight.rnti].push_back(flight);
        } else {
          // HARQ gave up; RLC AM recovers by requeueing the SDU bytes.
          ue.dl_queue.enqueue(lte::kDefaultDrb, flight.app_bytes);
        }
      }
    } else {  // uplink
      if (ok) {
        deliver(ue, flight.rnti, flight.app_bytes, lte::Direction::uplink, subframe);
      } else {
        // RLC AM on the UE side retransmits: bytes return to its buffer.
        ue.ul_buffer_bytes += flight.app_bytes;
      }
    }
  }
}

void EnodebDataPlane::sample_cqi(std::int64_t /*subframe*/) {
  for (auto& [rnti, ue] : ues_) {
    (void)rnti;
    if (ue.mobility != nullptr) {
      ue.radio_profile = ue.mobility->profile_at(sim_.now(), cell_id());
    }
    ue.reported_cqi = current_dl_cqi(ue);
    if (ue.radio_profile.has_value()) {
      // Protected (ABS) measurement: no interferers active.
      ue.reported_cqi_protected = lte::sinr_db_to_cqi(ue.radio_profile->sinr_db({}));
    } else {
      ue.reported_cqi_protected = ue.reported_cqi;
    }
  }
}

int EnodebDataPlane::current_dl_cqi(const UeContext& ue) const {
  if (ue.radio_profile.has_value() && env_ != nullptr) {
    return lte::sinr_db_to_cqi(env_->sinr_db(*ue.radio_profile));
  }
  if (ue.dl_channel != nullptr) return ue.dl_channel->cqi(sim_.now());
  return lte::kMaxCqi;  // ideal channel by default
}

void EnodebDataPlane::deliver(UeContext& ue, lte::Rnti rnti, std::uint32_t bytes,
                              lte::Direction direction, std::int64_t subframe) {
  if (direction == lte::Direction::downlink) {
    ue.dl_bytes_delivered += bytes;
    ue.dl_bytes_this_tti += bytes;
    if (ue.rrc_state == RrcState::connecting) {
      // SRB signaling drains before DRB data, so attach progress is bounded
      // by total delivered bytes while connecting.
      ue.setup_bytes_delivered += bytes;
      if (ue.setup_bytes_delivered >= kRrcSetupBytes) {
        ue.rrc_state = RrcState::connected;
        if (listener_ != nullptr) listener_->on_ue_attached(rnti, subframe);
      }
    }
  } else {
    ue.ul_bytes_received += bytes;
  }
  if (on_delivery_) on_delivery_(rnti, bytes, direction);
}

// ------------------------------------------------------------- decisions

util::Status EnodebDataPlane::apply_scheduling_decision(const lte::SchedulingDecision& decision) {
  if (decision.subframe != current_subframe_) {
    ++grants_rejected_;
    return util::Error::invalid_argument("decision targets a different subframe");
  }
  auto dl_status = apply_dl(decision);
  auto ul_status = apply_ul(decision);
  ++decisions_applied_;
  if (!dl_status.ok()) return dl_status;
  return ul_status;
}

util::Status EnodebDataPlane::apply_dl(const lte::SchedulingDecision& decision) {
  if (decision.dl.empty()) return {};
  if (muted_in(current_subframe_)) {
    grants_rejected_ += decision.dl.size();
    return util::Error::conflict("cell is muted in this (almost-blank) subframe");
  }

  // Independent PRB budgets per component carrier.
  const std::array<int, 2> carrier_prbs = {effective_dl_prbs(), scell_prbs()};
  std::array<lte::RbAllocation, 2> used{};
  bool pcell_transmitted = false;

  for (const auto& dci : decision.dl) {
    auto ue_it = ues_.find(dci.rnti);
    if (ue_it == ues_.end() || ue_it->second.rrc_state == RrcState::idle ||
        ue_it->second.drx_sleeping(current_subframe_)) {
      ++grants_rejected_;
      continue;
    }
    UeContext& ue = ue_it->second;
    if (dci.carrier > 1 || (dci.carrier == 1 && !ue.scell_active)) {
      ++grants_rejected_;
      continue;
    }
    const int max_prbs = carrier_prbs[dci.carrier];
    if (max_prbs == 0 || dci.rbs.empty() || dci.rbs.count() > max_prbs ||
        dci.rbs.highest_set() >= max_prbs || dci.rbs.overlaps(used[dci.carrier])) {
      ++grants_rejected_;
      continue;
    }
    lte::HarqEntity& harq = dci.carrier == 0 ? ue.dl_harq : ue.dl_harq_scell;

    // Pending HARQ retransmissions on this carrier consume the grant first.
    auto retx_it = pending_retx_.find(dci.rnti);
    if (retx_it != pending_retx_.end()) {
      auto flight_it =
          std::find_if(retx_it->second.begin(), retx_it->second.end(),
                       [&](const InFlight& f) { return f.carrier == dci.carrier; });
      if (flight_it != retx_it->second.end()) {
        InFlight flight = *flight_it;
        retx_it->second.erase(flight_it);
        if (retx_it->second.empty()) pending_retx_.erase(retx_it);
        flight.tx_subframe = current_subframe_;
        harq.start(flight.harq_pid, 0, flight.mcs, flight.n_prb, current_subframe_);
        in_flight_.push_back(flight);
        used[dci.carrier].merge(dci.rbs);
        dl_prbs_last_tti_ += static_cast<std::uint64_t>(dci.rbs.count());
        pcell_transmitted |= dci.carrier == 0;
        continue;
      }
    }

    if (ue.dl_queue.empty()) continue;  // nothing to send; grant unused
    const auto free_pid = harq.find_free_process();
    if (!free_pid.has_value()) {
      ++grants_rejected_;
      continue;
    }

    std::int64_t tbs = dci.tbs();
    tbs = std::min(tbs, lte::category_max_tbs_bits(ue.config.ue_category));
    const std::uint32_t drained = ue.dl_queue.dequeue(tbs);
    if (drained == 0) continue;

    InFlight flight;
    flight.rnti = dci.rnti;
    flight.direction = lte::Direction::downlink;
    flight.carrier = dci.carrier;
    flight.harq_pid = *free_pid;
    flight.app_bytes = drained;
    flight.mcs = dci.mcs;
    flight.n_prb = dci.rbs.count();
    flight.tx_subframe = current_subframe_;
    harq.start(*free_pid, static_cast<std::int64_t>(drained) * 8, dci.mcs, flight.n_prb,
               current_subframe_);
    in_flight_.push_back(flight);
    used[dci.carrier].merge(dci.rbs);
    dl_prbs_last_tti_ += static_cast<std::uint64_t>(dci.rbs.count());
    pcell_transmitted |= dci.carrier == 0;
  }

  // The SCell lives on its own frequency; only PCell activity interferes.
  if (pcell_transmitted && env_ != nullptr) env_->set_transmitting(cell_id(), true);
  return {};
}

util::Status EnodebDataPlane::set_scell_active(lte::Rnti rnti, bool active) {
  if (!config_.scell.has_value()) {
    return util::Error::unsupported("eNodeB has no secondary carrier configured");
  }
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return util::Error::not_found("set_scell_active: unknown rnti");
  if (active && !it->second.config.carrier_aggregation) {
    return util::Error::invalid_argument("UE is not CA-capable");
  }
  it->second.scell_active = active;
  return {};
}

util::Status EnodebDataPlane::apply_ul(const lte::SchedulingDecision& decision) {
  if (decision.ul.empty()) return {};
  const int max_prbs = config_.cells[0].ul_prbs();
  lte::RbAllocation used;

  for (const auto& dci : decision.ul) {
    auto ue_it = ues_.find(dci.rnti);
    if (ue_it == ues_.end() || !ue_it->second.connected()) {
      ++grants_rejected_;
      continue;
    }
    if (dci.rbs.empty() || dci.rbs.count() > max_prbs || dci.rbs.overlaps(used)) {
      ++grants_rejected_;
      continue;
    }
    UeContext& ue = ue_it->second;
    if (ue.ul_buffer_bytes == 0) continue;

    const std::int64_t tbs = dci.tbs();
    const auto budget = static_cast<std::uint32_t>(static_cast<double>(tbs) /
                                                   (8.0 * kL2OverheadFactor));
    const std::uint32_t take = std::min(ue.ul_buffer_bytes, budget);
    if (take == 0) continue;
    ue.ul_buffer_bytes -= take;
    ue.ul_sr_pending = false;

    InFlight flight;
    flight.rnti = dci.rnti;
    flight.direction = lte::Direction::uplink;
    flight.app_bytes = take;
    flight.mcs = dci.mcs;
    flight.n_prb = dci.rbs.count();
    flight.tx_subframe = current_subframe_;
    flight.actual_cqi = ue.ul_cqi;
    in_flight_.push_back(flight);
    used.merge(dci.rbs);
    ul_prbs_last_tti_ += static_cast<std::uint64_t>(dci.rbs.count());
  }
  return {};
}

void EnodebDataPlane::configure_abs(lte::AbsPattern pattern, bool mute_during_abs) {
  abs_pattern_ = pattern;
  abs_mute_ = mute_during_abs;
}

util::Status EnodebDataPlane::configure_drx(lte::Rnti rnti, std::uint16_t cycle_ttis,
                                            std::uint16_t on_duration_ttis) {
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return util::Error::not_found("configure_drx: unknown rnti");
  if (cycle_ttis > 0 && on_duration_ttis == 0) {
    return util::Error::invalid_argument("DRX on-duration must be > 0");
  }
  it->second.drx_cycle_ttis = cycle_ttis;
  it->second.drx_on_duration_ttis = on_duration_ttis;
  return {};
}

// --------------------------------------------------------------- Read API

std::vector<lte::Rnti> EnodebDataPlane::ue_rntis() const {
  std::vector<lte::Rnti> out;
  out.reserve(ues_.size());
  for (const auto& [rnti, ue] : ues_) {
    (void)ue;
    out.push_back(rnti);
  }
  return out;
}

const UeContext* EnodebDataPlane::ue(lte::Rnti rnti) const {
  auto it = ues_.find(rnti);
  return it == ues_.end() ? nullptr : &it->second;
}

std::vector<SchedUeInfo> EnodebDataPlane::scheduler_view() const {
  std::vector<SchedUeInfo> out;
  out.reserve(ues_.size());
  for (const auto& [rnti, ue] : ues_) {
    SchedUeInfo info;
    info.rnti = rnti;
    info.connected = ue.connected();
    info.dl_queue_bytes = ue.dl_queue.total_bytes();
    info.dl_bits_needed = ue.dl_queue.bits_needed();
    info.cqi = ue.reported_cqi;
    info.cqi_protected = ue.reported_cqi_protected;
    auto retx_it = pending_retx_.find(rnti);
    info.pending_dl_retx = retx_it == pending_retx_.end()
                               ? 0
                               : static_cast<int>(retx_it->second.size());
    info.ul_buffer_bytes = ue.ul_buffer_bytes;
    info.ul_cqi = ue.ul_cqi;
    info.avg_dl_rate_bits = ue.avg_dl_rate_bits;
    info.scell_active = ue.scell_active;
    // Sleeping UEs are not schedulable this subframe.
    if (ue.rrc_state != RrcState::idle && !ue.drx_sleeping(current_subframe_)) {
      out.push_back(info);
    }
  }
  return out;
}

proto::UeStatsReport EnodebDataPlane::ue_stats(lte::Rnti rnti) const {
  proto::UeStatsReport report;
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return report;
  const UeContext& ue = it->second;
  report.rnti = rnti;
  for (int lcg = 0; lcg < lte::kNumLcGroups; ++lcg) {
    report.bsr_bytes[static_cast<std::size_t>(lcg)] = ue.dl_queue.bytes_for_lc_group(lcg);
  }
  report.wb_cqi = static_cast<std::uint8_t>(ue.reported_cqi);
  report.wb_cqi_protected = static_cast<std::uint8_t>(ue.reported_cqi_protected);
  report.rlc_queue_bytes = ue.dl_queue.total_bytes();
  auto retx_it = pending_retx_.find(rnti);
  report.pending_harq =
      retx_it == pending_retx_.end() ? 0 : static_cast<std::uint32_t>(retx_it->second.size());
  report.dl_bytes_delivered = ue.dl_bytes_delivered;
  report.ul_bytes_received = ue.ul_bytes_received;
  report.ul_buffer_bytes = ue.ul_buffer_bytes;
  if (ue.radio_profile.has_value()) {
    for (const auto& [cell, power_dbm] : ue.radio_profile->rx_power_dbm) {
      report.rsrp.push_back({cell, power_dbm});
    }
  }
  return report;
}

proto::CellStatsReport EnodebDataPlane::cell_stats() const {
  proto::CellStatsReport report;
  report.cell_id = cell_id();
  report.noise_interference_dbm = phy::kNoiseFloorDbm;
  report.dl_prbs_in_use = static_cast<std::uint32_t>(dl_prbs_last_tti_);
  report.ul_prbs_in_use = static_cast<std::uint32_t>(ul_prbs_last_tti_);
  std::uint32_t connected = 0;
  for (const auto& [rnti, ue] : ues_) {
    (void)rnti;
    if (ue.connected()) ++connected;
  }
  report.active_ues = connected;
  return report;
}

// ----------------------------------------------------------------- traffic

void EnodebDataPlane::enqueue_dl(lte::Rnti rnti, lte::Lcid lcid, std::uint32_t bytes) {
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return;
  it->second.dl_queue.enqueue(lcid, bytes);
}

void EnodebDataPlane::enqueue_ul(lte::Rnti rnti, std::uint32_t bytes) {
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return;
  UeContext& ue = it->second;
  const bool was_empty = ue.ul_buffer_bytes == 0;
  ue.ul_buffer_bytes += bytes;
  if (was_empty && !ue.ul_sr_pending && ue.connected()) {
    ue.ul_sr_pending = true;
    if (listener_ != nullptr) listener_->on_scheduling_request(rnti, current_subframe_);
  }
}

}  // namespace flexran::stack
