// The eNodeB data plane: the *action* half of the split the paper makes.
// It applies scheduling decisions, performs attach/handover signaling,
// moves bytes, runs HARQ, and raises events -- but contains no control
// logic. All decisions enter through apply_scheduling_decision /
// configure_abs / trigger_handover, i.e. through the FlexRAN Agent API.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "lte/abs.h"
#include "lte/allocation.h"
#include "lte/types.h"
#include "phy/error_model.h"
#include "phy/radio_env.h"
#include "proto/messages.h"
#include "sim/simulator.h"
#include "stack/ue_context.h"

namespace flexran::stack {

/// Everything a MAC scheduler needs to know about one UE for one TTI.
/// Snapshotted by the data plane; VSFs and the master make decisions from
/// this (directly or via stats reports).
struct SchedUeInfo {
  lte::Rnti rnti = lte::kInvalidRnti;
  bool connected = false;
  std::uint32_t dl_queue_bytes = 0;
  std::int64_t dl_bits_needed = 0;
  int cqi = 0;
  int cqi_protected = 0;
  int pending_dl_retx = 0;
  std::uint32_t ul_buffer_bytes = 0;
  int ul_cqi = 0;
  /// Long-run average delivered rate (bits/TTI), for PF metric computation.
  double avg_dl_rate_bits = 0.0;
  /// Carrier aggregation: the UE's secondary carrier is active.
  bool scell_active = false;
};

class EnodebDataPlane {
 public:
  /// Data-plane events; the FlexRAN agent implements this to turn them into
  /// protocol notifications (Table 1 "Event-triggers") and to run
  /// scheduling VSFs at subframe start.
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void on_subframe_start(std::int64_t subframe) { (void)subframe; }
    virtual void on_rach(lte::Rnti rnti, std::int64_t subframe) { (void)rnti, (void)subframe; }
    virtual void on_ue_attached(lte::Rnti rnti, std::int64_t subframe) {
      (void)rnti, (void)subframe;
    }
    virtual void on_ue_detached(lte::Rnti rnti, std::int64_t subframe) {
      (void)rnti, (void)subframe;
    }
    virtual void on_scheduling_request(lte::Rnti rnti, std::int64_t subframe) {
      (void)rnti, (void)subframe;
    }
  };

  using DeliveryFn =
      std::function<void(lte::Rnti, std::uint32_t bytes, lte::Direction direction)>;

  EnodebDataPlane(sim::Simulator& sim, lte::EnbConfig config,
                  phy::RadioEnvironment* env = nullptr, std::uint64_t seed = 1);

  void set_listener(Listener* listener) { listener_ = listener; }
  void set_delivery_callback(DeliveryFn fn) { on_delivery_ = std::move(fn); }

  // ---- TTI driving (wired to the TtiTicker by the scenario) --------------
  void subframe_begin(std::int64_t subframe);
  void subframe_end(std::int64_t subframe);

  // ---- UE management ------------------------------------------------------
  /// Adds a UE; it will RACH after profile.attach_after_ttis. Returns the
  /// assigned RNTI.
  lte::Rnti add_ue(UeProfile profile);
  util::Status remove_ue(lte::Rnti rnti);

  // ---- Action API (called via the FlexRAN Agent API) ----------------------
  /// Applies a decision for the *current* subframe. Grants targeting other
  /// subframes are rejected (the agent owns schedule-ahead buffering).
  util::Status apply_scheduling_decision(const lte::SchedulingDecision& decision);
  void configure_abs(lte::AbsPattern pattern, bool mute_during_abs);
  /// (De)activates a UE's secondary component carrier (Table 1 CA
  /// commands). Requires an SCell in the eNodeB config and a CA-capable UE.
  util::Status set_scell_active(lte::Rnti rnti, bool active);
  /// PRBs of the secondary carrier; 0 when no SCell is configured.
  int scell_prbs() const { return config_.scell.has_value() ? config_.scell->dl_prbs() : 0; }
  /// Configures DRX for a UE (Table 1 "DRX commands"); while the UE sleeps
  /// it is hidden from scheduler views and grants to it are rejected.
  util::Status configure_drx(lte::Rnti rnti, std::uint16_t cycle_ttis,
                             std::uint16_t on_duration_ttis);
  /// Restricts downlink to the first `max_dl_prbs` PRBs (0 = unrestricted);
  /// the LSA spectrum-sharing action (upper PRBs evacuated for an
  /// incumbent). Grants touching evacuated PRBs are rejected.
  void restrict_dl_prbs(int max_dl_prbs) { dl_prb_cap_ = max_dl_prbs; }
  /// Usable downlink PRBs after any carrier restriction.
  int effective_dl_prbs() const {
    const int configured = config_.cells[0].dl_prbs();
    return dl_prb_cap_ > 0 ? std::min(dl_prb_cap_, configured) : configured;
  }
  /// RRC action part of a handover: detaches the UE here and reports its
  /// context so the scenario/agent can re-attach it at the target cell.
  util::Result<UeProfile> trigger_handover(lte::Rnti rnti);

  // ---- Read API ------------------------------------------------------------
  const lte::EnbConfig& config() const { return config_; }
  lte::CellId cell_id() const { return config_.cells[0].cell_id; }
  std::int64_t current_subframe() const { return current_subframe_; }
  bool is_abs(std::int64_t subframe) const { return abs_pattern_.is_abs(subframe); }
  bool muted_in(std::int64_t subframe) const {
    return abs_mute_ && abs_pattern_.is_abs(subframe);
  }
  const lte::AbsPattern& abs_pattern() const { return abs_pattern_; }

  std::vector<lte::Rnti> ue_rntis() const;
  const UeContext* ue(lte::Rnti rnti) const;
  std::size_t ue_count() const { return ues_.size(); }

  /// Scheduler-facing snapshot of all UEs (the Agent API "statistics" read).
  std::vector<SchedUeInfo> scheduler_view() const;
  proto::UeStatsReport ue_stats(lte::Rnti rnti) const;
  proto::CellStatsReport cell_stats() const;

  // ---- Traffic plumbing (EPC / UE applications) ---------------------------
  void enqueue_dl(lte::Rnti rnti, lte::Lcid lcid, std::uint32_t bytes);
  void enqueue_ul(lte::Rnti rnti, std::uint32_t bytes);

  // ---- Introspection / counters -------------------------------------------
  std::uint64_t decisions_applied() const { return decisions_applied_; }
  std::uint64_t grants_rejected() const { return grants_rejected_; }
  std::uint64_t dl_prbs_used_last_tti() const { return dl_prbs_last_tti_; }

 private:
  struct InFlight {
    lte::Rnti rnti = lte::kInvalidRnti;
    lte::Direction direction = lte::Direction::downlink;
    std::uint8_t carrier = 0;
    std::uint8_t harq_pid = 0;
    std::uint32_t app_bytes = 0;
    int mcs = 0;
    int n_prb = 0;
    std::int64_t tx_subframe = 0;
    int retx_count = 0;
    int actual_cqi = -1;  // stamped at subframe_end of the tx subframe
  };

  void process_attach_fsm(std::int64_t subframe);
  void process_harq_feedback(std::int64_t subframe);
  void sample_cqi(std::int64_t subframe);
  void deliver(UeContext& ue, lte::Rnti rnti, std::uint32_t bytes, lte::Direction direction,
               std::int64_t subframe);
  int current_dl_cqi(const UeContext& ue) const;
  util::Status apply_dl(const lte::SchedulingDecision& decision);
  util::Status apply_ul(const lte::SchedulingDecision& decision);

  sim::Simulator& sim_;
  lte::EnbConfig config_;
  phy::RadioEnvironment* env_;  // nullable; not owned
  phy::ErrorModel error_model_;
  Listener* listener_ = nullptr;
  DeliveryFn on_delivery_;

  std::map<lte::Rnti, UeContext> ues_;
  std::map<lte::Rnti, std::vector<InFlight>> pending_retx_;
  std::vector<InFlight> in_flight_;

  lte::AbsPattern abs_pattern_;
  bool abs_mute_ = false;
  int dl_prb_cap_ = 0;

  lte::Rnti next_rnti_ = 70;  // OAI-style first C-RNTI
  std::int64_t current_subframe_ = -1;
  std::uint64_t decisions_applied_ = 0;
  std::uint64_t grants_rejected_ = 0;
  std::uint64_t dl_prbs_last_tti_ = 0;
  std::uint64_t ul_prbs_last_tti_ = 0;
};

}  // namespace flexran::stack
