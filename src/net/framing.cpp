#include "net/framing.h"

namespace flexran::net {

std::vector<std::uint8_t> frame_message(std::span<const std::uint8_t> payload) {
  util::ByteBuffer out;
  out.write_u32(static_cast<std::uint32_t>(payload.size()));
  out.write_bytes(payload);
  return out.take();
}

util::Status FrameAssembler::feed(std::span<const std::uint8_t> data, const FrameFn& on_frame) {
  buffer_.write_bytes(data);
  while (true) {
    if (buffer_.readable() < kFrameHeaderBytes) break;
    // Peek the length without consuming (read then rewind on partial frame).
    const std::size_t mark = buffer_.read_position();
    const std::uint32_t length = buffer_.read_u32().value();
    if (length > kMaxFrameBytes) {
      return util::Error::decode_failure("frame length exceeds limit");
    }
    if (buffer_.readable() < length) {
      // Partial frame: rewind to the header and wait for more bytes.
      buffer_.rewind();
      // Restore the read position to where this frame starts.
      for (std::size_t i = 0; i < mark; ++i) (void)buffer_.read_u8();
      break;
    }
    auto payload = buffer_.read_bytes(length).value();
    on_frame(std::move(payload));
  }
  buffer_.compact();
  return {};
}

}  // namespace flexran::net
