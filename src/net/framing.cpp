#include "net/framing.h"

namespace flexran::net {

std::vector<std::uint8_t> frame_message(std::span<const std::uint8_t> payload) {
  util::ByteBuffer out;
  frame_into(out, payload);
  return out.take();
}

void frame_into(util::ByteBuffer& out, std::span<const std::uint8_t> payload) {
  out.write_u32(static_cast<std::uint32_t>(payload.size()));
  out.write_bytes(payload);
}

util::Status FrameAssembler::feed(std::span<const std::uint8_t> data, const FrameFn& on_frame) {
  if (poisoned_) {
    return util::Error::decode_failure("frame assembler poisoned by earlier oversized frame");
  }
  buffer_.write_bytes(data);
  while (buffer_.readable() >= kFrameHeaderBytes) {
    const std::size_t mark = buffer_.read_position();
    const std::uint32_t length = buffer_.read_u32().value();
    if (length > kMaxFrameBytes) {
      // Leave the header buffered at the mark so the failure state is
      // deterministic, and poison: stream framing cannot recover from a
      // corrupt length prefix.
      buffer_.seek(mark);
      poisoned_ = true;
      return util::Error::decode_failure("frame length exceeds limit");
    }
    if (buffer_.readable() < length) {
      // Partial frame: O(1) restore to the header and wait for more bytes.
      buffer_.seek(mark);
      break;
    }
    const auto payload = buffer_.remaining().first(length);
    buffer_.skip(length);
    on_frame(payload);
  }
  buffer_.compact();
  return {};
}

void FrameAssembler::reset() {
  buffer_.clear();
  poisoned_ = false;
}

}  // namespace flexran::net
