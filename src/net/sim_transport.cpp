#include "net/sim_transport.h"

#include <utility>

#include "util/logging.h"
#include "util/rng.h"

namespace flexran::net {

util::Status SimTransport::send(std::span<const std::uint8_t> message) {
  if (!tx_) return util::Error::transport_failure("sim transport not connected");
  ++messages_sent_;
  tx_->send(frame_message(message));
  return {};
}

util::Status SimTransport::send(TrafficClass cls, std::span<const std::uint8_t> message) {
  if (!tx_) return util::Error::transport_failure("sim transport not connected");
  if (send_budget_.enabled() && sheddable(cls)) {
    const std::uint64_t frame_bytes = message.size() + kFrameHeaderBytes;
    if (send_budget_.max_bytes > 0 &&
        tx_->backlog_bytes() + frame_bytes > send_budget_.max_bytes) {
      // The link is saturated: dropping a fresh periodic report here beats
      // delivering it stale behind a multi-ms serializer backlog.
      ++frames_shed_;
      ++shed_by_class_[static_cast<std::size_t>(cls)];
      return {};
    }
  }
  return send(message);
}

void SimTransport::inject_disconnect(util::Error error) {
  if (disconnect_) disconnect_(std::move(error));
}

void SimTransport::reorder_next(int n, std::uint64_t seed) {
  if (n <= 0) return;
  reorder_remaining_ += n;
  reorder_seed_ = seed;
}

void SimTransport::reorder_flush() {
  reorder_remaining_ = 0;
  if (reorder_buffer_.empty()) return;
  auto held = std::move(reorder_buffer_);
  reorder_buffer_.clear();
  // Fisher-Yates with a seeded generator: the same schedule produces the
  // same shuffle, so reorder faults stay bit-deterministic per seed.
  util::Rng rng(reorder_seed_ ^ (frames_reordered_ + held.size()));
  for (std::size_t i = held.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i - 1)));
    std::swap(held[i - 1], held[j]);
  }
  frames_reordered_ += held.size();
  for (auto& frame : held) deliver_now(std::move(frame));
}

void SimTransport::deliver(std::vector<std::uint8_t> framed) {
  if (reorder_remaining_ > 0) {
    --reorder_remaining_;
    reorder_buffer_.push_back(std::move(framed));
    if (reorder_remaining_ == 0) reorder_flush();
    return;
  }
  deliver_now(std::move(framed));
}

void SimTransport::deliver_now(std::vector<std::uint8_t> framed) {
  if (corrupt_remaining_ > 0 && framed.size() > kFrameHeaderBytes) {
    --corrupt_remaining_;
    ++frames_corrupted_;
    for (std::size_t i = kFrameHeaderBytes; i < framed.size(); ++i) framed[i] |= 0x80;
  }
  bool duplicate = false;
  if (duplicate_remaining_ > 0 && framed.size() > kFrameHeaderBytes) {
    --duplicate_remaining_;
    ++frames_duplicated_;
    duplicate = true;
  }
  auto on_payload = [this](std::span<const std::uint8_t> payload) {
    ++messages_received_;
    if (receive_) receive_(payload);
  };
  auto status = assembler_.feed(framed, on_payload);
  if (status.ok() && duplicate) {
    // Feed the identical framed bytes again: the receiver sees the same
    // message twice, exactly like a retransmission after a lost ack.
    status = assembler_.feed(framed, on_payload);
  }
  if (!status.ok()) {
    FLEXRAN_LOG(error, "net") << "sim transport frame error: " << status.error().message;
    if (disconnect_) disconnect_(status.error());
  }
}

SimTransportPair make_sim_transport_pair(sim::Simulator& sim, const sim::LinkConfig& a_to_b,
                                         const sim::LinkConfig& b_to_a) {
  SimTransportPair pair;
  pair.a = std::make_unique<SimTransport>();
  pair.b = std::make_unique<SimTransport>();
  pair.a->tx_ = std::make_unique<sim::SimLink>(sim, a_to_b);
  pair.b->tx_ = std::make_unique<sim::SimLink>(sim, b_to_a);
  SimTransport* a = pair.a.get();
  SimTransport* b = pair.b.get();
  pair.a->tx_->set_deliver([b](std::vector<std::uint8_t> data) { b->deliver(std::move(data)); });
  pair.b->tx_->set_deliver([a](std::vector<std::uint8_t> data) { a->deliver(std::move(data)); });
  return pair;
}

}  // namespace flexran::net
