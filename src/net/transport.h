// Transport abstraction for the FlexRAN protocol channel (paper Sec. 4.3.2:
// "the communication channel implementation can vary"). Two implementations:
//   SimTransport - in-process, runs over sim::SimLink inside the
//                  discrete-event simulator (all experiments);
//   TcpTransport - real framed TCP sockets (integration tests / live use).
// Both are message-oriented at this interface; framing overhead is included
// in byte counts so signaling measurements match a TCP deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/flow_control.h"
#include "util/result.h"

namespace flexran::net {

class Transport {
 public:
  /// Receives one decoded-frame payload. The span points into the
  /// transport's receive buffer and is valid only for the duration of the
  /// callback: decode into owned state (or copy) before returning
  /// (docs/wire_fastpath.md). All frames available per wake are delivered in
  /// one drain pass, back to back, before the transport reads again.
  using ReceiveFn = std::function<void(std::span<const std::uint8_t>)>;
  /// Invoked once when the connection is irrecoverably gone (peer closed,
  /// socket error, corrupt framing, injected fault). After it fires, the
  /// owner should stop using the transport and drive its reconnect logic.
  using DisconnectFn = std::function<void(util::Error)>;

  virtual ~Transport() = default;

  /// Queues one protocol message for delivery to the peer.
  virtual util::Status send(std::span<const std::uint8_t> message) = 0;
  /// Class-aware send: a budgeted transport may shed sheddable classes
  /// under pressure (shedding is flow control, not an error -- the call
  /// still returns ok). Default ignores the class and forwards to send().
  virtual util::Status send(TrafficClass cls, std::span<const std::uint8_t> message) {
    (void)cls;
    return send(message);
  }
  /// Installs the outgoing budget for class-aware shedding. Default no-op:
  /// TCP already has native backpressure (blocking writes against the
  /// socket buffer), so only queue-modelled transports act on it.
  virtual void set_send_budget(QueueBudget budget) { (void)budget; }

  /// Registers the message sink; called once before traffic flows.
  virtual void set_receive_callback(ReceiveFn fn) = 0;
  /// Registers the disconnect sink (optional; default discards).
  virtual void set_disconnect_callback(DisconnectFn fn) { (void)fn; }

  virtual std::uint64_t messages_sent() const = 0;
  /// Bytes on the wire, including framing.
  virtual std::uint64_t bytes_sent() const = 0;
  /// Messages delivered to the receive callback.
  virtual std::uint64_t messages_received() const { return 0; }
  /// Frames lost on the path (partition drops), where the transport knows.
  virtual std::uint64_t frames_dropped() const { return 0; }
  /// Frames shed locally by the send budget (sheddable classes only).
  virtual std::uint64_t frames_shed() const { return 0; }
};

}  // namespace flexran::net
