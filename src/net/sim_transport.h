// In-process transport running over two sim::SimLinks (one per direction)
// inside the discrete-event simulator. Latency / jitter / rate / loss come
// from the link configuration -- this is the netem-shaped control channel
// used in the paper's Sec. 5.3 latency experiments.
#pragma once

#include <memory>

#include "net/framing.h"
#include "net/transport.h"
#include "sim/sim_link.h"
#include "sim/simulator.h"

namespace flexran::net {

class SimTransport;

/// A connected pair of endpoints. Create via make_sim_transport_pair.
struct SimTransportPair {
  std::unique_ptr<SimTransport> a;  // e.g. master side
  std::unique_ptr<SimTransport> b;  // e.g. agent side
};

class SimTransport final : public Transport {
 public:
  util::Status send(std::span<const std::uint8_t> message) override;
  /// Class-aware send with budget enforcement: when a send budget is set
  /// and the outgoing link's backlog would exceed it, sheddable classes
  /// are dropped here (counted per class) instead of queueing behind the
  /// serializer; unsheddable traffic always goes out.
  util::Status send(TrafficClass cls, std::span<const std::uint8_t> message) override;
  void set_send_budget(QueueBudget budget) override { send_budget_ = budget; }
  const QueueBudget& send_budget() const { return send_budget_; }

  void set_receive_callback(ReceiveFn fn) override { receive_ = std::move(fn); }
  void set_disconnect_callback(DisconnectFn fn) override { disconnect_ = std::move(fn); }

  std::uint64_t messages_sent() const override { return messages_sent_; }
  std::uint64_t bytes_sent() const override { return tx_ ? tx_->bytes_sent() : 0; }
  std::uint64_t messages_received() const override { return messages_received_; }
  /// Frames the outgoing link dropped on the floor (partition).
  std::uint64_t frames_dropped() const override { return tx_ ? tx_->packets_dropped() : 0; }
  std::uint64_t frames_shed() const override { return frames_shed_; }
  std::uint64_t frames_shed(TrafficClass cls) const {
    return shed_by_class_[static_cast<std::size_t>(cls)];
  }

  /// Runtime latency control for this endpoint's outgoing link.
  void set_delay(sim::TimeUs delay) {
    if (tx_) tx_->set_delay(delay);
  }
  sim::TimeUs delay() const { return tx_ ? tx_->config().delay : 0; }
  /// Partition control: while down, outgoing messages are dropped. The
  /// frame assembler tolerates this because whole frames are dropped.
  void set_down(bool down) {
    if (tx_) tx_->set_down(down);
  }
  bool down() const { return tx_ != nullptr && tx_->down(); }

  // ---- fault injection -----------------------------------------------------
  /// Fires this endpoint's disconnect callback, as a dead peer (TCP RST)
  /// would. The transport itself stays usable; lifecycle is the owner's.
  void inject_disconnect(util::Error error);
  /// Corrupts the payload of the next `n` frames delivered to this endpoint
  /// (every byte gets its top bit set, which is guaranteed to fail envelope
  /// decoding on non-empty bodies -- an unterminated varint).
  void corrupt_next(int n) { corrupt_remaining_ += n; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  /// Re-delivers the next `n` frames arriving at this endpoint a second
  /// time, back to back (a retransmit-after-ack duplicate). The receiver's
  /// xid/epoch dedup is supposed to make the copy a no-op.
  void duplicate_next(int n) { duplicate_remaining_ += n; }
  std::uint64_t frames_duplicated() const { return frames_duplicated_; }
  /// Holds back the next `n` frames delivered to this endpoint and
  /// releases them in a deterministically shuffled order once all `n`
  /// have arrived (or reorder_flush() gives up waiting). This
  /// deliberately bypasses SimLink's delivery-order floor -- the link
  /// serializer is strictly FIFO, so out-of-order arrival (multipath,
  /// kernel requeueing) can only be injected here, past the link. The
  /// session layer's xid/epoch logic is expected to absorb it.
  void reorder_next(int n, std::uint64_t seed = 0x5eedULL);
  /// Releases any frames still held by reorder_next even though fewer
  /// than `n` arrived. The fault injector schedules this as a deadline so
  /// a quiet channel (or a follow-up partition) cannot strand frames in
  /// the reorder buffer forever.
  void reorder_flush();
  std::uint64_t frames_reordered() const { return frames_reordered_; }

 private:
  friend SimTransportPair make_sim_transport_pair(sim::Simulator& sim,
                                                  const sim::LinkConfig& a_to_b,
                                                  const sim::LinkConfig& b_to_a);
  void deliver(std::vector<std::uint8_t> framed);
  void deliver_now(std::vector<std::uint8_t> framed);

  std::unique_ptr<sim::SimLink> tx_;
  FrameAssembler assembler_;
  ReceiveFn receive_;
  DisconnectFn disconnect_;
  QueueBudget send_budget_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
  std::uint64_t frames_shed_ = 0;
  std::array<std::uint64_t, kNumTrafficClasses> shed_by_class_{};
  int corrupt_remaining_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  int duplicate_remaining_ = 0;
  std::uint64_t frames_duplicated_ = 0;
  int reorder_remaining_ = 0;
  std::uint64_t reorder_seed_ = 0;
  std::vector<std::vector<std::uint8_t>> reorder_buffer_;
  std::uint64_t frames_reordered_ = 0;
};

/// Creates two endpoints joined by independent directional links (so
/// asymmetric channels can be modeled).
SimTransportPair make_sim_transport_pair(sim::Simulator& sim, const sim::LinkConfig& a_to_b,
                                         const sim::LinkConfig& b_to_a);

/// Symmetric convenience overload.
inline SimTransportPair make_sim_transport_pair(sim::Simulator& sim,
                                                const sim::LinkConfig& both = {}) {
  return make_sim_transport_pair(sim, both, both);
}

}  // namespace flexran::net
