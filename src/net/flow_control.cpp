#include "net/flow_control.h"

namespace flexran::net {

const char* to_string(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::session: return "session";
    case TrafficClass::command: return "command";
    case TrafficClass::config: return "config";
    case TrafficClass::event: return "event";
    case TrafficClass::sync: return "sync";
    case TrafficClass::stats: return "stats";
  }
  return "?";
}

}  // namespace flexran::net
