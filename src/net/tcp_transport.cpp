#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <optional>

#include "util/logging.h"

namespace flexran::net {

namespace {

util::Error errno_error(const char* what) {
  return util::Error::transport_failure(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

// ------------------------------------------------------------ TcpTransport

TcpTransport::~TcpTransport() { close(); }

util::Result<std::unique_ptr<TcpTransport>> TcpTransport::connect(const std::string& host,
                                                                  std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Error::invalid_argument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    auto err = errno_error("connect");
    ::close(fd);
    return err;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<TcpTransport>(new TcpTransport(fd));
}

util::Status TcpTransport::send(std::span<const std::uint8_t> message) {
  if (closed_.load()) return util::Error::transport_failure("transport closed");
  std::scoped_lock lock(send_mutex_);
  send_scratch_.clear();
  frame_into(send_scratch_, message);
  const auto framed = send_scratch_.contents();
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  messages_sent_.fetch_add(1);
  bytes_sent_.fetch_add(framed.size());
  return {};
}

void TcpTransport::set_receive_callback(ReceiveFn fn) { receive_ = std::move(fn); }

void TcpTransport::set_disconnect_callback(DisconnectFn fn) { disconnect_ = std::move(fn); }

void TcpTransport::start() {
  reader_ = std::thread([this] { reader_loop(); });
}

void TcpTransport::reader_loop() {
  std::array<std::uint8_t, 64 * 1024> chunk{};
  std::optional<util::Error> failure;
  while (!closed_.load()) {
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n == 0) {
      failure = util::Error::transport_failure("peer closed connection");
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      failure = errno_error("recv");
      break;
    }
    auto status = assembler_.feed(std::span(chunk.data(), static_cast<std::size_t>(n)),
                                  [this](std::span<const std::uint8_t> payload) {
                                    messages_received_.fetch_add(1);
                                    if (receive_) receive_(payload);
                                  });
    if (!status.ok()) {
      FLEXRAN_LOG(error, "net") << "tcp frame error: " << status.error().message;
      failure = status.error();
      break;
    }
  }
  // A local close() shuts the socket down and makes recv fail; that is an
  // orderly shutdown, not a connection loss, so the owner is not notified.
  const bool was_local_close = closed_.exchange(true);
  if (failure.has_value() && !was_local_close && disconnect_) {
    disconnect_(std::move(*failure));
  }
}

void TcpTransport::close() {
  const bool was_closed = closed_.exchange(true);
  if (!was_closed) {
    ::shutdown(fd_, SHUT_RDWR);
  }
  if (reader_.joinable() && reader_.get_id() != std::this_thread::get_id()) {
    reader_.join();
  }
  if (!was_closed) {
    ::close(fd_);
  }
}

// ------------------------------------------------------------- TcpListener

TcpListener::~TcpListener() { close(); }

util::Result<std::unique_ptr<TcpListener>> TcpListener::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    auto err = errno_error("bind");
    ::close(fd);
    return err;
  }
  if (::listen(fd, 8) != 0) {
    auto err = errno_error("listen");
    ::close(fd);
    return err;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    auto err = errno_error("getsockname");
    ::close(fd);
    return err;
  }
  return std::unique_ptr<TcpListener>(new TcpListener(fd, ntohs(addr.sin_port)));
}

util::Result<std::unique_ptr<TcpTransport>> TcpListener::accept() {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return errno_error("accept");
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<TcpTransport>(new TcpTransport(client));
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace flexran::net
