// Length-prefixed message framing over stream transports: 4-byte
// little-endian length followed by the payload (an encoded FlexRAN protocol
// envelope). FrameAssembler reassembles messages from an arbitrary-chunked
// byte stream (TCP segmentation).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace flexran::net {

constexpr std::size_t kFrameHeaderBytes = 4;
/// Upper bound on a single frame; protects against corrupt length prefixes.
constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;

/// Wraps a payload in a frame.
std::vector<std::uint8_t> frame_message(std::span<const std::uint8_t> payload);

/// Incremental frame reassembly.
class FrameAssembler {
 public:
  using FrameFn = std::function<void(std::vector<std::uint8_t>)>;

  /// Feed raw stream bytes; complete frames are handed to `on_frame` in
  /// order. Returns an error (and stops consuming) on a corrupt length.
  util::Status feed(std::span<const std::uint8_t> data, const FrameFn& on_frame);

  std::size_t buffered() const { return buffer_.readable(); }

 private:
  util::ByteBuffer buffer_;
};

}  // namespace flexran::net
