// Length-prefixed message framing over stream transports: 4-byte
// little-endian length followed by the payload (an encoded FlexRAN protocol
// envelope). FrameAssembler reassembles messages from an arbitrary-chunked
// byte stream (TCP segmentation).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace flexran::net {

constexpr std::size_t kFrameHeaderBytes = 4;
/// Upper bound on a single frame; protects against corrupt length prefixes.
constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;

/// Wraps a payload in a frame (allocates a fresh vector; hot paths use
/// frame_into with a reused buffer instead).
std::vector<std::uint8_t> frame_message(std::span<const std::uint8_t> payload);

/// Appends a framed copy of `payload` to `out`. The caller owns `out` and
/// clears it between sends (or batches several frames before flushing); with
/// a warm buffer this allocates nothing.
void frame_into(util::ByteBuffer& out, std::span<const std::uint8_t> payload);

/// Incremental frame reassembly.
class FrameAssembler {
 public:
  /// Frame payloads are handed out as spans into the assembler's internal
  /// buffer. The span is valid only for the duration of the callback, and the
  /// callback must not feed this assembler re-entrantly; receivers that need
  /// to keep bytes past the callback copy them (decoding into an owned
  /// message counts).
  using FrameFn = std::function<void(std::span<const std::uint8_t>)>;

  /// Feed raw stream bytes; complete frames are handed to `on_frame` in
  /// order. Returns an error and poisons the assembler on a corrupt length:
  /// after a frame claims more than kMaxFrameBytes the stream offset can no
  /// longer be trusted, so every later feed() fails deterministically (the
  /// offending header stays buffered, un-consumed) until reset(). Owners that
  /// reuse assemblers across fault injections (SimTransport) key off this
  /// instead of resynchronizing mid-stream.
  util::Status feed(std::span<const std::uint8_t> data, const FrameFn& on_frame);

  std::size_t buffered() const { return buffer_.readable(); }
  bool poisoned() const { return poisoned_; }
  /// Drops all buffered bytes and clears the poisoned state.
  void reset();

 private:
  util::ByteBuffer buffer_;
  bool poisoned_ = false;
};

}  // namespace flexran::net
