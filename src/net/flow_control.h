// Control-channel flow control (docs/overload_protection.md): traffic
// classes, queue budgets and the bounded class-aware queue used on every
// transport send/receive path. Classes follow the paper's Table 1 call
// classes, ordered by importance: session and configuration/command
// traffic is never shed; event triggers, sync ticks and periodic
// statistics are sheddable, lowest class first, and superseded periodic
// entries coalesce instead of queueing duplicates.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <utility>

namespace flexran::net {

/// Lower value = higher priority. The shed order is the reverse: stats
/// first, then sync ticks, then event triggers; session/command/config
/// traffic is never shed (a dropped command or hello is a correctness
/// bug, a dropped periodic report is a freshness loss).
enum class TrafficClass : std::uint8_t {
  session = 0,  // hello, echo (liveness + RTT reference)
  command = 1,  // MAC configs, handover, DRX, delegation, policy
  config = 2,   // config get/set exchange, stats requests, subscriptions
  event = 3,    // triggered event notifications (attach, RACH, VSF failure)
  sync = 4,     // subframe ticks (superseded every TTI)
  stats = 5,    // periodic/one-off statistics replies
};
constexpr std::size_t kNumTrafficClasses = 6;

const char* to_string(TrafficClass cls);

constexpr bool sheddable(TrafficClass cls) {
  return cls == TrafficClass::event || cls == TrafficClass::sync ||
         cls == TrafficClass::stats;
}

/// Byte + message budget for one queue or link. 0 = unbounded (the seed
/// behavior); either limit alone can be set.
struct QueueBudget {
  std::size_t max_messages = 0;
  std::size_t max_bytes = 0;

  constexpr bool enabled() const { return max_messages > 0 || max_bytes > 0; }
};

/// Per-class accounting for one queue (Fig. 7-style buckets, but for the
/// protection layer: what was admitted, shed, and coalesced).
struct ClassCounters {
  std::uint64_t enqueued = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_bytes = 0;
  std::uint64_t coalesced = 0;
};

/// Bounded FIFO with class-aware admission. Entries keep arrival order
/// across classes (the drain side stays FIFO; priority is enforced at
/// admission, where it decides what survives). When a budget is set:
///   - an entry pushed with a non-zero coalesce key replaces the payload
///     of the queued entry carrying the same key (same queue position, so
///     a superseded periodic report cannot jump the line);
///   - pushing past the budget sheds the oldest entry of the lowest
///     sheddable class present (stats -> sync -> event); if nothing is
///     sheddable the unsheddable entry is admitted anyway and counted as
///     a budget overflow (expected to stay 0 in any sane configuration).
/// Without a budget the queue behaves exactly like a plain deque -- no
/// shedding, no coalescing.
template <typename T>
class ClassedQueue {
 public:
  void set_budget(QueueBudget budget) { budget_ = budget; }
  const QueueBudget& budget() const { return budget_; }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::size_t peak_messages() const { return peak_messages_; }
  std::size_t peak_bytes() const { return peak_bytes_; }

  const ClassCounters& counters(TrafficClass cls) const {
    return counters_[static_cast<std::size_t>(cls)];
  }
  std::uint64_t total_shed() const {
    std::uint64_t total = 0;
    for (const auto& c : counters_) total += c.shed;
    return total;
  }
  std::uint64_t total_coalesced() const {
    std::uint64_t total = 0;
    for (const auto& c : counters_) total += c.coalesced;
    return total;
  }
  /// Unsheddable pushes admitted past the budget.
  std::uint64_t budget_overflows() const { return budget_overflows_; }

  /// Enqueues `value` (`coalesce_key` 0 = never coalesce). Returns false
  /// when the pushed entry itself was shed to stay within budget.
  bool push(TrafficClass cls, std::size_t message_bytes, std::uint64_t coalesce_key, T value) {
    auto& counters = counters_[static_cast<std::size_t>(cls)];
    ++counters.enqueued;
    if (budget_.enabled() && coalesce_key != 0) {
      auto indexed = index_.find(coalesce_key);
      if (indexed != index_.end()) {
        // Superseded in place: newest payload, oldest queue position.
        Entry& entry = *indexed->second;
        bytes_ += message_bytes - entry.bytes;
        entry.bytes = message_bytes;
        entry.value = std::move(value);
        ++counters.coalesced;
        note_peaks();
        return true;
      }
    }
    entries_.push_back(Entry{cls, message_bytes, coalesce_key, std::move(value)});
    bytes_ += message_bytes;
    if (budget_.enabled() && coalesce_key != 0) {
      index_.emplace(coalesce_key, std::prev(entries_.end()));
    }
    bool pushed_survived = true;
    while (over_budget()) {
      auto victim = pick_victim();
      if (victim == entries_.end()) {
        ++budget_overflows_;
        break;
      }
      if (std::next(victim) == entries_.end()) pushed_survived = false;
      shed(victim);
    }
    note_peaks();
    return pushed_survived;
  }

  /// FIFO pop across all classes.
  std::optional<T> pop() {
    if (entries_.empty()) return std::nullopt;
    Entry entry = std::move(entries_.front());
    if (entry.key != 0) index_.erase(entry.key);
    bytes_ -= entry.bytes;
    entries_.pop_front();
    return std::move(entry.value);
  }

  /// Removes every entry whose value matches `pred`; returns the count.
  template <typename Pred>
  std::size_t remove_if(Pred pred) {
    std::size_t removed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (pred(it->value)) {
        if (it->key != 0) index_.erase(it->key);
        bytes_ -= it->bytes;
        it = entries_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

 private:
  struct Entry {
    TrafficClass cls;
    std::size_t bytes = 0;
    std::uint64_t key = 0;
    T value;
  };
  using Iterator = typename std::list<Entry>::iterator;

  bool over_budget() const {
    return (budget_.max_messages > 0 && entries_.size() > budget_.max_messages) ||
           (budget_.max_bytes > 0 && bytes_ > budget_.max_bytes);
  }

  /// Oldest entry of the lowest sheddable class present.
  Iterator pick_victim() {
    for (TrafficClass cls : {TrafficClass::stats, TrafficClass::sync, TrafficClass::event}) {
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->cls == cls) return it;
      }
    }
    return entries_.end();
  }

  void shed(Iterator victim) {
    auto& counters = counters_[static_cast<std::size_t>(victim->cls)];
    ++counters.shed;
    counters.shed_bytes += victim->bytes;
    if (victim->key != 0) index_.erase(victim->key);
    bytes_ -= victim->bytes;
    entries_.erase(victim);
  }

  void note_peaks() {
    peak_messages_ = std::max(peak_messages_, entries_.size());
    peak_bytes_ = std::max(peak_bytes_, bytes_);
  }

  QueueBudget budget_;
  std::list<Entry> entries_;
  std::map<std::uint64_t, Iterator> index_;
  std::size_t bytes_ = 0;
  std::size_t peak_messages_ = 0;
  std::size_t peak_bytes_ = 0;
  std::uint64_t budget_overflows_ = 0;
  std::array<ClassCounters, kNumTrafficClasses> counters_{};
};

}  // namespace flexran::net
