// Real TCP transport: framed FlexRAN protocol messages over a socket, as in
// the paper's deployment ("TCP is used for the communication of the agents
// with the master"). Blocking sockets with one reader thread per
// connection; the receive callback runs on that thread.
//
// Threading contract: Agent and MasterController are single-threaded (they
// live inside the discrete-event simulator). When bridging them onto a
// TcpTransport, marshal received messages onto the owner's thread/event
// loop in the receive callback -- do not call into controller state from
// the reader thread directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/framing.h"
#include "net/transport.h"

namespace flexran::net {

class TcpTransport final : public Transport {
 public:
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  static util::Result<std::unique_ptr<TcpTransport>> connect(const std::string& host,
                                                             std::uint16_t port);

  util::Status send(std::span<const std::uint8_t> message) override;
  // Classified send(TrafficClass, ...) falls through to the base default:
  // the socket buffer gives TCP native backpressure, so no local shedding.
  using Transport::send;
  void set_receive_callback(ReceiveFn fn) override;
  /// The callback runs on the reader thread (same contract as receive),
  /// exactly once, when the peer closes, the socket errors, or the stream
  /// carries a corrupt frame. Not invoked by a local close().
  void set_disconnect_callback(DisconnectFn fn) override;

  /// Starts the reader thread. Call after set_receive_callback.
  void start();
  /// Shuts the socket down and joins the reader thread.
  void close();
  bool closed() const { return closed_.load(); }

  std::uint64_t messages_sent() const override { return messages_sent_.load(); }
  std::uint64_t bytes_sent() const override { return bytes_sent_.load(); }
  std::uint64_t messages_received() const override { return messages_received_.load(); }

 private:
  friend class TcpListener;
  explicit TcpTransport(int fd) : fd_(fd) {}
  void reader_loop();

  int fd_;
  std::thread reader_;
  std::mutex send_mutex_;
  /// Reused frame buffer (guarded by send_mutex_): steady-state sends do not
  /// allocate.
  util::ByteBuffer send_scratch_;
  FrameAssembler assembler_;
  ReceiveFn receive_;
  DisconnectFn disconnect_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
};

class TcpListener {
 public:
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral port.
  static util::Result<std::unique_ptr<TcpListener>> listen(std::uint16_t port);

  std::uint16_t port() const { return port_; }

  /// Blocks until a client connects.
  util::Result<std::unique_ptr<TcpTransport>> accept();

  void close();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}
  int fd_;
  std::uint16_t port_;
};

}  // namespace flexran::net
