#include "controller/command_batch.h"

#include <utility>

namespace flexran::ctrl {

void BatchingNorthbound::pin(std::shared_ptr<const RibSnapshot> snapshot, sim::TimeUs now) {
  batching_ = true;
  pinned_ = std::move(snapshot);
  pinned_now_ = now;
}

std::size_t BatchingNorthbound::flush() {
  batching_ = false;
  pinned_.reset();
  std::size_t sent = 0;
  for (auto& command : queue_) {
    if (command.send().ok()) {
      ++sent;
    } else {
      ++flush_failures_;
    }
  }
  queue_.clear();
  return sent;
}

void BatchingNorthbound::discard() {
  batching_ = false;
  pinned_.reset();
  queue_.clear();
}

std::shared_ptr<const RibSnapshot> BatchingNorthbound::rib_snapshot() const {
  if (batching_) return pinned_;
  return direct_.rib_snapshot();
}

sim::TimeUs BatchingNorthbound::now() const {
  if (batching_) return pinned_now_;
  return direct_.now();
}

std::int64_t BatchingNorthbound::agent_subframe(AgentId agent) const {
  if (batching_) {
    const AgentNode* node = pinned_->find_agent(agent);
    return node == nullptr ? -1 : node->last_subframe;
  }
  return direct_.agent_subframe(agent);
}

util::Status BatchingNorthbound::enqueue(AgentId agent, proto::MessageType type,
                                         std::function<util::Status()> send) {
  if (!batching_) return send();
  if (pinned_->find_agent(agent) == nullptr) {
    return util::Error::not_found("unknown agent");
  }
  queue_.push_back(QueuedCommand{agent, type, std::move(send)});
  ++commands_batched_;
  return util::Status();
}

util::Status BatchingNorthbound::send_dl_mac_config(AgentId agent,
                                                    const proto::DlMacConfig& config) {
  if (!batching_) return direct_.send_dl_mac_config(agent, config);
  if (pinned_->find_agent(agent) == nullptr) {
    return util::Error::not_found("unknown agent");
  }
  // Arbitrate now so the caller sees conflicts synchronously; the flushed
  // send must then bypass the downstream claim (it already happened here).
  if (hooks_.claim_dl) {
    auto claimed = hooks_.claim_dl(agent, config);
    if (!claimed.ok()) return claimed;
    queue_.push_back(QueuedCommand{agent, proto::MessageType::dl_mac_config,
                                   [this, agent, config] {
                                     return hooks_.send_dl_raw(agent, config);
                                   }});
    ++commands_batched_;
    return util::Status();
  }
  queue_.push_back(QueuedCommand{agent, proto::MessageType::dl_mac_config,
                                 [this, agent, config] {
                                   return direct_.send_dl_mac_config(agent, config);
                                 }});
  ++commands_batched_;
  return util::Status();
}

util::Status BatchingNorthbound::send_ul_mac_config(AgentId agent,
                                                    const proto::UlMacConfig& config) {
  return enqueue(agent, proto::MessageType::ul_mac_config,
                 [this, agent, config] { return direct_.send_ul_mac_config(agent, config); });
}

util::Status BatchingNorthbound::send_handover(AgentId agent,
                                               const proto::HandoverCommand& command) {
  return enqueue(agent, proto::MessageType::handover_command,
                 [this, agent, command] { return direct_.send_handover(agent, command); });
}

util::Status BatchingNorthbound::send_abs_config(AgentId agent, const proto::AbsConfig& config) {
  return enqueue(agent, proto::MessageType::abs_config,
                 [this, agent, config] { return direct_.send_abs_config(agent, config); });
}

util::Status BatchingNorthbound::send_carrier_restriction(AgentId agent,
                                                          const proto::CarrierRestriction& config) {
  return enqueue(agent, proto::MessageType::carrier_restriction, [this, agent, config] {
    return direct_.send_carrier_restriction(agent, config);
  });
}

util::Status BatchingNorthbound::send_drx_config(AgentId agent, const proto::DrxConfig& config) {
  return enqueue(agent, proto::MessageType::drx_config,
                 [this, agent, config] { return direct_.send_drx_config(agent, config); });
}

util::Status BatchingNorthbound::send_scell_command(AgentId agent,
                                                    const proto::ScellCommand& command) {
  return enqueue(agent, proto::MessageType::scell_command,
                 [this, agent, command] { return direct_.send_scell_command(agent, command); });
}

util::Status BatchingNorthbound::request_stats(AgentId agent, const proto::StatsRequest& request) {
  return enqueue(agent, proto::MessageType::stats_request,
                 [this, agent, request] { return direct_.request_stats(agent, request); });
}

util::Status BatchingNorthbound::subscribe_events(AgentId agent,
                                                  std::vector<proto::EventType> events,
                                                  bool enable) {
  return enqueue(agent, proto::MessageType::event_subscription,
                 [this, agent, events = std::move(events), enable]() mutable {
                   return direct_.subscribe_events(agent, std::move(events), enable);
                 });
}

util::Status BatchingNorthbound::push_vsf(AgentId agent, const std::string& module,
                                          const std::string& vsf,
                                          const std::string& implementation) {
  return enqueue(agent, proto::MessageType::control_delegation, [this, agent, module, vsf, implementation] {
    return direct_.push_vsf(agent, module, vsf, implementation);
  });
}

util::Status BatchingNorthbound::send_policy(AgentId agent, const std::string& yaml) {
  return enqueue(agent, proto::MessageType::policy_reconfiguration,
                 [this, agent, yaml] { return direct_.send_policy(agent, yaml); });
}

}  // namespace flexran::ctrl
