// High-level northbound abstractions over the raw RIB. The paper notes
// (Secs. 4.3.3 and 7.3) that its implementation "does not provide any
// high-level abstraction for the stored information, revealing raw data to
// the northbound API" and lists such abstractions as future work -- this is
// that layer: flattened UE summaries, per-cell load, and a stateful
// analytics sampler that turns the RIB's cumulative counters into rates.
#pragma once

#include <optional>
#include <vector>

#include "controller/rib.h"
#include "controller/rib_snapshot.h"

namespace flexran::ctrl {

/// One row of the flattened network view.
struct UeSummary {
  AgentId agent = 0;
  lte::CellId cell = 0;
  lte::Rnti rnti = lte::kInvalidRnti;
  int cqi = 0;
  double cqi_avg = 0.0;
  std::uint32_t queue_bytes = 0;
  std::uint64_t dl_bytes_delivered = 0;
  /// Best non-serving cell by RSRP, if the UE reports measurements.
  std::optional<lte::CellId> best_neighbor;
  double best_neighbor_rsrp_dbm = -200.0;
};

/// Flattens the agent->cell->UE forest into summaries. The Rib overload
/// serves the coordinator/tests; applications use the RibSnapshot one.
std::vector<UeSummary> summarize_ues(const Rib& rib);
std::vector<UeSummary> summarize_ues(const RibSnapshot& snapshot);

/// Instantaneous DL PRB utilization of a cell in [0, 1].
double cell_dl_utilization(const CellNode& cell);

/// Agent with the fewest connected UEs (simple admission heuristic);
/// nullopt when the RIB is empty.
std::optional<AgentId> least_loaded_agent(const Rib& rib);
std::optional<AgentId> least_loaded_agent(const RibSnapshot& snapshot);

/// Stateful analytics: call sample() periodically; rates are derived from
/// deltas of the RIB's cumulative per-UE byte counters. The two sample()
/// overloads are interchangeable: a snapshot of the RIB yields the same
/// rates as the live RIB it was captured from.
class RibAnalytics {
 public:
  /// Snapshot the RIB at simulated time `now`.
  void sample(const Rib& rib, sim::TimeUs now);
  void sample(const RibSnapshot& snapshot, sim::TimeUs now);

  /// Smoothed delivered DL rate of a UE in Mb/s (0 until two samples).
  double ue_dl_rate_mbps(AgentId agent, lte::Rnti rnti) const;
  /// Smoothed DL PRB utilization of an agent's cell in [0, 1].
  double cell_utilization(AgentId agent, lte::CellId cell) const;
  std::size_t samples_taken() const { return samples_; }

 private:
  struct UeState {
    std::uint64_t last_bytes = 0;
    util::Ewma rate_mbps{0.3};
  };
  struct CellState {
    util::Ewma utilization{0.3};
  };

  void sample_agent(AgentId agent_id, const AgentNode& agent, double dt_s);

  std::map<std::pair<AgentId, lte::Rnti>, UeState> ue_state_;
  std::map<std::pair<AgentId, lte::CellId>, CellState> cell_state_;
  sim::TimeUs last_sample_ = 0;
  std::size_t samples_ = 0;
};

}  // namespace flexran::ctrl
