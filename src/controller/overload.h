// Master overload watchdog (docs/overload_protection.md): a sliding-window
// detector over the RIB Updater's ingest queue. Each cycle it samples queue
// depth, shed counts and updater saturation; the resulting OverloadState
// (normal / elevated / critical) is published in the RIB snapshot, emitted
// as an Event Notification Service event on every transition, and drives
// the master's adaptive report throttling. Escalation is immediate (one bad
// window is one window too many at 1 ms cycles); de-escalation is one level
// per `recovery_cycles` consecutive clean cycles, so a flapping source
// cannot make the controller oscillate.
#pragma once

#include <cstdint>
#include <deque>

#include "net/flow_control.h"

namespace flexran::ctrl {

enum class OverloadState : std::uint8_t {
  normal = 0,
  /// Pressure building: queue past the elevated watermark or the updater
  /// saturating its slot, but nothing shed yet.
  elevated = 1,
  /// Actively shedding (or nearly full): periodic statistics are being
  /// dropped; commands and session traffic still flow.
  critical = 2,
};

const char* to_string(OverloadState state);

struct OverloadConfig {
  /// Budget for the master's pending-update (ingest) queue. Disabled
  /// (both limits 0, the default) turns the entire overload-protection
  /// layer off -- the seed behavior.
  net::QueueBudget ingest;
  /// Sliding window length, in task-manager cycles.
  std::size_t window_cycles = 50;
  /// Queue depth fraction (messages or bytes, whichever is fuller) at
  /// which the state becomes at least elevated / critical.
  double elevated_watermark = 0.5;
  double critical_watermark = 0.85;
  /// Consecutive clean cycles before de-escalating one level.
  std::size_t recovery_cycles = 100;
  /// Report-period multipliers applied on entering each state; while
  /// critical persists with continued shedding, the multiplier doubles
  /// each full window up to max_backoff.
  std::uint32_t elevated_backoff = 2;
  std::uint32_t critical_backoff = 4;
  std::uint32_t max_backoff = 16;
};

/// One cycle's observation, taken after the updater slot drained.
struct OverloadSample {
  /// Post-drain ingest-queue occupancy as a fraction of its budget.
  double depth_fraction = 0.0;
  /// Messages shed from the ingest queue since the previous sample.
  std::uint64_t shed_delta = 0;
  /// The updater hit its slot budget with messages still queued.
  bool updater_saturated = false;
};

class OverloadMonitor {
 public:
  explicit OverloadMonitor(const OverloadConfig& config) : config_(config) {}

  /// Feeds one cycle's sample; returns true when the state changed.
  bool observe(const OverloadSample& sample);

  OverloadState state() const { return state_; }
  std::uint64_t transitions() const { return transitions_; }
  std::size_t clean_cycles() const { return clean_cycles_; }

 private:
  OverloadState target_state() const;

  OverloadConfig config_;
  std::deque<OverloadSample> window_;
  OverloadState state_ = OverloadState::normal;
  std::size_t clean_cycles_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace flexran::ctrl
