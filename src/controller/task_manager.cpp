#include "controller/task_manager.h"

#include <algorithm>
#include <utility>

namespace flexran::ctrl {

namespace {
double elapsed_us(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - from)
      .count();
}
}  // namespace

TaskManager::TaskManager(TaskManagerConfig config, UpdaterFn updater,
                         EventDispatchFn event_dispatch)
    : config_(config), updater_(std::move(updater)), event_dispatch_(std::move(event_dispatch)) {
  for (int i = 0; i < config_.workers; ++i) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

TaskManager::~TaskManager() { shutdown(); }

void TaskManager::set_snapshot_source(SnapshotFn snapshot, NowFn now) {
  snapshot_fn_ = std::move(snapshot);
  now_fn_ = std::move(now);
}

std::int64_t TaskManager::updater_budget_us() const {
  return config_.real_time
             ? static_cast<std::int64_t>(config_.updater_share *
                                         static_cast<double>(config_.cycle_us))
             : std::int64_t{0};
}

std::int64_t TaskManager::app_slot_budget_us() const {
  return config_.real_time ? config_.cycle_us - updater_budget_us() : std::int64_t{0};
}

void TaskManager::add_app(App* app, NorthboundApi& api) {
  auto entry = std::make_unique<Entry>();
  entry->app = app;
  entry->proxy = std::make_unique<BatchingNorthbound>(api, hooks_);
  BatchingNorthbound& proxy = *entry->proxy;
  apps_.push_back(std::move(entry));
  std::stable_sort(apps_.begin(), apps_.end(),
                   [](const std::unique_ptr<Entry>& a, const std::unique_ptr<Entry>& b) {
                     return a->app->priority() < b->app->priority();
                   });
  // on_start runs on the coordinator with the proxy in pass-through mode
  // (not pinned), so direct sends behave exactly as before. A newly added
  // app joins the schedule from the next dispatched slot.
  app->on_start(proxy);
}

void TaskManager::remove_app(std::string_view name) {
  if (slot_busy_ || inflight_) {
    deferred_.emplace_back([this, name = std::string(name)] { remove_app(name); });
    return;
  }
  std::erase_if(apps_, [name](const std::unique_ptr<Entry>& entry) {
    return entry->app->name() == name;
  });
}

util::Status TaskManager::set_paused(std::string_view name, bool paused) {
  for (auto& entry : apps_) {
    if (entry->app->name() != name) continue;
    if (slot_busy_ || inflight_) {
      deferred_.emplace_back(
          [this, name = std::string(name), paused] { (void)set_paused(name, paused); });
    } else {
      entry->paused = paused;
    }
    return {};
  }
  return util::Error::not_found("no app named " + std::string(name));
}

std::vector<TaskManager::Entry*> TaskManager::runnable_entries() const {
  std::vector<Entry*> entries;
  entries.reserve(apps_.size());
  for (const auto& entry : apps_) {
    if (!entry->paused) entries.push_back(entry.get());
  }
  return entries;
}

void TaskManager::run_cycle(std::int64_t cycle, NorthboundApi& api) {
  ++cycles_;

  // Slot 1: the RIB updater (sole writer; this thread). In pipelined mode
  // the previous cycle's applications are still running against their
  // snapshot while the updater mutates the live RIB -- that overlap is the
  // point of snapshot versioning.
  const auto updater_start = std::chrono::steady_clock::now();
  const std::size_t applied = updater_ ? updater_(updater_budget_us()) : 0;
  const double updater_us = elapsed_us(updater_start);
  updater_time_.add(updater_us);
  if (config_.real_time && updater_us > static_cast<double>(updater_budget_us())) {
    ++updater_overruns_;
  }

  if (config_.workers <= 0) {
    slot_busy_ = true;
    run_slot_inline(cycle, api, updater_us, applied);
    slot_busy_ = false;
    apply_deferred();
    return;
  }

  // Pipelined: retire the previous application slot (join workers, flush
  // its command batches in schedule order), then dispatch this cycle's.
  join_and_flush();
  const auto events_start = std::chrono::steady_clock::now();
  if (event_dispatch_) event_dispatch_();
  const double event_us = elapsed_us(events_start);
  if (trace_ != nullptr) {
    // Apps/flush timings are filled in when this cycle's slot is retired
    // (the next join_and_flush, or the degrade path in dispatch_slot).
    pending_trace_ = obs::CycleTrace{cycle, updater_us, event_us, 0.0, 0.0, applied, 0};
    pending_trace_valid_ = true;
  }
  dispatch_slot(cycle, event_us);
}

void TaskManager::run_slot_inline(std::int64_t cycle, NorthboundApi& api, double updater_us,
                                  std::size_t updates_applied) {
  (void)api;
  // Slot 2: Event Notification Service, then the applications in priority
  // order (non-preemptive). Each app runs pinned to the cycle's snapshot
  // and its batch flushes immediately after it returns, preserving the
  // original per-app command ordering on the wire.
  const bool tracing = trace_ != nullptr;
  const auto apps_start = std::chrono::steady_clock::now();
  double event_us = 0.0;
  if (tracing) {
    const auto events_start = std::chrono::steady_clock::now();
    if (event_dispatch_) event_dispatch_();
    event_us = elapsed_us(events_start);
  } else if (event_dispatch_) {
    event_dispatch_();
  }
  const std::int64_t budget = app_slot_budget_us();
  double flush_us = 0.0;
  std::uint64_t flushed = 0;
  for (Entry* entry : runnable_entries()) {
    const auto snapshot = snapshot_fn_ ? snapshot_fn_() : nullptr;
    if (snapshot != nullptr) {
      entry->proxy->pin(snapshot, now_fn_ ? now_fn_() : entry->proxy->now());
    }
    const auto app_start = std::chrono::steady_clock::now();
    entry->app->on_cycle(cycle, *entry->proxy);
    const double wall = elapsed_us(app_start);
    entry->wall_us.add(wall);
    if (budget > 0 && wall > static_cast<double>(budget)) ++entry->overruns;
    if (snapshot != nullptr) {
      if (tracing) {
        const auto flush_start = std::chrono::steady_clock::now();
        const std::size_t n = entry->proxy->flush();
        flush_us += elapsed_us(flush_start);
        commands_flushed_ += n;
        flushed += n;
      } else {
        commands_flushed_ += entry->proxy->flush();
      }
    }
  }
  const double slot_us = elapsed_us(apps_start);
  apps_time_.add(slot_us);
  if (tracing) {
    trace_->add({cycle, updater_us, event_us,
                 std::max(0.0, slot_us - event_us - flush_us), flush_us, updates_applied,
                 flushed});
  }
}

void TaskManager::dispatch_slot(std::int64_t cycle, double event_us) {
  const auto snapshot = snapshot_fn_ ? snapshot_fn_() : nullptr;
  auto entries = runnable_entries();
  if (snapshot == nullptr || entries.empty()) {
    // Nothing to run concurrently (or no snapshot source wired): degrade
    // to the inline path so reads stay safe.
    slot_busy_ = true;
    const auto start = std::chrono::steady_clock::now();
    const std::int64_t budget = app_slot_budget_us();
    for (Entry* entry : entries) {
      const auto app_start = std::chrono::steady_clock::now();
      entry->app->on_cycle(cycle, *entry->proxy);
      const double wall = elapsed_us(app_start);
      std::lock_guard<std::mutex> lock(mu_);
      entry->wall_us.add(wall);
      if (budget > 0 && wall > static_cast<double>(budget)) ++entry->overruns;
    }
    const double slot_us = elapsed_us(start);
    apps_time_.add(event_us + slot_us);
    if (trace_ != nullptr && pending_trace_valid_) {
      pending_trace_.apps_us = slot_us;
      trace_->add(pending_trace_);
      pending_trace_valid_ = false;
    }
    slot_busy_ = false;
    apply_deferred();
    return;
  }

  const sim::TimeUs now = now_fn_ ? now_fn_() : 0;
  for (Entry* entry : entries) entry->proxy->pin(snapshot, now);

  // Group into priority tiers: equal-priority apps run concurrently; a
  // tier starts only after the one above it completed.
  std::vector<std::vector<Entry*>> tiers;
  for (Entry* entry : entries) {
    if (tiers.empty() || tiers.back().front()->app->priority() != entry->app->priority()) {
      tiers.emplace_back();
    }
    tiers.back().push_back(entry);
  }

  inflight_ = true;
  inflight_entries_ = std::move(entries);
  inflight_event_us_ = event_us;
  inflight_start_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot_.active = true;
    slot_.cycle = cycle;
    slot_.budget_us = app_slot_budget_us();
    slot_.tiers = std::move(tiers);
    slot_.tier = 0;
    slot_.next = 0;
    slot_.running = 0;
  }
  work_cv_.notify_all();
}

void TaskManager::join_and_flush() {
  if (!inflight_) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return !slot_.active; });
  }
  const double slot_wall =
      std::chrono::duration<double, std::micro>(slot_.finished_at - inflight_start_).count();
  std::size_t flushed = 0;
  const auto flush_start = std::chrono::steady_clock::now();
  for (Entry* entry : inflight_entries_) flushed += entry->proxy->flush();
  commands_flushed_ += flushed;
  const double flush_us = elapsed_us(flush_start);
  apps_time_.add(inflight_event_us_ + slot_wall + flush_us);
  if (trace_ != nullptr && pending_trace_valid_) {
    pending_trace_.apps_us = slot_wall;
    pending_trace_.flush_us = flush_us;
    pending_trace_.commands_flushed = flushed;
    trace_->add(pending_trace_);
    pending_trace_valid_ = false;
  }
  inflight_ = false;
  inflight_entries_.clear();
  apply_deferred();
}

void TaskManager::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stop_workers_ ||
             (slot_.active && slot_.next < slot_.tiers[slot_.tier].size());
    });
    if (stop_workers_) return;
    Entry* entry = slot_.tiers[slot_.tier][slot_.next++];
    ++slot_.running;
    const std::int64_t cycle = slot_.cycle;
    const std::int64_t budget = slot_.budget_us;
    lock.unlock();

    const auto start = std::chrono::steady_clock::now();
    entry->app->on_cycle(cycle, *entry->proxy);
    const double wall = elapsed_us(start);

    lock.lock();
    entry->wall_us.add(wall);
    if (budget > 0 && wall > static_cast<double>(budget)) ++entry->overruns;
    --slot_.running;
    if (slot_.running == 0 && slot_.next >= slot_.tiers[slot_.tier].size()) {
      // Tier complete: open the next one, or retire the slot.
      ++slot_.tier;
      if (slot_.tier >= slot_.tiers.size()) {
        slot_.active = false;
        slot_.finished_at = std::chrono::steady_clock::now();
        done_cv_.notify_all();
      } else {
        slot_.next = 0;
        work_cv_.notify_all();
      }
    }
  }
}

void TaskManager::quiesce() {
  join_and_flush();
  apply_deferred();
}

void TaskManager::shutdown() {
  if (inflight_) {
    // Join but do not flush: at teardown the transports (and possibly the
    // apps' targets) may already be gone.
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return !slot_.active; });
    }
    for (Entry* entry : inflight_entries_) entry->proxy->discard();
    inflight_ = false;
    inflight_entries_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_workers_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : pool_) {
    if (thread.joinable()) thread.join();
  }
  pool_.clear();
}

void TaskManager::apply_deferred() {
  if (deferred_.empty()) return;
  auto ops = std::move(deferred_);
  deferred_.clear();
  for (auto& op : ops) op();
}

double TaskManager::mean_idle_fraction() const {
  if (cycles_ == 0) return 1.0;
  const double busy = updater_time_.mean() + apps_time_.mean();
  return std::max(0.0, 1.0 - busy / static_cast<double>(config_.cycle_us));
}

std::uint64_t TaskManager::app_overruns() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& entry : apps_) total += entry->overruns;
  return total;
}

std::vector<TaskManager::AppStat> TaskManager::app_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AppStat> stats;
  stats.reserve(apps_.size());
  for (const auto& entry : apps_) {
    stats.push_back({std::string(entry->app->name()), entry->wall_us.count(),
                     entry->wall_us.mean(), entry->wall_us.max(), entry->overruns});
  }
  return stats;
}

}  // namespace flexran::ctrl
