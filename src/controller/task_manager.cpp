#include "controller/task_manager.h"

#include <algorithm>

namespace flexran::ctrl {

namespace {
double elapsed_us(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - from)
      .count();
}
}  // namespace

void TaskManager::add_app(App* app, NorthboundApi& api) {
  apps_.push_back({app, false});
  std::stable_sort(apps_.begin(), apps_.end(), [](const Entry& a, const Entry& b) {
    return a.app->priority() < b.app->priority();
  });
  app->on_start(api);
}

void TaskManager::remove_app(std::string_view name) {
  std::erase_if(apps_, [name](const Entry& entry) { return entry.app->name() == name; });
}

util::Status TaskManager::set_paused(std::string_view name, bool paused) {
  for (auto& entry : apps_) {
    if (entry.app->name() == name) {
      entry.paused = paused;
      return {};
    }
  }
  return util::Error::not_found("no app named " + std::string(name));
}

void TaskManager::run_cycle(std::int64_t cycle, NorthboundApi& api) {
  ++cycles_;

  // Slot 1: the RIB updater (sole writer).
  const auto updater_budget =
      config_.real_time
          ? static_cast<std::int64_t>(config_.updater_share * static_cast<double>(config_.cycle_us))
          : std::int64_t{0};
  const auto updater_start = std::chrono::steady_clock::now();
  if (updater_) updater_(updater_budget);
  updater_time_.add(elapsed_us(updater_start));

  // Slot 2: Event Notification Service, then the applications in priority
  // order (non-preemptive).
  const auto apps_start = std::chrono::steady_clock::now();
  if (event_dispatch_) event_dispatch_();
  for (auto& entry : apps_) {
    if (!entry.paused) entry.app->on_cycle(cycle, api);
  }
  apps_time_.add(elapsed_us(apps_start));
}

double TaskManager::mean_idle_fraction() const {
  if (cycles_ == 0) return 1.0;
  const double busy = updater_time_.mean() + apps_time_.mean();
  return std::max(0.0, 1.0 - busy / static_cast<double>(config_.cycle_us));
}

}  // namespace flexran::ctrl
