#include "controller/checkpoint_sink.h"

#include <cstdio>

namespace flexran::ctrl {

util::Status FileCheckpointSink::save(std::span<const std::uint8_t> bytes) {
  const std::string tmp = path_ + ".tmp";
  const bool injected = consume_injected_failure();
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    note_save_failed();
    return util::Error::transport_failure("cannot open " + tmp);
  }
  // An injected failure writes only half the payload and "dies" before the
  // rename. The torn tmp is deliberately left on disk: load() reads
  // `<path>`, never the tmp, so the last complete checkpoint must survive
  // the debris -- that is what the torn-write regression test asserts.
  const std::size_t want = injected ? bytes.size() / 2 : bytes.size();
  const std::size_t written = want == 0 ? 0 : std::fwrite(bytes.data(), 1, want, file);
  const bool flushed = std::fclose(file) == 0;
  if (injected) {
    note_save_failed();
    return util::Error::transport_failure("injected write failure, torn " + tmp);
  }
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    note_save_failed();
    return util::Error::transport_failure("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    note_save_failed();
    return util::Error::transport_failure("cannot rename " + tmp + " -> " + path_);
  }
  return {};
}

std::string FileCheckpointSink::shard_path(const std::string& dir, std::size_t shard) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path.push_back('/');
  return path + "shard-" + std::to_string(shard) + ".ckpt";
}

util::Result<std::vector<std::uint8_t>> FileCheckpointSink::load() {
  std::FILE* file = std::fopen(path_.c_str(), "rb");
  if (file == nullptr) return util::Error::not_found("no checkpoint at " + path_);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return util::Error::transport_failure("read error on " + path_);
  return bytes;
}

}  // namespace flexran::ctrl
