// Conflict resolution for controller applications (paper Sec. 7.3 lists
// this as the first open issue: "such a mechanism should prohibit the
// deployment of multiple applications that may simultaneously issue
// scheduling decisions for the same resource blocks").
//
// The arbiter tracks, per (agent, target subframe), which PRBs have been
// claimed by already-accepted downlink MAC configs. A decision that
// overlaps existing claims -- or overlaps itself -- is rejected before it
// reaches the wire. Because the Task Manager runs applications in priority
// order (a lower priority tier starts only after the tier above finished),
// time-critical apps naturally claim resources first and lower priority
// apps get the conflict error.
//
// Thread safety: claims happen at command-enqueue time, which with a
// parallel application slot means concurrently from worker threads (apps
// of one priority tier) and from the coordinator (the master's direct send
// path, the prune sweep). All state is guarded by an internal mutex.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "controller/rib.h"
#include "lte/allocation.h"
#include "proto/messages.h"
#include "util/result.h"

namespace flexran::ctrl {

class ConflictArbiter {
 public:
  /// Validates `config` against existing claims and, when clean, records
  /// its PRBs. Errors: conflict (overlap with an earlier claim or within
  /// the message itself). Thread-safe; claim-or-reject is atomic.
  util::Status claim_dl(AgentId agent, const proto::DlMacConfig& config);

  /// Drops bookkeeping for subframes the agent has already passed.
  void prune_before(AgentId agent, std::int64_t subframe);

  std::uint64_t conflicts_detected() const;
  std::size_t open_claims() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<AgentId, std::int64_t>, lte::RbAllocation> claims_;
  std::uint64_t conflicts_ = 0;
};

}  // namespace flexran::ctrl
