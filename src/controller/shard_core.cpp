#include "controller/shard_core.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <type_traits>

#include "net/framing.h"
#include "util/logging.h"

namespace flexran::ctrl {

namespace {

/// Reads just the request_id (field 1) of an encoded StatsReply body --
/// the coalesce key -- without materializing the full reply.
std::uint32_t peek_stats_request_id(const std::vector<std::uint8_t>& body) {
  proto::WireDecoder dec(body);
  while (!dec.done()) {
    auto header = dec.next_field();
    if (!header.ok()) return 0;
    if (header->field == 1 && header->type == proto::WireType::varint) {
      auto value = dec.read_varint();
      return value.ok() ? static_cast<std::uint32_t>(*value) : 0;
    }
    if (!dec.skip(header->type).ok()) return 0;
  }
  return 0;
}

/// Packs (agent, kind, request_id) into one coalesce key. Kinds: 1 =
/// periodic StatsReply (per request_id), 2 = subframe tick (one per
/// agent; each tick supersedes the previous).
std::uint64_t ingest_key(AgentId agent, std::uint64_t kind, std::uint32_t request_id) {
  return (static_cast<std::uint64_t>(agent) << 34) | (kind << 32) | request_id;
}

}  // namespace

ShardCore::ShardCore(sim::Simulator& sim, MasterConfig config)
    : sim_(sim),
      config_(std::move(config)),
      task_manager_(
          config_.task_manager,
          [this](std::int64_t budget_us) {
            // The updater slot ends by publishing the cycle's snapshot --
            // the version the applications dispatched this cycle will read.
            const std::size_t applied = drain_pending(budget_us);
            overload_step();
            publish_snapshot();
            return applied;
          },
          [this] { dispatch_events(); }),
      overload_monitor_(config_.overload),
      trace_ring_(config_.obs.trace_cycles) {
  if (config_.obs.registry != nullptr) registry_ = config_.obs.registry;
  pending_.set_budget(config_.overload.ingest);
  if (config_.obs.enabled) {
    task_manager_.set_trace_sink(&trace_ring_);
    register_obs_probes();
  }
  task_manager_.set_snapshot_source([this] { return snapshots_.current(); },
                                    [this] { return sim_.now(); });
  task_manager_.set_command_hooks(BatchingNorthbound::Hooks{
      // Enqueue-time arbitration (worker threads; the arbiter is
      // thread-safe) so apps observe conflicts synchronously...
      [this](AgentId agent, const proto::DlMacConfig& dl) -> util::Status {
        if (!config_.conflict_resolution) return {};
        return arbiter_.claim_dl(agent, dl);
      },
      // ...and the flush-time send skips the claim it already made.
      [this](AgentId agent, const proto::DlMacConfig& dl) { return send_to(agent, dl); },
  });
  if (config_.recovery.enabled) {
    incarnation_ = 1;
    resync_tokens_ = config_.recovery.resync_burst;
  }
  // A fresh master constructed over a checkpoint starts in recovery: it
  // knows the fleet it is waiting for, and each returning agent needs only
  // a delta re-sync.
  load_checkpoint();
  if (config_.recovery.enabled && !recovery_expected_.empty()) {
    recovering_ = true;
    recovery_started_at_ = sim_.now();
  }
}

ShardCore::~ShardCore() { task_manager_.shutdown(); }

AgentId ShardCore::add_agent(net::Transport& transport, AgentId explicit_id) {
  const AgentId id = explicit_id != 0 ? explicit_id : next_agent_id_++;
  if (explicit_id != 0 && explicit_id >= next_agent_id_) next_agent_id_ = explicit_id + 1;
  links_[id].transport = &transport;
  // The frame span is only valid for the callback: Envelope::decode copies
  // the body into the owned envelope the ingest queue keeps.
  transport.set_receive_callback([this, id](std::span<const std::uint8_t> data) {
    auto envelope = proto::Envelope::decode(data);
    if (!envelope.ok()) {
      ++rx_decode_errors_;
      FLEXRAN_LOG(error, "master") << "bad envelope from agent " << id << ": "
                                   << envelope.error().message;
      return;
    }
    auto link_it = links_.find(id);
    if (link_it != links_.end()) {
      link_it->second.rx.record(proto::categorize(envelope->type, envelope->body),
                                data.size() + net::kFrameHeaderBytes);
    }
    const net::TrafficClass cls = proto::traffic_class(envelope->type, envelope->body);
    std::uint64_t key = 0;
    if (envelope->type == proto::MessageType::stats_reply) {
      // A superseded periodic reply coalesces per (agent, request_id);
      // ticks coalesce per agent (each one supersedes the previous).
      key = ingest_key(id, 1, peek_stats_request_id(envelope->body));
    } else if (cls == net::TrafficClass::sync) {
      key = ingest_key(id, 2, 0);
    }
    pending_.push(cls, data.size() + net::kFrameHeaderBytes, key,
                  PendingUpdate{id, envelope->epoch, std::move(*envelope)});
  });
  transport.set_disconnect_callback(
      [this, id](util::Error error) { mark_agent_down(id, error.message); });
  rib_.agent(id).id = id;
  dirty_agents_.insert(id);
  rib_structure_changed_ = true;
  if (config_.obs.enabled) register_agent_probes(id);
  return id;
}

void ShardCore::remove_agent(AgentId id) {
  dirty_agents_.erase(id);
  rib_structure_changed_ = true;
  // Recovery bookkeeping: a removed agent neither holds the readiness
  // quorum nor waits for a re-sync token.
  resync_waiting_.erase(id);
  std::erase(resync_queue_, id);
  resync_started_at_.erase(id);
  warm_restored_.erase(id);
  recovery_expected_.erase(id);
  recovery_resynced_.erase(id);
  // Drop everything still referencing the agent: queued updates, queued
  // events, and in-flight requests (dropped silently, not failed --
  // removal is deliberate, not an outage).
  pending_.remove_if([id](const PendingUpdate& update) { return update.agent == id; });
  std::erase_if(event_queue_, [id](const Event& event) { return event.agent == id; });
  std::erase_if(inflight_, [id](const auto& entry) { return entry.second.agent == id; });
  std::erase_if(original_reports_,
                [id](const auto& entry) { return entry.first.first == id; });
  links_.erase(id);
  rib_.remove_agent(id);
}

void ShardCore::run_cycle() {
  // Injected faults (docs/sharded_control.md "Shard failover"): a stalled
  // core silently stops completing cycles (the Coordinator's watchdog
  // catches it); a throwing one fails loudly on its next cycle.
  if (cycle_fault_ == CycleFault::stalled) return;
  if (cycle_fault_ == CycleFault::throwing) {
    throw std::runtime_error("injected shard cycle fault");
  }
  const std::int64_t cycle = task_manager_.cycles_run();
  if (config_.conflict_resolution) {
    for (const auto& [id, agent] : rib_.agents()) {
      arbiter_.prune_before(id, agent.last_subframe);
    }
  }
  if (config_.agent_timeout_us > 0) {
    for (auto& [id, link] : links_) {
      (void)link;
      AgentNode& agent = rib_.agent(id);
      // An agent deferred by the re-sync admission gate is silent at the
      // master's own request (the retry-after hint paused its hellos):
      // exempt it from the silence sweep or the deferral would walk it
      // stale -> down and purge it from the very queue it is waiting in.
      if (resync_waiting_.contains(id)) continue;
      if (agent.last_heard > 0 && !agent.is_stale() &&
          sim_.now() - agent.last_heard > config_.agent_timeout_us) {
        agent.state = SessionState::stale;
        dirty_agents_.insert(id);
        FLEXRAN_LOG(warn, "master") << "agent " << id << " stale (silent for "
                                    << (sim_.now() - agent.last_heard) / 1000 << " ms)";
      }
    }
  }
  if (config_.agent_disconnect_timeout_us > 0) {
    for (auto& [id, link] : links_) {
      (void)link;
      AgentNode& agent = rib_.agent(id);
      if (resync_waiting_.contains(id)) continue;  // deferred: silence is ours
      if (agent.state != SessionState::down && agent.last_heard > 0 &&
          sim_.now() - agent.last_heard > config_.agent_disconnect_timeout_us) {
        mark_agent_down(id, "silent past disconnect timeout");
      }
    }
  }
  sweep_requests();
  if (config_.recovery.enabled) {
    admit_resyncs();
    if (recovering_ && config_.recovery.readiness_timeout_us > 0 &&
        sim_.now() - recovery_started_at_ >= config_.recovery.readiness_timeout_us) {
      // A dead agent must not hold the barrier forever: declare ready on
      // whatever fraction of the fleet made it back.
      finish_recovery("timeout");
    }
  }
  maybe_checkpoint();
  if (config_.echo_period_cycles > 0 && cycle % config_.echo_period_cycles == 0) {
    for (const auto& [id, link] : links_) {
      (void)link;
      proto::EchoRequest echo;
      echo.timestamp_us = sim_.now();
      const auto* agent = rib_.find_agent(id);
      echo.subframe = agent != nullptr ? agent->last_subframe : 0;
      (void)send_to(id, echo);
    }
  }
  task_manager_.run_cycle(cycle, *this);
}

App* ShardCore::add_app(std::unique_ptr<App> app) {
  App* raw = app.get();
  apps_.push_back(std::move(app));
  task_manager_.add_app(raw, *this);
  if (config_.obs.enabled) register_app_probes(std::string(raw->name()));
  return raw;
}

// ------------------------------------------------------------- RIB updater

std::size_t ShardCore::drain_pending(std::int64_t budget_us) {
  // In real-time mode the updater may not overrun its slot. Message-apply
  // cost is sub-microsecond; a conservative 4 updates/us proxy bounds the
  // slot without a clock read per message.
  std::size_t limit = pending_.size();
  if (budget_us > 0) {
    limit = std::min(limit, static_cast<std::size_t>(budget_us) * 4);
  }
  std::size_t applied = 0;
  while (applied < limit && !pending_.empty()) {
    auto update = pending_.pop();
    apply_update(*update);
    ++applied;
  }
  updates_applied_ += applied;
  if (!pending_.empty() && applied == limit) {
    // The slot budget ran out with messages still queued: the updater is
    // saturated, a watchdog input even before anything is shed.
    updater_saturated_cycle_ = true;
    ++updater_saturations_;
  }
  return applied;
}

void ShardCore::overload_step() {
  if (!config_.overload.ingest.enabled()) return;
  const auto& budget = config_.overload.ingest;
  OverloadSample sample;
  if (budget.max_messages > 0) {
    sample.depth_fraction = static_cast<double>(pending_.size()) /
                            static_cast<double>(budget.max_messages);
  }
  if (budget.max_bytes > 0) {
    sample.depth_fraction =
        std::max(sample.depth_fraction,
                 static_cast<double>(pending_.bytes()) / static_cast<double>(budget.max_bytes));
  }
  const std::uint64_t shed_total = pending_.total_shed();
  sample.shed_delta = shed_total - last_shed_total_;
  last_shed_total_ = shed_total;
  sample.updater_saturated = updater_saturated_cycle_;
  updater_saturated_cycle_ = false;

  if (!overload_monitor_.observe(sample)) {
    // While critical persists with continued shedding, keep backing off:
    // the multiplier doubles once per full window up to the cap.
    if (overload_monitor_.state() == OverloadState::critical && sample.shed_delta > 0) {
      if (++critical_shedding_cycles_ >= config_.overload.window_cycles &&
          throttle_multiplier_ < config_.overload.max_backoff) {
        critical_shedding_cycles_ = 0;
        update_throttle(std::min(throttle_multiplier_ * 2, config_.overload.max_backoff));
      }
    } else if (sample.shed_delta == 0) {
      critical_shedding_cycles_ = 0;
    }
    return;
  }

  const OverloadState state = overload_monitor_.state();
  critical_shedding_cycles_ = 0;
  switch (state) {
    case OverloadState::normal: update_throttle(1); break;
    case OverloadState::elevated: update_throttle(config_.overload.elevated_backoff); break;
    case OverloadState::critical: update_throttle(config_.overload.critical_backoff); break;
  }
  FLEXRAN_LOG(warn, "master") << "overload state -> " << to_string(state)
                              << " (depth " << pending_.size() << " msgs, shed "
                              << shed_total << " total, throttle x" << throttle_multiplier_
                              << ")";
  proto::EventNotification note;
  note.event = proto::EventType::overload_state_changed;
  note.overload_state = static_cast<std::uint8_t>(state);
  note.detail = to_string(state);
  event_queue_.push_back(Event{0, note});
}

void ShardCore::update_throttle(std::uint32_t multiplier) {
  multiplier = std::max(1u, multiplier);
  if (multiplier == throttle_multiplier_) return;
  throttle_multiplier_ = multiplier;
  renegotiate_reports();
}

void ShardCore::renegotiate_reports() {
  for (const auto& [key, original] : original_reports_) {
    const auto& [agent, request_id] = key;
    (void)request_id;
    proto::StatsRequest stretched = original;
    stretched.periodicity_ttis =
        std::max<std::uint32_t>(1, original.periodicity_ttis) * throttle_multiplier_;
    // Untracked: renegotiation is advisory (the Envelope throttle hint is
    // the backstop), and a tracked retry storm is the last thing an
    // overloaded master needs.
    if (send_to(agent, stretched).ok()) ++throttle_renegotiations_;
  }
}

void ShardCore::publish_snapshot() {
  const auto start = std::chrono::steady_clock::now();
  snapshots_.publish(rib_, dirty_agents_, rib_structure_changed_, overload_monitor_.state(),
                     recovering_);
  dirty_agents_.clear();
  rib_structure_changed_ = false;
  snapshot_publish_time_.add(
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count());
}

void ShardCore::apply_update(const PendingUpdate& update) {
  using proto::MessageType;
  const proto::Envelope& envelope = update.envelope;
  if (envelope.ts_echo_us != 0) {
    // End-to-end control latency: a timestamp we stamped on an outgoing
    // message, carried to the agent, echoed on its next message, and now
    // reaching the RIB apply -- wire both ways plus every queueing stage.
    auto link_it = links_.find(update.agent);
    if (link_it != links_.end() && link_it->second.latency != nullptr &&
        sim_.now() >= static_cast<sim::TimeUs>(envelope.ts_echo_us)) {
      link_it->second.latency->observe(
          static_cast<double>(sim_.now() - static_cast<sim::TimeUs>(envelope.ts_echo_us)));
    }
  }
  AgentNode& agent = rib_.agent(update.agent);
  // Session fencing: a message carrying an epoch older than the agent's
  // current session is a straggler from before a restart and must not
  // mutate the RIB. Epoch 0 is the wildcard (pre-epoch senders).
  if (update.epoch != 0 && update.epoch < agent.epoch) {
    ++fenced_updates_;
    return;
  }
  dirty_agents_.insert(update.agent);
  if (update.epoch > agent.epoch && envelope.type != MessageType::hello) {
    // New-session traffic arrived before its hello (the hello was lost in
    // flight). Adopt the new session and re-sync rather than waiting for
    // the agent's hello retry.
    begin_agent_session(update.agent, update.epoch);
    agent.state = SessionState::resyncing;
    emit_lifecycle_event(update.agent, proto::EventType::agent_reconnected);
    request_resync(update.agent);
  }
  agent.last_heard = sim_.now();
  if (agent.state == SessionState::down && envelope.type != MessageType::hello) {
    // Heard again without a restart: the partition healed. Commands sent
    // into the outage were lost, so re-sync the agent's session state.
    // (A hello runs its own re-sync in on_agent_hello.)
    agent.state = SessionState::resyncing;
    emit_lifecycle_event(update.agent, proto::EventType::agent_reconnected);
    request_resync(update.agent);
  } else if (agent.state == SessionState::stale) {
    agent.state = SessionState::up;
  }
  if (envelope.xid != 0) complete_request(update.agent, envelope.xid);

  switch (envelope.type) {
    case MessageType::hello: {
      auto hello = proto::unpack<proto::Hello>(envelope);
      if (hello.ok()) on_agent_hello(update.agent, *hello);
      break;
    }
    case MessageType::echo_reply: {
      auto reply = proto::unpack<proto::EchoReply>(envelope);
      if (!reply.ok()) break;
      const double rtt = static_cast<double>(sim_.now() - reply->echoed_timestamp_us);
      agent.rtt_estimate_us =
          agent.rtt_estimate_us == 0.0 ? rtt : 0.8 * agent.rtt_estimate_us + 0.2 * rtt;
      break;
    }
    case MessageType::enb_config_reply: {
      auto reply = proto::unpack<proto::EnbConfigReply>(envelope);
      if (!reply.ok()) break;
      agent.enb_id = reply->enb_id;
      for (const auto& cell : reply->cells) {
        agent.cells[cell.cell_id].config = cell.to_cell_config();
      }
      // The config reply is the last leg of the re-sync handshake.
      if (agent.state == SessionState::resyncing) {
        agent.state = SessionState::up;
        mark_resynced(update.agent);
      }
      break;
    }
    case MessageType::ue_config_reply: {
      auto reply = proto::unpack<proto::UeConfigReply>(envelope);
      if (!reply.ok()) break;
      for (const auto& ue_msg : reply->ues) {
        const auto config = ue_msg.to_ue_config();
        auto& cell = agent.cells[config.primary_cell];
        auto& ue = cell.ues[config.rnti];
        ue.rnti = config.rnti;
        ue.config = config;
        ue.last_update = sim_.now();
        agent.hot.upsert(config.rnti);
      }
      break;
    }
    case MessageType::lc_config_reply:
      break;  // logical channel maps are not tracked beyond UE existence
    case MessageType::stats_reply: {
      auto reply = proto::unpack<proto::StatsReply>(envelope);
      if (!reply.ok()) break;
      // Stats replies do not echo the request xid; the first report
      // completes the tracked request via its request_id.
      complete_stats_request(update.agent, reply->request_id);
      if (reply->subframe > agent.last_subframe) {
        agent.last_subframe = reply->subframe;
        agent.last_subframe_at = sim_.now();
      }
      for (const auto& report : reply->ue_reports) {
        UeNode* ue = rib_.mutable_ue(update.agent, report.rnti);
        if (ue == nullptr) {
          // First sighting: attach under the agent's first cell.
          if (agent.cells.empty()) agent.cells[0] = CellNode{};
          auto& cell = agent.cells.begin()->second;
          ue = &cell.ues[report.rnti];
          ue->rnti = report.rnti;
        }
        ue->stats = report;
        ue->last_update = sim_.now();
        if (report.wb_cqi > 0) ue->cqi_avg.add(report.wb_cqi);
        // Mirror the hot fields into the agent's SoA columns: one dense row
        // write here buys apps contiguous scans on every cycle.
        const std::size_t row = agent.hot.upsert(report.rnti);
        agent.hot.wb_cqi[row] = report.wb_cqi;
        agent.hot.bsr_total_bytes[row] = report.total_bsr();
        agent.hot.rlc_queue_bytes[row] = report.rlc_queue_bytes;
        agent.hot.dl_bytes_delivered[row] = report.dl_bytes_delivered;
        agent.hot.cqi_avg[row] = ue->cqi_avg.seeded() ? ue->cqi_avg.value() : 0.0;
      }
      for (const auto& cell_report : reply->cell_reports) {
        auto& cell = agent.cells[cell_report.cell_id];
        cell.stats = cell_report;
        cell.last_update = sim_.now();
      }
      break;
    }
    case MessageType::event_notification: {
      auto event = proto::unpack<proto::EventNotification>(envelope);
      if (!event.ok()) break;
      if (event->event == proto::EventType::subframe_tick) {
        if (event->subframe > agent.last_subframe) {
          agent.last_subframe = event->subframe;
          agent.last_subframe_at = sim_.now();
        }
        break;  // sync ticks are not app events
      }
      if (event->event == proto::EventType::ue_detach && event->rnti != lte::kInvalidRnti) {
        for (auto& [cell_id, cell] : agent.cells) {
          (void)cell_id;
          cell.ues.erase(event->rnti);
        }
        agent.hot.erase(event->rnti);
      }
      if (event->event == proto::EventType::ue_attach && event->rnti != lte::kInvalidRnti) {
        auto& cell = agent.cells[event->cell_id];
        auto& ue = cell.ues[event->rnti];
        ue.rnti = event->rnti;
        ue.last_update = sim_.now();
        agent.hot.upsert(event->rnti);
      }
      if (event->event == proto::EventType::policy_applied ||
          event->event == proto::EventType::policy_rejected) {
        // The agent echoes the policy's envelope xid; surface it in the
        // event body so apps can correlate too.
        if (event->xid == 0) event->xid = envelope.xid;
        note_policy_verdict(update.agent, *event);
      }
      if (event->event == proto::EventType::vsf_quarantined) {
        rollback_policy(update.agent, *event);
      }
      event_queue_.push_back(Event{update.agent, *event});
      break;
    }
    default:
      FLEXRAN_LOG(warn, "master") << "unexpected message type "
                                  << proto::to_string(envelope.type) << " from agent "
                                  << update.agent;
      break;
  }
}

void ShardCore::on_agent_hello(AgentId id, const proto::Hello& hello) {
  AgentNode& agent = rib_.agent(id);
  const bool restarted = hello.epoch > agent.epoch && agent.epoch != 0;
  const bool was_down = agent.state == SessionState::down;
  if (hello.epoch > agent.epoch) begin_agent_session(id, hello.epoch);
  agent.enb_id = hello.enb_id;
  agent.name = hello.name;
  agent.capabilities = hello.capabilities;
  agent.state = config_.auto_configure ? SessionState::resyncing : SessionState::up;
  if (restarted || was_down) {
    emit_lifecycle_event(id, proto::EventType::agent_reconnected);
  }
  request_resync(id);
}

// -------------------------------------------------------- session lifecycle

void ShardCore::resync_agent(AgentId id) {
  AgentNode& agent = rib_.agent(id);
  if (agent.state == SessionState::resyncing && !resync_started_at_.contains(id)) {
    resync_started_at_[id] = sim_.now();
  }
  // Warm restore: the agent's configuration came from the checkpoint, so
  // the three config fetch round-trips are skipped -- the delta re-sync is
  // just re-arming reports and subscriptions.
  const bool delta = warm_restored_.contains(id) && !agent.cells.empty();
  if (config_.auto_configure && !delta) {
    (void)send_to(id, proto::EnbConfigRequest{}, /*track=*/true);
    (void)send_to(id, proto::UeConfigRequest{}, /*track=*/true);
    (void)send_to(id, proto::LcConfigRequest{}, /*track=*/true);
  }
  if (config_.default_stats_request.has_value()) {
    (void)request_stats(id, *config_.default_stats_request);
  }
  if (!config_.subscribe_events.empty()) {
    (void)subscribe_events(id, config_.subscribe_events, true);
  }
  if (delta || !config_.auto_configure) {
    // Nothing left to wait for: the session is immediately serviceable.
    if (agent.state == SessionState::resyncing) {
      agent.state = SessionState::up;
      dirty_agents_.insert(id);
    }
    mark_resynced(id);
  }
}

void ShardCore::begin_agent_session(AgentId id, std::uint32_t epoch) {
  AgentNode& agent = rib_.agent(id);
  if (agent.epoch != 0) {
    ++agent.reconnects;
    // Fence the previous session: queued updates and in-flight requests
    // from the old epoch must neither mutate the RIB nor be retried.
    purge_pending(id, epoch);
    fail_agent_requests(id, "session restarted");
    // Verdicts for the old session's policies will never arrive; the
    // applied history survives (it is knowledge about implementations,
    // not about the session).
    if (auto pit = policies_.find(id); pit != policies_.end()) pit->second.pending.clear();
    FLEXRAN_LOG(info, "master") << "agent " << id << " restarted: epoch " << agent.epoch
                                << " -> " << epoch;
  }
  agent.epoch = epoch;
}

void ShardCore::mark_agent_down(AgentId id, const std::string& reason) {
  AgentNode& agent = rib_.agent(id);
  if (agent.state == SessionState::down) return;
  agent.state = SessionState::down;
  dirty_agents_.insert(id);
  // A downed agent neither waits for a re-sync token nor keeps its
  // re-sync clock running (it restarts from scratch when heard again).
  resync_waiting_.erase(id);
  std::erase(resync_queue_, id);
  resync_started_at_.erase(id);
  // The session is over; whatever it still had queued or outstanding dies
  // with it. A surviving agent is re-synced when it is heard again.
  purge_pending(id, std::numeric_limits<std::uint32_t>::max());
  fail_agent_requests(id, "agent disconnected");
  if (auto pit = policies_.find(id); pit != policies_.end()) pit->second.pending.clear();
  emit_lifecycle_event(id, proto::EventType::agent_disconnected);
  FLEXRAN_LOG(warn, "master") << "agent " << id << " down: " << reason;
}

void ShardCore::purge_pending(AgentId id, std::uint32_t below_epoch) {
  pending_.remove_if([id, below_epoch](const PendingUpdate& update) {
    return update.agent == id && update.epoch < below_epoch;
  });
}

void ShardCore::fail_agent_requests(AgentId id, const char* reason) {
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second.agent != id) {
      ++it;
      continue;
    }
    ++requests_failed_;
    FLEXRAN_LOG(warn, "master") << "request xid " << it->first << " ("
                                << proto::to_string(it->second.type) << ") to agent " << id
                                << " failed: " << reason;
    emit_lifecycle_event(id, proto::EventType::request_timeout, it->first);
    it = inflight_.erase(it);
  }
}

void ShardCore::complete_request(AgentId agent, std::uint32_t xid) {
  auto it = inflight_.find(xid);
  if (it == inflight_.end() || it->second.agent != agent) return;
  ++requests_completed_;
  inflight_.erase(it);
}

void ShardCore::complete_stats_request(AgentId agent, std::uint32_t request_id) {
  for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
    if (it->second.agent == agent && it->second.type == proto::MessageType::stats_request &&
        it->second.request_id == request_id) {
      ++requests_completed_;
      inflight_.erase(it);
      return;
    }
  }
}

void ShardCore::sweep_requests() {
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    PendingRequest& request = it->second;
    if (sim_.now() < request.deadline) {
      ++it;
      continue;
    }
    if (request.attempts < config_.request_max_retries) {
      ++request.attempts;
      ++requests_retried_;
      request.timeout *= 2;  // back off: the link may be congested, not dead
      request.deadline = sim_.now() + request.timeout;
      auto link = links_.find(request.agent);
      if (link != links_.end() && link->second.transport != nullptr) {
        // Reuse the category and traffic class captured at enqueue time:
        // recomputing from (type, empty body) misbuckets body-dependent
        // types, and a classless send would bypass class-aware accounting.
        link->second.tx.record(request.category,
                               request.wire.size() + net::kFrameHeaderBytes);
        (void)link->second.transport->send(request.cls, request.wire);
      }
      ++it;
    } else {
      ++requests_failed_;
      FLEXRAN_LOG(warn, "master") << "request xid " << it->first << " ("
                                  << proto::to_string(request.type) << ") to agent "
                                  << request.agent << " timed out after " << request.attempts
                                  << " retries";
      emit_lifecycle_event(request.agent, proto::EventType::request_timeout, it->first);
      it = inflight_.erase(it);
    }
  }
}

void ShardCore::emit_lifecycle_event(AgentId id, proto::EventType type,
                                            std::uint32_t xid) {
  proto::EventNotification note;
  note.event = type;
  note.xid = xid;
  const auto* agent = rib_.find_agent(id);
  note.subframe = agent != nullptr ? agent->last_subframe : 0;
  event_queue_.push_back(Event{id, note});
}

// ------------------------------------------------- policy rollback state

void ShardCore::note_policy_verdict(AgentId id, const proto::EventNotification& event) {
  auto pit = policies_.find(id);
  if (pit == policies_.end()) return;
  auto& state = pit->second;
  auto it = state.pending.find(event.xid);
  if (it == state.pending.end()) return;
  if (event.event == proto::EventType::policy_applied) {
    // Promote to last-known-good (dedup against the current head so a
    // rollback re-send does not fill the history with copies).
    if (state.history.empty() || state.history.front() != it->second) {
      state.history.push_front(std::move(it->second));
      if (state.history.size() > kPolicyHistoryCap) state.history.pop_back();
    }
  } else {
    ++policies_rejected_;
    FLEXRAN_LOG(warn, "master") << "agent " << id << " rejected policy (xid " << event.xid
                                << "): " << event.detail;
  }
  state.pending.erase(it);
}

void ShardCore::rollback_policy(AgentId id, const proto::EventNotification& event) {
  auto pit = policies_.find(id);
  if (pit == policies_.end()) return;
  auto& state = pit->second;
  // A policy naming the quarantined implementation must not be promoted to
  // last-known-good even if it once applied cleanly -- purge it, then roll
  // back to the newest survivor.
  if (!event.implementation.empty()) {
    std::erase_if(state.history, [&](const std::string& yaml) {
      return yaml.find(event.implementation) != std::string::npos;
    });
  }
  if (state.history.empty()) {
    FLEXRAN_LOG(warn, "master") << "agent " << id << " quarantined "
                                << event.implementation << " but no known-good policy recorded";
    return;
  }
  ++policy_rollbacks_;
  FLEXRAN_LOG(warn, "master") << "agent " << id << " quarantined " << event.implementation
                              << "; rolling back to last-known-good policy";
  (void)send_policy(id, state.history.front());
}

std::string ShardCore::last_known_good_policy(AgentId agent) const {
  auto it = policies_.find(agent);
  if (it == policies_.end() || it->second.history.empty()) return "";
  return it->second.history.front();
}

// ---------------------------------------------------------- crash recovery

void ShardCore::restart() {
  task_manager_.quiesce();
  ++master_restarts_;
  // Everything volatile dies with the old incarnation -- exactly what a
  // real master process loses in a crash. The transport registry survives:
  // a restarted master re-accepts its connections, and here the agents'
  // endpoints stay attached under the same ids.
  pending_.remove_if([](const PendingUpdate&) { return true; });
  event_queue_.clear();
  inflight_.clear();
  policies_.clear();
  original_reports_.clear();
  resync_queue_.clear();
  resync_waiting_.clear();
  resync_started_at_.clear();
  warm_restored_.clear();
  recovery_expected_.clear();
  recovery_resynced_.clear();
  for (const auto& [id, link] : links_) {
    (void)link;
    arbiter_.prune_before(id, std::numeric_limits<std::int64_t>::max());
  }
  throttle_multiplier_ = 1;
  critical_shedding_cycles_ = 0;
  checkpoint_loaded_ = false;
  // Forget the RIB, keeping a down-state husk per live connection so the
  // readiness barrier knows the fleet it is waiting for.
  rib_ = Rib{};
  for (const auto& [id, link] : links_) {
    (void)link;
    AgentNode& node = rib_.agent(id);
    node.id = id;
    node.state = SessionState::down;
    recovery_expected_.insert(id);
    dirty_agents_.insert(id);
  }
  rib_structure_changed_ = true;
  if (config_.recovery.enabled) {
    ++incarnation_;
    resync_tokens_ = config_.recovery.resync_burst;
    last_token_refill_ = sim_.now();
  }
  load_checkpoint();
  if (config_.recovery.enabled && !recovery_expected_.empty()) {
    recovering_ = true;
    recovery_started_at_ = sim_.now();
    recovery_ready_at_ = 0;
  }
  FLEXRAN_LOG(warn, "master") << "restarted (incarnation " << incarnation_ << ", "
                              << (checkpoint_loaded_ ? "warm" : "cold") << ", expecting "
                              << recovery_expected_.size() << " agents)";
  // Announce the new incarnation so agents learn of the restart from the
  // first frame instead of discovering it through fenced traffic.
  for (const auto& [id, link] : links_) {
    (void)link;
    proto::EchoRequest echo;
    echo.timestamp_us = sim_.now();
    (void)send_to(id, echo);
  }
}

void ShardCore::request_resync(AgentId id) {
  if (!config_.recovery.enabled || config_.recovery.resync_tokens_per_s <= 0.0) {
    resync_agent(id);  // pacing off: the seed path
    return;
  }
  refill_resync_tokens();
  if (resync_tokens_ >= 1.0 && resync_queue_.empty()) {
    resync_tokens_ -= 1.0;
    ++resyncs_admitted_;
    resync_agent(id);
    return;
  }
  // No token (or a queue ahead): defer. The agent stays `resyncing`; every
  // envelope it receives meanwhile carries the retry-after hint, and the
  // master drives the re-sync itself once a token frees up.
  if (resync_waiting_.insert(id).second) {
    resync_queue_.push_back(id);
    ++resyncs_paced_;
    // Deliver the hint promptly rather than waiting for scheduled traffic.
    proto::EchoRequest echo;
    echo.timestamp_us = sim_.now();
    (void)send_to(id, echo);
  }
}

void ShardCore::refill_resync_tokens() {
  if (config_.recovery.resync_tokens_per_s <= 0.0) return;
  const sim::TimeUs now = sim_.now();
  if (last_token_refill_ == 0) {
    last_token_refill_ = now;
    return;
  }
  const double elapsed_s = static_cast<double>(now - last_token_refill_) / 1e6;
  last_token_refill_ = now;
  resync_tokens_ = std::min(config_.recovery.resync_burst,
                            resync_tokens_ + elapsed_s * config_.recovery.resync_tokens_per_s);
}

void ShardCore::admit_resyncs() {
  refill_resync_tokens();
  while (!resync_queue_.empty() && resync_tokens_ >= 1.0) {
    const AgentId id = resync_queue_.front();
    resync_queue_.pop_front();
    resync_waiting_.erase(id);
    const AgentNode* known = rib_.find_agent(id);
    if (known == nullptr || known->state == SessionState::down) continue;
    // The wait does not count as silence: restart the sweep clock now or
    // a long deferral would trip the disconnect timeout before the just
    // -issued config fetches can answer.
    rib_.agent(id).last_heard = sim_.now();
    resync_tokens_ -= 1.0;
    ++resyncs_admitted_;
    resync_agent(id);
  }
}

void ShardCore::mark_resynced(AgentId id) {
  if (auto it = resync_started_at_.find(id); it != resync_started_at_.end()) {
    if (resync_duration_ != nullptr) {
      resync_duration_->observe(static_cast<double>(sim_.now() - it->second));
    }
    resync_started_at_.erase(it);
  }
  // Whatever warm state sped up this re-sync is consumed: a later re-sync
  // (agent crash, partition) must fetch fresh configuration.
  warm_restored_.erase(id);
  if (!recovering_) return;
  if (recovery_resynced_.insert(id).second) {
    // The session is serviceable again: re-own the delegated control state
    // by re-pushing the last-known-good policy from the checkpoint.
    if (auto pit = policies_.find(id); pit != policies_.end() && !pit->second.history.empty()) {
      if (send_policy(id, pit->second.history.front()).ok()) ++policies_repushed_;
    }
  }
  if (!recovery_expected_.empty() &&
      static_cast<double>(recovery_resynced_.size()) >=
          config_.recovery.readiness_quorum * static_cast<double>(recovery_expected_.size())) {
    finish_recovery("quorum");
  }
}

void ShardCore::finish_recovery(const char* how) {
  if (!recovering_) return;
  recovering_ = false;
  recovery_ready_at_ = sim_.now();
  FLEXRAN_LOG(info, "master") << "recovery complete (" << how << "): "
                              << recovery_resynced_.size() << "/" << recovery_expected_.size()
                              << " agents re-synced in "
                              << (recovery_ready_at_ - recovery_started_at_) / 1000 << " ms";
}

void ShardCore::load_checkpoint() {
  const auto& sink = config_.recovery.checkpoint_sink;
  if (sink == nullptr) return;
  auto bytes = sink->load();
  if (!bytes.ok()) return;  // nothing saved yet: cold start
  auto checkpoint = proto::MasterCheckpoint::decode(*bytes);
  if (!checkpoint.ok()) {
    ++checkpoints_rejected_;
    FLEXRAN_LOG(error, "master") << "checkpoint rejected: " << checkpoint.error().message;
    return;
  }
  // Wrong-shard gate: under one coordinator every shard has its own sink,
  // and a restore must never resurrect a neighbor's (or a standalone
  // master's) agent set -- the ids would collide with agents the other
  // shards still own.
  if (checkpoint->shard != config_.shard) {
    ++checkpoints_rejected_;
    FLEXRAN_LOG(error, "master") << "checkpoint rejected: written by shard "
                                 << checkpoint->shard << ", this core is shard "
                                 << config_.shard;
    return;
  }
  checkpoint_loaded_ = true;
  if (config_.recovery.enabled) {
    // Fencing must stay monotonic across the restart: resume above the
    // incarnation that wrote the checkpoint.
    incarnation_ = std::max(incarnation_, checkpoint->incarnation + 1);
  }
  for (const auto& saved : checkpoint->agents) import_durable(saved);
  rib_structure_changed_ = true;
  FLEXRAN_LOG(info, "master") << "loaded checkpoint: " << checkpoint->agents.size()
                              << " agents, incarnation " << checkpoint->incarnation;
}

void ShardCore::maybe_checkpoint() {
  if (config_.recovery.checkpoint_period_us <= 0 ||
      config_.recovery.checkpoint_sink == nullptr) {
    return;
  }
  // After a failed save the next attempt comes after the backoff, not a
  // full period: the shard should not run a whole checkpoint period more
  // exposed to cold recovery because one write failed.
  const sim::TimeUs wait = checkpoint_backoff_us_ > 0 ? checkpoint_backoff_us_
                                                      : config_.recovery.checkpoint_period_us;
  if (sim_.now() - last_checkpoint_at_ < wait) return;
  (void)save_checkpoint();
}

util::Status ShardCore::save_checkpoint() {
  const auto& sink = config_.recovery.checkpoint_sink;
  if (sink == nullptr) return util::Error::invalid_argument("no checkpoint sink configured");
  last_checkpoint_at_ = sim_.now();
  auto status = sink->save(build_checkpoint().encode());
  if (status.ok()) {
    ++checkpoints_saved_;
    checkpoint_backoff_us_ = 0;
  } else {
    ++checkpoint_write_failures_;
    // Exponential backoff from 10 ms, capped at the checkpoint period. The
    // failed attempt is harmless on disk: the sink's tmp+rename protocol
    // means load() still returns the last complete checkpoint.
    constexpr sim::TimeUs kRetryBaseUs = 10'000;
    const sim::TimeUs cap = config_.recovery.checkpoint_period_us > 0
                                ? config_.recovery.checkpoint_period_us
                                : kRetryBaseUs;
    checkpoint_backoff_us_ = checkpoint_backoff_us_ == 0
                                 ? std::min(kRetryBaseUs, cap)
                                 : std::min(checkpoint_backoff_us_ * 2, cap);
    FLEXRAN_LOG(error, "master") << "checkpoint save failed: " << status.error().message
                                 << " (retry in " << checkpoint_backoff_us_ / 1000 << " ms)";
  }
  return status;
}

proto::MasterCheckpoint ShardCore::build_checkpoint() const {
  proto::MasterCheckpoint checkpoint;
  checkpoint.incarnation = incarnation_;
  checkpoint.saved_at_us = static_cast<std::uint64_t>(sim_.now());
  checkpoint.shard = config_.shard;
  // The full link set, including agents whose durable state is still empty
  // (no hello yet): failover needs to know every agent the shard owned,
  // not just the ones worth restoring warm.
  for (const auto& [id, link] : links_) {
    (void)link;
    checkpoint.agent_ids.push_back(id);
  }
  for (const auto& [id, agent] : rib_.agents()) {
    // Only durable state: identity, configuration, epoch. Agents that never
    // completed a hello have nothing worth restoring.
    if (agent.epoch == 0 && agent.name.empty()) continue;
    checkpoint.agents.push_back(export_agent(id));
  }
  return checkpoint;
}

proto::CheckpointAgent ShardCore::export_agent(AgentId id) const {
  proto::CheckpointAgent saved;
  saved.id = id;
  const AgentNode* agent = rib_.find_agent(id);
  if (agent == nullptr) return saved;
  saved.name = agent->name;
  saved.capabilities = agent->capabilities;
  saved.epoch = agent->epoch;
  saved.config.enb_id = agent->enb_id;
  for (const auto& [cell_id, cell] : agent->cells) {
    (void)cell_id;
    saved.config.cells.push_back(proto::CellConfigMsg::from(cell.config));
  }
  for (const auto& [key, report] : original_reports_) {
    if (key.first == id) saved.reports.push_back(report);
  }
  if (auto it = policies_.find(id); it != policies_.end()) {
    saved.policy_history.assign(it->second.history.begin(), it->second.history.end());
  }
  return saved;
}

void ShardCore::import_durable(const proto::CheckpointAgent& saved) {
  const AgentId id = saved.id;
  AgentNode& node = rib_.agent(id);
  node.id = id;
  node.enb_id = saved.config.enb_id;
  node.name = saved.name;
  node.capabilities = saved.capabilities;
  node.epoch = saved.epoch;
  if (node.state != SessionState::down) node.state = SessionState::down;
  for (const auto& cell : saved.config.cells) {
    node.cells[cell.cell_id].config = cell.to_cell_config();
  }
  for (const auto& report : saved.reports) {
    original_reports_[{id, report.request_id}] = report;
  }
  if (!saved.policy_history.empty()) {
    policies_[id].history.assign(saved.policy_history.begin(), saved.policy_history.end());
  }
  warm_restored_.insert(id);
  recovery_expected_.insert(id);
  dirty_agents_.insert(id);
}

void ShardCore::bump_incarnation(std::uint32_t floor) {
  if (!config_.recovery.enabled) return;
  incarnation_ = std::max(incarnation_, floor);
}

void ShardCore::adopt_agent(net::Transport& transport, AgentId id,
                            const proto::CheckpointAgent* durable) {
  add_agent(transport, id);  // rebinds the connection's callbacks to this core
  AgentNode& node = rib_.agent(id);
  // The agent keeps talking on the surviving connection; until its next
  // message (or re-hello against this core's incarnation) lands here, the
  // session is down from this core's point of view. Its first frame walks
  // the reconnect path into the paced re-sync admission.
  node.state = SessionState::down;
  dirty_agents_.insert(id);
  if (durable != nullptr && durable->id == id) {
    import_durable(*durable);  // warm handoff: next re-sync is a delta
  } else if (config_.recovery.enabled) {
    recovery_expected_.insert(id);
  }
  if (config_.recovery.enabled) {
    recovery_resynced_.erase(id);
    if (!recovering_) {
      // Raise the readiness barrier for the adopted set: commands to
      // not-yet-resynced agents are held, exactly as after a restart.
      // Already-up agents on this shard are unaffected.
      recovering_ = true;
      recovery_started_at_ = sim_.now();
      recovery_ready_at_ = 0;
    }
  }
  // Announce this core's incarnation on the adopted link so the agent
  // learns its master moved from the first frame instead of discovering
  // the adoption through fenced traffic.
  proto::EchoRequest echo;
  echo.timestamp_us = sim_.now();
  (void)send_to(id, echo);
}

void ShardCore::dispatch_events() {
  while (!event_queue_.empty()) {
    Event event = std::move(event_queue_.front());
    event_queue_.pop_front();
    for (const auto& app : apps_) app->on_event(event, *this);
    // The Coordinator's mirror runs last: global apps see the event only
    // after the owning shard's apps did (same order as a single master).
    if (event_tap_) event_tap_(event);
  }
}

// ------------------------------------------------------------------- sends

template <typename M>
util::Status ShardCore::send_to(AgentId agent, const M& message, bool track) {
  auto it = links_.find(agent);
  if (it == links_.end() || it->second.transport == nullptr) {
    return util::Error::not_found("no transport for agent");
  }
  proto::Envelope envelope;
  envelope.type = M::kType;
  envelope.xid = next_xid_++;
  envelope.epoch = rib_.agent(agent).epoch;
  if (config_.overload.ingest.enabled()) {
    // Piggyback the overload state + throttle hint on every outgoing
    // message while non-normal; both encode to nothing when healthy.
    envelope.queue_status = static_cast<std::uint8_t>(overload_monitor_.state());
    envelope.throttle_hint = throttle_multiplier_ > 1 ? throttle_multiplier_ : 0;
  }
  if (config_.obs.enabled) envelope.ts_us = static_cast<std::uint64_t>(sim_.now());
  if (config_.recovery.enabled) {
    // Stamp the incarnation on every send so agents can fence traffic from
    // a dead master and detect a restart from the first frame. Agents whose
    // full re-sync the admission gate deferred also get the retry-after
    // hint piggybacked (the throttle-hint idiom).
    envelope.master_epoch = incarnation_;
    if (resync_waiting_.contains(agent)) {
      envelope.retry_after_ms =
          static_cast<std::uint32_t>(config_.recovery.resync_retry_after_ms);
    }
  }
  const proto::MessageCategory category = proto::categorize(message);
  if (recovering_ && category == proto::MessageCategory::commands) {
    // App readiness gating: no command reaches an agent that has not yet
    // re-synced with this incarnation. Apps acting before the barrier drops
    // would be scheduling against a half-rebuilt world view.
    const auto* node = rib_.find_agent(agent);
    if (node == nullptr || node->state != SessionState::up) {
      ++commands_held_;
      return util::Error::conflict("recovering: agent not re-synced");
    }
  }
  if (recovering_ && category == proto::MessageCategory::commands) {
    // Invariant tripwire, deliberately separate from the gate above: dead
    // code today, but if the gate is ever weakened this records the
    // command that escaped and the InvariantMonitor flags the increase.
    const auto* node = rib_.find_agent(agent);
    if (node == nullptr || node->state != SessionState::up) ++commands_sent_unresynced_;
  }
  // Reused per-shard scratch encoder (sends happen on the coordinator
  // thread only): body and envelope are written in one pass via length
  // backpatching, so a steady-state send allocates nothing.
  send_enc_.clear();
  proto::encode_envelope(send_enc_, envelope, message);
  const auto wire = send_enc_.bytes();
  const net::TrafficClass cls = proto::traffic_class(message);
  it->second.tx.record(category, wire.size() + net::kFrameHeaderBytes);
  if (track && config_.request_timeout_us > 0) {
    PendingRequest request;
    request.agent = agent;
    request.type = M::kType;
    request.xid = envelope.xid;
    request.epoch = envelope.epoch;
    if constexpr (std::is_same_v<M, proto::StatsRequest>) {
      request.request_id = message.request_id;
    }
    request.category = category;
    request.cls = cls;
    // Tracked requests keep an owned copy for retransmission; the scratch
    // buffer is reused on the next send.
    request.wire.assign(wire.begin(), wire.end());
    request.timeout = config_.request_timeout_us;
    request.deadline = sim_.now() + request.timeout;
    inflight_.emplace(envelope.xid, std::move(request));
  }
  return it->second.transport->send(cls, wire);
}

std::int64_t ShardCore::agent_subframe(AgentId agent) const {
  const auto* node = rib_.find_agent(agent);
  return node == nullptr ? 0 : node->last_subframe;
}

util::Status ShardCore::send_dl_mac_config(AgentId agent,
                                                  const proto::DlMacConfig& config) {
  if (config_.conflict_resolution) {
    auto claimed = arbiter_.claim_dl(agent, config);
    if (!claimed.ok()) return claimed;
  }
  return send_to(agent, config);
}

util::Status ShardCore::send_ul_mac_config(AgentId agent,
                                                  const proto::UlMacConfig& config) {
  return send_to(agent, config);
}

util::Status ShardCore::send_handover(AgentId agent,
                                             const proto::HandoverCommand& command) {
  auto status = send_to(agent, command);
  // A handover sourced from a recovering shard would be decided against a
  // half-rebuilt RIB; apps honor the snapshot readiness guard, so any
  // increase here is an invariant violation, not a metric.
  if (status.ok() && recovering_) ++handovers_while_recovering_;
  return status;
}

util::Status ShardCore::send_abs_config(AgentId agent, const proto::AbsConfig& config) {
  return send_to(agent, config);
}

util::Status ShardCore::send_carrier_restriction(AgentId agent,
                                                        const proto::CarrierRestriction& config) {
  return send_to(agent, config);
}

util::Status ShardCore::send_drx_config(AgentId agent, const proto::DrxConfig& config) {
  return send_to(agent, config);
}

util::Status ShardCore::send_scell_command(AgentId agent,
                                                  const proto::ScellCommand& command) {
  return send_to(agent, command);
}

util::Status ShardCore::request_stats(AgentId agent, const proto::StatsRequest& request) {
  if (config_.overload.ingest.enabled()) {
    if (request.flags == 0) {
      original_reports_.erase({agent, request.request_id});
    } else if (request.mode == proto::ReportMode::periodic) {
      // Capture the as-issued request so throttling can stretch it and
      // recovery can restore it. Under an active throttle the agent gets
      // the stretched period right away.
      original_reports_[{agent, request.request_id}] = request;
      if (throttle_multiplier_ > 1) {
        proto::StatsRequest stretched = request;
        stretched.periodicity_ttis =
            std::max<std::uint32_t>(1, request.periodicity_ttis) * throttle_multiplier_;
        return send_to(agent, stretched, /*track=*/true);
      }
    }
  }
  return send_to(agent, request, /*track=*/true);
}

util::Status ShardCore::subscribe_events(AgentId agent,
                                                std::vector<proto::EventType> events,
                                                bool enable) {
  proto::EventSubscription subscription;
  subscription.events = std::move(events);
  subscription.enable = enable;
  return send_to(agent, subscription);
}

util::Status ShardCore::push_vsf(AgentId agent, const std::string& module,
                                        const std::string& vsf,
                                        const std::string& implementation) {
  proto::ControlDelegation delegation;
  delegation.module = module;
  delegation.vsf = vsf;
  delegation.implementation = implementation;
  // Stand-in payload for the compiled shared library the paper ships; gives
  // the delegation message a realistic (non-trivial) wire size.
  delegation.blob.assign(256, 0xc0);
  return send_to(agent, delegation);
}

util::Status ShardCore::send_policy(AgentId agent, const std::string& yaml) {
  proto::PolicyReconfiguration policy;
  policy.yaml = yaml;
  // send_to stamps the envelope with next_xid_; record the policy under
  // that xid so the agent's echoed verdict can resolve it.
  const std::uint32_t xid = next_xid_;
  auto status = send_to(agent, policy);
  if (status.ok()) policies_[agent].pending.emplace(xid, yaml);
  return status;
}

const proto::SignalingAccountant& ShardCore::tx_accounting(AgentId agent) const {
  auto it = links_.find(agent);
  return it == links_.end() ? empty_accounting_ : it->second.tx;
}

const proto::SignalingAccountant& ShardCore::rx_accounting(AgentId agent) const {
  auto it = links_.find(agent);
  return it == links_.end() ? empty_accounting_ : it->second.rx;
}

// --------------------------------------------- observability registration

namespace {
constexpr proto::MessageCategory kAllCategories[] = {
    proto::MessageCategory::agent_management, proto::MessageCategory::sync,
    proto::MessageCategory::stats, proto::MessageCategory::commands,
    proto::MessageCategory::delegation};
constexpr net::TrafficClass kAllClasses[] = {
    net::TrafficClass::session, net::TrafficClass::command, net::TrafficClass::config,
    net::TrafficClass::event,   net::TrafficClass::sync,    net::TrafficClass::stats};
}  // namespace

const obs::Histogram* ShardCore::control_latency(AgentId agent) const {
  auto it = links_.find(agent);
  return it == links_.end() ? nullptr : it->second.latency;
}

std::string ShardCore::probe_name(
    std::string name, std::vector<std::pair<std::string, std::string>> labels) const {
  if (config_.shard >= 0) labels.emplace_back("shard", std::to_string(config_.shard));
  return obs::labeled(std::move(name), labels);
}

void ShardCore::register_obs_probes() {
  auto& m = *registry_;
  // Ingest queue feeding the RIB Updater (bounded class-aware queue).
  m.register_probe(probe_name("ingest_depth_messages"),
                   [this] { return static_cast<double>(pending_.size()); });
  m.register_probe(probe_name("ingest_depth_bytes"),
                   [this] { return static_cast<double>(pending_.bytes()); });
  m.register_probe(probe_name("ingest_peak_messages"),
                   [this] { return static_cast<double>(pending_.peak_messages()); });
  m.register_probe(probe_name("ingest_peak_bytes"),
                   [this] { return static_cast<double>(pending_.peak_bytes()); });
  m.register_probe(probe_name("ingest_budget_overflows"),
                   [this] { return static_cast<double>(pending_.budget_overflows()); });
  for (const net::TrafficClass cls : kAllClasses) {
    const std::string label = net::to_string(cls);
    m.register_probe(probe_name("ingest_enqueued", {{"class", label}}),
                     [this, cls] { return static_cast<double>(pending_.counters(cls).enqueued); });
    m.register_probe(probe_name("ingest_shed", {{"class", label}}),
                     [this, cls] { return static_cast<double>(pending_.counters(cls).shed); });
    m.register_probe(probe_name("ingest_shed_bytes", {{"class", label}}), [this, cls] {
      return static_cast<double>(pending_.counters(cls).shed_bytes);
    });
    m.register_probe(probe_name("ingest_coalesced", {{"class", label}}), [this, cls] {
      return static_cast<double>(pending_.counters(cls).coalesced);
    });
  }
  // RIB updater + request table + session lifecycle.
  m.register_probe(probe_name("updates_applied"), [this] { return static_cast<double>(updates_applied_); });
  m.register_probe(probe_name("fenced_updates"), [this] { return static_cast<double>(fenced_updates_); });
  m.register_probe(probe_name("rx_decode_errors"),
                   [this] { return static_cast<double>(rx_decode_errors_); });
  // Process-wide decoder anomaly counter (docs/wire_fastpath.md): fields the
  // decoder recognised but had to drop rather than store, e.g. trailing BSR
  // entries beyond the fixed LCG count. Exported per shard for convenience;
  // every shard reports the same process-wide value.
  m.register_probe(probe_name("proto_decode_anomalies"), [] {
    return static_cast<double>(
        proto::decode_anomalies().bsr_overflow.load(std::memory_order_relaxed));
  });
  m.register_probe(probe_name("inflight_requests"),
                   [this] { return static_cast<double>(inflight_.size()); });
  m.register_probe(probe_name("requests_completed"),
                   [this] { return static_cast<double>(requests_completed_); });
  m.register_probe(probe_name("requests_retried"),
                   [this] { return static_cast<double>(requests_retried_); });
  m.register_probe(probe_name("requests_failed"), [this] { return static_cast<double>(requests_failed_); });
  m.register_probe(probe_name("policy_rollbacks"),
                   [this] { return static_cast<double>(policy_rollbacks_); });
  m.register_probe(probe_name("policies_rejected"),
                   [this] { return static_cast<double>(policies_rejected_); });
  // Overload watchdog (docs/overload_protection.md).
  m.register_probe(probe_name("overload_state"), [this] {
    return static_cast<double>(static_cast<int>(overload_monitor_.state()));
  });
  m.register_probe(probe_name("overload_transitions"),
                   [this] { return static_cast<double>(overload_monitor_.transitions()); });
  m.register_probe(probe_name("updater_saturations"),
                   [this] { return static_cast<double>(updater_saturations_); });
  m.register_probe(probe_name("throttle_multiplier"),
                   [this] { return static_cast<double>(throttle_multiplier_); });
  m.register_probe(probe_name("throttle_renegotiations"),
                   [this] { return static_cast<double>(throttle_renegotiations_); });
  // Task manager / control loop (Fig. 8 series + cycle-trace stages).
  m.register_probe(probe_name("cycles_run"),
                   [this] { return static_cast<double>(task_manager_.cycles_run()); });
  m.register_probe(probe_name("commands_flushed"),
                   [this] { return static_cast<double>(task_manager_.commands_flushed()); });
  m.register_probe(probe_name("app_overruns"),
                   [this] { return static_cast<double>(task_manager_.app_overruns()); });
  m.register_probe(probe_name("updater_overruns"),
                   [this] { return static_cast<double>(task_manager_.updater_overruns()); });
  m.register_probe(probe_name("idle_fraction"), [this] { return task_manager_.mean_idle_fraction(); });
  m.register_probe(probe_name("snapshot_version"),
                   [this] { return static_cast<double>(snapshot_version()); });
  m.register_probe(probe_name("snapshot_publish_us_mean"),
                   [this] { return snapshot_publish_time_.mean(); });
  m.register_probe(probe_name("cycle_updater_us_mean"), [this] { return trace_ring_.updater_us().mean(); });
  m.register_probe(probe_name("cycle_updater_us_max"), [this] { return trace_ring_.updater_us().max(); });
  m.register_probe(probe_name("cycle_event_us_mean"), [this] { return trace_ring_.event_us().mean(); });
  m.register_probe(probe_name("cycle_apps_us_mean"), [this] { return trace_ring_.apps_us().mean(); });
  m.register_probe(probe_name("cycle_apps_us_max"), [this] { return trace_ring_.apps_us().max(); });
  m.register_probe(probe_name("cycle_flush_us_mean"), [this] { return trace_ring_.flush_us().mean(); });
  m.register_probe(probe_name("cycle_flush_us_max"), [this] { return trace_ring_.flush_us().max(); });
  // Crash recovery (docs/fault_tolerance.md "Master restart"): the
  // recovering gauge, pacing counters and the time-to-resync histogram
  // (1ms .. ~16s, doubling -- re-syncs span wire RTTs to paced backlogs).
  m.register_probe(probe_name("recovering"), [this] { return recovering_ ? 1.0 : 0.0; });
  m.register_probe(probe_name("master_restarts"),
                   [this] { return static_cast<double>(master_restarts_); });
  m.register_probe(probe_name("resyncs_paced"), [this] { return static_cast<double>(resyncs_paced_); });
  m.register_probe(probe_name("resyncs_admitted"),
                   [this] { return static_cast<double>(resyncs_admitted_); });
  m.register_probe(probe_name("resyncs_waiting"),
                   [this] { return static_cast<double>(resync_queue_.size()); });
  m.register_probe(probe_name("commands_held_recovering"),
                   [this] { return static_cast<double>(commands_held_); });
  m.register_probe(probe_name("checkpoints_saved"),
                   [this] { return static_cast<double>(checkpoints_saved_); });
  m.register_probe(probe_name("checkpoint_write_failures"),
                   [this] { return static_cast<double>(checkpoint_write_failures_); });
  m.register_probe(probe_name("policies_repushed"),
                   [this] { return static_cast<double>(policies_repushed_); });
  resync_duration_ = &m.histogram(probe_name("resync_duration_us"), obs::exponential_bounds(1000.0, 2.0, 14));
}

void ShardCore::register_agent_probes(AgentId id) {
  auto& m = *registry_;
  const std::string agent_label = std::to_string(id);
  for (const proto::MessageCategory category : kAllCategories) {
    const std::string cat_label = proto::to_string(category);
    m.register_probe(
        probe_name("signaling_tx_bytes", {{"agent", agent_label}, {"category", cat_label}}),
        [this, id, category] {
          return static_cast<double>(tx_accounting(id).bytes(category));
        });
    m.register_probe(
        probe_name("signaling_tx_messages",
                     {{"agent", agent_label}, {"category", cat_label}}),
        [this, id, category] {
          return static_cast<double>(tx_accounting(id).messages(category));
        });
    m.register_probe(
        probe_name("signaling_rx_bytes", {{"agent", agent_label}, {"category", cat_label}}),
        [this, id, category] {
          return static_cast<double>(rx_accounting(id).bytes(category));
        });
    m.register_probe(
        probe_name("signaling_rx_messages",
                     {{"agent", agent_label}, {"category", cat_label}}),
        [this, id, category] {
          return static_cast<double>(rx_accounting(id).messages(category));
        });
  }
  // End-to-end control-latency histogram, fed by the Envelope timestamp
  // echo in apply_update. Buckets 250us .. ~512ms (doubling).
  links_[id].latency = &m.histogram(probe_name("control_latency_us", {{"agent", agent_label}}),
                                    obs::exponential_bounds(250.0, 2.0, 12));
}

void ShardCore::register_app_probes(const std::string& name) {
  auto& m = *registry_;
  auto stat_probe = [this, name](auto select) {
    return [this, name, select]() -> double {
      for (const auto& stat : task_manager_.app_stats()) {
        if (stat.name == name) return select(stat);
      }
      return 0.0;
    };
  };
  m.register_probe(probe_name("app_runs", {{"app", name}}),
                   stat_probe([](const TaskManager::AppStat& s) {
                     return static_cast<double>(s.runs);
                   }));
  m.register_probe(probe_name("app_wall_us_mean", {{"app", name}}),
                   stat_probe([](const TaskManager::AppStat& s) { return s.mean_wall_us; }));
  m.register_probe(probe_name("app_wall_us_max", {{"app", name}}),
                   stat_probe([](const TaskManager::AppStat& s) { return s.max_wall_us; }));
  m.register_probe(probe_name("app_overruns", {{"app", name}}),
                   stat_probe([](const TaskManager::AppStat& s) {
                     return static_cast<double>(s.overruns);
                   }));
}

}  // namespace flexran::ctrl
