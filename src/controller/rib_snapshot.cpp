#include "controller/rib_snapshot.h"

namespace flexran::ctrl {

const AgentNode* RibSnapshot::find_agent(AgentId id) const {
  auto it = agents_.find(id);
  return it == agents_.end() ? nullptr : it->second.get();
}

const UeNode* RibSnapshot::find_ue(AgentId id, lte::Rnti rnti) const {
  const AgentNode* agent = find_agent(id);
  if (agent == nullptr) return nullptr;
  for (const auto& [cell_id, cell] : agent->cells) {
    (void)cell_id;
    auto it = cell.ues.find(rnti);
    if (it != cell.ues.end()) return &it->second;
  }
  return nullptr;
}

std::size_t RibSnapshot::ue_count() const {
  std::size_t count = 0;
  for (const auto& [id, agent] : agents_) {
    (void)id;
    for (const auto& [cell_id, cell] : agent->cells) {
      (void)cell_id;
      count += cell.ues.size();
    }
  }
  return count;
}

std::shared_ptr<const RibSnapshot> RibSnapshot::capture(const Rib& rib, std::uint64_t version) {
  auto snapshot = std::make_shared<RibSnapshot>();
  snapshot->version_ = version;
  for (const auto& [id, agent] : rib.agents()) {
    snapshot->agents_.emplace(id, std::make_shared<const AgentNode>(agent));
  }
  return snapshot;
}

std::shared_ptr<const RibSnapshot> RibSnapshot::compose(
    const std::vector<std::shared_ptr<const RibSnapshot>>& shards) {
  auto composite = std::make_shared<RibSnapshot>();
  for (const auto& shard : shards) {
    if (shard == nullptr) continue;
    composite->version_ += shard->version();
    if (shard->overload_state() > composite->overload_state_) {
      composite->overload_state_ = shard->overload_state();
    }
    composite->recovering_ = composite->recovering_ || shard->recovering();
    for (const auto& [id, agent] : shard->agents_) {
      composite->agents_.emplace(id, agent);  // shares the subtree
    }
  }
  return composite;
}

SnapshotStore::SnapshotStore() : current_(std::make_shared<const RibSnapshot>()) {}

std::shared_ptr<const RibSnapshot> SnapshotStore::publish(const Rib& rib,
                                                          const std::set<AgentId>& dirty,
                                                          bool structure_changed,
                                                          OverloadState overload,
                                                          bool recovering) {
  auto previous = current();
  if (dirty.empty() && !structure_changed && previous->overload_state() == overload &&
      previous->recovering() == recovering) {
    return previous;
  }

  auto next = std::make_shared<RibSnapshot>();
  next->version_ = previous->version() + 1;
  next->overload_state_ = overload;
  next->recovering_ = recovering;
  for (const auto& [id, agent] : rib.agents()) {
    auto it = previous->agents_.find(id);
    if (it != previous->agents_.end() && !dirty.contains(id)) {
      next->agents_.emplace(id, it->second);  // unchanged subtree: share it
    } else {
      next->agents_.emplace(id, std::make_shared<const AgentNode>(agent));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(next);
  return current_;
}

}  // namespace flexran::ctrl
