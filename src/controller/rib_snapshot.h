// Versioned immutable RIB snapshots. The RIB Updater keeps sole ownership
// of the mutable Rib (the paper's single-writer discipline, Sec. 4.3.3);
// at the end of each updater slot it publishes an immutable RibSnapshot
// that applications read lock-free. Where the paper guarantees mutual
// exclusion by time-slicing one thread, this layer guarantees it by data
// versioning: the updater slot of cycle N+1 may overlap the application
// slot of cycle N because the apps of cycle N hold snapshot N, not the
// live tree. See docs/controller_concurrency.md.
//
// Snapshots share structure: an agent subtree that did not change between
// versions is carried by the same shared_ptr, so publishing is O(dirty
// agents), not O(RIB).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "controller/overload.h"
#include "controller/rib.h"

namespace flexran::ctrl {

class RibSnapshot {
 public:
  using AgentMap = std::map<AgentId, std::shared_ptr<const AgentNode>>;

  /// Monotonic publish counter; bumps only when content actually changed.
  std::uint64_t version() const { return version_; }

  /// Master overload state at publish time (docs/overload_protection.md).
  /// Apps read it here to back off their own signaling under pressure.
  OverloadState overload_state() const { return overload_state_; }

  /// True while a restarted master is still rebuilding its world view from
  /// agent re-syncs (docs/fault_tolerance.md "Master restart"). The app
  /// readiness barrier: well-behaved apps issue no commands against a
  /// snapshot that is recovering -- the agents it shows are a half-rebuilt
  /// subset and their state is whatever survived the crash.
  bool recovering() const { return recovering_; }

  const AgentMap& agents() const { return agents_; }
  const AgentNode* find_agent(AgentId id) const;
  const UeNode* find_ue(AgentId id, lte::Rnti rnti) const;
  std::size_t agent_count() const { return agents_.size(); }
  std::size_t ue_count() const;

  /// One-shot deep capture of a Rib (tests, tools, ad-hoc analytics). The
  /// master publishes through SnapshotStore instead, which shares agent
  /// subtrees that did not change between versions.
  static std::shared_ptr<const RibSnapshot> capture(const Rib& rib, std::uint64_t version = 1);

  /// Composite of per-shard snapshots (docs/sharded_control.md): the union
  /// of the shards' agent maps, sharing every agent subtree by pointer --
  /// composition is O(agents) pointer copies, no tree is deep-copied.
  /// Version is the sum of the shard versions (each is monotonic, so the
  /// composite version is monotonic and moves whenever any shard moved).
  /// Overload is the worst shard state; recovering is true while *any*
  /// shard is recovering -- the readiness barrier for cross-shard apps is
  /// the conjunction of the per-shard barriers. Shards own disjoint agent
  /// sets by construction; a duplicate id keeps the first shard's node.
  static std::shared_ptr<const RibSnapshot> compose(
      const std::vector<std::shared_ptr<const RibSnapshot>>& shards);

 private:
  friend class SnapshotStore;

  std::uint64_t version_ = 0;
  OverloadState overload_state_ = OverloadState::normal;
  bool recovering_ = false;
  AgentMap agents_;
};

/// Single-writer publish point: the RIB Updater (coordinator thread) calls
/// publish(); any thread may call current(). The pointer swap happens
/// under a tiny mutex -- uncontended in practice, since the hot path
/// (applications inside a cycle) reads the snapshot *pinned* into its
/// BatchingNorthbound proxy at dispatch, with no synchronization at all;
/// current() is called by the coordinator when pinning, and by tests. A
/// reader holding an old snapshot keeps it alive for as long as it needs.
class SnapshotStore {
 public:
  SnapshotStore();

  /// Publishes the state of `rib`. Agent subtrees not in `dirty` are
  /// shared with the previous snapshot; when nothing changed (empty dirty
  /// set, same agent ids, `structure_changed` false, unchanged overload
  /// and recovering state) the previous snapshot is re-published unchanged
  /// and the version does not move.
  std::shared_ptr<const RibSnapshot> publish(const Rib& rib, const std::set<AgentId>& dirty,
                                             bool structure_changed,
                                             OverloadState overload = OverloadState::normal,
                                             bool recovering = false);

  /// Latest published snapshot (never null; starts at an empty version 0).
  std::shared_ptr<const RibSnapshot> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const RibSnapshot> current_;
};

}  // namespace flexran::ctrl
