#include "controller/coordinator.h"

#include <algorithm>

#include "util/logging.h"

namespace flexran::ctrl {

namespace {
/// FNV-1a over the stable key's bytes. Deliberately not std::hash: the
/// placement must be stable across processes and standard-library
/// implementations, or a restarted deployment would reshuffle its fleet.
std::uint64_t fnv1a(std::uint64_t key) {
  std::uint64_t hash = 1469598103934665603ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= (key >> (i * 8)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}
}  // namespace

std::size_t Coordinator::assign_shard(std::uint64_t stable_key, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(fnv1a(stable_key) % shard_count);
}

Coordinator::Coordinator(sim::Simulator& sim, CoordinatorConfig config)
    : sim_(sim), config_(std::move(config)) {
  const std::size_t count = config_.shards == 0 ? 1 : config_.shards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    MasterConfig shard_config = config_.shard;
    if (count > 1) {
      // Multi-shard: label every metric identity with the shard index and
      // share one registry so the process exports a single surface.
      shard_config.shard = static_cast<int>(i);
      if (shard_config.obs.enabled && shard_config.obs.registry == nullptr) {
        shard_config.obs.registry = &metrics_;
      }
    }
    if (config_.checkpoint_sink_factory) {
      shard_config.recovery.checkpoint_sink = config_.checkpoint_sink_factory(i);
    }
    shards_.push_back(std::make_unique<ShardCore>(sim_, std::move(shard_config)));
  }
}

AgentId Coordinator::add_agent(net::Transport& transport, std::uint64_t stable_key,
                               std::optional<std::size_t> shard_override) {
  std::size_t index = shard_override.value_or(assign_shard(stable_key, shards_.size()));
  if (index >= shards_.size()) {
    FLEXRAN_LOG(warn, "coordinator") << "shard override " << index << " out of range, hashing";
    index = assign_shard(stable_key, shards_.size());
  }
  // Ids are allocated globally so they are unique across shards and the
  // composite view (a shard's own sequence would collide with its peers').
  const AgentId id = next_agent_id_++;
  shards_[index]->add_agent(transport, id);
  assignment_[id] = index;
  return id;
}

void Coordinator::remove_agent(AgentId id) {
  auto it = assignment_.find(id);
  if (it == assignment_.end()) return;
  shards_[it->second]->remove_agent(id);
  assignment_.erase(it);
}

void Coordinator::run_cycle() {
  for (auto& shard : shards_) shard->run_cycle();
  const std::int64_t cycle = cycles_++;
  if (apps_.empty()) return;
  // Global slot: mirrored shard events first (each shard's own apps
  // already saw them), then the composite on_cycle pass.
  while (!pending_events_.empty()) {
    Event event = std::move(pending_events_.front());
    pending_events_.pop_front();
    for (const auto& app : apps_) app->on_event(event, *this);
  }
  for (const auto& app : apps_) app->on_cycle(cycle, *this);
}

void Coordinator::quiesce() {
  for (auto& shard : shards_) shard->quiesce();
}

App* Coordinator::add_app(std::unique_ptr<App> app) {
  install_event_taps();
  apps_.push_back(std::move(app));
  App* raw = apps_.back().get();
  raw->on_start(*this);
  return raw;
}

void Coordinator::install_event_taps() {
  if (taps_installed_) return;
  taps_installed_ = true;
  for (auto& shard : shards_) {
    shard->set_event_tap([this](const Event& event) { pending_events_.push_back(event); });
  }
}

std::optional<std::size_t> Coordinator::shard_of(AgentId id) const {
  auto it = assignment_.find(id);
  if (it == assignment_.end()) return std::nullopt;
  return it->second;
}

ShardCore* Coordinator::owner(AgentId id) {
  auto it = assignment_.find(id);
  return it == assignment_.end() ? nullptr : shards_[it->second].get();
}

const ShardCore* Coordinator::owner(AgentId id) const {
  auto it = assignment_.find(id);
  return it == assignment_.end() ? nullptr : shards_[it->second].get();
}

// ------------------------------------------------------------- composite

std::shared_ptr<const RibSnapshot> Coordinator::rib_snapshot() const {
  if (shards_.size() == 1) return shards_.front()->rib_snapshot();
  std::vector<std::shared_ptr<const RibSnapshot>> parts;
  parts.reserve(shards_.size());
  bool stale = composite_ == nullptr || composed_versions_.size() != shards_.size();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    parts.push_back(shards_[i]->rib_snapshot());
    if (!stale && parts[i]->version() != composed_versions_[i]) stale = true;
  }
  if (!stale) return composite_;
  composite_ = RibSnapshot::compose(parts);
  composed_versions_.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) composed_versions_[i] = parts[i]->version();
  ++composites_built_;
  return composite_;
}

// ----------------------------------------------------------------- routing

sim::TimeUs Coordinator::now() const { return sim_.now(); }

std::int64_t Coordinator::agent_subframe(AgentId agent) const {
  const ShardCore* shard = owner(agent);
  return shard == nullptr ? 0 : shard->agent_subframe(agent);
}

namespace {
util::Status unassigned(AgentId agent) {
  return util::Error::not_found("agent " + std::to_string(agent) +
                                " not assigned to any shard");
}
}  // namespace

util::Status Coordinator::send_dl_mac_config(AgentId agent, const proto::DlMacConfig& config) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_dl_mac_config(agent, config);
}

util::Status Coordinator::send_ul_mac_config(AgentId agent, const proto::UlMacConfig& config) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_ul_mac_config(agent, config);
}

util::Status Coordinator::send_handover(AgentId agent, const proto::HandoverCommand& command) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_handover(agent, command);
}

util::Status Coordinator::send_abs_config(AgentId agent, const proto::AbsConfig& config) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_abs_config(agent, config);
}

util::Status Coordinator::send_carrier_restriction(AgentId agent,
                                                   const proto::CarrierRestriction& config) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_carrier_restriction(agent, config);
}

util::Status Coordinator::send_drx_config(AgentId agent, const proto::DrxConfig& config) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_drx_config(agent, config);
}

util::Status Coordinator::send_scell_command(AgentId agent, const proto::ScellCommand& command) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_scell_command(agent, command);
}

util::Status Coordinator::request_stats(AgentId agent, const proto::StatsRequest& request) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->request_stats(agent, request);
}

util::Status Coordinator::subscribe_events(AgentId agent, std::vector<proto::EventType> events,
                                           bool enable) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent)
                          : shard->subscribe_events(agent, std::move(events), enable);
}

util::Status Coordinator::push_vsf(AgentId agent, const std::string& module,
                                   const std::string& vsf, const std::string& implementation) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent)
                          : shard->push_vsf(agent, module, vsf, implementation);
}

util::Status Coordinator::send_policy(AgentId agent, const std::string& yaml) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_policy(agent, yaml);
}

// ------------------------------------------------------------ introspection

const AgentNode* Coordinator::find_agent(AgentId id) const {
  const ShardCore* shard = owner(id);
  return shard == nullptr ? nullptr : shard->rib().find_agent(id);
}

const proto::SignalingAccountant& Coordinator::tx_accounting(AgentId agent) const {
  const ShardCore* shard = owner(agent);
  return shard == nullptr ? empty_accounting_ : shard->tx_accounting(agent);
}

const proto::SignalingAccountant& Coordinator::rx_accounting(AgentId agent) const {
  const ShardCore* shard = owner(agent);
  return shard == nullptr ? empty_accounting_ : shard->rx_accounting(agent);
}

const obs::Histogram* Coordinator::control_latency(AgentId agent) const {
  const ShardCore* shard = owner(agent);
  return shard == nullptr ? nullptr : shard->control_latency(agent);
}

template <typename Fn>
static std::uint64_t sum_over(const std::vector<std::unique_ptr<ShardCore>>& shards, Fn fn) {
  std::uint64_t total = 0;
  for (const auto& shard : shards) total += fn(*shard);
  return total;
}

std::uint64_t Coordinator::updates_applied() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.updates_applied(); });
}
std::uint64_t Coordinator::requests_retried() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.requests_retried(); });
}
std::uint64_t Coordinator::requests_failed() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.requests_failed(); });
}
std::uint64_t Coordinator::fenced_updates() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.fenced_updates(); });
}
std::uint64_t Coordinator::policy_rollbacks() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.policy_rollbacks(); });
}
std::uint64_t Coordinator::policies_rejected() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.policies_rejected(); });
}
std::uint64_t Coordinator::overload_transitions() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.overload_transitions(); });
}
std::uint64_t Coordinator::ingest_shed() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.ingest_shed(); });
}
std::uint64_t Coordinator::ingest_coalesced() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.ingest_coalesced(); });
}
std::size_t Coordinator::pending_peak_messages() const {
  return static_cast<std::size_t>(
      sum_over(shards_, [](const ShardCore& s) { return s.pending_peak_messages(); }));
}
std::size_t Coordinator::pending_peak_bytes() const {
  return static_cast<std::size_t>(
      sum_over(shards_, [](const ShardCore& s) { return s.pending_peak_bytes(); }));
}
std::uint64_t Coordinator::updater_saturations() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.updater_saturations(); });
}
std::uint64_t Coordinator::throttle_renegotiations() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.throttle_renegotiations(); });
}
std::uint64_t Coordinator::master_restarts() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.master_restarts(); });
}
std::uint64_t Coordinator::resyncs_paced() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.resyncs_paced(); });
}
std::uint64_t Coordinator::commands_held() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.commands_held(); });
}
std::uint64_t Coordinator::checkpoints_saved() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.checkpoints_saved(); });
}
std::uint64_t Coordinator::policies_repushed() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.policies_repushed(); });
}

OverloadState Coordinator::overload_state() const {
  OverloadState worst = OverloadState::normal;
  for (const auto& shard : shards_) {
    if (shard->overload_state() > worst) worst = shard->overload_state();
  }
  return worst;
}

bool Coordinator::any_recovering() const {
  for (const auto& shard : shards_) {
    if (shard->recovering()) return true;
  }
  return false;
}

sim::TimeUs Coordinator::last_recovery_duration() const {
  sim::TimeUs longest = 0;
  for (const auto& shard : shards_) {
    longest = std::max(longest, shard->last_recovery_duration());
  }
  return longest;
}

obs::MetricsRegistry& Coordinator::metrics() {
  return shards_.size() == 1 ? shards_.front()->metrics() : metrics_;
}

const obs::MetricsRegistry& Coordinator::metrics() const {
  return shards_.size() == 1 ? shards_.front()->metrics() : metrics_;
}

}  // namespace flexran::ctrl
