#include "controller/coordinator.h"

#include <algorithm>

#include "util/logging.h"

namespace flexran::ctrl {

namespace {
/// FNV-1a over the stable key's bytes. Deliberately not std::hash: the
/// placement must be stable across processes and standard-library
/// implementations, or a restarted deployment would reshuffle its fleet.
std::uint64_t fnv1a(std::uint64_t key) {
  std::uint64_t hash = 1469598103934665603ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= (key >> (i * 8)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}
}  // namespace

std::size_t Coordinator::assign_shard(std::uint64_t stable_key, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(fnv1a(stable_key) % shard_count);
}

Coordinator::Coordinator(sim::Simulator& sim, CoordinatorConfig config)
    : sim_(sim), config_(std::move(config)) {
  const std::size_t count = config_.shards == 0 ? 1 : config_.shards;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    MasterConfig shard_config = config_.shard;
    if (count > 1) {
      // Multi-shard: label every metric identity with the shard index and
      // share one registry so the process exports a single surface.
      shard_config.shard = static_cast<int>(i);
      if (shard_config.obs.enabled && shard_config.obs.registry == nullptr) {
        shard_config.obs.registry = &metrics_;
      }
    }
    if (config_.checkpoint_sink_factory) {
      shard_config.recovery.checkpoint_sink = config_.checkpoint_sink_factory(i);
    }
    shards_.push_back(std::make_unique<ShardCore>(sim_, std::move(shard_config)));
  }
  shard_states_.resize(count);
  if (count > 1 && config_.shard.obs.enabled) register_failover_probes();
}

void Coordinator::register_failover_probes() {
  metrics_.register_probe("coordinator_shards_failed",
                          [this] { return static_cast<double>(shards_failed_); });
  metrics_.register_probe("coordinator_agents_adopted",
                          [this] { return static_cast<double>(agents_adopted_); });
  metrics_.register_probe("coordinator_warm_adoptions",
                          [this] { return static_cast<double>(warm_adoptions_); });
  metrics_.register_probe("coordinator_cold_adoptions",
                          [this] { return static_cast<double>(cold_adoptions_); });
  metrics_.register_probe("coordinator_agents_drained",
                          [this] { return static_cast<double>(agents_drained_); });
  metrics_.register_probe("coordinator_agents_orphaned",
                          [this] { return static_cast<double>(agents_orphaned_); });
  metrics_.register_probe("coordinator_failover_pending",
                          [this] { return static_cast<double>(failover_pending_.size()); });
  metrics_.register_probe("coordinator_orphan_window_us",
                          [this] { return static_cast<double>(last_orphan_window_); });
  metrics_.register_probe("coordinator_failover_duration_us",
                          [this] { return static_cast<double>(last_failover_duration_); });
}

AgentId Coordinator::add_agent(net::Transport& transport, std::uint64_t stable_key,
                               std::optional<std::size_t> shard_override) {
  std::size_t index = shard_override.value_or(assign_shard(stable_key, shards_.size()));
  if (index >= shards_.size()) {
    FLEXRAN_LOG(warn, "coordinator") << "shard override " << index << " out of range, hashing";
    index = assign_shard(stable_key, shards_.size());
  }
  if (shard_states_[index].health != ShardHealth::alive) {
    // Never place a new agent on a failed/draining shard: the same
    // rendezvous re-hash that spreads a dead shard's fleet picks the home.
    const std::size_t fallback = rehome_target(stable_key, index);
    if (fallback != kNoShard) index = fallback;
  }
  // Ids are allocated globally so they are unique across shards and the
  // composite view (a shard's own sequence would collide with its peers').
  const AgentId id = next_agent_id_++;
  shards_[index]->add_agent(transport, id);
  shards_[index]->publish_now();
  assignment_[id] = AgentRecord{index, stable_key, &transport};
  composite_ = nullptr;  // topology changed: the cached union is stale
  return id;
}

void Coordinator::remove_agent(AgentId id) {
  auto it = assignment_.find(id);
  if (it == assignment_.end()) return;
  shards_[it->second.shard]->remove_agent(id);
  // Republish and invalidate right here: the owning shard may not cycle
  // for a while, and until it does the removed agent would stay visible
  // in the cached union.
  if (shard_active(it->second.shard)) shards_[it->second.shard]->publish_now();
  assignment_.erase(it);
  failover_pending_.erase(id);
  std::erase(drain_queue_, id);
  composite_ = nullptr;
}

void Coordinator::run_cycle() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardState& state = shard_states_[i];
    if (!shard_active(i)) continue;
    try {
      shards_[i]->run_cycle();
    } catch (const std::exception& e) {
      FLEXRAN_LOG(error, "coordinator") << "shard " << i
                                        << " threw out of run_cycle: " << e.what();
      if (state.suspect_since == 0) state.suspect_since = sim_.now();
      fail_shard(i, e.what());
      continue;
    }
    // Cycle-stall watchdog: a shard whose task manager stops completing
    // cycles while it still owns agents is as dead as one that throws.
    const std::int64_t cycles = shards_[i]->cycles_run();
    if (cycles != state.last_cycles) {
      state.last_cycles = cycles;
      state.stalled_for = 0;
      state.suspect_since = 0;
    } else if (config_.shard_stall_cycles > 0 && state.health == ShardHealth::alive) {
      bool owns_agents = false;
      for (const auto& [id, record] : assignment_) {
        (void)id;
        if (record.shard == i) {
          owns_agents = true;
          break;
        }
      }
      if (owns_agents) {
        if (state.stalled_for == 0) state.suspect_since = sim_.now();
        if (++state.stalled_for >= config_.shard_stall_cycles) {
          fail_shard(i, "stopped completing cycles");
        }
      }
    }
  }
  step_drain();
  poll_failover();
  const std::int64_t cycle = cycles_++;
  if (!apps_.empty()) {
    // Global slot: mirrored shard events first (each shard's own apps
    // already saw them), then the composite on_cycle pass.
    while (!pending_events_.empty()) {
      Event event = std::move(pending_events_.front());
      pending_events_.pop_front();
      for (const auto& app : apps_) app->on_event(event, *this);
    }
    for (const auto& app : apps_) app->on_cycle(cycle, *this);
  }
  // Last, so the monitor sees the cycle's final state -- and on every
  // cycle, apps or not: the invariants hold regardless of who is watching.
  if (post_cycle_hook_) post_cycle_hook_(cycle);
}

void Coordinator::quiesce() {
  for (auto& shard : shards_) shard->quiesce();
}

App* Coordinator::add_app(std::unique_ptr<App> app) {
  install_event_taps();
  apps_.push_back(std::move(app));
  App* raw = apps_.back().get();
  raw->on_start(*this);
  return raw;
}

void Coordinator::install_event_taps() {
  if (taps_installed_) return;
  taps_installed_ = true;
  for (auto& shard : shards_) {
    shard->set_event_tap([this](const Event& event) { pending_events_.push_back(event); });
  }
}

std::optional<std::size_t> Coordinator::shard_of(AgentId id) const {
  auto it = assignment_.find(id);
  if (it == assignment_.end()) return std::nullopt;
  return it->second.shard;
}

std::vector<std::pair<AgentId, std::size_t>> Coordinator::assignments() const {
  std::vector<std::pair<AgentId, std::size_t>> out;
  out.reserve(assignment_.size());
  for (const auto& [id, record] : assignment_) out.emplace_back(id, record.shard);
  return out;
}

ShardCore* Coordinator::owner(AgentId id) {
  auto it = assignment_.find(id);
  return it == assignment_.end() ? nullptr : shards_[it->second.shard].get();
}

const ShardCore* Coordinator::owner(AgentId id) const {
  auto it = assignment_.find(id);
  return it == assignment_.end() ? nullptr : shards_[it->second.shard].get();
}

// ------------------------------------------------------- failover / drain

std::size_t Coordinator::rehome_target(std::uint64_t stable_key, std::size_t exclude) const {
  std::size_t best = kNoShard;
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == exclude || shard_states_[i].health != ShardHealth::alive) continue;
    // Highest-random-weight: key and shard index hashed together, so each
    // agent ranks the survivors independently and the orphaned fleet
    // spreads instead of dog-piling one shard.
    const std::uint64_t score = fnv1a(stable_key ^ fnv1a(i + 1));
    if (best == kNoShard || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

void Coordinator::rehome_agent(AgentId id, std::size_t target,
                               const proto::CheckpointAgent* durable,
                               std::uint32_t floor_incarnation) {
  AgentRecord& record = assignment_.at(id);
  shards_[record.shard]->remove_agent(id);
  // A draining source keeps contributing to the union; republish it so the
  // moved agent never appears in two parts at once. (A failed source is
  // excluded from the union outright.)
  if (shard_active(record.shard)) shards_[record.shard]->publish_now();
  ShardCore& adopter = *shards_[target];
  // The adopter must not fence behind the dead shard: agents drop frames
  // carrying a strictly older incarnation than the last one they saw.
  adopter.bump_incarnation(floor_incarnation);
  adopter.adopt_agent(*record.transport, id, durable);
  durable != nullptr ? ++warm_adoptions_ : ++cold_adoptions_;
  ++agents_adopted_;
  record.shard = target;
  failover_pending_.insert(id);
  // The assignment and the composite view move together: the adopter
  // publishes the adoptee before control returns to any caller.
  adopter.publish_now();
  composite_ = nullptr;
}

void Coordinator::fail_shard(std::size_t index, const char* reason) {
  ShardState& state = shard_states_[index];
  if (state.health == ShardHealth::failed) return;
  state.health = ShardHealth::failed;
  ++shards_failed_;
  if (draining_shard_ == index) {
    // A drain interrupted by death: the rest fails over like any orphan.
    drain_queue_.clear();
    draining_shard_ = kNoShard;
  }
  const sim::TimeUs suspected = state.suspect_since != 0 ? state.suspect_since : sim_.now();
  failover_started_at_ = suspected;
  last_failover_duration_ = 0;
  ShardCore& dead = *shards_[index];
  // Join whatever app slot the dead core still has in flight so no worker
  // touches its batches mid-adoption. A throwing core may throw here too;
  // failover must proceed regardless.
  try {
    dead.quiesce();
  } catch (const std::exception&) {
  }
  // Warm-handoff state: decode the dead shard's last checkpoint directly.
  // restart()'s wrong-shard gate does not apply -- this is an explicit
  // cross-shard read by the tier that owns the topology.
  std::map<AgentId, proto::CheckpointAgent> durable;
  std::uint32_t dead_incarnation = dead.incarnation();
  if (const auto& sink = dead.checkpoint_sink(); sink != nullptr) {
    if (auto bytes = sink->load(); bytes.ok()) {
      if (auto checkpoint = proto::MasterCheckpoint::decode(*bytes); checkpoint.ok()) {
        dead_incarnation = std::max(dead_incarnation, checkpoint->incarnation);
        for (auto& agent : checkpoint->agents) durable[agent.id] = std::move(agent);
      }
    }
  }
  // Re-home every orphan by rendezvous re-hash over the survivors. The
  // assignment map and the composite cache are rewritten before control
  // returns: no caller ever observes an agent still assigned to a failed
  // shard next to a composite that contains it.
  std::vector<AgentId> orphans;
  for (const auto& [id, record] : assignment_) {
    if (record.shard == index) orphans.push_back(id);
  }
  std::size_t adopted = 0;
  for (const AgentId id : orphans) {
    const std::size_t target = rehome_target(assignment_.at(id).stable_key, index);
    if (target == kNoShard) {
      ++agents_orphaned_;
      continue;  // no survivor: the agent stays orphaned (last shard down)
    }
    auto durable_it = durable.find(id);
    rehome_agent(id, target, durable_it != durable.end() ? &durable_it->second : nullptr,
                 dead_incarnation);
    ++adopted;
  }
  last_orphan_window_ = sim_.now() - suspected;
  composite_ = nullptr;
  FLEXRAN_LOG(warn, "coordinator") << "shard " << index << " failed (" << reason << "): "
                                   << adopted << "/" << orphans.size()
                                   << " agents re-homed to survivors";
}

std::size_t Coordinator::kill_shard(std::size_t index) {
  if (index >= shards_.size() || shard_states_[index].health == ShardHealth::failed) return 0;
  if (shard_states_[index].suspect_since == 0) {
    shard_states_[index].suspect_since = sim_.now();
  }
  const std::uint64_t before = agents_adopted_;
  fail_shard(index, "killed");
  return static_cast<std::size_t>(agents_adopted_ - before);
}

util::Status Coordinator::drain_shard(std::size_t index) {
  if (index >= shards_.size()) return util::Error::invalid_argument("no such shard");
  if (shard_states_[index].health != ShardHealth::alive) {
    return util::Error::conflict("shard is not alive");
  }
  if (draining_shard_ != kNoShard) {
    return util::Error::conflict("another drain is already in progress");
  }
  bool survivor = false;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i != index && shard_states_[i].health == ShardHealth::alive) survivor = true;
  }
  if (!survivor) return util::Error::conflict("no surviving shard to drain into");
  // Quiesce once up front: in-flight app batches flush before the first
  // agent moves, so no command lands on a link the shard no longer owns.
  shards_[index]->quiesce();
  shard_states_[index].health = ShardHealth::draining;
  draining_shard_ = index;
  for (const auto& [id, record] : assignment_) {
    if (record.shard == index) drain_queue_.push_back(id);
  }
  if (drain_queue_.empty()) {
    shard_states_[index].health = ShardHealth::drained;
    draining_shard_ = kNoShard;
  }
  return {};
}

void Coordinator::step_drain() {
  if (draining_shard_ == kNoShard) return;
  // One agent per coordinator cycle: the handoff is paced so the adopters'
  // re-sync admission never sees a thundering herd.
  while (!drain_queue_.empty()) {
    const AgentId id = drain_queue_.front();
    drain_queue_.pop_front();
    auto it = assignment_.find(id);
    if (it == assignment_.end() || it->second.shard != draining_shard_) continue;
    const std::size_t target = rehome_target(it->second.stable_key, draining_shard_);
    if (target == kNoShard) {
      drain_queue_.push_front(id);  // survivors vanished mid-drain: retry
      return;
    }
    ShardCore& source = *shards_[draining_shard_];
    source.quiesce();  // flush batched commands before the link moves
    // Live export beats the checkpoint sink: a planned migration hands
    // over state as of *now*, not as of the last periodic save.
    const proto::CheckpointAgent durable = source.export_agent(id);
    const bool warm = durable.epoch != 0 || !durable.name.empty();
    if (failover_pending_.empty()) {
      failover_started_at_ = sim_.now();
      last_failover_duration_ = 0;
    }
    rehome_agent(id, target, warm ? &durable : nullptr, source.incarnation());
    ++agents_drained_;
    break;
  }
  if (drain_queue_.empty()) {
    shard_states_[draining_shard_].health = ShardHealth::drained;
    draining_shard_ = kNoShard;
  }
}

void Coordinator::poll_failover() {
  if (failover_pending_.empty()) return;
  for (auto it = failover_pending_.begin(); it != failover_pending_.end();) {
    const AgentNode* node = find_agent(*it);
    if (node != nullptr && node->state == SessionState::up) {
      it = failover_pending_.erase(it);
    } else {
      ++it;
    }
  }
  if (failover_pending_.empty()) {
    last_failover_duration_ = sim_.now() - failover_started_at_;
    FLEXRAN_LOG(info, "coordinator") << "failover complete: adopted fleet back up in "
                                     << last_failover_duration_ / 1000 << " ms";
  }
}

// ------------------------------------------------------------- composite

std::shared_ptr<const RibSnapshot> Coordinator::rib_snapshot() const {
  if (shards_.size() == 1) return shards_.front()->rib_snapshot();
  if (fault_stale_composite_ && composite_ != nullptr) {
    // Injected defect (set_fault_stale_composite): serve the cached
    // composite unconditionally, as a missing invalidation would.
    return composite_;
  }
  std::vector<std::shared_ptr<const RibSnapshot>> parts;
  parts.reserve(shards_.size());
  bool stale = composite_ == nullptr || composed_versions_.size() != shards_.size();
  std::vector<std::uint64_t> versions(shards_.size(), 0);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // A failed or drained shard's frozen snapshot would keep its moved
    // agents visible in the union forever: exclude it outright.
    if (!shard_active(i)) continue;
    parts.push_back(shards_[i]->rib_snapshot());
    versions[i] = parts.back()->version();
  }
  if (!stale && versions != composed_versions_) stale = true;
  if (!stale) return composite_;
  composite_ = RibSnapshot::compose(parts);
  composed_versions_ = std::move(versions);
  ++composites_built_;
  return composite_;
}

// ----------------------------------------------------------------- routing

sim::TimeUs Coordinator::now() const { return sim_.now(); }

std::int64_t Coordinator::agent_subframe(AgentId agent) const {
  const ShardCore* shard = owner(agent);
  return shard == nullptr ? 0 : shard->agent_subframe(agent);
}

namespace {
util::Status unassigned(AgentId agent) {
  return util::Error::not_found("agent " + std::to_string(agent) +
                                " not assigned to any shard");
}
}  // namespace

util::Status Coordinator::send_dl_mac_config(AgentId agent, const proto::DlMacConfig& config) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_dl_mac_config(agent, config);
}

util::Status Coordinator::send_ul_mac_config(AgentId agent, const proto::UlMacConfig& config) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_ul_mac_config(agent, config);
}

util::Status Coordinator::send_handover(AgentId agent, const proto::HandoverCommand& command) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_handover(agent, command);
}

util::Status Coordinator::send_abs_config(AgentId agent, const proto::AbsConfig& config) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_abs_config(agent, config);
}

util::Status Coordinator::send_carrier_restriction(AgentId agent,
                                                   const proto::CarrierRestriction& config) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_carrier_restriction(agent, config);
}

util::Status Coordinator::send_drx_config(AgentId agent, const proto::DrxConfig& config) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_drx_config(agent, config);
}

util::Status Coordinator::send_scell_command(AgentId agent, const proto::ScellCommand& command) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_scell_command(agent, command);
}

util::Status Coordinator::request_stats(AgentId agent, const proto::StatsRequest& request) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->request_stats(agent, request);
}

util::Status Coordinator::subscribe_events(AgentId agent, std::vector<proto::EventType> events,
                                           bool enable) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent)
                          : shard->subscribe_events(agent, std::move(events), enable);
}

util::Status Coordinator::push_vsf(AgentId agent, const std::string& module,
                                   const std::string& vsf, const std::string& implementation) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent)
                          : shard->push_vsf(agent, module, vsf, implementation);
}

util::Status Coordinator::send_policy(AgentId agent, const std::string& yaml) {
  ShardCore* shard = owner(agent);
  return shard == nullptr ? unassigned(agent) : shard->send_policy(agent, yaml);
}

// ------------------------------------------------------------ introspection

const AgentNode* Coordinator::find_agent(AgentId id) const {
  const ShardCore* shard = owner(id);
  return shard == nullptr ? nullptr : shard->rib().find_agent(id);
}

const proto::SignalingAccountant& Coordinator::tx_accounting(AgentId agent) const {
  const ShardCore* shard = owner(agent);
  return shard == nullptr ? empty_accounting_ : shard->tx_accounting(agent);
}

const proto::SignalingAccountant& Coordinator::rx_accounting(AgentId agent) const {
  const ShardCore* shard = owner(agent);
  return shard == nullptr ? empty_accounting_ : shard->rx_accounting(agent);
}

const obs::Histogram* Coordinator::control_latency(AgentId agent) const {
  const ShardCore* shard = owner(agent);
  return shard == nullptr ? nullptr : shard->control_latency(agent);
}

template <typename Fn>
static std::uint64_t sum_over(const std::vector<std::unique_ptr<ShardCore>>& shards, Fn fn) {
  std::uint64_t total = 0;
  for (const auto& shard : shards) total += fn(*shard);
  return total;
}

std::uint64_t Coordinator::updates_applied() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.updates_applied(); });
}
std::uint64_t Coordinator::requests_retried() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.requests_retried(); });
}
std::uint64_t Coordinator::requests_failed() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.requests_failed(); });
}
std::uint64_t Coordinator::fenced_updates() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.fenced_updates(); });
}
std::uint64_t Coordinator::policy_rollbacks() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.policy_rollbacks(); });
}
std::uint64_t Coordinator::policies_rejected() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.policies_rejected(); });
}
std::uint64_t Coordinator::overload_transitions() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.overload_transitions(); });
}
std::uint64_t Coordinator::ingest_shed() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.ingest_shed(); });
}
std::uint64_t Coordinator::ingest_coalesced() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.ingest_coalesced(); });
}
std::size_t Coordinator::pending_peak_messages() const {
  return static_cast<std::size_t>(
      sum_over(shards_, [](const ShardCore& s) { return s.pending_peak_messages(); }));
}
std::size_t Coordinator::pending_peak_bytes() const {
  return static_cast<std::size_t>(
      sum_over(shards_, [](const ShardCore& s) { return s.pending_peak_bytes(); }));
}
std::uint64_t Coordinator::updater_saturations() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.updater_saturations(); });
}
std::uint64_t Coordinator::throttle_renegotiations() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.throttle_renegotiations(); });
}
std::uint64_t Coordinator::master_restarts() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.master_restarts(); });
}
std::uint64_t Coordinator::resyncs_paced() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.resyncs_paced(); });
}
std::uint64_t Coordinator::commands_held() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.commands_held(); });
}
std::uint64_t Coordinator::checkpoints_saved() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.checkpoints_saved(); });
}
std::uint64_t Coordinator::policies_repushed() const {
  return sum_over(shards_, [](const ShardCore& s) { return s.policies_repushed(); });
}

OverloadState Coordinator::overload_state() const {
  // Failed/drained shards no longer serve anyone; their frozen state must
  // not keep the fleet "overloaded" (or "recovering", below) forever.
  OverloadState worst = OverloadState::normal;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!shard_active(i)) continue;
    if (shards_[i]->overload_state() > worst) worst = shards_[i]->overload_state();
  }
  return worst;
}

bool Coordinator::any_recovering() const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shard_active(i) && shards_[i]->recovering()) return true;
  }
  return false;
}

sim::TimeUs Coordinator::last_recovery_duration() const {
  sim::TimeUs longest = 0;
  for (const auto& shard : shards_) {
    longest = std::max(longest, shard->last_recovery_duration());
  }
  return longest;
}

obs::MetricsRegistry& Coordinator::metrics() {
  return shards_.size() == 1 ? shards_.front()->metrics() : metrics_;
}

const obs::MetricsRegistry& Coordinator::metrics() const {
  return shards_.size() == 1 ? shards_.front()->metrics() : metrics_;
}

const char* to_string(Coordinator::ShardHealth health) {
  switch (health) {
    case Coordinator::ShardHealth::alive: return "alive";
    case Coordinator::ShardHealth::draining: return "draining";
    case Coordinator::ShardHealth::drained: return "drained";
    case Coordinator::ShardHealth::failed: return "failed";
  }
  return "?";
}

}  // namespace flexran::ctrl
