#include "controller/rib.h"

namespace flexran::ctrl {

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::up: return "up";
    case SessionState::stale: return "stale";
    case SessionState::down: return "down";
    case SessionState::resyncing: return "resyncing";
  }
  return "?";
}

const AgentNode* Rib::find_agent(AgentId id) const {
  auto it = agents_.find(id);
  return it == agents_.end() ? nullptr : &it->second;
}

const UeNode* Rib::find_ue(AgentId id, lte::Rnti rnti) const {
  const AgentNode* agent = find_agent(id);
  if (agent == nullptr) return nullptr;
  for (const auto& [cell_id, cell] : agent->cells) {
    (void)cell_id;
    auto it = cell.ues.find(rnti);
    if (it != cell.ues.end()) return &it->second;
  }
  return nullptr;
}

UeNode* Rib::mutable_ue(AgentId id, lte::Rnti rnti) {
  auto agent_it = agents_.find(id);
  if (agent_it == agents_.end()) return nullptr;
  for (auto& [cell_id, cell] : agent_it->second.cells) {
    (void)cell_id;
    auto it = cell.ues.find(rnti);
    if (it != cell.ues.end()) return &it->second;
  }
  return nullptr;
}

std::size_t Rib::ue_count() const {
  std::size_t count = 0;
  for (const auto& [id, agent] : agents_) {
    (void)id;
    for (const auto& [cell_id, cell] : agent.cells) {
      (void)cell_id;
      count += cell.ues.size();
    }
  }
  return count;
}

std::size_t Rib::approx_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& [id, agent] : agents_) {
    (void)id;
    bytes += sizeof(AgentNode) + agent.name.size();
    for (const auto& cap : agent.capabilities) bytes += cap.size() + sizeof(std::string);
    for (const auto& [cell_id, cell] : agent.cells) {
      (void)cell_id;
      bytes += sizeof(CellNode);
      bytes += cell.ues.size() * (sizeof(UeNode) + 48 /* map node overhead */);
    }
  }
  return bytes;
}

}  // namespace flexran::ctrl
