#include "controller/rib.h"

namespace flexran::ctrl {

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::up: return "up";
    case SessionState::stale: return "stale";
    case SessionState::down: return "down";
    case SessionState::resyncing: return "resyncing";
  }
  return "?";
}

std::size_t UeHotColumns::upsert(lte::Rnti r) {
  auto [it, inserted] = index_.try_emplace(r, rnti.size());
  if (inserted) {
    rnti.push_back(r);
    wb_cqi.push_back(0);
    bsr_total_bytes.push_back(0);
    rlc_queue_bytes.push_back(0);
    dl_bytes_delivered.push_back(0);
    cqi_avg.push_back(0.0);
  }
  return it->second;
}

void UeHotColumns::erase(lte::Rnti r) {
  auto it = index_.find(r);
  if (it == index_.end()) return;
  const std::size_t row = it->second;
  const std::size_t last = rnti.size() - 1;
  if (row != last) {
    rnti[row] = rnti[last];
    wb_cqi[row] = wb_cqi[last];
    bsr_total_bytes[row] = bsr_total_bytes[last];
    rlc_queue_bytes[row] = rlc_queue_bytes[last];
    dl_bytes_delivered[row] = dl_bytes_delivered[last];
    cqi_avg[row] = cqi_avg[last];
    index_[rnti[row]] = row;
  }
  rnti.pop_back();
  wb_cqi.pop_back();
  bsr_total_bytes.pop_back();
  rlc_queue_bytes.pop_back();
  dl_bytes_delivered.pop_back();
  cqi_avg.pop_back();
  index_.erase(it);
}

void UeHotColumns::clear() {
  rnti.clear();
  wb_cqi.clear();
  bsr_total_bytes.clear();
  rlc_queue_bytes.clear();
  dl_bytes_delivered.clear();
  cqi_avg.clear();
  index_.clear();
}

std::size_t UeHotColumns::approx_bytes() const {
  return rnti.capacity() * sizeof(lte::Rnti) + wb_cqi.capacity() +
         bsr_total_bytes.capacity() * sizeof(std::uint32_t) +
         rlc_queue_bytes.capacity() * sizeof(std::uint32_t) +
         dl_bytes_delivered.capacity() * sizeof(std::uint64_t) +
         cqi_avg.capacity() * sizeof(double) +
         index_.size() * (sizeof(std::pair<lte::Rnti, std::size_t>) + 48 /* map node */);
}

const AgentNode* Rib::find_agent(AgentId id) const {
  auto it = agents_.find(id);
  return it == agents_.end() ? nullptr : &it->second;
}

const UeNode* Rib::find_ue(AgentId id, lte::Rnti rnti) const {
  const AgentNode* agent = find_agent(id);
  if (agent == nullptr) return nullptr;
  for (const auto& [cell_id, cell] : agent->cells) {
    (void)cell_id;
    auto it = cell.ues.find(rnti);
    if (it != cell.ues.end()) return &it->second;
  }
  return nullptr;
}

UeNode* Rib::mutable_ue(AgentId id, lte::Rnti rnti) {
  auto agent_it = agents_.find(id);
  if (agent_it == agents_.end()) return nullptr;
  for (auto& [cell_id, cell] : agent_it->second.cells) {
    (void)cell_id;
    auto it = cell.ues.find(rnti);
    if (it != cell.ues.end()) return &it->second;
  }
  return nullptr;
}

std::size_t Rib::ue_count() const {
  std::size_t count = 0;
  for (const auto& [id, agent] : agents_) {
    (void)id;
    for (const auto& [cell_id, cell] : agent.cells) {
      (void)cell_id;
      count += cell.ues.size();
    }
  }
  return count;
}

std::size_t Rib::approx_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& [id, agent] : agents_) {
    (void)id;
    bytes += sizeof(AgentNode) + agent.name.size() + agent.hot.approx_bytes();
    for (const auto& cap : agent.capabilities) bytes += cap.size() + sizeof(std::string);
    for (const auto& [cell_id, cell] : agent.cells) {
      (void)cell_id;
      bytes += sizeof(CellNode);
      bytes += cell.ues.size() * (sizeof(UeNode) + 48 /* map node overhead */);
    }
  }
  return bytes;
}

}  // namespace flexran::ctrl
