// Two-tier control plane, upper tier (docs/sharded_control.md): a thin
// Coordinator over N ShardCore instances in one process. Each shard is a
// complete master -- transport links, RIB + single-writer updater, task
// manager, overload and recovery machinery -- over a disjoint agent set;
// the Coordinator only (a) assigns agents to shards (stable hash of the
// agent's stable key, with explicit override), (b) aggregates the shards'
// RibSnapshots into a versioned global composite view for cross-shard
// applications, and (c) routes northbound commands and events to the
// owning shard. It holds no radio state of its own, so it never becomes
// the serialization point the sharding exists to remove.
//
// Mirrors the O-RAN shape (PAPERS.md: Polese et al.): shards are near-RT
// controllers owning their E2 nodes per-TTI; the Coordinator is the
// non-real-time tier above them hosting network-wide apps.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "controller/shard_core.h"

namespace flexran::ctrl {

struct CoordinatorConfig {
  /// Number of ShardCore instances (>= 1; 0 is clamped to 1).
  std::size_t shards = 1;
  /// Per-shard configuration template. The Coordinator stamps each copy
  /// with its shard index (metric labels) and, with more than one shard
  /// and obs enabled, points every copy at the shared registry.
  MasterConfig shard;
  /// Per-shard checkpoint sink factory (nullptr = every shard keeps the
  /// template's `recovery.checkpoint_sink`, which N > 1 shards would
  /// clobber -- use FileCheckpointSink::shard_path or one sink per shard).
  std::function<std::shared_ptr<CheckpointSink>(std::size_t shard)> checkpoint_sink_factory;
  /// Dead-shard watchdog: a shard that completes no task-manager cycle for
  /// this many consecutive coordinator cycles, while it still owns agents,
  /// is declared failed and its fleet re-homed (0 = watchdog off). A shard
  /// that throws out of run_cycle() is failed immediately regardless.
  std::int64_t shard_stall_cycles = 0;
};

/// The upper tier. Implements NorthboundApi so network-wide (composite
/// view) applications are plain `ctrl::App`s: they read the union snapshot
/// and their commands are routed to the owning shard.
///
/// Threading: everything here runs on the thread driving run_cycle() (the
/// "coordinator thread" of every shard's task manager). Global apps run
/// inline after the shards' cycles, so their sends hit shard transports
/// from that same thread; per-shard apps keep the worker-pool batching
/// contract of their own core, untouched.
class Coordinator final : public NorthboundApi {
 public:
  Coordinator(sim::Simulator& sim, CoordinatorConfig config);

  /// Stable hash placement: which shard owns `stable_key` among
  /// `shard_count` shards. Exposed so tests and operators can predict
  /// placement. FNV-1a over the key bytes -- stable across runs and
  /// processes, uniform enough for eNodeB identifiers.
  static std::size_t assign_shard(std::uint64_t stable_key, std::size_t shard_count);

  /// Registers an agent connection. `stable_key` identifies the eNodeB
  /// durably (e.g. its enb_id) and drives hash placement; `shard_override`
  /// pins the agent to an explicit shard instead (operator override, e.g.
  /// to co-locate an interference cluster). Returns the globally unique
  /// agent id, valid across every shard and the composite snapshot.
  AgentId add_agent(net::Transport& transport, std::uint64_t stable_key = 0,
                    std::optional<std::size_t> shard_override = std::nullopt);
  void remove_agent(AgentId id);

  /// Runs one cycle on every shard, then the global application slot:
  /// shard events mirrored since the last cycle are dispatched to the
  /// global apps, then each global app's on_cycle runs against the
  /// composite snapshot.
  void run_cycle();

  /// Joins every shard's in-flight application slot (see ShardCore::quiesce).
  void quiesce();

  /// Registers a network-wide application on the composite view. The shard
  /// event taps are installed lazily on first registration -- with no
  /// global apps the Coordinator mirrors nothing and adds zero work.
  App* add_app(std::unique_ptr<App> app);

  // ---- shard failover / drain (docs/sharded_control.md "Shard failover") ----
  /// Lifecycle of a shard under the Coordinator. `failed` and `drained`
  /// shards no longer cycle, adopt, or contribute to the composite view.
  enum class ShardHealth { alive, draining, drained, failed };
  ShardHealth shard_health(std::size_t index) const { return shard_states_[index].health; }

  /// Arms (or disarms) the cycle-stall watchdog after construction; the
  /// scenario layer exposes this as the `shard_stall_cycles` knob.
  void set_shard_stall_cycles(std::int64_t cycles) { config_.shard_stall_cycles = cycles; }

  /// Declares a shard dead right now (operator action / fault hook) and
  /// fails its whole fleet over to the survivors. Returns the number of
  /// orphans re-homed. The same path runs automatically when a shard
  /// throws out of run_cycle() or trips the cycle-stall watchdog.
  std::size_t kill_shard(std::size_t index);

  /// Planned migration / scale-in: quiesces the shard's in-flight app slot
  /// and moves its agents one per coordinator cycle to the survivors, each
  /// with a live (warm) export of its durable state. The shard ends
  /// `drained`. Errors if the shard is not alive, no survivor exists, or
  /// another drain is already in progress.
  util::Status drain_shard(std::size_t index);

  // ---- failover introspection ----
  std::uint64_t shards_failed() const { return shards_failed_; }
  std::uint64_t agents_adopted() const { return agents_adopted_; }
  /// Adoptions seeded from the dead shard's checkpoint (delta re-sync)
  /// versus from nothing (full config fetch).
  std::uint64_t warm_adoptions() const { return warm_adoptions_; }
  std::uint64_t cold_adoptions() const { return cold_adoptions_; }
  std::uint64_t agents_drained() const { return agents_drained_; }
  /// Orphans that could not be re-homed (no surviving shard).
  std::size_t agents_orphaned() const { return agents_orphaned_; }
  /// Simulated time from first failure suspicion (stall onset, kill) to
  /// the last orphan re-homed in the most recent failover.
  sim::TimeUs last_orphan_window() const { return last_orphan_window_; }
  /// Simulated time from failover start to every adopted agent back `up`;
  /// 0 = none completed yet (or adoption still in progress).
  sim::TimeUs last_failover_duration() const { return last_failover_duration_; }
  /// Adopted agents still waiting to complete their re-sync.
  std::size_t failover_pending() const { return failover_pending_.size(); }

  // ---- topology --------------------------------------------------------------
  std::size_t shard_count() const { return shards_.size(); }
  ShardCore& shard(std::size_t index) { return *shards_[index]; }
  const ShardCore& shard(std::size_t index) const { return *shards_[index]; }
  /// Owning shard index for an agent id (nullopt = unknown agent).
  std::optional<std::size_t> shard_of(AgentId id) const;
  std::size_t agent_count() const { return assignment_.size(); }
  /// Every registered agent with its owning shard index, in id order. The
  /// InvariantMonitor cross-checks this against the shards' RIBs every
  /// cycle (single-ownership invariant).
  std::vector<std::pair<AgentId, std::size_t>> assignments() const;

  // ---- runtime verification hooks (src/verify/invariants.h) ------------------
  /// Hook invoked at the very end of every run_cycle() -- after drain
  /// steps, failover polling and the global app slot, including cycles
  /// with no global apps registered. One hook; empty = off. The
  /// InvariantMonitor installs itself here.
  void set_post_cycle_hook(std::function<void(std::int64_t cycle)> hook) {
    post_cycle_hook_ = std::move(hook);
  }
  /// Chaos/self-check defect (the coordinator sibling of
  /// ShardCore::set_cycle_fault): while on, rib_snapshot() returns the
  /// cached composite without checking shard versions -- the
  /// composite-cache invalidation bug deliberately re-introduced so the
  /// fuzzer and tests can prove the InvariantMonitor catches it
  /// (docs/chaos_fuzzing.md "Self-check defects").
  void set_fault_stale_composite(bool on) { fault_stale_composite_ = on; }

  // ---- NorthboundApi (routed to the owning shard) ----------------------------
  /// The composite view: union of the per-shard snapshots, rebuilt only
  /// when some shard published a new version (otherwise the cached
  /// composite is returned unchanged, so an idle fleet costs nothing).
  /// Version is the sum of shard versions; `recovering` is true while any
  /// shard recovers; overload is the worst shard state.
  std::shared_ptr<const RibSnapshot> rib_snapshot() const override;
  sim::TimeUs now() const override;
  std::int64_t agent_subframe(AgentId agent) const override;
  util::Status send_dl_mac_config(AgentId agent, const proto::DlMacConfig& config) override;
  util::Status send_ul_mac_config(AgentId agent, const proto::UlMacConfig& config) override;
  util::Status send_handover(AgentId agent, const proto::HandoverCommand& command) override;
  util::Status send_abs_config(AgentId agent, const proto::AbsConfig& config) override;
  util::Status send_carrier_restriction(AgentId agent,
                                        const proto::CarrierRestriction& config) override;
  util::Status send_drx_config(AgentId agent, const proto::DrxConfig& config) override;
  util::Status send_scell_command(AgentId agent, const proto::ScellCommand& command) override;
  util::Status request_stats(AgentId agent, const proto::StatsRequest& request) override;
  util::Status subscribe_events(AgentId agent, std::vector<proto::EventType> events,
                                bool enable) override;
  util::Status push_vsf(AgentId agent, const std::string& module, const std::string& vsf,
                        const std::string& implementation) override;
  util::Status send_policy(AgentId agent, const std::string& yaml) override;

  // ---- routed / aggregated introspection -------------------------------------
  /// Per-agent accessors route to the owning shard (empty/null for unknown
  /// agents); fleet counters sum over shards. The scenario layer reads the
  /// whole control plane through these whether it runs 1 shard or 16.
  const AgentNode* find_agent(AgentId id) const;
  const proto::SignalingAccountant& tx_accounting(AgentId agent) const;
  const proto::SignalingAccountant& rx_accounting(AgentId agent) const;
  const obs::Histogram* control_latency(AgentId agent) const;
  std::int64_t cycles_run() const { return cycles_; }
  std::uint64_t updates_applied() const;
  std::uint64_t requests_retried() const;
  std::uint64_t requests_failed() const;
  std::uint64_t fenced_updates() const;
  std::uint64_t policy_rollbacks() const;
  std::uint64_t policies_rejected() const;
  OverloadState overload_state() const;
  std::uint64_t overload_transitions() const;
  std::uint64_t ingest_shed() const;
  std::uint64_t ingest_coalesced() const;
  /// Summed high-water marks: the process-wide bounded-memory footprint is
  /// the sum of the per-shard budgets.
  std::size_t pending_peak_messages() const;
  std::size_t pending_peak_bytes() const;
  std::uint64_t updater_saturations() const;
  std::uint64_t throttle_renegotiations() const;
  std::uint64_t master_restarts() const;
  std::uint64_t resyncs_paced() const;
  std::uint64_t commands_held() const;
  std::uint64_t checkpoints_saved() const;
  std::uint64_t policies_repushed() const;
  bool any_recovering() const;
  /// Longest last-recovery duration across shards.
  sim::TimeUs last_recovery_duration() const;
  /// Composite rebuilds (cache misses in rib_snapshot()).
  std::uint64_t composites_built() const { return composites_built_; }

  // ---- observability ----------------------------------------------------------
  /// The process-wide registry: the shared one (shards > 1) or shard 0's
  /// own. One export surface regardless of the shard count.
  obs::MetricsRegistry& metrics();
  const obs::MetricsRegistry& metrics() const;

 private:
  /// Everything the Coordinator must remember per agent to re-home it: the
  /// owning shard, the durable placement key (drives the rendezvous
  /// re-hash) and the master-side transport (re-bound to the adopter).
  struct AgentRecord {
    std::size_t shard = 0;
    std::uint64_t stable_key = 0;
    net::Transport* transport = nullptr;  // not owned
  };
  /// Per-shard health bookkeeping for the watchdog.
  struct ShardState {
    ShardHealth health = ShardHealth::alive;
    /// Task-manager cycle count at the last coordinator cycle.
    std::int64_t last_cycles = 0;
    /// Consecutive coordinator cycles without task-manager progress.
    std::int64_t stalled_for = 0;
    /// When failure was first suspected (stall onset / kill); feeds the
    /// orphan-window metric. 0 = healthy.
    sim::TimeUs suspect_since = 0;
  };

  ShardCore* owner(AgentId id);
  const ShardCore* owner(AgentId id) const;
  void install_event_taps();
  bool shard_active(std::size_t index) const {
    return shard_states_[index].health == ShardHealth::alive ||
           shard_states_[index].health == ShardHealth::draining;
  }
  /// Rendezvous (highest-random-weight) hash over the *alive* shards,
  /// excluding `exclude`: every orphan independently picks the surviving
  /// shard with the highest keyed score, so a failed shard's fleet spreads
  /// across the survivors without reshuffling anyone else. Returns
  /// kNoShard when no candidate survives.
  std::size_t rehome_target(std::uint64_t stable_key, std::size_t exclude) const;
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
  /// Declares the shard failed and re-homes its whole fleet (warm where
  /// the dead shard's checkpoint covers the agent, cold otherwise).
  void fail_shard(std::size_t index, const char* reason);
  /// Moves one agent and updates the record + composite cache atomically
  /// (both are rewritten before control returns to any caller).
  void rehome_agent(AgentId id, std::size_t target, const proto::CheckpointAgent* durable,
                    std::uint32_t floor_incarnation);
  /// One paced drain step: moves the next queued agent off the draining
  /// shard with a live durable export.
  void step_drain();
  /// Tracks adopted agents until their re-sync completes (failover
  /// duration metric).
  void poll_failover();
  void register_failover_probes();

  sim::Simulator& sim_;
  CoordinatorConfig config_;
  /// Shared registry for shards > 1 (ObsConfig::registry); unused with a
  /// single shard, which keeps its own registry exactly like a standalone
  /// master.
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<ShardCore>> shards_;
  std::vector<ShardState> shard_states_;
  /// Global agent id -> owning shard + re-homing state.
  std::map<AgentId, AgentRecord> assignment_;
  AgentId next_agent_id_ = 1;
  std::int64_t cycles_ = 0;

  // ---- failover / drain state -------------------------------------------------
  std::uint64_t shards_failed_ = 0;
  std::uint64_t agents_adopted_ = 0;
  std::uint64_t warm_adoptions_ = 0;
  std::uint64_t cold_adoptions_ = 0;
  std::uint64_t agents_drained_ = 0;
  std::size_t agents_orphaned_ = 0;
  sim::TimeUs failover_started_at_ = 0;
  sim::TimeUs last_orphan_window_ = 0;
  sim::TimeUs last_failover_duration_ = 0;
  /// Adopted agents whose re-sync has not completed yet.
  std::set<AgentId> failover_pending_;
  /// Planned migration: agents still queued to leave the draining shard
  /// (one drain at a time; empty = no drain in progress).
  std::deque<AgentId> drain_queue_;
  std::size_t draining_shard_ = kNoShard;

  // ---- global application slot ----------------------------------------------
  std::vector<std::unique_ptr<App>> apps_;
  /// Shard events mirrored by the taps, in arrival order, dispatched at
  /// the head of the next global slot.
  std::deque<Event> pending_events_;
  bool taps_installed_ = false;
  std::function<void(std::int64_t)> post_cycle_hook_;
  bool fault_stale_composite_ = false;

  // ---- composite snapshot cache ----------------------------------------------
  /// Rebuilt lazily when a shard's version moved; `const` because
  /// rib_snapshot() is (coordinator thread only, like ShardCore::rib()).
  mutable std::shared_ptr<const RibSnapshot> composite_;
  mutable std::vector<std::uint64_t> composed_versions_;
  mutable std::uint64_t composites_built_ = 0;

  proto::SignalingAccountant empty_accounting_;
};

const char* to_string(Coordinator::ShardHealth health);

}  // namespace flexran::ctrl
