// Northbound API and application model (paper Sec. 4.4). RAN control and
// management applications run on the master, read the RIB, and act on the
// network exclusively by issuing control commands through this interface --
// they never mutate the RIB directly (single-writer rule; state changes
// flow back via agent reports).
//
// Applications are periodic (driven every task-manager cycle), event-based
// (driven by the Event Notification Service), or both.
//
// Concurrency contract (docs/controller_concurrency.md): on_cycle may run
// on a worker thread, concurrently with other apps of the same priority
// tier and with the RIB Updater of the next cycle. Apps therefore read the
// network state through rib_snapshot() (immutable) and their own members
// (each app instance runs on at most one thread at a time), and commands
// issued during on_cycle are enqueued into a per-cycle batch the
// coordinator flushes in deterministic (priority, registration, enqueue)
// order -- app code never touches a transport from a worker thread.
// on_start and on_event always run on the coordinator thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "controller/rib.h"
#include "controller/rib_snapshot.h"
#include "lte/abs.h"
#include "proto/messages.h"
#include "util/result.h"

namespace flexran::ctrl {

/// An event surfaced to applications by the Event Notification Service.
struct Event {
  AgentId agent = 0;
  proto::EventNotification notification;
};

class NorthboundApi {
 public:
  virtual ~NorthboundApi() = default;

  // ---- monitoring ----------------------------------------------------------
  /// The network view applications read: an immutable, versioned snapshot
  /// published by the RIB Updater at the end of its slot. Within one
  /// on_cycle() call the snapshot is pinned (every read sees the same
  /// version); the updater may already be building the next version
  /// concurrently. Never null. Applications have no access to the mutable
  /// Rib -- the single-writer rule is enforced by the type system.
  virtual std::shared_ptr<const RibSnapshot> rib_snapshot() const = 0;
  virtual sim::TimeUs now() const = 0;
  /// Latest subframe the agent reported (master's, possibly stale, view).
  virtual std::int64_t agent_subframe(AgentId agent) const = 0;

  // ---- control commands ----------------------------------------------------
  virtual util::Status send_dl_mac_config(AgentId agent, const proto::DlMacConfig& config) = 0;
  virtual util::Status send_ul_mac_config(AgentId agent, const proto::UlMacConfig& config) = 0;
  virtual util::Status send_handover(AgentId agent, const proto::HandoverCommand& command) = 0;
  virtual util::Status send_abs_config(AgentId agent, const proto::AbsConfig& config) = 0;
  virtual util::Status send_carrier_restriction(AgentId agent,
                                                const proto::CarrierRestriction& config) = 0;
  virtual util::Status send_drx_config(AgentId agent, const proto::DrxConfig& config) = 0;
  virtual util::Status send_scell_command(AgentId agent, const proto::ScellCommand& command) = 0;

  // ---- statistics / events ---------------------------------------------------
  virtual util::Status request_stats(AgentId agent, const proto::StatsRequest& request) = 0;
  virtual util::Status subscribe_events(AgentId agent, std::vector<proto::EventType> events,
                                        bool enable) = 0;

  // ---- control delegation ----------------------------------------------------
  /// VSF updation: push an implementation into the agent's cache.
  virtual util::Status push_vsf(AgentId agent, const std::string& module, const std::string& vsf,
                                const std::string& implementation) = 0;
  /// Policy reconfiguration (YAML, paper Fig. 3).
  virtual util::Status send_policy(AgentId agent, const std::string& yaml) = 0;
};

/// Base class for controller applications.
class App {
 public:
  virtual ~App() = default;

  virtual std::string_view name() const = 0;
  /// Lower value = scheduled earlier in the cycle = more time-critical
  /// (the Task Manager gives a centralized MAC scheduler a very high
  /// priority, i.e. a low value).
  virtual int priority() const { return 100; }

  /// Called once when the app is registered with the master.
  virtual void on_start(NorthboundApi& api) { (void)api; }
  /// Periodic hook: once per task-manager cycle (one TTI in RT mode).
  virtual void on_cycle(std::int64_t cycle, NorthboundApi& api) { (void)cycle, (void)api; }
  /// Event hook, via the Event Notification Service.
  virtual void on_event(const Event& event, NorthboundApi& api) { (void)event, (void)api; }
};

}  // namespace flexran::ctrl
