// The batched, thread-safe command path. Each registered application gets
// its own BatchingNorthbound proxy. During the application slot the proxy
// is "pinned": reads are served from the cycle's immutable RibSnapshot and
// the pinned simulation time, and control commands are captured into a
// per-app queue instead of touching transports from the worker thread.
// The Task Manager flushes the queues on the coordinator thread in
// deterministic (priority tier, registration, enqueue) order, which also
// makes per-agent message coalescing possible downstream.
//
// DL MAC configs are the one command with synchronous feedback semantics:
// conflict arbitration happens at enqueue time (through the claim_dl
// hook), so a lower-priority app still observes the rejection immediately,
// exactly as on the direct path. Flushed DL configs then bypass the
// downstream claim via send_dl_raw.
//
// Outside a pinned slot (on_start, on_event, direct master use) the proxy
// forwards straight to the downstream api.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "controller/app.h"

namespace flexran::ctrl {

/// One control command captured during the application slot.
struct QueuedCommand {
  AgentId agent = 0;
  proto::MessageType type = proto::MessageType::hello;
  std::function<util::Status()> send;
};

class BatchingNorthbound final : public NorthboundApi {
 public:
  struct Hooks {
    /// Claims DL PRBs at enqueue time (thread-safe). Null = no arbitration
    /// at enqueue; the flush path's downstream send arbitrates instead.
    std::function<util::Status(AgentId, const proto::DlMacConfig&)> claim_dl;
    /// Sends a DL config without re-claiming (the claim already happened
    /// at enqueue). Required whenever claim_dl is set.
    std::function<util::Status(AgentId, const proto::DlMacConfig&)> send_dl_raw;
  };

  explicit BatchingNorthbound(NorthboundApi& direct, Hooks hooks = {})
      : direct_(direct), hooks_(std::move(hooks)) {}

  /// Enters batch mode for one cycle: reads pin to `snapshot` and `now`,
  /// commands enqueue. Coordinator thread, before the app is dispatched.
  void pin(std::shared_ptr<const RibSnapshot> snapshot, sim::TimeUs now);
  /// Replays the queue into the downstream api in enqueue order and leaves
  /// batch mode. Coordinator thread only. Returns commands sent.
  std::size_t flush();
  /// Drops the queue and leaves batch mode (teardown path).
  void discard();

  std::size_t queued() const { return queue_.size(); }
  std::uint64_t commands_batched() const { return commands_batched_; }
  /// Flushed commands whose downstream send failed (e.g. the agent's link
  /// went away between enqueue and flush).
  std::uint64_t flush_failures() const { return flush_failures_; }

  // ---- NorthboundApi ---------------------------------------------------------
  std::shared_ptr<const RibSnapshot> rib_snapshot() const override;
  sim::TimeUs now() const override;
  std::int64_t agent_subframe(AgentId agent) const override;
  util::Status send_dl_mac_config(AgentId agent, const proto::DlMacConfig& config) override;
  util::Status send_ul_mac_config(AgentId agent, const proto::UlMacConfig& config) override;
  util::Status send_handover(AgentId agent, const proto::HandoverCommand& command) override;
  util::Status send_abs_config(AgentId agent, const proto::AbsConfig& config) override;
  util::Status send_carrier_restriction(AgentId agent,
                                        const proto::CarrierRestriction& config) override;
  util::Status send_drx_config(AgentId agent, const proto::DrxConfig& config) override;
  util::Status send_scell_command(AgentId agent, const proto::ScellCommand& command) override;
  util::Status request_stats(AgentId agent, const proto::StatsRequest& request) override;
  util::Status subscribe_events(AgentId agent, std::vector<proto::EventType> events,
                                bool enable) override;
  util::Status push_vsf(AgentId agent, const std::string& module, const std::string& vsf,
                        const std::string& implementation) override;
  util::Status send_policy(AgentId agent, const std::string& yaml) override;

 private:
  /// Enqueues `send` for `agent` when batching (validating the agent
  /// against the pinned snapshot), otherwise runs it immediately.
  util::Status enqueue(AgentId agent, proto::MessageType type, std::function<util::Status()> send);

  NorthboundApi& direct_;
  Hooks hooks_;
  bool batching_ = false;
  std::shared_ptr<const RibSnapshot> pinned_;
  sim::TimeUs pinned_now_ = 0;
  std::vector<QueuedCommand> queue_;
  std::uint64_t commands_batched_ = 0;
  std::uint64_t flush_failures_ = 0;
};

}  // namespace flexran::ctrl
