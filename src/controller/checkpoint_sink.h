// Pluggable persistence for master warm checkpoints
// (docs/fault_tolerance.md "Master restart"). The master serializes a
// proto::MasterCheckpoint and hands the bytes to a sink; what "durable"
// means -- a file, a replicated store, test memory -- is the sink's
// business. `load()` returns the most recent checkpoint or a clean
// not_found when none exists yet.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"

namespace flexran::ctrl {

class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual util::Status save(std::span<const std::uint8_t> bytes) = 0;
  virtual util::Result<std::vector<std::uint8_t>> load() = 0;

  // ---- fault injection -----------------------------------------------------
  /// The next `n` saves fail the way a full disk or a flaky filesystem
  /// would. The caller is expected to retry with backoff and must never
  /// lose the last good checkpoint: FileCheckpointSink fails these saves
  /// mid-write, leaving a torn `.tmp` behind -- exactly the crash the
  /// atomic tmp+rename protocol exists to survive.
  void fail_next_saves(int n) { fail_remaining_ += n; }
  /// Saves that returned an error so far, injected or real.
  std::uint64_t saves_failed() const { return saves_failed_; }

 protected:
  /// True when this save should fail by injection; consumes one token.
  bool consume_injected_failure() {
    if (fail_remaining_ <= 0) return false;
    --fail_remaining_;
    return true;
  }
  void note_save_failed() { ++saves_failed_; }

 private:
  int fail_remaining_ = 0;
  std::uint64_t saves_failed_ = 0;
};

/// File-backed sink: writes to `<path>.tmp` then renames over `<path>`, so
/// a crash mid-save never leaves a torn checkpoint behind (the previous
/// complete one survives).
class FileCheckpointSink : public CheckpointSink {
 public:
  explicit FileCheckpointSink(std::string path) : path_(std::move(path)) {}

  util::Status save(std::span<const std::uint8_t> bytes) override;
  util::Result<std::vector<std::uint8_t>> load() override;

  const std::string& path() const { return path_; }

  /// Per-shard checkpoint file under a shared directory:
  /// `<dir>/shard-<index>.ckpt`. N shards checkpointing into one directory
  /// must never clobber each other -- the filename, not the caller, carries
  /// the shard identity.
  static std::string shard_path(const std::string& dir, std::size_t shard);

 private:
  std::string path_;
};

/// In-memory sink for tests, benches and scenario runs: survives a
/// simulated master restart (the sink outlives MasterController::restart())
/// without touching the filesystem.
class MemoryCheckpointSink : public CheckpointSink {
 public:
  util::Status save(std::span<const std::uint8_t> bytes) override {
    if (consume_injected_failure()) {
      note_save_failed();
      return util::Error::transport_failure("injected checkpoint write failure");
    }
    stored_.emplace(bytes.begin(), bytes.end());
    ++saves_;
    return {};
  }

  util::Result<std::vector<std::uint8_t>> load() override {
    if (!stored_.has_value()) return util::Error::not_found("no checkpoint saved");
    return *stored_;
  }

  bool has_checkpoint() const { return stored_.has_value(); }
  std::uint64_t saves() const { return saves_; }
  /// Drop the stored checkpoint (turn a warm restart cold, for tests).
  void clear() { stored_.reset(); }

 private:
  std::optional<std::vector<std::uint8_t>> stored_;
  std::uint64_t saves_ = 0;
};

}  // namespace flexran::ctrl
