// Task Manager (paper Sec. 4.3.3): a non-preemptive loop operating in
// cycles of one TTI, each cycle split into two slots -- one for the RIB
// Updater (single writer; default 20% of the TTI) and one for the
// applications and the Event Notification Service (80%). The split
// guarantees mutually exclusive RIB reads/writes without locks, which is
// what keeps real-time applications non-blocking.
//
// In real-time mode the slot budgets are enforced (work that would overrun
// the updater budget is carried to the next cycle); in non-RT mode a cycle
// simply runs to completion. Per-slot execution times are measured with a
// monotonic clock -- these timings are the Fig. 8 series.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "controller/app.h"
#include "util/stats.h"

namespace flexran::ctrl {

struct TaskManagerConfig {
  bool real_time = true;
  /// Fraction of the TTI reserved for the RIB updater slot.
  double updater_share = 0.20;
  /// Cycle length; 1 TTI (1000 us) in real-time mode.
  std::int64_t cycle_us = 1000;
};

class TaskManager {
 public:
  /// `updater` drains pending agent messages into the RIB. It receives its
  /// slot budget in microseconds (<=0 = unbounded) and returns how many
  /// updates it applied.
  using UpdaterFn = std::function<std::size_t(std::int64_t budget_us)>;
  /// `event_dispatch` runs the Event Notification Service (start of the
  /// application slot).
  using EventDispatchFn = std::function<void()>;

  TaskManager(TaskManagerConfig config, UpdaterFn updater, EventDispatchFn event_dispatch)
      : config_(config), updater_(std::move(updater)), event_dispatch_(std::move(event_dispatch)) {}

  /// Registers an application; apps run each cycle ordered by priority()
  /// (lowest value first). Ownership stays with the caller (master).
  void add_app(App* app, NorthboundApi& api);
  void remove_app(std::string_view name);
  /// Paused apps stay registered but are skipped.
  util::Status set_paused(std::string_view name, bool paused);
  std::size_t app_count() const { return apps_.size(); }

  /// Runs one cycle: updater slot, then event dispatch + app slot.
  void run_cycle(std::int64_t cycle, NorthboundApi& api);

  std::int64_t cycles_run() const { return cycles_; }
  const util::RunningStats& updater_time_us() const { return updater_time_; }
  const util::RunningStats& apps_time_us() const { return apps_time_; }
  const TaskManagerConfig& config() const { return config_; }
  /// Mean fraction of the cycle spent idle.
  double mean_idle_fraction() const;

 private:
  struct Entry {
    App* app;
    bool paused = false;
  };

  TaskManagerConfig config_;
  UpdaterFn updater_;
  EventDispatchFn event_dispatch_;
  std::vector<Entry> apps_;
  std::int64_t cycles_ = 0;
  util::RunningStats updater_time_;
  util::RunningStats apps_time_;
};

}  // namespace flexran::ctrl
