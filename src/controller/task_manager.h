// Task Manager (paper Sec. 4.3.3): a non-preemptive loop operating in
// cycles of one TTI, each cycle split into two slots -- one for the RIB
// Updater (single writer; default 20% of the TTI) and one for the
// applications and the Event Notification Service (80%).
//
// Where the paper guarantees mutually exclusive RIB reads/writes by
// time-slicing one thread, this Task Manager guarantees it by data
// versioning (docs/controller_concurrency.md): the updater publishes an
// immutable RibSnapshot at the end of its slot and applications read only
// snapshots, so with `workers > 0` the updater slot of cycle N+1 overlaps
// the application slot of cycle N. Applications run on a worker pool in
// priority tiers -- all apps of one priority run concurrently, a lower
// priority tier starts only after the tier above it finished -- and their
// commands are captured in per-app batches (BatchingNorthbound) that the
// coordinator flushes in (priority, registration, enqueue) order when the
// slot is joined. With `workers == 0` cycles run inline on the calling
// thread exactly as in the original time-sliced design; the batched
// command path is used either way.
//
// In real-time mode the slot budgets are enforced (work that would overrun
// the updater budget is carried to the next cycle); in non-RT mode a cycle
// simply runs to completion. Per-slot execution times are measured with a
// monotonic clock -- these timings are the Fig. 8 series. Per-app wall
// times and overruns of the application-slot budget are tracked as well.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "controller/app.h"
#include "controller/command_batch.h"
#include "controller/rib_snapshot.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace flexran::ctrl {

struct TaskManagerConfig {
  bool real_time = true;
  /// Fraction of the TTI reserved for the RIB updater slot.
  double updater_share = 0.20;
  /// Cycle length; 1 TTI (1000 us) in real-time mode.
  std::int64_t cycle_us = 1000;
  /// Application-slot worker threads. 0 = run apps inline on the
  /// coordinator thread (the original time-sliced behavior); >= 1 =
  /// pipelined mode (apps of cycle N overlap the updater of cycle N+1).
  int workers = 0;
};

class TaskManager {
 public:
  /// `updater` drains pending agent messages into the RIB. It receives its
  /// slot budget in microseconds (<=0 = unbounded) and returns how many
  /// updates it applied. In pipelined mode it must also publish the cycle's
  /// RibSnapshot before returning.
  using UpdaterFn = std::function<std::size_t(std::int64_t budget_us)>;
  /// `event_dispatch` runs the Event Notification Service (start of the
  /// application slot, always on the coordinator thread).
  using EventDispatchFn = std::function<void()>;
  using SnapshotFn = std::function<std::shared_ptr<const RibSnapshot>()>;
  using NowFn = std::function<sim::TimeUs()>;

  TaskManager(TaskManagerConfig config, UpdaterFn updater, EventDispatchFn event_dispatch);
  ~TaskManager();

  TaskManager(const TaskManager&) = delete;
  TaskManager& operator=(const TaskManager&) = delete;

  /// Wires the snapshot source apps are pinned to at dispatch. Without it,
  /// app proxies pass reads straight through to the downstream api (only
  /// sensible with workers == 0; direct-construction tests do this).
  void set_snapshot_source(SnapshotFn snapshot, NowFn now);
  /// DL arbitration hooks threaded into every app proxy; set before the
  /// first add_app.
  void set_command_hooks(BatchingNorthbound::Hooks hooks) { hooks_ = std::move(hooks); }
  /// Attaches control-loop tracing (docs/observability.md): one CycleTrace
  /// per cycle covering updater slot, event dispatch, application slot and
  /// command-batch flush. nullptr (the default) disables tracing and all
  /// of its extra clock reads.
  void set_trace_sink(obs::TraceRing* trace) { trace_ = trace; }

  /// Registers an application; apps run each cycle ordered by priority()
  /// (lowest value first). Ownership stays with the caller (master). The
  /// app talks to `api` only through its batching proxy.
  void add_app(App* app, NorthboundApi& api);
  /// Deregisters at the next cycle boundary if a cycle or an application
  /// slot is in flight (so an app is never destroyed mid-on_cycle and its
  /// final command batch still flushes), immediately otherwise.
  void remove_app(std::string_view name);
  /// Paused apps stay registered but are skipped. Takes effect at the next
  /// cycle boundary if a cycle or slot is in flight.
  util::Status set_paused(std::string_view name, bool paused);
  std::size_t app_count() const { return apps_.size(); }

  /// Runs one cycle. workers == 0: updater slot, then event dispatch +
  /// apps inline (each app's batch flushes right after it runs). workers
  /// >= 1: updater slot (overlapping the previous cycle's app slot), then
  /// join + flush the previous slot, then event dispatch, then dispatch
  /// this cycle's app slot to the pool.
  void run_cycle(std::int64_t cycle, NorthboundApi& api);

  /// Joins the in-flight application slot, if any, and flushes its command
  /// batches. Call before reading master state that the slot may still be
  /// producing (tests, teardown with live transports).
  void quiesce();
  /// Joins in-flight work, discards unflushed batches, and stops the
  /// worker pool. Called by the destructor; call earlier if the apps or
  /// transports die before this TaskManager does.
  void shutdown();

  std::int64_t cycles_run() const { return cycles_; }
  const util::RunningStats& updater_time_us() const { return updater_time_; }
  const util::RunningStats& apps_time_us() const { return apps_time_; }
  const TaskManagerConfig& config() const { return config_; }
  /// Mean fraction of the cycle spent idle.
  double mean_idle_fraction() const;

  /// Commands sent through batch flushes (all apps, all cycles).
  std::uint64_t commands_flushed() const { return commands_flushed_; }
  /// on_cycle calls whose wall time exceeded the application-slot budget.
  std::uint64_t app_overruns() const;
  /// Real-time cycles where the updater slot's wall time exceeded its
  /// budget (an overload-watchdog input, docs/overload_protection.md).
  std::uint64_t updater_overruns() const { return updater_overruns_; }

  struct AppStat {
    std::string name;
    std::uint64_t runs = 0;
    double mean_wall_us = 0.0;
    double max_wall_us = 0.0;
    std::uint64_t overruns = 0;
  };
  /// Per-app on_cycle wall-time statistics, in schedule order.
  std::vector<AppStat> app_stats() const;

 private:
  struct Entry {
    App* app = nullptr;
    bool paused = false;
    std::unique_ptr<BatchingNorthbound> proxy;
    util::RunningStats wall_us;  // guarded by mu_ in pipelined mode
    std::uint64_t overruns = 0;  // guarded by mu_ in pipelined mode
  };

  std::int64_t updater_budget_us() const;
  std::int64_t app_slot_budget_us() const;
  /// Non-paused entries in schedule order (the slot's working set; a copy,
  /// so reentrant add/remove cannot invalidate the iteration).
  std::vector<Entry*> runnable_entries() const;
  void run_slot_inline(std::int64_t cycle, NorthboundApi& api, double updater_us,
                       std::size_t updates_applied);
  void dispatch_slot(std::int64_t cycle, double event_us);
  void join_and_flush();
  void apply_deferred();
  void worker_loop();

  TaskManagerConfig config_;
  UpdaterFn updater_;
  EventDispatchFn event_dispatch_;
  SnapshotFn snapshot_fn_;
  NowFn now_fn_;
  BatchingNorthbound::Hooks hooks_;

  obs::TraceRing* trace_ = nullptr;  // not owned; nullptr = tracing off
  /// Pipelined mode: the trace of the dispatched-but-unretired cycle,
  /// completed (apps/flush timings) when its slot is joined.
  obs::CycleTrace pending_trace_;
  bool pending_trace_valid_ = false;

  std::vector<std::unique_ptr<Entry>> apps_;  // sorted by priority (stable)
  std::int64_t cycles_ = 0;
  util::RunningStats updater_time_;
  util::RunningStats apps_time_;
  std::uint64_t commands_flushed_ = 0;
  std::uint64_t updater_overruns_ = 0;

  /// True while an application slot is executing inline on the coordinator
  /// (reentrancy guard: Entry pointers are being iterated).
  bool slot_busy_ = false;
  /// Mutations requested while a slot was in flight, applied at the next
  /// cycle boundary.
  std::vector<std::function<void()>> deferred_;

  // ---- pipelined mode --------------------------------------------------------
  /// In-flight slot state; guarded by mu_ once dispatched.
  struct Slot {
    bool active = false;
    std::int64_t cycle = 0;
    std::int64_t budget_us = 0;
    std::vector<std::vector<Entry*>> tiers;
    std::size_t tier = 0;
    std::size_t next = 0;     // next unclaimed entry in the current tier
    std::size_t running = 0;  // claimed but unfinished in the current tier
    std::chrono::steady_clock::time_point finished_at;
  };

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a tier has claimable entries
  std::condition_variable done_cv_;  // coordinator: the slot completed
  std::vector<std::thread> pool_;
  bool stop_workers_ = false;
  Slot slot_;

  /// Coordinator-side view of the dispatched slot (flush order + timing).
  bool inflight_ = false;
  std::vector<Entry*> inflight_entries_;
  double inflight_event_us_ = 0.0;
  std::chrono::steady_clock::time_point inflight_start_;
};

}  // namespace flexran::ctrl
