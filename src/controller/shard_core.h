// FlexRAN master controller core (paper Sec. 4.3.3): the brain of the
// control plane. Owns the RIB, the RIB Updater (the single writer, fed from
// a pending-message queue), the Task Manager, the Event Notification
// Service, and the application registry, and terminates the FlexRAN
// protocol toward every connected agent. Custom design, deliberately not
// OpenFlow: radio resources don't fit the flow abstraction and real-time
// apps need per-TTI cycles.
//
// Since the two-tier split (docs/sharded_control.md) this class is the
// per-shard core: instantiable N times in one process, each instance owning
// a disjoint agent set, with a thin Coordinator (coordinator.h) assigning
// agents, aggregating snapshots and routing commands. A standalone instance
// (shard index unset) is the classic single master; `MasterController` in
// master.h aliases it for source compatibility.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <set>

#include "controller/app.h"
#include "controller/arbiter.h"
#include "controller/checkpoint_sink.h"
#include "controller/overload.h"
#include "controller/rib.h"
#include "controller/rib_snapshot.h"
#include "controller/task_manager.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "proto/checkpoint.h"
#include "obs/trace.h"
#include "proto/accounting.h"
#include "proto/wire.h"
#include "sim/simulator.h"

namespace flexran::ctrl {

/// Unified observability layer (docs/observability.md). Off by default:
/// with `enabled == false` the master neither stamps envelopes, records
/// latency, traces cycles nor registers probes -- behavior and wire
/// traffic are identical to a build without the layer (the repo's
/// `0/0 = off` convention).
struct ObsConfig {
  bool enabled = false;
  /// Control-loop trace ring capacity (most recent cycles kept verbatim).
  std::size_t trace_cycles = 4096;
  /// External registry to register instruments and probes in (nullptr = use
  /// the core's own). The Coordinator points every shard at one shared
  /// registry so a single export surface covers the whole process; the
  /// `shard` label (MasterConfig::shard) keeps identities unique. The
  /// registry must outlive the core.
  obs::MetricsRegistry* registry = nullptr;
};

/// Master crash recovery (docs/fault_tolerance.md "Master restart"). Off
/// by default: with `enabled == false` no incarnation epoch is stamped on
/// the wire, re-syncs are never paced, and no readiness barrier is raised
/// -- behavior and traffic are seed-identical (the `0/0 = off` convention).
/// `restart()` still works without the layer, just without fencing.
struct RecoveryConfig {
  /// Master incarnation epochs + admission pacing + app readiness gating.
  bool enabled = false;
  /// Token-bucket admission gate on concurrent full re-syncs after a
  /// restart: sustained admissions per second (0 = unpaced) and bucket
  /// capacity (how many re-syncs may be admitted back to back).
  double resync_tokens_per_s = 0.0;
  double resync_burst = 4.0;
  /// Retry-after hint piggybacked to agents whose re-sync was deferred by
  /// the gate (Envelope::retry_after_ms): how long they should hold their
  /// hello retries. The master re-syncs them itself when a token frees up.
  double resync_retry_after_ms = 50.0;
  /// Readiness barrier: recovery ends (the snapshot drops `recovering`)
  /// once this fraction of the expected fleet has re-synced...
  double readiness_quorum = 1.0;
  /// ...or after this long, whichever comes first (0 = quorum only; a
  /// permanently dead agent must not hold the barrier forever).
  sim::TimeUs readiness_timeout_us = sim::from_ms(2000.0);
  /// Warm checkpoint: serialize durable master state to `checkpoint_sink`
  /// every `checkpoint_period_us` (0 = never write). A checkpoint found in
  /// the sink at construction or restart() is loaded, cutting recovery to
  /// a delta re-sync (stats + subscriptions, no config fetch).
  sim::TimeUs checkpoint_period_us = 0;
  std::shared_ptr<CheckpointSink> checkpoint_sink;
};

struct MasterConfig {
  TaskManagerConfig task_manager;
  /// Shard index under a Coordinator (-1 = standalone master). When set,
  /// every metric and probe this core registers carries a `shard` label so
  /// multiple cores can share one MetricsRegistry without name collisions.
  int shard = -1;
  /// On hello: automatically fetch eNodeB/UE/LC configuration.
  bool auto_configure = true;
  /// On hello: install this statistics request (nullopt = none).
  std::optional<proto::StatsRequest> default_stats_request;
  /// On hello: subscribe to these events at the agent.
  std::vector<proto::EventType> subscribe_events;
  /// Send an echo request every this many cycles for RTT estimation
  /// (0 = never).
  std::int64_t echo_period_cycles = 1000;
  /// Reject DL MAC configs whose PRBs overlap a decision another app
  /// already issued for the same (agent, subframe) -- paper Sec. 7.3.
  bool conflict_resolution = true;
  /// Mark an agent stale when nothing has been heard from it for this long
  /// (0 = never). Stale agents are skipped by well-behaved apps.
  sim::TimeUs agent_timeout_us = 0;
  /// Declare a stale agent fully disconnected (state -> down, pending
  /// updates purged, in-flight requests failed, AGENT_DISCONNECTED emitted)
  /// after this much silence (0 = never). Transport-notified disconnects
  /// take this path immediately.
  sim::TimeUs agent_disconnect_timeout_us = 0;
  /// Track config/stats requests by xid and retry them when no reply
  /// arrives within this timeout (doubles per retry). 0 = fire-and-forget
  /// (the seed behavior).
  sim::TimeUs request_timeout_us = 0;
  /// Retries before a tracked request is reported failed via a
  /// request_timeout event.
  int request_max_retries = 2;
  /// Overload protection (docs/overload_protection.md): bounded ingest
  /// queue, watchdog thresholds and report-throttle backoff. The layer is
  /// entirely off (seed behavior) until `overload.ingest` has a budget.
  OverloadConfig overload;
  /// Metrics registry + control-loop tracing + Envelope timestamp echo
  /// (docs/observability.md). Off = seed-identical.
  ObsConfig obs;
  /// Master crash recovery (docs/fault_tolerance.md "Master restart").
  /// Off = seed-identical.
  RecoveryConfig recovery;
};

class ShardCore final : public NorthboundApi {
 public:
  ShardCore(sim::Simulator& sim, MasterConfig config);
  /// Stops the worker pool before the application registry is destroyed
  /// (member order would otherwise tear apps down under running workers).
  ~ShardCore() override;

  /// Registers the master-side endpoint of an agent connection. Returns the
  /// agent id (also the RIB root key). `id` pins an explicit agent id --
  /// the Coordinator allocates ids globally so they stay unique across
  /// shards; 0 (the default) keeps the core's own sequential allocation.
  AgentId add_agent(net::Transport& transport, AgentId id = 0);
  void remove_agent(AgentId id);

  /// Runs one task-manager cycle; wire this to the TtiTicker (real-time
  /// mode) or call it at any coarser period (non-RT mode).
  void run_cycle();

  /// Simulates a master process crash + immediate restart in place
  /// (docs/fault_tolerance.md "Master restart"): every piece of volatile
  /// state -- RIB contents, queued and in-flight messages, pending
  /// policies, event queue -- is dropped, exactly what a real restart
  /// loses. The transport registry survives (a restarted master re-accepts
  /// its listening sockets; here the agents' connections stay attached
  /// under the same ids). With recovery enabled the incarnation epoch is
  /// bumped and announced so agents fence stale traffic and re-hello; a
  /// checkpoint in the configured sink is loaded for a warm (delta)
  /// recovery. Note: the incarnation is monotonic in-memory; a real
  /// deployment would derive it from a durable source (the checkpoint
  /// provides that here).
  void restart();

  /// Forces a checkpoint save right now (normally driven by
  /// `recovery.checkpoint_period_us`). Errors if no sink is configured.
  util::Status save_checkpoint();

  // ---- failover / drain (docs/sharded_control.md "Shard failover") -----------
  /// Live durable state of one agent -- the per-agent slice of
  /// build_checkpoint(), read from the live RIB instead of the checkpoint
  /// sink, so a planned drain hands over state newer than the last save.
  proto::CheckpointAgent export_agent(AgentId id) const;
  /// Takes ownership of an orphaned (or drained) agent's connection. With
  /// `durable` the agent's checkpointed state is imported for a warm delta
  /// re-sync; without it the adoption is cold (full config fetch on the
  /// agent's next message or hello). The agent starts down and is walked
  /// through the normal paced re-sync admission; with recovery enabled the
  /// readiness barrier is raised until the adopted set is serviceable.
  void adopt_agent(net::Transport& transport, AgentId id,
                   const proto::CheckpointAgent* durable = nullptr);
  /// Raises the incarnation to at least `floor` (no-op below the current
  /// value, or while recovery is disabled). An adopter must not fence
  /// behind its dead predecessor: agents drop frames carrying a strictly
  /// older incarnation than the last one they saw, so the survivor resumes
  /// at or above the dead shard's epoch.
  void bump_incarnation(std::uint32_t floor);
  /// Chaos/test fault hook: make every subsequent run_cycle() throw
  /// (detection via exception containment in the Coordinator) or return
  /// immediately without advancing (detection via the cycle-stall
  /// watchdog).
  enum class CycleFault { none, throwing, stalled };
  void set_cycle_fault(CycleFault fault) { cycle_fault_ = fault; }
  /// The configured checkpoint sink (nullptr = none). The Coordinator reads
  /// a dead shard's last save through this during failover -- explicitly,
  /// not via restart(), which rejects wrong-shard checkpoints.
  const std::shared_ptr<CheckpointSink>& checkpoint_sink() const {
    return config_.recovery.checkpoint_sink;
  }
  /// Publishes the current RIB state immediately (normally end-of-cycle).
  /// The Coordinator calls this after topology surgery -- remove, adopt,
  /// drain -- so the composite union never shows a moved agent in two
  /// places (or a removed one at all) while the shard idles between
  /// cycles. Coordinator-thread only, like run_cycle().
  void publish_now() { publish_snapshot(); }
  /// Checkpoints refused at restore time (wrong shard stamp or a payload
  /// that fails decoding).
  std::uint64_t checkpoints_rejected() const { return checkpoints_rejected_; }

  /// Joins the in-flight application slot (if any) and flushes its command
  /// batches. With a pipelined task manager (workers > 0) a cycle's
  /// commands reach the wire one cycle later; call this before asserting
  /// on sent traffic or shutting transports down.
  void quiesce() { task_manager_.quiesce(); }

  // ---- application management ----------------------------------------------
  /// Registers an application; the master keeps ownership.
  App* add_app(std::unique_ptr<App> app);
  void remove_app(std::string_view name) { task_manager_.remove_app(name); }
  /// Observer the Coordinator installs to mirror this shard's events into
  /// the global (composite-view) application slot. Called on the
  /// coordinator thread during event dispatch, after the shard's own apps
  /// saw the event. One tap only; empty = off.
  void set_event_tap(std::function<void(const Event&)> tap) { event_tap_ = std::move(tap); }
  util::Status pause_app(std::string_view name) { return task_manager_.set_paused(name, true); }
  util::Status resume_app(std::string_view name) { return task_manager_.set_paused(name, false); }

  // ---- NorthboundApi ---------------------------------------------------------
  std::shared_ptr<const RibSnapshot> rib_snapshot() const override { return snapshots_.current(); }
  sim::TimeUs now() const override { return sim_.now(); }
  std::int64_t agent_subframe(AgentId agent) const override;
  util::Status send_dl_mac_config(AgentId agent, const proto::DlMacConfig& config) override;
  util::Status send_ul_mac_config(AgentId agent, const proto::UlMacConfig& config) override;
  util::Status send_handover(AgentId agent, const proto::HandoverCommand& command) override;
  util::Status send_abs_config(AgentId agent, const proto::AbsConfig& config) override;
  util::Status send_carrier_restriction(AgentId agent,
                                        const proto::CarrierRestriction& config) override;
  util::Status send_drx_config(AgentId agent, const proto::DrxConfig& config) override;
  util::Status send_scell_command(AgentId agent, const proto::ScellCommand& command) override;
  util::Status request_stats(AgentId agent, const proto::StatsRequest& request) override;
  util::Status subscribe_events(AgentId agent, std::vector<proto::EventType> events,
                                bool enable) override;
  util::Status push_vsf(AgentId agent, const std::string& module, const std::string& vsf,
                        const std::string& implementation) override;
  util::Status send_policy(AgentId agent, const std::string& yaml) override;

  // ---- introspection ----------------------------------------------------------
  /// The live RIB. Coordinator-thread / test use only -- applications read
  /// through rib_snapshot() and never see this (single-writer rule).
  const Rib& rib() const { return rib_; }
  const TaskManager& task_manager() const { return task_manager_; }
  const ConflictArbiter& arbiter() const { return arbiter_; }
  /// Version of the latest published snapshot.
  std::uint64_t snapshot_version() const { return snapshots_.current()->version(); }
  /// Wall time of each snapshot publish (Fig. 8 companion series).
  const util::RunningStats& snapshot_publish_us() const { return snapshot_publish_time_; }
  /// Commands that reached the wire through batch flushes.
  std::uint64_t commands_flushed() const { return task_manager_.commands_flushed(); }
  /// Master -> agent signaling (Fig. 7b).
  const proto::SignalingAccountant& tx_accounting(AgentId agent) const;
  /// Agent -> master signaling as received (Fig. 7a).
  const proto::SignalingAccountant& rx_accounting(AgentId agent) const;
  std::size_t pending_updates() const { return pending_.size(); }
  std::uint64_t updates_applied() const { return updates_applied_; }
  std::size_t rib_bytes() const { return rib_.approx_bytes(); }
  std::int64_t cycles_run() const { return task_manager_.cycles_run(); }

  // ---- fault-tolerance introspection ----------------------------------------
  /// Requests currently awaiting a reply (xid-keyed table).
  std::size_t inflight_requests() const { return inflight_.size(); }
  std::uint64_t requests_completed() const { return requests_completed_; }
  std::uint64_t requests_retried() const { return requests_retried_; }
  /// Requests that exhausted their retries or died with a session.
  std::uint64_t requests_failed() const { return requests_failed_; }
  /// Queued/arriving updates dropped because they carried an older session
  /// epoch than the agent's current one.
  std::uint64_t fenced_updates() const { return fenced_updates_; }
  /// Messages whose envelope failed to decode (e.g. corrupted in flight).
  std::uint64_t rx_decode_errors() const { return rx_decode_errors_; }

  // ---- crash recovery (docs/fault_tolerance.md "Master restart") -------------
  /// Current master incarnation (0 while recovery is disabled).
  std::uint32_t incarnation() const { return incarnation_; }
  /// True while the readiness barrier is up: the RIB is still being
  /// rebuilt from agent re-syncs after a restart.
  bool recovering() const { return recovering_; }
  std::uint64_t master_restarts() const { return master_restarts_; }
  /// Re-syncs deferred by the admission gate / later admitted from the
  /// deferral queue.
  std::uint64_t resyncs_paced() const { return resyncs_paced_; }
  std::uint64_t resyncs_admitted() const { return resyncs_admitted_; }
  /// Agents currently parked in the deferral queue.
  std::size_t resyncs_waiting() const { return resync_queue_.size(); }
  /// Commands refused at the wire because their target had not re-synced
  /// with this incarnation yet.
  std::uint64_t commands_held() const { return commands_held_; }
  std::uint64_t checkpoints_saved() const { return checkpoints_saved_; }
  /// Checkpoint saves the sink refused (disk error, injected fault). Each
  /// failure schedules a backoff retry well inside the checkpoint period;
  /// the last good checkpoint is never clobbered (the sink's tmp+rename
  /// fails atomically).
  std::uint64_t checkpoint_write_failures() const { return checkpoint_write_failures_; }
  /// Last-known-good policies re-pushed as re-syncs completed.
  std::uint64_t policies_repushed() const { return policies_repushed_; }
  /// A checkpoint was loaded at construction or the last restart().
  bool checkpoint_loaded() const { return checkpoint_loaded_; }
  /// Agents that completed their re-sync since the last restart.
  std::size_t agents_resynced() const { return recovery_resynced_.size(); }
  /// Wall-clock (simulated) duration of the last completed recovery;
  /// 0 = none completed yet (or still recovering).
  sim::TimeUs last_recovery_duration() const {
    return recovery_ready_at_ == 0 ? 0 : recovery_ready_at_ - recovery_started_at_;
  }

  // ---- delegated-control containment (docs/delegation_safety.md) ------------
  /// Policies re-sent (rolled back to last-known-good) after an agent
  /// quarantined a VSF implementation.
  std::uint64_t policy_rollbacks() const { return policy_rollbacks_; }
  /// Policies an agent reported rejected (two-phase apply failed).
  std::uint64_t policies_rejected() const { return policies_rejected_; }
  /// Newest applied policy for the agent not implicated in a quarantine
  /// ("" = none recorded).
  std::string last_known_good_policy(AgentId agent) const;

  // ---- overload protection (docs/overload_protection.md) ---------------------
  OverloadState overload_state() const { return overload_monitor_.state(); }
  std::uint64_t overload_transitions() const { return overload_monitor_.transitions(); }
  /// Ingest-queue high-water marks (bounded by the configured budget).
  std::size_t pending_peak_messages() const { return pending_.peak_messages(); }
  std::size_t pending_peak_bytes() const { return pending_.peak_bytes(); }
  std::size_t pending_bytes() const { return pending_.bytes(); }
  /// Per-class ingest accounting (admitted / shed / coalesced).
  const net::ClassCounters& ingest_counters(net::TrafficClass cls) const {
    return pending_.counters(cls);
  }
  std::uint64_t ingest_shed() const { return pending_.total_shed(); }
  std::uint64_t ingest_coalesced() const { return pending_.total_coalesced(); }
  /// Unsheddable messages admitted past the budget (should stay 0).
  std::uint64_t ingest_budget_overflows() const { return pending_.budget_overflows(); }
  /// Cycles where the updater hit its slot budget with messages queued.
  std::uint64_t updater_saturations() const { return updater_saturations_; }
  /// Current report-period multiplier (1 = no throttling).
  std::uint32_t throttle_multiplier() const { return throttle_multiplier_; }
  /// Stats requests re-sent to renegotiate report periods.
  std::uint64_t throttle_renegotiations() const { return throttle_renegotiations_; }

  // ---- invariant inputs (src/verify/invariants.h) -----------------------------
  /// The configured ingest budget: the InvariantMonitor checks queue
  /// occupancy against it every coordinator cycle.
  const net::QueueBudget& ingest_budget() const { return config_.overload.ingest; }
  /// Commands that actually reached the wire toward an agent that had not
  /// re-synced with this incarnation while the readiness barrier was up.
  /// The gate in send_to makes this impossible by construction; this is a
  /// deliberately separate tripwire at the delivery point, so weakening
  /// the gate trips the monitor instead of silently shipping stale state.
  std::uint64_t commands_sent_unresynced() const { return commands_sent_unresynced_; }
  /// Handover commands sent while this shard was still recovering. Apps
  /// honor the snapshot readiness guard, so this stays 0.
  std::uint64_t handovers_while_recovering() const { return handovers_while_recovering_; }

  // ---- observability (docs/observability.md) ---------------------------------
  bool obs_enabled() const { return config_.obs.enabled; }
  /// Shard index under a Coordinator (-1 = standalone master).
  int shard() const { return config_.shard; }
  /// The unified metrics registry: the core's own, or the shared external
  /// one from ObsConfig::registry. Master-owned instruments and probes are
  /// registered only while `obs.enabled`; external components (scenario
  /// layer, benches) may register theirs at any time.
  obs::MetricsRegistry& metrics() { return *registry_; }
  const obs::MetricsRegistry& metrics() const { return *registry_; }
  /// Per-cycle control-loop traces (empty unless `obs.enabled`).
  const obs::TraceRing& cycle_traces() const { return trace_ring_; }
  /// End-to-end control latency (send -> agent -> echo -> RIB apply) for
  /// one agent; nullptr when observability is off or the agent is unknown.
  const obs::Histogram* control_latency(AgentId agent) const;

 private:
  struct AgentLink {
    net::Transport* transport = nullptr;  // not owned
    proto::SignalingAccountant tx;
    proto::SignalingAccountant rx;
    /// End-to-end control-latency histogram (registry-owned); non-null only
    /// while observability is enabled.
    obs::Histogram* latency = nullptr;
  };

  struct PendingUpdate {
    AgentId agent = 0;
    std::uint32_t epoch = 0;
    proto::Envelope envelope;
  };

  /// A tracked request awaiting its reply: retried with doubling timeout,
  /// failed (and surfaced as a request_timeout event) when retries run out
  /// or the session it belongs to ends.
  struct PendingRequest {
    AgentId agent = 0;
    proto::MessageType type = proto::MessageType::hello;
    std::uint32_t xid = 0;
    std::uint32_t epoch = 0;
    /// For stats requests: completion is matched on the reply's request_id
    /// (stats replies do not echo the xid).
    std::uint32_t request_id = 0;
    /// Signaling category and traffic class, captured from the real message
    /// body at enqueue time. The retry path must reuse these -- recomputing
    /// the category from the stored wire with an empty body misbuckets any
    /// body-dependent type, and a classless resend would bypass class-aware
    /// budget accounting.
    proto::MessageCategory category = proto::MessageCategory::agent_management;
    net::TrafficClass cls = net::TrafficClass::config;
    std::vector<std::uint8_t> wire;
    sim::TimeUs deadline = 0;
    sim::TimeUs timeout = 0;
    int attempts = 0;
  };

  /// Per-agent policy bookkeeping for rollback: policies sent but not yet
  /// acknowledged (keyed by envelope xid, which the agent echoes in its
  /// policy_applied / policy_rejected verdict) and a bounded history of
  /// applied policies, newest first.
  struct PolicyState {
    std::map<std::uint32_t, std::string> pending;
    std::deque<std::string> history;
  };
  static constexpr std::size_t kPolicyHistoryCap = 8;

  template <typename M>
  util::Status send_to(AgentId agent, const M& message, bool track = false);

  /// Metric/probe identity for this core: `name` with `labels`, plus a
  /// `shard` label when this core runs under a Coordinator (shard >= 0) so
  /// N cores sharing one registry stay distinguishable. With no labels and
  /// no shard index this is `name` verbatim (seed-identical identities).
  std::string probe_name(std::string name,
                         std::vector<std::pair<std::string, std::string>> labels = {}) const;

  /// Registers the master-level pull probes (ingest queue, task manager,
  /// overload, request table, cycle-trace stage stats). obs.enabled only.
  void register_obs_probes();
  /// Registers one agent's probes: signaling tx/rx per category and the
  /// end-to-end control-latency histogram. obs.enabled only.
  void register_agent_probes(AgentId id);
  /// Registers one app's wall-time probes. obs.enabled only.
  void register_app_probes(const std::string& name);

  /// RIB updater slot body: drains pending updates (bounded by budget in
  /// real-time mode via an update-count proxy).
  std::size_t drain_pending(std::int64_t budget_us);
  /// Overload watchdog step: runs after the drain, feeds the monitor one
  /// sample and reacts to state transitions (events, throttling).
  void overload_step();
  /// Moves the report-throttle multiplier and renegotiates every captured
  /// periodic stats request at the new period.
  void update_throttle(std::uint32_t multiplier);
  void renegotiate_reports();
  /// End of the updater slot: publishes this cycle's RibSnapshot (shares
  /// the subtrees of agents not in dirty_).
  void publish_snapshot();
  void apply_update(const PendingUpdate& update);
  void dispatch_events();
  void on_agent_hello(AgentId id, const proto::Hello& hello);

  // ---- session lifecycle ----------------------------------------------------
  /// Re-sends the configuration fetch, default stats request and event
  /// subscriptions (the hello handshake minus identity).
  void resync_agent(AgentId id);
  /// Transitions the agent to down: purges its queued updates, fails its
  /// in-flight requests and emits AGENT_DISCONNECTED.
  void mark_agent_down(AgentId id, const std::string& reason);
  /// Starts a new session at `epoch`: fences the old session's queued
  /// updates and in-flight requests.
  void begin_agent_session(AgentId id, std::uint32_t epoch);
  void purge_pending(AgentId id, std::uint32_t below_epoch);
  void fail_agent_requests(AgentId id, const char* reason);
  void complete_request(AgentId agent, std::uint32_t xid);
  void complete_stats_request(AgentId agent, std::uint32_t request_id);
  void sweep_requests();
  void emit_lifecycle_event(AgentId id, proto::EventType type, std::uint32_t xid = 0);
  /// Resolves a pending policy against the agent's verdict (applied ->
  /// history, rejected -> dropped).
  void note_policy_verdict(AgentId id, const proto::EventNotification& event);
  /// On vsf_quarantined: purges history entries naming the quarantined
  /// implementation and re-sends the newest survivor (last-known-good).
  void rollback_policy(AgentId id, const proto::EventNotification& event);

  // ---- crash recovery -------------------------------------------------------
  /// Admission-gated entry to resync_agent: consumes a token or parks the
  /// agent in the deferral queue with a retry-after hint. With pacing off
  /// (no token rate) this is resync_agent directly.
  void request_resync(AgentId id);
  /// Refills the token bucket from elapsed simulated time and admits
  /// deferred agents while tokens last.
  void admit_resyncs();
  void refill_resync_tokens();
  /// Resync-completion hook (resyncing -> up): records the time-to-resync,
  /// re-pushes the last-known-good policy during recovery and checks the
  /// readiness quorum.
  void mark_resynced(AgentId id);
  void finish_recovery(const char* how);
  /// Loads a checkpoint from the sink into the RIB (identities, configs,
  /// report registrations, policy histories); no-op without a sink or
  /// stored checkpoint.
  void load_checkpoint();
  void maybe_checkpoint();
  proto::MasterCheckpoint build_checkpoint() const;
  /// Installs one agent's checkpointed durable state into the RIB and the
  /// recovery bookkeeping (shared by load_checkpoint and adopt_agent).
  void import_durable(const proto::CheckpointAgent& saved);

  sim::Simulator& sim_;
  MasterConfig config_;
  Rib rib_;
  SnapshotStore snapshots_;
  /// Agents whose subtree changed since the last publish (their nodes are
  /// deep-copied into the next snapshot; everything else is shared).
  std::set<AgentId> dirty_agents_;
  /// An agent was added or removed since the last publish.
  bool rib_structure_changed_ = false;
  util::RunningStats snapshot_publish_time_;
  TaskManager task_manager_;
  ConflictArbiter arbiter_;

  std::map<AgentId, AgentLink> links_;
  /// Ingest queue feeding the RIB Updater. With an overload budget it
  /// sheds lowest-class-first and coalesces superseded periodic replies;
  /// without one it is a plain FIFO (seed behavior).
  net::ClassedQueue<PendingUpdate> pending_;
  std::deque<Event> event_queue_;
  /// Coordinator's event mirror (set_event_tap); invoked on the
  /// coordinator thread after local dispatch of each event.
  std::function<void(const Event&)> event_tap_;
  std::vector<std::unique_ptr<App>> apps_;
  std::map<std::uint32_t, PendingRequest> inflight_;
  std::map<AgentId, PolicyState> policies_;
  /// Periodic stats requests as originally issued, keyed by
  /// (agent, request_id) -- what throttling stretches and recovery
  /// restores.
  std::map<std::pair<AgentId, std::uint32_t>, proto::StatsRequest> original_reports_;
  OverloadMonitor overload_monitor_;

  AgentId next_agent_id_ = 1;
  std::uint32_t next_xid_ = 1;
  /// Reused send-path scratch encoder (docs/wire_fastpath.md): all sends run
  /// on the owning coordinator thread, so one arena per shard suffices and
  /// steady-state sends stop allocating.
  proto::WireEncoder send_enc_;
  std::uint64_t updates_applied_ = 0;
  std::uint64_t requests_completed_ = 0;
  std::uint64_t requests_retried_ = 0;
  std::uint64_t requests_failed_ = 0;
  std::uint64_t fenced_updates_ = 0;
  std::uint64_t rx_decode_errors_ = 0;
  std::uint64_t policy_rollbacks_ = 0;
  std::uint64_t policies_rejected_ = 0;
  std::uint64_t last_shed_total_ = 0;
  CycleFault cycle_fault_ = CycleFault::none;
  bool updater_saturated_cycle_ = false;
  std::uint64_t updater_saturations_ = 0;
  std::uint32_t throttle_multiplier_ = 1;
  std::uint64_t throttle_renegotiations_ = 0;
  /// Cycles of continued shedding while critical, toward the next
  /// multiplier doubling.
  std::size_t critical_shedding_cycles_ = 0;
  proto::SignalingAccountant empty_accounting_;

  // ---- crash recovery --------------------------------------------------------
  /// Incarnation epoch stamped on every send while recovery is enabled
  /// (starts at 1; restart() and checkpoint loads only move it up).
  std::uint32_t incarnation_ = 0;
  bool recovering_ = false;
  sim::TimeUs recovery_started_at_ = 0;
  sim::TimeUs recovery_ready_at_ = 0;
  /// The fleet the readiness barrier waits for: live links at restart plus
  /// agents restored from the checkpoint.
  std::set<AgentId> recovery_expected_;
  std::set<AgentId> recovery_resynced_;
  /// Agents whose configuration came from the checkpoint: their next
  /// re-sync is a delta (stats + subscriptions only).
  std::set<AgentId> warm_restored_;
  /// Admission gate: deferral queue (FIFO) + membership set for dedup and
  /// O(log n) retry-after stamping in send_to.
  std::deque<AgentId> resync_queue_;
  std::set<AgentId> resync_waiting_;
  double resync_tokens_ = 0.0;
  sim::TimeUs last_token_refill_ = 0;
  /// When each in-progress re-sync started (feeds the time-to-resync
  /// histogram and the scenario summary).
  std::map<AgentId, sim::TimeUs> resync_started_at_;
  sim::TimeUs last_checkpoint_at_ = 0;
  /// Non-zero after a failed checkpoint save: the next attempt happens
  /// after this backoff instead of a full period. Doubles per consecutive
  /// failure, capped at the checkpoint period; reset on success.
  sim::TimeUs checkpoint_backoff_us_ = 0;
  bool checkpoint_loaded_ = false;
  std::uint64_t master_restarts_ = 0;
  std::uint64_t resyncs_paced_ = 0;
  std::uint64_t resyncs_admitted_ = 0;
  std::uint64_t commands_held_ = 0;
  std::uint64_t commands_sent_unresynced_ = 0;
  std::uint64_t handovers_while_recovering_ = 0;
  std::uint64_t checkpoints_saved_ = 0;
  std::uint64_t checkpoint_write_failures_ = 0;
  std::uint64_t checkpoints_rejected_ = 0;
  std::uint64_t policies_repushed_ = 0;
  /// Time-to-resync histogram (registry-owned); non-null only while
  /// observability is enabled.
  obs::Histogram* resync_duration_ = nullptr;

  // ---- observability ---------------------------------------------------------
  /// The core's own registry; `registry_` points here unless ObsConfig
  /// supplied a shared external one.
  obs::MetricsRegistry metrics_;
  obs::MetricsRegistry* registry_ = &metrics_;
  obs::TraceRing trace_ring_;
};

}  // namespace flexran::ctrl
