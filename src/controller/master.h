// Source-compatibility shim for the two-tier split
// (docs/sharded_control.md): the monolithic master controller now lives in
// shard_core.h as ShardCore, the per-shard core a Coordinator instantiates
// N times. A standalone ShardCore *is* the classic single master, so the
// old name stays valid for every existing test, bench and example.
#pragma once

#include "controller/shard_core.h"

namespace flexran::ctrl {

using MasterController = ShardCore;

}  // namespace flexran::ctrl
