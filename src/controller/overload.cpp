#include "controller/overload.h"

#include <algorithm>

namespace flexran::ctrl {

const char* to_string(OverloadState state) {
  switch (state) {
    case OverloadState::normal: return "normal";
    case OverloadState::elevated: return "elevated";
    case OverloadState::critical: return "critical";
  }
  return "?";
}

bool OverloadMonitor::observe(const OverloadSample& sample) {
  window_.push_back(sample);
  if (window_.size() > std::max<std::size_t>(1, config_.window_cycles)) window_.pop_front();

  const bool clean = sample.shed_delta == 0 && !sample.updater_saturated &&
                     sample.depth_fraction < config_.elevated_watermark;
  clean_cycles_ = clean ? clean_cycles_ + 1 : 0;

  const OverloadState target = target_state();
  if (target > state_) {
    // Escalate immediately: at 1 ms cycles, waiting out a window means
    // shedding for its whole duration before reacting.
    state_ = target;
    clean_cycles_ = 0;
    ++transitions_;
    return true;
  }
  if (state_ > OverloadState::normal && clean_cycles_ >= config_.recovery_cycles) {
    state_ = static_cast<OverloadState>(static_cast<std::uint8_t>(state_) - 1);
    clean_cycles_ = 0;
    ++transitions_;
    return true;
  }
  return false;
}

OverloadState OverloadMonitor::target_state() const {
  double max_depth = 0.0;
  bool shed = false;
  bool saturated = false;
  for (const auto& sample : window_) {
    max_depth = std::max(max_depth, sample.depth_fraction);
    shed = shed || sample.shed_delta > 0;
    saturated = saturated || sample.updater_saturated;
  }
  if (shed || max_depth >= config_.critical_watermark) return OverloadState::critical;
  if (saturated || max_depth >= config_.elevated_watermark) return OverloadState::elevated;
  return OverloadState::normal;
}

}  // namespace flexran::ctrl
