#include "controller/arbiter.h"

namespace flexran::ctrl {

util::Status ConflictArbiter::claim_dl(AgentId agent, const proto::DlMacConfig& config) {
  lte::RbAllocation combined;
  for (const auto& dci : config.dcis) {
    if (dci.rbs.overlaps(combined)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++conflicts_;
      return util::Error::conflict("decision overlaps itself (rnti " +
                                   std::to_string(dci.rnti) + ")");
    }
    combined.merge(dci.rbs);
  }
  const auto key = std::pair{agent, config.target_subframe};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = claims_.find(key);
  if (it != claims_.end() && it->second.overlaps(combined)) {
    ++conflicts_;
    return util::Error::conflict("PRBs for subframe " +
                                 std::to_string(config.target_subframe) +
                                 " already claimed by an earlier decision");
  }
  if (it == claims_.end()) {
    claims_.emplace(key, combined);
  } else {
    it->second.merge(combined);
  }
  return {};
}

void ConflictArbiter::prune_before(AgentId agent, std::int64_t subframe) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = claims_.lower_bound(std::pair{agent, std::int64_t{0}});
  while (it != claims_.end() && it->first.first == agent && it->first.second < subframe) {
    it = claims_.erase(it);
  }
}

std::uint64_t ConflictArbiter::conflicts_detected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conflicts_;
}

std::size_t ConflictArbiter::open_claims() const {
  std::lock_guard<std::mutex> lock(mu_);
  return claims_.size();
}

}  // namespace flexran::ctrl
