#include "controller/rib_view.h"

#include <type_traits>

namespace flexran::ctrl {

namespace {

void summarize_agent(AgentId agent_id, const AgentNode& agent, std::vector<UeSummary>& out) {
  for (const auto& [cell_id, cell] : agent.cells) {
    for (const auto& [rnti, ue] : cell.ues) {
      UeSummary summary;
      summary.agent = agent_id;
      summary.cell = cell_id;
      summary.rnti = rnti;
      summary.cqi = ue.stats.wb_cqi;
      summary.cqi_avg = ue.cqi_avg.seeded() ? ue.cqi_avg.value() : 0.0;
      summary.queue_bytes = ue.stats.rlc_queue_bytes;
      summary.dl_bytes_delivered = ue.stats.dl_bytes_delivered;
      for (const auto& measurement : ue.stats.rsrp) {
        if (measurement.cell_id == cell_id) continue;
        if (measurement.rsrp_dbm > summary.best_neighbor_rsrp_dbm) {
          summary.best_neighbor_rsrp_dbm = measurement.rsrp_dbm;
          summary.best_neighbor = measurement.cell_id;
        }
      }
      out.push_back(summary);
    }
  }
}

std::uint32_t agent_load(const AgentNode& agent) {
  std::uint32_t load = 0;
  for (const auto& [cell_id, cell] : agent.cells) {
    (void)cell_id;
    load += cell.stats.active_ues;
  }
  return load;
}

}  // namespace

std::vector<UeSummary> summarize_ues(const Rib& rib) {
  std::vector<UeSummary> out;
  for (const auto& [agent_id, agent] : rib.agents()) {
    summarize_agent(agent_id, agent, out);
  }
  return out;
}

std::vector<UeSummary> summarize_ues(const RibSnapshot& snapshot) {
  std::vector<UeSummary> out;
  for (const auto& [agent_id, agent] : snapshot.agents()) {
    summarize_agent(agent_id, *agent, out);
  }
  return out;
}

double cell_dl_utilization(const CellNode& cell) {
  const int total = cell.config.dl_prbs();
  if (total <= 0) return 0.0;
  return static_cast<double>(cell.stats.dl_prbs_in_use) / static_cast<double>(total);
}

namespace {
template <typename AgentMap>
std::optional<AgentId> least_loaded_in(const AgentMap& agents) {
  std::optional<AgentId> best;
  std::uint32_t best_load = 0;
  for (const auto& [agent_id, agent] : agents) {
    std::uint32_t load;
    if constexpr (std::is_same_v<std::decay_t<decltype(agent)>, AgentNode>) {
      load = agent_load(agent);
    } else {
      load = agent_load(*agent);
    }
    if (!best.has_value() || load < best_load) {
      best = agent_id;
      best_load = load;
    }
  }
  return best;
}
}  // namespace

std::optional<AgentId> least_loaded_agent(const Rib& rib) {
  return least_loaded_in(rib.agents());
}

std::optional<AgentId> least_loaded_agent(const RibSnapshot& snapshot) {
  return least_loaded_in(snapshot.agents());
}

void RibAnalytics::sample_agent(AgentId agent_id, const AgentNode& agent, double dt_s) {
  for (const auto& [cell_id, cell] : agent.cells) {
    auto& cell_state = cell_state_[{agent_id, cell_id}];
    cell_state.utilization.add(cell_dl_utilization(cell));
    for (const auto& [rnti, ue] : cell.ues) {
      auto& state = ue_state_[{agent_id, rnti}];
      if (dt_s > 0.0) {
        const auto delta = ue.stats.dl_bytes_delivered - state.last_bytes;
        state.rate_mbps.add(static_cast<double>(delta) * 8.0 / dt_s / 1e6);
      }
      state.last_bytes = ue.stats.dl_bytes_delivered;
    }
  }
}

void RibAnalytics::sample(const Rib& rib, sim::TimeUs now) {
  const double dt_s = samples_ > 0 ? sim::to_seconds(now - last_sample_) : 0.0;
  for (const auto& [agent_id, agent] : rib.agents()) {
    sample_agent(agent_id, agent, dt_s);
  }
  last_sample_ = now;
  ++samples_;
}

void RibAnalytics::sample(const RibSnapshot& snapshot, sim::TimeUs now) {
  const double dt_s = samples_ > 0 ? sim::to_seconds(now - last_sample_) : 0.0;
  for (const auto& [agent_id, agent] : snapshot.agents()) {
    sample_agent(agent_id, *agent, dt_s);
  }
  last_sample_ = now;
  ++samples_;
}

double RibAnalytics::ue_dl_rate_mbps(AgentId agent, lte::Rnti rnti) const {
  auto it = ue_state_.find({agent, rnti});
  return it != ue_state_.end() && it->second.rate_mbps.seeded() ? it->second.rate_mbps.value()
                                                                : 0.0;
}

double RibAnalytics::cell_utilization(AgentId agent, lte::CellId cell) const {
  auto it = cell_state_.find({agent, cell});
  return it != cell_state_.end() && it->second.utilization.seeded()
             ? it->second.utilization.value()
             : 0.0;
}

}  // namespace flexran::ctrl
