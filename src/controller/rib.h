// RAN Information Base (paper Sec. 4.3.3): all statistics and configuration
// of the underlying network entities, structured as a forest -- roots are
// agents, second level the cells of each agent, leaves the UEs of each
// (primary) cell. Kept entirely in memory. Only the RIB Updater writes it
// (single-writer discipline); applications read through const access.
// As in the paper's implementation, no high-level abstraction is layered on
// top: raw reports are exposed to the northbound API.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lte/types.h"
#include "proto/messages.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace flexran::ctrl {

/// Master-local identifier for a connected agent.
using AgentId = std::uint32_t;

/// Control-channel session state of an agent, as the master sees it
/// (docs/fault_tolerance.md): up -> stale (silent too long) -> down
/// (transport lost or silent past the disconnect timeout) -> resyncing
/// (heard again; configuration being re-fetched) -> up.
enum class SessionState : std::uint8_t { up, stale, down, resyncing };

const char* to_string(SessionState state);

struct UeNode {
  lte::Rnti rnti = lte::kInvalidRnti;
  lte::UeConfig config;
  proto::UeStatsReport stats;
  sim::TimeUs last_update = 0;
  /// Smoothed CQI (exponential moving average) -- what the MEC app uses.
  util::Ewma cqi_avg{0.15};
};

struct CellNode {
  lte::CellConfig config;
  proto::CellStatsReport stats;
  sim::TimeUs last_update = 0;
  std::map<lte::Rnti, UeNode> ues;
};

/// Flat structure-of-arrays mirror of the per-UE hot statistics
/// (docs/wire_fastpath.md). The RIB updater writes one row per stats report;
/// periodic apps (monitoring, MEC throughput estimation) scan contiguous
/// columns instead of chasing two levels of map nodes. Rows are unordered:
/// erase() swap-removes, so indices are only stable between mutations.
/// The tree (CellNode::ues) stays the source of truth for config and
/// cold fields; these columns carry only what per-cycle scans touch.
class UeHotColumns {
 public:
  std::vector<lte::Rnti> rnti;
  std::vector<std::uint8_t> wb_cqi;
  std::vector<std::uint32_t> bsr_total_bytes;
  std::vector<std::uint32_t> rlc_queue_bytes;
  std::vector<std::uint64_t> dl_bytes_delivered;
  std::vector<double> cqi_avg;  ///< smoothed CQI; 0 until the EWMA is seeded

  std::size_t size() const { return rnti.size(); }
  bool empty() const { return rnti.empty(); }
  /// Row index for `r`, appending a zeroed row on first sight.
  std::size_t upsert(lte::Rnti r);
  /// Swap-removes the row for `r` (no-op when absent).
  void erase(lte::Rnti r);
  void clear();
  std::size_t approx_bytes() const;

 private:
  std::map<lte::Rnti, std::size_t> index_;
};

struct AgentNode {
  AgentId id = 0;
  lte::EnbId enb_id = 0;
  std::string name;
  std::vector<std::string> capabilities;
  std::map<lte::CellId, CellNode> cells;
  /// SoA hot-stat columns over all UEs of this agent (every cell).
  UeHotColumns hot;

  /// Latest subframe the agent reported (sync ticks / stats replies) and
  /// when it arrived -- the master's view of agent time, which trails real
  /// agent time by the one-way control latency (paper Sec. 5.3).
  std::int64_t last_subframe = 0;
  sim::TimeUs last_subframe_at = 0;
  /// Smoothed RTT estimate from echo exchanges.
  double rtt_estimate_us = 0.0;

  /// Liveness: when the last message of any kind arrived (the master's
  /// timeout sweep drives the session state from this; see
  /// MasterConfig::agent_timeout_us).
  sim::TimeUs last_heard = 0;

  /// Full session lifecycle -- the single source of truth for liveness.
  SessionState state = SessionState::up;
  /// The master currently considers the agent unreachable. Well-behaved
  /// apps skip stale agents (their fallback VSFs have control).
  bool is_stale() const { return state == SessionState::stale || state == SessionState::down; }
  /// Session epoch learned from the agent's hello; messages carrying an
  /// older epoch are fenced by the RIB updater.
  std::uint32_t epoch = 0;
  /// How many times this agent re-established its session.
  std::uint32_t reconnects = 0;
};

class Rib {
 public:
  AgentNode& agent(AgentId id) { return agents_[id]; }
  const AgentNode* find_agent(AgentId id) const;
  const UeNode* find_ue(AgentId id, lte::Rnti rnti) const;
  UeNode* mutable_ue(AgentId id, lte::Rnti rnti);
  void remove_agent(AgentId id) { agents_.erase(id); }

  const std::map<AgentId, AgentNode>& agents() const { return agents_; }
  std::size_t agent_count() const { return agents_.size(); }
  std::size_t ue_count() const;

  /// Approximate resident size of the RIB (Fig. 8 memory series).
  std::size_t approx_bytes() const;

 private:
  std::map<AgentId, AgentNode> agents_;
};

}  // namespace flexran::ctrl
