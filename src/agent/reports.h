// Reports & Events Manager (paper Sec. 4.3.1, "eNodeB Report and Event
// Management"): registers the master's asynchronous statistics requests and
// produces the due reports each TTI. Three report types: one-off (single
// reply), periodic (every N TTIs, N from the request), and triggered (only
// when the report contents changed since the last transmission).
#pragma once

#include <algorithm>
#include <map>
#include <vector>

#include "agent/agent_api.h"
#include "proto/messages.h"

namespace flexran::agent {

class ReportsManager {
 public:
  explicit ReportsManager(AgentApi& api) : api_(&api) {}

  /// Registers (or replaces, by request_id) a statistics request. A request
  /// with flags == 0 cancels the registration.
  void register_request(const proto::StatsRequest& request, std::int64_t current_subframe);
  void cancel_request(std::uint32_t request_id) { registrations_.erase(request_id); }
  /// Drops every registration -- session-scoped state cleared when the
  /// control channel is torn down; the master reinstalls on re-sync.
  void clear() { registrations_.clear(); }
  std::size_t active_registrations() const { return registrations_.size(); }

  /// Returns the replies due at `subframe` (runs once per TTI).
  std::vector<proto::StatsReply> collect(std::int64_t subframe);

  /// Overload-throttle multiplier applied to every periodic report period
  /// (docs/overload_protection.md). Carried as a hint in master
  /// Envelopes; 1 = no throttling. Takes effect at each report's NEXT
  /// rescheduling, so it never bursts already-due reports.
  void set_throttle(std::uint32_t multiplier) { throttle_ = std::max(1u, multiplier); }
  std::uint32_t throttle() const { return throttle_; }

 private:
  struct Registration {
    proto::StatsRequest request;
    std::int64_t next_due = 0;
    std::size_t last_fingerprint = 0;
    bool fired_once = false;
  };

  proto::StatsReply build_reply(const Registration& registration, std::int64_t subframe) const;
  std::int64_t effective_period(const proto::StatsRequest& request) const;
  static std::size_t fingerprint(const proto::StatsReply& reply);

  AgentApi* api_;
  std::map<std::uint32_t, Registration> registrations_;
  std::uint32_t throttle_ = 1;
};

}  // namespace flexran::agent
