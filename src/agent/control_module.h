// eNodeB Control Modules (paper Fig. 2): one per access-stratum protocol
// area, each exposing a Control Module Interface (CMI) -- a set of named
// VSF slots. Policy reconfiguration messages address slots by
// (module name, slot name) and link them to implementations held in the
// agent's VSF cache; parameters are forwarded to the active implementation.
// As in the paper's prototype, the modules provided are MAC (scheduling)
// and RRC (mobility); new modules extend ControlModule.
#pragma once

#include <map>
#include <span>
#include <string>

#include "agent/vsf.h"

namespace flexran::agent {

class ControlModule {
 public:
  ControlModule(std::string name, VsfCache& cache) : name_(std::move(name)), cache_(&cache) {}
  virtual ~ControlModule() = default;
  ControlModule(const ControlModule&) = delete;
  ControlModule& operator=(const ControlModule&) = delete;

  const std::string& name() const { return name_; }

  /// Links a CMI slot to a cached implementation ("behavior" in Fig. 3).
  /// This is the hot path Sec. 5.4 measures: a cache lookup, a type check
  /// and a pointer swap. Quarantined implementations are rejected until the
  /// master pushes a fresh VSF updation (see VsfCache).
  util::Status set_behavior(const std::string& slot, const std::string& implementation);

  /// Checks that set_behavior(slot, implementation) would succeed -- slot
  /// exists, implementation cached, not quarantined, right CMI type --
  /// without swapping anything. First phase of atomic policy application.
  util::Status validate_behavior(const std::string& slot,
                                 const std::string& implementation) const;

  /// Forwards a parameter to the slot's active implementation.
  util::Status set_parameter(const std::string& slot, std::string_view key,
                             const util::YamlNode& value);

  /// Checks a parameter against the implementation that would be active
  /// after linking `behavior` (current implementation when `behavior` is
  /// empty), without applying it.
  util::Status validate_parameter(const std::string& slot, const std::string& behavior,
                                  std::string_view key, const util::YamlNode& value) const;

  /// Name of the active implementation for a slot ("" = slot empty).
  std::string active_implementation(const std::string& slot) const;
  /// Active instance for a slot (nullptr = slot empty / unknown). Used by
  /// VsfGuard, which needs the untyped instance for health accounting.
  Vsf* active_vsf(const std::string& slot) const {
    const Slot* s = this->slot(slot);
    return s == nullptr ? nullptr : s->vsf;
  }
  bool has_slot(const std::string& slot) const { return slots_.contains(slot); }

 protected:
  struct Slot {
    std::string impl_name;
    Vsf* vsf = nullptr;  // owned by the VsfCache
  };

  void declare_slot(const std::string& slot) { slots_.emplace(slot, Slot{}); }
  /// Per-slot type check: returns the error when `vsf` is not the right
  /// CMI type for `slot`.
  virtual util::Status validate(const std::string& slot, Vsf& vsf) const = 0;
  /// Hook so subclasses can refresh typed pointers after a swap.
  virtual void on_behavior_changed(const std::string& slot, Vsf* vsf) = 0;

  const Slot* slot(const std::string& name) const {
    auto it = slots_.find(name);
    return it == slots_.end() ? nullptr : &it->second;
  }

 private:
  std::string name_;
  VsfCache* cache_;
  std::map<std::string, Slot> slots_;
};

/// MAC/RLC control module: downlink + uplink UE scheduling slots.
class MacControlModule final : public ControlModule {
 public:
  static constexpr const char* kName = "mac";
  static constexpr const char* kDlSchedulerSlot = "dl_ue_scheduler";
  static constexpr const char* kUlSchedulerSlot = "ul_ue_scheduler";

  explicit MacControlModule(VsfCache& cache);

  DlSchedulerVsf* dl_scheduler() const { return dl_scheduler_; }
  UlSchedulerVsf* ul_scheduler() const { return ul_scheduler_; }

 protected:
  util::Status validate(const std::string& slot, Vsf& vsf) const override;
  void on_behavior_changed(const std::string& slot, Vsf* vsf) override;

 private:
  DlSchedulerVsf* dl_scheduler_ = nullptr;
  UlSchedulerVsf* ul_scheduler_ = nullptr;
};

/// RRC control module: handover trigger policy slot.
class RrcControlModule final : public ControlModule {
 public:
  static constexpr const char* kName = "rrc";
  static constexpr const char* kHandoverPolicySlot = "handover_policy";

  explicit RrcControlModule(VsfCache& cache);

  HandoverPolicyVsf* handover_policy() const { return handover_policy_; }

 protected:
  util::Status validate(const std::string& slot, Vsf& vsf) const override;
  void on_behavior_changed(const std::string& slot, Vsf* vsf) override;

 private:
  HandoverPolicyVsf* handover_policy_ = nullptr;
};

/// Applies a policy-reconfiguration document (paper Fig. 3) to a set of
/// control modules. Technology-agnostic -- the same function drives LTE
/// modules inside the Agent and any other RAT's modules (see src/wifi):
/// the YAML names modules and slots, the modules do the type checking.
///
/// Application is atomic: the whole document is validated first (module
/// and slot names, behavior is a cached/non-quarantined scalar of the
/// right CMI type, every parameter accepted by its target implementation)
/// and only then applied, so a malformed or rejected document leaves the
/// previous policy fully active.
util::Status apply_policy_document(const util::YamlNode& root,
                                   std::span<ControlModule* const> modules);
util::Status apply_policy_yaml(const std::string& yaml,
                               std::span<ControlModule* const> modules);

}  // namespace flexran::agent
