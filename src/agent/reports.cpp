#include "agent/reports.h"

#include <functional>

namespace flexran::agent {

void ReportsManager::register_request(const proto::StatsRequest& request,
                                      std::int64_t current_subframe) {
  if (request.flags == 0) {
    registrations_.erase(request.request_id);
    return;
  }
  Registration registration;
  registration.request = request;
  auto existing = registrations_.find(request.request_id);
  if (existing != registrations_.end()) {
    // Replacement (e.g. the master renegotiating the period under
    // overload): schedule from now at the NEW period -- inheriting the
    // old next_due would fire on the stale cadence once, and an
    // immediate report would amplify the very load being shed.
    registration.next_due =
        current_subframe + std::max<std::int64_t>(1, effective_period(request));
    registration.last_fingerprint = existing->second.last_fingerprint;
    registration.fired_once = existing->second.fired_once;
  } else {
    registration.next_due = current_subframe;  // first report is immediate
  }
  registrations_[request.request_id] = std::move(registration);
}

std::vector<proto::StatsReply> ReportsManager::collect(std::int64_t subframe) {
  std::vector<proto::StatsReply> due;
  for (auto it = registrations_.begin(); it != registrations_.end();) {
    Registration& registration = it->second;
    bool erase = false;
    switch (registration.request.mode) {
      case proto::ReportMode::one_off:
        if (!registration.fired_once) {
          due.push_back(build_reply(registration, subframe));
          registration.fired_once = true;
        }
        erase = true;
        break;
      case proto::ReportMode::periodic:
        if (subframe >= registration.next_due) {
          due.push_back(build_reply(registration, subframe));
          registration.next_due = subframe + effective_period(registration.request);
        }
        break;
      case proto::ReportMode::triggered: {
        auto reply = build_reply(registration, subframe);
        const std::size_t print = fingerprint(reply);
        if (!registration.fired_once || print != registration.last_fingerprint) {
          registration.last_fingerprint = print;
          registration.fired_once = true;
          due.push_back(std::move(reply));
        }
        break;
      }
    }
    it = erase ? registrations_.erase(it) : std::next(it);
  }
  return due;
}

proto::StatsReply ReportsManager::build_reply(const Registration& registration,
                                              std::int64_t subframe) const {
  const auto& request = registration.request;
  proto::StatsReply reply;
  reply.request_id = request.request_id;
  reply.subframe = subframe;

  std::vector<lte::Rnti> scope = request.ues.empty() ? api_->ue_rntis() : request.ues;
  if ((request.flags & proto::stats_flags::kAllUeFlags) != 0) {
    for (const auto rnti : scope) {
      auto full = api_->ue_stats(rnti);
      proto::UeStatsReport filtered;
      filtered.rnti = full.rnti;
      if (request.flags & proto::stats_flags::kBsr) {
        filtered.bsr_bytes = full.bsr_bytes;
        filtered.ul_buffer_bytes = full.ul_buffer_bytes;
      }
      if (request.flags & proto::stats_flags::kCqi) {
        filtered.wb_cqi = full.wb_cqi;
        filtered.wb_cqi_protected = full.wb_cqi_protected;
      }
      if (request.flags & proto::stats_flags::kPhr) filtered.phr_db = full.phr_db;
      if (request.flags & proto::stats_flags::kRlcQueue) {
        filtered.rlc_queue_bytes = full.rlc_queue_bytes;
      }
      if (request.flags & proto::stats_flags::kHarq) filtered.pending_harq = full.pending_harq;
      if (request.flags & proto::stats_flags::kMacCounters) {
        filtered.dl_bytes_delivered = full.dl_bytes_delivered;
        filtered.ul_bytes_received = full.ul_bytes_received;
      }
      if (request.flags & proto::stats_flags::kRsrp) filtered.rsrp = full.rsrp;
      reply.ue_reports.push_back(filtered);
    }
  }
  if (request.flags & proto::stats_flags::kCellLoad) {
    reply.cell_reports.push_back(api_->cell_stats());
  }
  return reply;
}

std::int64_t ReportsManager::effective_period(const proto::StatsRequest& request) const {
  return std::max<std::int64_t>(1, request.periodicity_ttis) *
         static_cast<std::int64_t>(throttle_);
}

std::size_t ReportsManager::fingerprint(const proto::StatsReply& reply) {
  // Hash the encoded body minus the subframe (which always changes).
  proto::StatsReply stripped = reply;
  stripped.subframe = 0;
  proto::WireEncoder enc;
  stripped.encode_body(enc);
  const auto bytes = enc.bytes();
  return std::hash<std::string_view>{}(
      std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

}  // namespace flexran::agent
