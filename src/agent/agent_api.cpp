#include "agent/agent_api.h"

namespace flexran::agent {

std::vector<lte::UeConfig> AgentApi::ue_configs() const {
  std::vector<lte::UeConfig> out;
  for (const auto rnti : data_plane_->ue_rntis()) {
    const auto* ue = data_plane_->ue(rnti);
    if (ue != nullptr) out.push_back(ue->config);
  }
  return out;
}

std::vector<proto::LcConfigMsg> AgentApi::lc_configs() const {
  std::vector<proto::LcConfigMsg> out;
  for (const auto rnti : data_plane_->ue_rntis()) {
    // SRB1 plus the default DRB, the two channels the data plane uses.
    out.push_back({rnti, lte::kSrb1, 0});
    out.push_back({rnti, lte::kDefaultDrb,
                   static_cast<std::uint8_t>(stack::default_lc_group(lte::kDefaultDrb))});
  }
  return out;
}

}  // namespace flexran::agent
