// The FlexRAN Agent API (paper Sec. 4.2, Table 1): the southbound API
// through which ALL control of the eNodeB data plane flows -- whether the
// caller is the master controller (via protocol messages dispatched by the
// agent) or an agent-side VSF executing delegated control. The five call
// classes: configuration get/set, statistics, commands, event registration
// (handled by the agent's Reports & Events manager), and control delegation
// (handled by the VSF cache / control modules).
//
// The paper defines these calls in C; this implementation exposes the same
// surface as a thin C++ facade over the data plane.
#pragma once

#include <vector>

#include "stack/enodeb.h"

namespace flexran::agent {

class AgentApi {
 public:
  explicit AgentApi(stack::EnodebDataPlane& data_plane) : data_plane_(&data_plane) {}

  // ---- Configuration (Table 1: "Configuration") ---------------------------
  const lte::EnbConfig& enb_config() const { return data_plane_->config(); }
  std::vector<lte::UeConfig> ue_configs() const;
  std::vector<proto::LcConfigMsg> lc_configs() const;
  lte::CellId cell_id() const { return data_plane_->cell_id(); }
  std::int64_t current_subframe() const { return data_plane_->current_subframe(); }

  // ---- Statistics (Table 1: "Statistics") ----------------------------------
  proto::UeStatsReport ue_stats(lte::Rnti rnti) const { return data_plane_->ue_stats(rnti); }
  proto::CellStatsReport cell_stats() const { return data_plane_->cell_stats(); }
  std::vector<lte::Rnti> ue_rntis() const { return data_plane_->ue_rntis(); }
  /// MAC-layer view for scheduling decisions (queue sizes, CQI, HARQ state).
  std::vector<stack::SchedUeInfo> scheduler_view() const {
    return data_plane_->scheduler_view();
  }
  /// Raw UE context (measurement data for RRC control, e.g. per-cell RSRP).
  const stack::UeContext* ue(lte::Rnti rnti) const { return data_plane_->ue(rnti); }

  // ---- Commands (Table 1: "Commands") ---------------------------------------
  util::Status apply_scheduling_decision(const lte::SchedulingDecision& decision) {
    return data_plane_->apply_scheduling_decision(decision);
  }
  void configure_abs(lte::AbsPattern pattern, bool mute_during_abs) {
    data_plane_->configure_abs(pattern, mute_during_abs);
  }
  util::Result<stack::UeProfile> trigger_handover(lte::Rnti rnti) {
    return data_plane_->trigger_handover(rnti);
  }
  util::Status configure_drx(lte::Rnti rnti, std::uint16_t cycle_ttis,
                             std::uint16_t on_duration_ttis) {
    return data_plane_->configure_drx(rnti, cycle_ttis, on_duration_ttis);
  }
  util::Status set_scell_active(lte::Rnti rnti, bool active) {
    return data_plane_->set_scell_active(rnti, active);
  }
  /// Secondary carrier PRBs (0 = no SCell configured).
  int scell_prbs() const { return data_plane_->scell_prbs(); }
  bool muted_in(std::int64_t subframe) const { return data_plane_->muted_in(subframe); }
  bool is_abs(std::int64_t subframe) const { return data_plane_->is_abs(subframe); }
  const lte::AbsPattern& abs_pattern() const { return data_plane_->abs_pattern(); }

  /// Usable DL PRBs after any LSA carrier restriction -- schedulers size
  /// their allocations from this, so a restriction takes effect everywhere.
  int dl_prbs() const { return data_plane_->effective_dl_prbs(); }
  int ul_prbs() const { return data_plane_->config().cells[0].ul_prbs(); }
  void restrict_dl_prbs(int max_dl_prbs) { data_plane_->restrict_dl_prbs(max_dl_prbs); }

 private:
  stack::EnodebDataPlane* data_plane_;  // not owned
};

}  // namespace flexran::agent
