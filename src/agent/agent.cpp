#include "agent/agent.h"

#include <algorithm>
#include <array>

#include "net/framing.h"
#include "util/logging.h"

namespace flexran::agent {

Agent::Agent(sim::Simulator& sim, stack::EnodebDataPlane& data_plane, AgentConfig config)
    : sim_(sim),
      data_plane_(data_plane),
      config_(std::move(config)),
      api_(data_plane),
      mac_(cache_),
      rrc_(cache_),
      guard_(VsfGuardConfig{config_.vsf_quarantine_threshold, config_.vsf_budget_us,
                            config_.vsf_wall_clock_cap_us},
             cache_),
      reports_(api_) {
  register_builtin_vsfs();
  guard_.set_failure_hook([this](const VsfFailureRecord& record) { on_vsf_failure(record); });

  // Pre-load the built-in behaviors into the cache, as if the operator had
  // provisioned them at deployment time, plus the remote stub wired to this
  // agent's decision queue.
  (void)cache_.store(MacControlModule::kName, MacControlModule::kDlSchedulerSlot, "local_rr");
  (void)cache_.store(MacControlModule::kName, MacControlModule::kDlSchedulerSlot, "local_pf");
  (void)cache_.store(MacControlModule::kName, MacControlModule::kDlSchedulerSlot, "local_ca_rr");
  (void)cache_.store(MacControlModule::kName, MacControlModule::kUlSchedulerSlot, "local_rr");
  (void)cache_.store(MacControlModule::kName, MacControlModule::kUlSchedulerSlot, "remote");
  (void)cache_.store(RrcControlModule::kName, RrcControlModule::kHandoverPolicySlot, "a3");
  (void)cache_.store(MacControlModule::kName, MacControlModule::kDlSchedulerSlot, "remote");

  auto dl_status = mac_.set_behavior(MacControlModule::kDlSchedulerSlot, config_.dl_scheduler);
  if (!dl_status.ok()) {
    FLEXRAN_LOG(error, "agent") << "dl scheduler init: " << dl_status.error().message;
  }
  auto ul_status = mac_.set_behavior(MacControlModule::kUlSchedulerSlot, config_.ul_scheduler);
  if (!ul_status.ok()) {
    FLEXRAN_LOG(error, "agent") << "ul scheduler init: " << ul_status.error().message;
  }

  data_plane_.set_listener(this);
}

Agent::~Agent() { data_plane_.set_listener(nullptr); }

void Agent::connect(net::Transport& transport) {
  transport_ = &transport;
  ++session_epoch_;
  master_heard_this_session_ = false;
  transport_->set_receive_callback(
      [this](std::span<const std::uint8_t> data) { handle_message(data); });
  transport_->set_disconnect_callback(
      [this](util::Error error) { on_transport_disconnect(error); });
  send_hello();
}

void Agent::send_hello() {
  proto::Hello hello;
  hello.enb_id = config_.enb_id;
  hello.name = config_.name;
  hello.n_cells = 1;
  hello.capabilities = {"mac", "rrc", "delegation"};
  hello.epoch = session_epoch_;
  last_hello_subframe_ = api_.current_subframe();
  send_message(hello);
}

void Agent::disconnect() {
  if (transport_ == nullptr) return;
  transport_->set_receive_callback(nullptr);
  transport_->set_disconnect_callback(nullptr);
  transport_ = nullptr;
  // Session-scoped state dies with the session; the master's re-sync on the
  // next hello reinstalls subscriptions and stats registrations, and queued
  // schedule-ahead decisions from the old session must not be applied.
  dl_decision_queue_.clear();
  subscribed_events_.clear();
  reports_.clear();
}

void Agent::on_transport_disconnect(const util::Error& error) {
  FLEXRAN_LOG(warn, "agent") << "control channel lost: " << error.message;
  disconnect();
  if (config_.auto_reconnect) schedule_reconnect(sim::from_ms(config_.reconnect_initial_backoff_ms));
}

void Agent::schedule_reconnect(sim::TimeUs delay) {
  if (reconnect_pending_ || connected()) return;
  reconnect_pending_ = true;
  sim_.after(delay, [this] { try_reconnect(sim::from_ms(config_.reconnect_initial_backoff_ms)); });
}

void Agent::try_reconnect(sim::TimeUs next_backoff) {
  reconnect_pending_ = false;
  if (connected()) return;
  ++reconnect_attempts_;
  if (reconnect_attempt_times_.size() < 64) reconnect_attempt_times_.push_back(sim_.now());
  net::Transport* transport = reconnect_provider_ ? reconnect_provider_() : nullptr;
  if (transport != nullptr) {
    connect(*transport);
    return;
  }
  const auto backoff = std::min(next_backoff, sim::from_ms(config_.reconnect_max_backoff_ms));
  reconnect_pending_ = true;
  // Jitter decorrelates the retry herd: after a master outage every agent
  // observed the loss in the same TTI, and un-jittered doubling would keep
  // them retrying in lockstep forever.
  sim_.after(jittered_backoff(backoff), [this, backoff] { try_reconnect(backoff * 2); });
}

sim::TimeUs Agent::jittered_backoff(sim::TimeUs backoff) const {
  if (config_.reconnect_jitter <= 0.0) return backoff;
  // Stable identity hash (FNV-1a over the name, seeded with the enb id,
  // finished with a splitmix-style avalanche): the same agent always gets
  // the same spread, two agents almost surely get different ones --
  // deterministic, so chaos runs stay replayable.
  std::uint64_t h = 0xcbf29ce484222325ull ^ static_cast<std::uint64_t>(config_.enb_id);
  for (const char c : config_.name) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  const double fraction = static_cast<double>(h % 4096) / 4096.0;  // [0, 1)
  const double scale = 1.0 + std::min(config_.reconnect_jitter, 1.0) * fraction;
  return static_cast<sim::TimeUs>(static_cast<double>(backoff) * scale);
}

template <typename M>
void Agent::send_message(const M& message, std::uint32_t xid) {
  if (transport_ == nullptr) return;
  if (xid == 0) xid = next_xid_++;
  proto::Envelope header;
  header.xid = xid;
  header.epoch = session_epoch_;
  if (pending_ts_echo_us_ != 0) {
    // Echo the latest master timestamp exactly once (the next outgoing
    // message closes the master's end-to-end latency measurement).
    header.ts_echo_us = pending_ts_echo_us_;
    pending_ts_echo_us_ = 0;
  }
  // Reused per-link scratch encoder: body and envelope are written in one
  // pass (length backpatching), so a steady-state send allocates nothing.
  send_enc_.clear();
  proto::encode_envelope(send_enc_, header, message);
  const auto wire = send_enc_.bytes();
  tx_accounting_.record(proto::categorize(message), wire.size() + net::kFrameHeaderBytes);
  auto status = transport_->send(proto::traffic_class(message), wire);
  if (!status.ok()) {
    FLEXRAN_LOG(warn, "agent") << "send failed: " << status.error().message;
  }
}

// ------------------------------------------------------------- TTI driving

std::optional<lte::SchedulingDecision> Agent::take_dl_decision(std::int64_t subframe) {
  auto it = dl_decision_queue_.find(subframe);
  if (it == dl_decision_queue_.end()) return std::nullopt;
  lte::SchedulingDecision decision = std::move(it->second);
  dl_decision_queue_.erase(it);
  ++remote_decisions_applied_;
  return decision;
}

void Agent::on_subframe_start(std::int64_t subframe) {
  // Delegation resilience: under pure remote control, a silent master means
  // nothing gets scheduled at all; after the configured outage the agent
  // re-links the fallback VSF and keeps serving UEs autonomously.
  if (config_.remote_fallback_ttis > 0 &&
      mac_.active_implementation(MacControlModule::kDlSchedulerSlot) == "remote" &&
      subframe - last_master_contact_subframe_ > config_.remote_fallback_ttis) {
    auto status =
        mac_.set_behavior(MacControlModule::kDlSchedulerSlot, config_.fallback_scheduler);
    if (status.ok()) {
      ++fallback_activations_;
      fallback_active_ = true;
      FLEXRAN_LOG(warn, "agent") << "master silent for "
                                 << subframe - last_master_contact_subframe_
                                 << " TTIs; falling back to " << config_.fallback_scheduler;
    }
  }

  // A hello lost to a partition that raced the connect leaves the master
  // unaware of the new session; re-offer it until the master answers. A
  // retry-after hold (master re-sync admission gate) pauses the loop.
  if (transport_ != nullptr && !master_heard_this_session_ && config_.hello_retry_ttis > 0 &&
      sim_.now() >= hello_hold_until_ &&
      subframe - last_hello_subframe_ >= config_.hello_retry_ttis) {
    ++hello_retries_;
    send_hello();
  }

  // Drop decisions whose deadline passed before they could be applied.
  while (!dl_decision_queue_.empty() && dl_decision_queue_.begin()->first < subframe) {
    dl_decision_queue_.erase(dl_decision_queue_.begin());
    ++missed_deadline_decisions_;
  }

  // Run the active scheduling VSFs through the CMI, guarded: delegated
  // code that throws, overruns its budget or emits an invalid allocation
  // never reaches the MAC -- the guard substitutes the built-in local
  // default within this same TTI (docs/delegation_safety.md).
  lte::SchedulingDecision combined;
  combined.cell_id = api_.cell_id();
  combined.subframe = subframe;
  {
    auto decision = guard_.run_dl(mac_, config_.fallback_scheduler, api_, subframe);
    combined.dl = std::move(decision.dl);
  }
  {
    auto decision = guard_.run_ul(mac_, config_.ul_fallback_scheduler, api_, subframe);
    combined.ul = std::move(decision.ul);
  }
  // Merge any master-pushed decision targeting this subframe. When the
  // active VSF is the remote stub this IS the schedule; under delegated
  // control it coexists with local decisions (e.g. the master scheduling
  // the almost-blank subframes of the optimized-eICIC use case while the
  // local VSF handles normal subframes). Overlapping grants are rejected by
  // the data plane, local decisions taking precedence.
  if (auto pushed = take_dl_decision(subframe); pushed.has_value()) {
    combined.dl.insert(combined.dl.end(), pushed->dl.begin(), pushed->dl.end());
    combined.ul.insert(combined.ul.end(), pushed->ul.begin(), pushed->ul.end());
  }
  if (!combined.empty()) {
    auto status = api_.apply_scheduling_decision(combined);
    if (!status.ok()) {
      FLEXRAN_LOG(debug, "agent") << "decision rejected: " << status.error().message;
    }
  }

  // RRC: evaluate the handover policy (guarded like the MAC slots).
  if (auto handover = guard_.run_handover(rrc_, config_.handover_fallback_policy, api_, subframe);
      handover.has_value()) {
    execute_handover(handover->rnti, handover->target_cell);
  }

  // Master-agent sync.
  if (config_.subframe_sync || subscribed_events_.contains(proto::EventType::subframe_tick)) {
    proto::EventNotification tick;
    tick.event = proto::EventType::subframe_tick;
    tick.subframe = subframe;
    tick.cell_id = api_.cell_id();
    send_message(tick);
  }

  // Statistics reports due this TTI.
  for (auto& reply : reports_.collect(subframe)) send_message(reply);
}

// ------------------------------------------------------------------ events

void Agent::on_rach(lte::Rnti rnti, std::int64_t subframe) {
  if (!subscribed_events_.contains(proto::EventType::rach_attempt)) return;
  proto::EventNotification event;
  event.event = proto::EventType::rach_attempt;
  event.subframe = subframe;
  event.rnti = rnti;
  event.cell_id = api_.cell_id();
  send_message(event);
}

void Agent::on_ue_attached(lte::Rnti rnti, std::int64_t subframe) {
  if (!subscribed_events_.contains(proto::EventType::ue_attach)) return;
  proto::EventNotification event;
  event.event = proto::EventType::ue_attach;
  event.subframe = subframe;
  event.rnti = rnti;
  event.cell_id = api_.cell_id();
  send_message(event);
}

void Agent::on_ue_detached(lte::Rnti rnti, std::int64_t subframe) {
  if (!subscribed_events_.contains(proto::EventType::ue_detach)) return;
  proto::EventNotification event;
  event.event = proto::EventType::ue_detach;
  event.subframe = subframe;
  event.rnti = rnti;
  event.cell_id = api_.cell_id();
  send_message(event);
}

void Agent::on_scheduling_request(lte::Rnti rnti, std::int64_t subframe) {
  if (!subscribed_events_.contains(proto::EventType::scheduling_request)) return;
  proto::EventNotification event;
  event.event = proto::EventType::scheduling_request;
  event.subframe = subframe;
  event.rnti = rnti;
  event.cell_id = api_.cell_id();
  send_message(event);
}

// ---------------------------------------------------------------- dispatch

void Agent::handle_message(std::span<const std::uint8_t> data) {
  ++messages_received_;
  // The span is only valid for this callback; decode_into copies what we
  // keep (the body) into the reused per-link envelope.
  auto decoded = proto::Envelope::decode_into(data, rx_envelope_);
  if (!decoded.ok()) {
    FLEXRAN_LOG(error, "agent") << "bad envelope: " << decoded.error().message;
    return;
  }
  const proto::Envelope& envelope = rx_envelope_;
  // Mirror of the master's per-link rx accounting (same frame-header-bytes
  // convention), so both ends of the Fig. 7 breakdown reconcile. Recorded
  // before epoch fencing, like the master records before its queue.
  rx_accounting_.record(proto::categorize(envelope.type, envelope.body),
                        data.size() + net::kFrameHeaderBytes);
  if (envelope.ts_us != 0) pending_ts_echo_us_ = envelope.ts_us;
  // Master incarnation fencing (the mirror image of the session-epoch fence
  // below, docs/fault_tolerance.md "Master restart"): a message from an
  // older incarnation is a straggler from a dead master and must not be
  // applied (nor count as master contact); a higher incarnation means the
  // master restarted and lost this agent's session -- re-offer the hello so
  // the new incarnation runs a full re-sync.
  if (envelope.master_epoch != 0) {
    if (envelope.master_epoch < master_incarnation_) {
      ++fenced_incarnation_messages_;
      return;
    }
    if (envelope.master_epoch > master_incarnation_) {
      const bool restarted = master_incarnation_ != 0;
      master_incarnation_ = envelope.master_epoch;
      if (restarted) {
        ++master_restarts_seen_;
        FLEXRAN_LOG(warn, "agent") << "master restarted (incarnation "
                                   << master_incarnation_ << "); offering re-sync";
        if (envelope.retry_after_ms == 0) {
          send_hello();
        } else {
          // The restarted master's admission gate deferred us: hold the
          // hello for the hinted (jittered) backoff, then re-offer it if
          // this incarnation still has not re-synced us by other means.
          const sim::TimeUs hold = jittered_backoff(
              sim::from_ms(static_cast<double>(envelope.retry_after_ms)));
          sim_.after(hold, [this, incarnation = master_incarnation_] {
            if (connected() && master_incarnation_ == incarnation) send_hello();
          });
        }
      }
    }
  }
  if (envelope.retry_after_ms != 0) {
    // Re-sync deferral hint: pause the hello retry loop for the hinted
    // backoff (jittered, so the deferred cohort does not retry in lockstep
    // either). The master drives the deferred re-sync itself.
    ++resync_deferrals_;
    hello_hold_until_ = sim_.now() + jittered_backoff(sim::from_ms(
                                         static_cast<double>(envelope.retry_after_ms)));
  }
  // Fence messages addressed to an older session: a command the master sent
  // before it learned of this agent's restart must not be applied (and does
  // not count as master contact).
  if (envelope.epoch != 0 && envelope.epoch != session_epoch_) {
    ++fenced_messages_;
    return;
  }
  last_master_contact_subframe_ = api_.current_subframe();
  master_heard_this_session_ = true;
  // Overload feedback: every master envelope carries the current throttle
  // hint (0 while the master is healthy). Tracking it here rather than via
  // a dedicated message means recovery needs no extra signaling -- the
  // first un-stamped envelope restores full-rate reporting.
  reports_.set_throttle(std::max<std::uint32_t>(1, envelope.throttle_hint));
  // Two-way fallback: master messages resumed, so hand the DL scheduler
  // back to remote control before processing the message.
  if (fallback_active_) {
    fallback_active_ = false;
    if (config_.dl_scheduler == "remote" &&
        mac_.active_implementation(MacControlModule::kDlSchedulerSlot) ==
            config_.fallback_scheduler) {
      auto status = mac_.set_behavior(MacControlModule::kDlSchedulerSlot, "remote");
      if (status.ok()) {
        ++fallback_recoveries_;
        FLEXRAN_LOG(info, "agent") << "master reachable again; resuming remote DL control";
      }
    }
  }
  handle_envelope(envelope);
}

void Agent::handle_envelope(const proto::Envelope& envelope) {
  using proto::MessageType;
  switch (envelope.type) {
    case MessageType::echo_request: {
      auto request = proto::unpack<proto::EchoRequest>(envelope);
      if (!request.ok()) break;
      proto::EchoReply reply;
      reply.subframe = api_.current_subframe();
      reply.echoed_timestamp_us = request->timestamp_us;
      send_message(reply, envelope.xid);
      break;
    }
    case MessageType::enb_config_request: {
      proto::EnbConfigReply reply;
      reply.enb_id = config_.enb_id;
      reply.cells.push_back(proto::CellConfigMsg::from(api_.enb_config().cells[0]));
      send_message(reply, envelope.xid);
      break;
    }
    case MessageType::ue_config_request: {
      proto::UeConfigReply reply;
      for (const auto& ue : api_.ue_configs()) {
        reply.ues.push_back(proto::UeConfigMsg::from(ue));
      }
      send_message(reply, envelope.xid);
      break;
    }
    case MessageType::lc_config_request: {
      proto::LcConfigReply reply;
      reply.channels = api_.lc_configs();
      send_message(reply, envelope.xid);
      break;
    }
    case MessageType::stats_request: {
      auto request = proto::unpack<proto::StatsRequest>(envelope);
      if (request.ok()) reports_.register_request(*request, api_.current_subframe());
      break;
    }
    case MessageType::dl_mac_config: {
      auto config = proto::unpack<proto::DlMacConfig>(envelope);
      if (!config.ok()) break;
      if (config->target_subframe < api_.current_subframe()) {
        ++missed_deadline_decisions_;  // arrived after its deadline
        break;
      }
      lte::SchedulingDecision decision;
      decision.cell_id = config->cell_id;
      decision.subframe = config->target_subframe;
      decision.dl = std::move(config->dcis);
      // Merge with any queued UL decision for the same subframe.
      auto& slot = dl_decision_queue_[config->target_subframe];
      slot.cell_id = decision.cell_id;
      slot.subframe = decision.subframe;
      slot.dl = std::move(decision.dl);
      break;
    }
    case MessageType::ul_mac_config: {
      auto config = proto::unpack<proto::UlMacConfig>(envelope);
      if (!config.ok()) break;
      if (config->target_subframe < api_.current_subframe()) {
        ++missed_deadline_decisions_;
        break;
      }
      auto& slot = dl_decision_queue_[config->target_subframe];
      slot.cell_id = config->cell_id;
      slot.subframe = config->target_subframe;
      slot.ul = std::move(config->dcis);
      break;
    }
    case MessageType::handover_command: {
      auto command = proto::unpack<proto::HandoverCommand>(envelope);
      if (command.ok()) execute_handover(command->rnti, command->target_cell);
      break;
    }
    case MessageType::abs_config: {
      auto config = proto::unpack<proto::AbsConfig>(envelope);
      if (config.ok()) api_.configure_abs(config->pattern, config->mute_during_abs);
      break;
    }
    case MessageType::carrier_restriction: {
      auto restriction = proto::unpack<proto::CarrierRestriction>(envelope);
      if (restriction.ok()) api_.restrict_dl_prbs(restriction->max_dl_prbs);
      break;
    }
    case MessageType::drx_config: {
      auto drx = proto::unpack<proto::DrxConfig>(envelope);
      if (drx.ok()) {
        (void)api_.configure_drx(drx->rnti, drx->cycle_ttis, drx->on_duration_ttis);
      }
      break;
    }
    case MessageType::scell_command: {
      auto command = proto::unpack<proto::ScellCommand>(envelope);
      if (command.ok()) (void)api_.set_scell_active(command->rnti, command->activate);
      break;
    }
    case MessageType::event_subscription: {
      auto subscription = proto::unpack<proto::EventSubscription>(envelope);
      if (!subscription.ok()) break;
      for (const auto event : subscription->events) {
        if (subscription->enable) {
          subscribed_events_.insert(event);
        } else {
          subscribed_events_.erase(event);
        }
      }
      break;
    }
    case MessageType::control_delegation: {
      auto delegation = proto::unpack<proto::ControlDelegation>(envelope);
      if (!delegation.ok()) break;
      const bool was_quarantined =
          cache_.is_quarantined(delegation->module, delegation->vsf, delegation->implementation);
      auto status = cache_.store(delegation->module, delegation->vsf, delegation->implementation);
      if (!status.ok()) {
        FLEXRAN_LOG(error, "agent") << "VSF updation failed: " << status.error().message;
        break;
      }
      if (was_quarantined) {
        // A fresh updation of a quarantined implementation re-instantiated
        // it; re-link any slot still naming it so no stale pointer remains.
        for (ControlModule* module :
             {static_cast<ControlModule*>(&mac_), static_cast<ControlModule*>(&rrc_)}) {
          if (module->name() == delegation->module &&
              module->active_implementation(delegation->vsf) == delegation->implementation) {
            (void)module->set_behavior(delegation->vsf, delegation->implementation);
          }
        }
      }
      break;
    }
    case MessageType::policy_reconfiguration: {
      auto policy = proto::unpack<proto::PolicyReconfiguration>(envelope);
      if (!policy.ok()) break;
      auto status = apply_policy(policy->yaml);
      // Report the verdict to the master, echoing the request xid so it can
      // match the policy it sent (last-known-good tracking + rollback).
      proto::EventNotification verdict;
      verdict.subframe = api_.current_subframe();
      verdict.cell_id = api_.cell_id();
      if (status.ok()) {
        ++policies_applied_;
        verdict.event = proto::EventType::policy_applied;
      } else {
        ++policies_rejected_;
        verdict.event = proto::EventType::policy_rejected;
        verdict.detail = status.error().message;
        FLEXRAN_LOG(error, "agent") << "policy reconfiguration rejected: "
                                    << status.error().message;
      }
      send_message(verdict, envelope.xid);
      break;
    }
    default:
      FLEXRAN_LOG(warn, "agent") << "unexpected message type "
                                 << proto::to_string(envelope.type);
      break;
  }
}

void Agent::on_vsf_failure(const VsfFailureRecord& record) {
  FLEXRAN_LOG(warn, "agent") << "VSF " << record.module << "/" << record.slot << "/"
                             << record.implementation << " "
                             << proto::to_string(record.kind) << " ("
                             << record.consecutive_failures << " consecutive): "
                             << record.detail
                             << (record.quarantined ? " -- QUARANTINED" : "");
  // Triggered events are sent unconditionally (not subscription-gated):
  // a misbehaving delegated VSF is exactly the situation in which the
  // master must hear from the agent without having asked first.
  proto::EventNotification event;
  event.event = record.quarantined ? proto::EventType::vsf_quarantined
                                   : proto::EventType::vsf_failure;
  event.subframe = record.subframe;
  event.cell_id = api_.cell_id();
  event.module = record.module;
  event.vsf = record.slot;
  event.implementation = record.implementation;
  event.failure_kind = record.kind;
  event.failure_count = record.consecutive_failures;
  event.detail = record.detail;
  send_message(event);
}

void Agent::execute_handover(lte::Rnti rnti, lte::CellId target) {
  auto context = api_.trigger_handover(rnti);
  if (!context.ok()) {
    FLEXRAN_LOG(warn, "agent") << "handover of rnti " << rnti
                               << " failed: " << context.error().message;
    return;
  }
  ++handovers_executed_;
  if (handover_sink_) handover_sink_(std::move(*context), target, rnti);
}

// ------------------------------------------------------------------ policy

util::Status Agent::apply_policy(const std::string& yaml) {
  const std::array<ControlModule*, 2> modules = {&mac_, &rrc_};
  return apply_policy_yaml(yaml, modules);
}

// Explicit instantiations keep send_message out of the header.
template void Agent::send_message(const proto::Hello&, std::uint32_t);
template void Agent::send_message(const proto::EchoReply&, std::uint32_t);
template void Agent::send_message(const proto::EnbConfigReply&, std::uint32_t);
template void Agent::send_message(const proto::UeConfigReply&, std::uint32_t);
template void Agent::send_message(const proto::LcConfigReply&, std::uint32_t);
template void Agent::send_message(const proto::StatsReply&, std::uint32_t);
template void Agent::send_message(const proto::EventNotification&, std::uint32_t);

}  // namespace flexran::agent
