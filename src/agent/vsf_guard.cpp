#include "agent/vsf_guard.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace flexran::agent {

namespace {

std::int64_t elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               start)
      .count();
}

}  // namespace

VsfGuard::InvokeOutcome VsfGuard::invoke_checked(const Vsf& vsf,
                                                 const std::function<void()>& body) {
  const std::int64_t declared = vsf.declared_cost_us();
  if (declared > config_.budget_us) {
    return {proto::VsfFailureKind::overrun,
            "declared cost " + std::to_string(declared) + "us exceeds TTI budget " +
                std::to_string(config_.budget_us) + "us"};
  }
  const auto start = std::chrono::steady_clock::now();
  try {
    body();
  } catch (const std::exception& e) {
    return {proto::VsfFailureKind::exception, e.what()};
  } catch (...) {
    return {proto::VsfFailureKind::exception, "non-standard exception"};
  }
  if (const std::int64_t wall = elapsed_us(start); wall > config_.wall_clock_cap_us) {
    return {proto::VsfFailureKind::overrun,
            "wall clock " + std::to_string(wall) + "us exceeds cap " +
                std::to_string(config_.wall_clock_cap_us) + "us"};
  }
  return {};
}

util::Status VsfGuard::validate_decision(const lte::SchedulingDecision& decision,
                                         const AgentApi& api) {
  if (decision.empty()) return {};  // fast path: nothing scheduled, nothing to pay
  ++validations_run_;

  const auto rnti_list = api.ue_rntis();
  const std::set<lte::Rnti> known(rnti_list.begin(), rnti_list.end());

  lte::RbAllocation used_dl[2];
  for (const auto& dci : decision.dl) {
    if (dci.carrier > 1) {
      return util::Error::invalid_argument("DL grant on unknown carrier " +
                                           std::to_string(dci.carrier));
    }
    const int max_prbs = dci.carrier == 0 ? api.dl_prbs() : api.scell_prbs();
    if (max_prbs <= 0) {
      return util::Error::invalid_argument("DL grant on unconfigured carrier " +
                                           std::to_string(dci.carrier));
    }
    if (dci.rbs.empty()) {
      return util::Error::invalid_argument("DL grant with empty allocation for RNTI " +
                                           std::to_string(dci.rnti));
    }
    if (dci.rbs.highest_set() >= max_prbs) {
      return util::Error::invalid_argument(
          "DL grant beyond carrier edge: PRB " + std::to_string(dci.rbs.highest_set()) +
          " on a " + std::to_string(max_prbs) + "-PRB carrier");
    }
    if (dci.rbs.overlaps(used_dl[dci.carrier])) {
      return util::Error::invalid_argument("overlapping DL allocations for RNTI " +
                                           std::to_string(dci.rnti));
    }
    used_dl[dci.carrier].merge(dci.rbs);
    if (dci.mcs < 0 || dci.mcs > lte::kMaxMcs) {
      return util::Error::invalid_argument("DL MCS out of range: " + std::to_string(dci.mcs));
    }
    if (!known.contains(dci.rnti)) {
      return util::Error::invalid_argument("DL grant for unknown RNTI " +
                                           std::to_string(dci.rnti));
    }
  }

  lte::RbAllocation used_ul;
  for (const auto& dci : decision.ul) {
    const int max_prbs = api.ul_prbs();
    if (dci.rbs.empty()) {
      return util::Error::invalid_argument("UL grant with empty allocation for RNTI " +
                                           std::to_string(dci.rnti));
    }
    if (dci.rbs.highest_set() >= max_prbs) {
      return util::Error::invalid_argument(
          "UL grant beyond carrier edge: PRB " + std::to_string(dci.rbs.highest_set()) +
          " on a " + std::to_string(max_prbs) + "-PRB carrier");
    }
    if (dci.rbs.overlaps(used_ul)) {
      return util::Error::invalid_argument("overlapping UL allocations for RNTI " +
                                           std::to_string(dci.rnti));
    }
    used_ul.merge(dci.rbs);
    if (dci.mcs < 0 || dci.mcs > lte::kMaxMcs) {
      return util::Error::invalid_argument("UL MCS out of range: " + std::to_string(dci.mcs));
    }
    if (!known.contains(dci.rnti)) {
      return util::Error::invalid_argument("UL grant for unknown RNTI " +
                                           std::to_string(dci.rnti));
    }
  }
  return {};
}

void VsfGuard::note_failure(ControlModule& module, const std::string& slot,
                            const std::string& impl, const std::string& fallback_impl,
                            const InvokeOutcome& outcome, std::int64_t subframe) {
  ++vsf_failures_;
  VsfFailureRecord record;
  record.module = module.name();
  record.slot = slot;
  record.implementation = impl;
  record.kind = outcome.kind;
  record.subframe = subframe;
  record.detail = outcome.detail;
  record.consecutive_failures = cache_->record_failure(module.name(), slot, impl);

  if (record.consecutive_failures >= config_.quarantine_threshold &&
      !cache_->is_quarantined(module.name(), slot, impl)) {
    cache_->quarantine(module.name(), slot, impl);
    ++quarantines_;
    record.quarantined = true;
    // Relink the slot so the fallback becomes the active implementation
    // (the quarantined one can no longer be selected). If the fallback is
    // itself unusable the slot keeps its pointer and every TTI keeps
    // falling back explicitly.
    if (impl != fallback_impl) {
      (void)module.set_behavior(slot, fallback_impl);
    }
  }
  if (hook_) hook_(record);
}

lte::SchedulingDecision VsfGuard::run_mac_slot(
    MacControlModule& mac, const std::string& slot, const std::string& fallback_impl,
    AgentApi& api, std::int64_t subframe,
    const std::function<lte::SchedulingDecision(Vsf&)>& invoke) {
  lte::SchedulingDecision decision;
  decision.cell_id = api.cell_id();
  decision.subframe = subframe;

  Vsf* active = mac.active_vsf(slot);
  if (active == nullptr) return decision;
  const std::string impl = mac.active_implementation(slot);
  if (impl != fallback_impl && cache_->is_quarantined(mac.name(), slot, impl)) {
    ++quarantined_invocations_;
  }

  auto outcome = invoke_checked(*active, [&] { decision = invoke(*active); });
  if (!outcome.failed()) {
    auto valid = validate_decision(decision, api);
    if (!valid.ok()) outcome = {proto::VsfFailureKind::invalid_decision, valid.error().message};
  }
  if (!outcome.failed()) {
    cache_->record_success(mac.name(), slot, impl);
    return decision;
  }

  // Failure: account for it, then produce a safe decision from the local
  // default within the same TTI.
  const auto fallback_start = std::chrono::steady_clock::now();
  note_failure(mac, slot, impl, fallback_impl, outcome, subframe);

  decision = {};
  decision.cell_id = api.cell_id();
  decision.subframe = subframe;
  Vsf* fallback = cache_->get(mac.name(), slot, fallback_impl);
  if (fallback == nullptr || impl == fallback_impl) {
    // No healthy fallback distinct from the failed implementation: the TTI
    // goes unscheduled (still a valid, empty decision).
    ++unscheduled_slots_;
    return decision;
  }
  auto fb_outcome = invoke_checked(*fallback, [&] { decision = invoke(*fallback); });
  if (!fb_outcome.failed()) {
    auto valid = validate_decision(decision, api);
    if (!valid.ok()) fb_outcome = {proto::VsfFailureKind::invalid_decision, valid.error().message};
  }
  if (fb_outcome.failed()) {
    note_failure(mac, slot, fallback_impl, fallback_impl, fb_outcome, subframe);
    decision = {};
    decision.cell_id = api.cell_id();
    decision.subframe = subframe;
    ++unscheduled_slots_;
    return decision;
  }
  ++fallback_decisions_;
  fallback_latency_us_.add(static_cast<double>(elapsed_us(fallback_start)));
  return decision;
}

lte::SchedulingDecision VsfGuard::run_dl(MacControlModule& mac, const std::string& fallback_impl,
                                         AgentApi& api, std::int64_t subframe) {
  return run_mac_slot(mac, MacControlModule::kDlSchedulerSlot, fallback_impl, api, subframe,
                      [&](Vsf& vsf) -> lte::SchedulingDecision {
                        return dynamic_cast<DlSchedulerVsf&>(vsf).schedule_dl(api, subframe);
                      });
}

lte::SchedulingDecision VsfGuard::run_ul(MacControlModule& mac, const std::string& fallback_impl,
                                         AgentApi& api, std::int64_t subframe) {
  return run_mac_slot(mac, MacControlModule::kUlSchedulerSlot, fallback_impl, api, subframe,
                      [&](Vsf& vsf) -> lte::SchedulingDecision {
                        return dynamic_cast<UlSchedulerVsf&>(vsf).schedule_ul(api, subframe);
                      });
}

std::optional<HandoverDecision> VsfGuard::run_handover(RrcControlModule& rrc,
                                                       const std::string& fallback_impl,
                                                       AgentApi& api, std::int64_t subframe) {
  HandoverPolicyVsf* active = rrc.handover_policy();
  if (active == nullptr) return std::nullopt;
  const std::string slot = RrcControlModule::kHandoverPolicySlot;
  const std::string impl = rrc.active_implementation(slot);
  if (impl != fallback_impl && cache_->is_quarantined(rrc.name(), slot, impl)) {
    ++quarantined_invocations_;
  }

  std::optional<HandoverDecision> decision;
  auto outcome = invoke_checked(*active, [&] { decision = active->evaluate(api, subframe); });
  if (!outcome.failed() && decision.has_value()) {
    // Light-weight validation: the target must be another cell and the UE
    // must be known to the MAC.
    const auto rntis = api.ue_rntis();
    const bool known =
        std::find(rntis.begin(), rntis.end(), decision->rnti) != rntis.end();
    if (!known) {
      outcome = {proto::VsfFailureKind::invalid_decision,
                 "handover for unknown RNTI " + std::to_string(decision->rnti)};
    } else if (decision->target_cell == api.cell_id()) {
      outcome = {proto::VsfFailureKind::invalid_decision, "handover to the serving cell"};
    }
  }
  if (!outcome.failed()) {
    cache_->record_success(rrc.name(), slot, impl);
    return decision;
  }

  const auto fallback_start = std::chrono::steady_clock::now();
  note_failure(rrc, slot, impl, fallback_impl, outcome, subframe);
  decision.reset();
  Vsf* fallback = cache_->get(rrc.name(), slot, fallback_impl);
  auto* fb = dynamic_cast<HandoverPolicyVsf*>(fallback);
  if (fb == nullptr || impl == fallback_impl) {
    // Handover is best-effort: no fallback means no trigger this TTI, the
    // data plane keeps running, so this is not an unscheduled slot.
    return std::nullopt;
  }
  auto fb_outcome = invoke_checked(*fb, [&] { decision = fb->evaluate(api, subframe); });
  if (fb_outcome.failed()) {
    note_failure(rrc, slot, fallback_impl, fallback_impl, fb_outcome, subframe);
    return std::nullopt;
  }
  ++fallback_decisions_;
  fallback_latency_us_.add(static_cast<double>(elapsed_us(fallback_start)));
  return decision;
}

}  // namespace flexran::agent
