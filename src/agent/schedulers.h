// Built-in VSF implementations shipped with the platform: local downlink
// round-robin and proportional-fair schedulers, a local uplink round-robin
// scheduler, the remote-stub downlink scheduler (applies decisions pushed by
// the master, enabling centralized scheduling), and an A3-style handover
// policy. Use-case-specific VSFs (RAN slicing, eICIC) live in src/apps.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "agent/vsf.h"

namespace flexran::agent {

/// Registers the built-in implementations with the process-wide VsfFactory
/// (idempotent). Names:
///   mac/dl_ue_scheduler/local_rr, mac/dl_ue_scheduler/local_pf,
///   mac/ul_ue_scheduler/local_rr, rrc/handover_policy/a3
void register_builtin_vsfs();

/// Registers deliberately misbehaving DL schedulers with the VsfFactory
/// (idempotent) for chaos testing and the faulty-VSF bench sweep:
///   mac/dl_ue_scheduler/faulty_crash    -- throws every invocation
///   mac/dl_ue_scheduler/faulty_overrun  -- declares 5x the TTI budget
///   mac/dl_ue_scheduler/faulty_invalid  -- emits out-of-bounds allocations
/// Never registered by the Agent itself; tests / FaultInjector opt in.
void register_faulty_vsfs();

// ----------------------------------------------------------- helper -------

/// A scheduler's per-UE demand for one TTI.
struct PrbDemand {
  lte::Rnti rnti = lte::kInvalidRnti;
  int mcs = 0;
  int prbs_wanted = 0;
};

/// Packs demands into contiguous PRB chunks starting at `first_prb`,
/// honoring `total_prbs` (the budget from first_prb onward). Demands are
/// served in the given order; a UE receives at most prbs_wanted. Returns
/// DCIs for every UE that got at least one PRB. `first_prb` lets slice
/// schedulers place operators side by side in the grid.
std::vector<lte::DlDci> pack_dl_allocations(const std::vector<PrbDemand>& demands,
                                            int total_prbs, int first_prb = 0);
std::vector<lte::UlDci> pack_ul_allocations(const std::vector<PrbDemand>& demands,
                                            int total_prbs, int first_prb = 0);

/// Equal-share PRB split with leftover redistribution (exposed for reuse by
/// use-case schedulers such as the RAN-sharing sliced VSF).
std::vector<PrbDemand> equal_share_demands(std::vector<PrbDemand> wants, int total_prbs);

/// PRBs needed to move `bits` at MCS `mcs` (at least 1).
int prbs_needed(std::int64_t bits, int mcs);

// ------------------------------------------------------------ DL VSFs -----

/// Equal-share round robin: active UEs split the carrier evenly; the start
/// of the rotation advances every TTI so leftover PRBs circulate.
class RoundRobinDlVsf final : public DlSchedulerVsf {
 public:
  lte::SchedulingDecision schedule_dl(AgentApi& api, std::int64_t subframe) override;

 private:
  std::size_t rotation_ = 0;
};

/// Proportional fair: UEs ranked by instantaneous-rate / average-rate; the
/// top `max_ues_per_tti` share the carrier.
class ProportionalFairDlVsf final : public DlSchedulerVsf {
 public:
  lte::SchedulingDecision schedule_dl(AgentApi& api, std::int64_t subframe) override;
  util::Status set_parameter(std::string_view key, const util::YamlNode& value) override;
  util::Status validate_parameter(std::string_view key,
                                  const util::YamlNode& value) const override;

 private:
  int max_ues_per_tti_ = 4;
};

/// Carrier-aggregation round robin: the PCell is shared round-robin by all
/// active UEs (exactly like RoundRobinDlVsf); UEs whose secondary carrier
/// is activated additionally share the SCell. Demand is split pessimistically
/// (each carrier offered the full remaining need; HARQ capacity and queue
/// draining bound the real usage).
class CaRoundRobinDlVsf final : public DlSchedulerVsf {
 public:
  lte::SchedulingDecision schedule_dl(AgentApi& api, std::int64_t subframe) override;

 private:
  std::size_t rotation_ = 0;
  std::size_t scell_rotation_ = 0;
};

/// Remote stub: the local scheduler is inactive and the master controller
/// drives scheduling entirely. (The agent merges master-pushed decisions
/// into every subframe regardless of the active VSF, so the stub itself
/// schedules nothing -- it exists so "behavior: remote" is an explicit,
/// swappable policy, per paper Sec. 5.4.)
class RemoteStubDlVsf final : public DlSchedulerVsf {
 public:
  lte::SchedulingDecision schedule_dl(AgentApi& api, std::int64_t subframe) override;
};

// ------------------------------------------------------------ UL VSF ------

class RoundRobinUlVsf final : public UlSchedulerVsf {
 public:
  lte::SchedulingDecision schedule_ul(AgentApi& api, std::int64_t subframe) override;

 private:
  std::size_t rotation_ = 0;
};

/// Remote stub for the uplink slot: local UL scheduling inactive, the
/// master's UlMacConfig messages drive the uplink.
class RemoteStubUlVsf final : public UlSchedulerVsf {
 public:
  lte::SchedulingDecision schedule_ul(AgentApi& api, std::int64_t subframe) override;
};

// ----------------------------------------------------------- RRC VSF ------

/// Event-A3-style trigger: hand a UE over when a neighbor cell's received
/// power exceeds the serving cell's by `hysteresis_db` (parameter) for
/// `time_to_trigger_ttis` consecutive evaluations.
class A3HandoverVsf final : public HandoverPolicyVsf {
 public:
  std::optional<HandoverDecision> evaluate(AgentApi& api, std::int64_t subframe) override;
  util::Status set_parameter(std::string_view key, const util::YamlNode& value) override;
  util::Status validate_parameter(std::string_view key,
                                  const util::YamlNode& value) const override;

 private:
  double hysteresis_db_ = 3.0;
  int time_to_trigger_ttis_ = 40;
  std::map<lte::Rnti, int> streak_;
};

}  // namespace flexran::agent
