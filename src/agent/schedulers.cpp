#include "agent/schedulers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lte/tables.h"

namespace flexran::agent {

int prbs_needed(std::int64_t bits, int mcs) {
  if (bits <= 0) return 0;
  const double per_prb = static_cast<double>(lte::tbs_bits(mcs, 1));
  if (per_prb <= 0.0) return 1;
  return std::max(1, static_cast<int>(std::ceil(static_cast<double>(bits) / per_prb)));
}

namespace {

/// Shared packing core: assigns contiguous chunks in demand order.
template <typename Dci>
std::vector<Dci> pack_allocations(const std::vector<PrbDemand>& demands, int total_prbs,
                                  int first_prb) {
  std::vector<Dci> out;
  int next_prb = first_prb;
  const int end_prb = first_prb + total_prbs;
  for (const auto& demand : demands) {
    if (next_prb >= end_prb) break;
    const int take = std::min(demand.prbs_wanted, end_prb - next_prb);
    if (take <= 0 || demand.mcs < 0) continue;
    Dci dci;
    dci.rnti = demand.rnti;
    dci.rbs.set_range(next_prb, take);
    dci.mcs = demand.mcs;
    out.push_back(dci);
    next_prb += take;
  }
  return out;
}

int effective_cqi(const stack::SchedUeInfo& info, bool protected_subframe) {
  return std::max(protected_subframe ? info.cqi_protected : info.cqi, 1);
}

}  // namespace

/// Equal-share demands with leftover redistribution: every active UE gets
/// floor(total/n) PRBs capped by need; remaining PRBs go to UEs that still
/// want more, in order.
std::vector<PrbDemand> equal_share_demands(std::vector<PrbDemand> wants, int total_prbs) {
  if (wants.empty()) return wants;
  const int n = static_cast<int>(wants.size());
  const int share = std::max(1, total_prbs / n);
  int leftover = total_prbs;
  std::vector<int> granted(wants.size(), 0);
  for (std::size_t i = 0; i < wants.size() && leftover > 0; ++i) {
    granted[i] = std::min({wants[i].prbs_wanted, share, leftover});
    leftover -= granted[i];
  }
  for (std::size_t i = 0; i < wants.size() && leftover > 0; ++i) {
    const int extra = std::min(wants[i].prbs_wanted - granted[i], leftover);
    if (extra > 0) {
      granted[i] += extra;
      leftover -= extra;
    }
  }
  for (std::size_t i = 0; i < wants.size(); ++i) wants[i].prbs_wanted = granted[i];
  std::erase_if(wants, [](const PrbDemand& d) { return d.prbs_wanted <= 0; });
  return wants;
}

std::vector<lte::DlDci> pack_dl_allocations(const std::vector<PrbDemand>& demands,
                                            int total_prbs, int first_prb) {
  return pack_allocations<lte::DlDci>(demands, total_prbs, first_prb);
}

std::vector<lte::UlDci> pack_ul_allocations(const std::vector<PrbDemand>& demands,
                                            int total_prbs, int first_prb) {
  return pack_allocations<lte::UlDci>(demands, total_prbs, first_prb);
}

// -------------------------------------------------------------- RR (DL) --

lte::SchedulingDecision RoundRobinDlVsf::schedule_dl(AgentApi& api, std::int64_t subframe) {
  lte::SchedulingDecision decision;
  decision.cell_id = api.cell_id();
  decision.subframe = subframe;
  if (api.muted_in(subframe)) return decision;

  const bool protected_sf = api.is_abs(subframe);
  auto view = api.scheduler_view();
  std::vector<PrbDemand> wants;
  for (const auto& info : view) {
    if (info.dl_queue_bytes == 0 && info.pending_dl_retx == 0) continue;
    const int cqi = effective_cqi(info, protected_sf);
    const int mcs = lte::cqi_to_mcs(cqi);
    PrbDemand demand;
    demand.rnti = info.rnti;
    demand.mcs = mcs;
    demand.prbs_wanted = info.pending_dl_retx > 0 ? api.dl_prbs()
                                                  : prbs_needed(info.dl_bits_needed, mcs);
    wants.push_back(demand);
  }
  if (wants.empty()) return decision;

  // Rotate who is first so leftovers circulate fairly.
  std::rotate(wants.begin(), wants.begin() + static_cast<std::ptrdiff_t>(rotation_ % wants.size()),
              wants.end());
  ++rotation_;

  decision.dl = pack_dl_allocations(equal_share_demands(std::move(wants), api.dl_prbs()), api.dl_prbs());
  return decision;
}

// -------------------------------------------------------------- PF (DL) --

lte::SchedulingDecision ProportionalFairDlVsf::schedule_dl(AgentApi& api,
                                                           std::int64_t subframe) {
  lte::SchedulingDecision decision;
  decision.cell_id = api.cell_id();
  decision.subframe = subframe;
  if (api.muted_in(subframe)) return decision;

  const bool protected_sf = api.is_abs(subframe);
  auto view = api.scheduler_view();
  struct Ranked {
    double metric;
    PrbDemand demand;
  };
  std::vector<Ranked> ranked;
  for (const auto& info : view) {
    if (info.dl_queue_bytes == 0 && info.pending_dl_retx == 0) continue;
    const int cqi = effective_cqi(info, protected_sf);
    const int mcs = lte::cqi_to_mcs(cqi);
    const double inst_rate = static_cast<double>(lte::tbs_bits(mcs, api.dl_prbs()));
    const double avg = std::max(info.avg_dl_rate_bits, 1.0);
    PrbDemand demand;
    demand.rnti = info.rnti;
    demand.mcs = mcs;
    demand.prbs_wanted = info.pending_dl_retx > 0 ? api.dl_prbs()
                                                  : prbs_needed(info.dl_bits_needed, mcs);
    ranked.push_back({inst_rate / avg, demand});
  }
  if (ranked.empty()) return decision;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) { return a.metric > b.metric; });

  std::vector<PrbDemand> wants;
  const auto cap = static_cast<std::size_t>(std::max(1, max_ues_per_tti_));
  for (std::size_t i = 0; i < ranked.size() && i < cap; ++i) wants.push_back(ranked[i].demand);
  decision.dl = pack_dl_allocations(equal_share_demands(std::move(wants), api.dl_prbs()), api.dl_prbs());
  return decision;
}

util::Status ProportionalFairDlVsf::set_parameter(std::string_view key,
                                                  const util::YamlNode& value) {
  auto valid = validate_parameter(key, value);
  if (!valid.ok()) return valid;
  max_ues_per_tti_ = static_cast<int>(*value.as_int());
  return {};
}

util::Status ProportionalFairDlVsf::validate_parameter(std::string_view key,
                                                       const util::YamlNode& value) const {
  if (key == "max_ues_per_tti") {
    auto v = value.as_int();
    if (!v.ok() || *v < 1) return util::Error::invalid_argument("max_ues_per_tti must be >= 1");
    return {};
  }
  return util::Error::invalid_argument("unknown parameter: " + std::string(key));
}

// -------------------------------------------------------------- CA RR ----

lte::SchedulingDecision CaRoundRobinDlVsf::schedule_dl(AgentApi& api, std::int64_t subframe) {
  lte::SchedulingDecision decision;
  decision.cell_id = api.cell_id();
  decision.subframe = subframe;
  if (api.muted_in(subframe)) return decision;

  const bool protected_sf = api.is_abs(subframe);
  const auto view = api.scheduler_view();

  // PCell: plain round robin over everyone with data.
  std::vector<PrbDemand> pcell_wants;
  std::vector<PrbDemand> scell_wants;
  for (const auto& info : view) {
    if (info.dl_queue_bytes == 0 && info.pending_dl_retx == 0) continue;
    const int cqi = effective_cqi(info, protected_sf);
    const int mcs = lte::cqi_to_mcs(cqi);
    PrbDemand demand;
    demand.rnti = info.rnti;
    demand.mcs = mcs;
    demand.prbs_wanted = info.pending_dl_retx > 0 ? api.dl_prbs()
                                                  : prbs_needed(info.dl_bits_needed, mcs);
    pcell_wants.push_back(demand);

    if (info.scell_active && api.scell_prbs() > 0) {
      // The SCell carries the clean-carrier channel.
      PrbDemand scell_demand;
      scell_demand.rnti = info.rnti;
      scell_demand.mcs = lte::cqi_to_mcs(std::max(info.cqi_protected, 1));
      scell_demand.prbs_wanted = info.pending_dl_retx > 0
                                     ? api.scell_prbs()
                                     : prbs_needed(info.dl_bits_needed, scell_demand.mcs);
      scell_wants.push_back(scell_demand);
    }
  }
  if (pcell_wants.empty()) return decision;

  std::rotate(pcell_wants.begin(),
              pcell_wants.begin() + static_cast<std::ptrdiff_t>(rotation_ % pcell_wants.size()),
              pcell_wants.end());
  ++rotation_;
  decision.dl = pack_dl_allocations(equal_share_demands(std::move(pcell_wants), api.dl_prbs()),
                                    api.dl_prbs());

  if (!scell_wants.empty()) {
    std::rotate(scell_wants.begin(),
                scell_wants.begin() +
                    static_cast<std::ptrdiff_t>(scell_rotation_ % scell_wants.size()),
                scell_wants.end());
    ++scell_rotation_;
    auto scell_dcis = pack_dl_allocations(
        equal_share_demands(std::move(scell_wants), api.scell_prbs()), api.scell_prbs());
    for (auto& dci : scell_dcis) dci.carrier = 1;
    decision.dl.insert(decision.dl.end(), scell_dcis.begin(), scell_dcis.end());
  }
  return decision;
}

// ---------------------------------------------------------- remote stub --

lte::SchedulingDecision RemoteStubDlVsf::schedule_dl(AgentApi& api, std::int64_t subframe) {
  lte::SchedulingDecision empty;
  empty.cell_id = api.cell_id();
  empty.subframe = subframe;
  return empty;
}

// -------------------------------------------------------------- RR (UL) --

lte::SchedulingDecision RoundRobinUlVsf::schedule_ul(AgentApi& api, std::int64_t subframe) {
  lte::SchedulingDecision decision;
  decision.cell_id = api.cell_id();
  decision.subframe = subframe;

  auto view = api.scheduler_view();
  std::vector<PrbDemand> wants;
  for (const auto& info : view) {
    if (!info.connected || info.ul_buffer_bytes == 0) continue;
    const int mcs = lte::cqi_to_mcs(std::max(info.ul_cqi, 1));
    PrbDemand demand;
    demand.rnti = info.rnti;
    demand.mcs = mcs;
    const auto bits = static_cast<std::int64_t>(info.ul_buffer_bytes) * 8 * 11 / 10;
    demand.prbs_wanted = prbs_needed(bits, mcs);
    wants.push_back(demand);
  }
  if (wants.empty()) return decision;
  std::rotate(wants.begin(), wants.begin() + static_cast<std::ptrdiff_t>(rotation_ % wants.size()),
              wants.end());
  ++rotation_;
  decision.ul = pack_ul_allocations(equal_share_demands(std::move(wants), api.ul_prbs()), api.ul_prbs());
  return decision;
}

lte::SchedulingDecision RemoteStubUlVsf::schedule_ul(AgentApi& api, std::int64_t subframe) {
  lte::SchedulingDecision empty;
  empty.cell_id = api.cell_id();
  empty.subframe = subframe;
  return empty;
}

// -------------------------------------------------------------------- A3 --

std::optional<HandoverDecision> A3HandoverVsf::evaluate(AgentApi& api, std::int64_t /*subframe*/) {
  for (const auto rnti : api.ue_rntis()) {
    const auto* ue = api.ue(rnti);
    if (ue == nullptr || !ue->connected() || !ue->radio_profile.has_value()) continue;
    const auto& profile = *ue->radio_profile;
    const auto serving_it = profile.rx_power_dbm.find(profile.serving_cell);
    if (serving_it == profile.rx_power_dbm.end()) continue;

    lte::CellId best_cell = 0;
    double best_power = serving_it->second + hysteresis_db_;
    for (const auto& [cell, power] : profile.rx_power_dbm) {
      if (cell == profile.serving_cell) continue;
      if (power > best_power) {
        best_power = power;
        best_cell = cell;
      }
    }
    if (best_cell != 0) {
      if (++streak_[rnti] >= time_to_trigger_ttis_) {
        streak_.erase(rnti);
        return HandoverDecision{rnti, best_cell};
      }
    } else {
      streak_.erase(rnti);
    }
  }
  return std::nullopt;
}

util::Status A3HandoverVsf::set_parameter(std::string_view key, const util::YamlNode& value) {
  auto valid = validate_parameter(key, value);
  if (!valid.ok()) return valid;
  if (key == "hysteresis_db") {
    hysteresis_db_ = *value.as_double();
  } else {
    time_to_trigger_ttis_ = static_cast<int>(*value.as_int());
  }
  return {};
}

util::Status A3HandoverVsf::validate_parameter(std::string_view key,
                                               const util::YamlNode& value) const {
  if (key == "hysteresis_db") {
    auto v = value.as_double();
    if (!v.ok()) return v.error();
    return {};
  }
  if (key == "time_to_trigger_ttis") {
    auto v = value.as_int();
    if (!v.ok() || *v < 0) return util::Error::invalid_argument("time_to_trigger_ttis >= 0");
    return {};
  }
  return util::Error::invalid_argument("unknown parameter: " + std::string(key));
}

// ------------------------------------------------------------- faulty ----

namespace {

/// Misbehaving delegated code for chaos testing and the faulty-VSF bench
/// sweep. Crash throws out of schedule_dl; overrun declares 5x the 1 ms
/// TTI budget; invalid emits full-band overlapping grants to an unknown
/// RNTI at an out-of-range MCS, tripping every validation rule regardless
/// of the cell bandwidth.
class FaultyDlVsf final : public DlSchedulerVsf {
 public:
  enum class Mode { crash, overrun, invalid };
  explicit FaultyDlVsf(Mode mode) : mode_(mode) {}

  lte::SchedulingDecision schedule_dl(AgentApi& api, std::int64_t subframe) override {
    if (mode_ == Mode::crash) throw std::runtime_error("injected VSF crash");
    lte::SchedulingDecision decision;
    decision.cell_id = api.cell_id();
    decision.subframe = subframe;
    if (mode_ == Mode::invalid) {
      lte::DlDci bogus;
      bogus.rnti = 0xFFF0;  // never assigned by the RACH path
      bogus.rbs.set_range(0, api.dl_prbs());
      bogus.mcs = lte::kMaxMcs + 3;
      decision.dl.push_back(bogus);
      decision.dl.push_back(bogus);  // overlapping with the first
    }
    return decision;
  }

  std::int64_t declared_cost_us() const override {
    return mode_ == Mode::overrun ? 5000 : 0;  // 5x the 1 ms TTI
  }

 private:
  Mode mode_;
};

}  // namespace

void register_faulty_vsfs() {
  static const bool registered = [] {
    auto& factory = VsfFactory::instance();
    factory.register_implementation("mac", "dl_ue_scheduler", "faulty_crash", [] {
      return std::make_unique<FaultyDlVsf>(FaultyDlVsf::Mode::crash);
    });
    factory.register_implementation("mac", "dl_ue_scheduler", "faulty_overrun", [] {
      return std::make_unique<FaultyDlVsf>(FaultyDlVsf::Mode::overrun);
    });
    factory.register_implementation("mac", "dl_ue_scheduler", "faulty_invalid", [] {
      return std::make_unique<FaultyDlVsf>(FaultyDlVsf::Mode::invalid);
    });
    return true;
  }();
  (void)registered;
}

// ------------------------------------------------------------ registry ----

void register_builtin_vsfs() {
  static const bool registered = [] {
    auto& factory = VsfFactory::instance();
    factory.register_implementation("mac", "dl_ue_scheduler", "local_rr",
                                    [] { return std::make_unique<RoundRobinDlVsf>(); });
    factory.register_implementation("mac", "dl_ue_scheduler", "local_pf",
                                    [] { return std::make_unique<ProportionalFairDlVsf>(); });
    factory.register_implementation("mac", "dl_ue_scheduler", "local_ca_rr",
                                    [] { return std::make_unique<CaRoundRobinDlVsf>(); });
    factory.register_implementation("mac", "ul_ue_scheduler", "local_rr",
                                    [] { return std::make_unique<RoundRobinUlVsf>(); });
    factory.register_implementation("mac", "dl_ue_scheduler", "remote",
                                    [] { return std::make_unique<RemoteStubDlVsf>(); });
    factory.register_implementation("mac", "ul_ue_scheduler", "remote",
                                    [] { return std::make_unique<RemoteStubUlVsf>(); });
    factory.register_implementation("rrc", "handover_policy", "a3",
                                    [] { return std::make_unique<A3HandoverVsf>(); });
    return true;
  }();
  (void)registered;
}

}  // namespace flexran::agent
