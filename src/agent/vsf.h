// Virtual Subsystem Functions (paper Sec. 4.3.1). A VSF implements the
// action the agent takes for one operation of a control module (e.g. "UE
// downlink scheduling"). The master pushes implementations over the FlexRAN
// protocol (VSF updation); the agent caches them and links them to CMI
// slots at runtime (policy reconfiguration).
//
// Substitution note (DESIGN.md): the paper ships VSFs as shared libraries
// compiled against the agent's architecture and dlopen()s them. Here a
// pushed VSF names an implementation in a process-wide factory registry;
// the cache, swap and parameter semantics -- what Sec. 5.4 measures -- are
// identical, and a dlopen-based loader would slot in behind VsfFactory.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "agent/agent_api.h"
#include "lte/allocation.h"
#include "util/result.h"
#include "util/yaml_lite.h"

namespace flexran::agent {

/// Base of every VSF: runtime-reconfigurable named parameters (the
/// "parameters" section of a policy reconfiguration message, Fig. 3).
class Vsf {
 public:
  virtual ~Vsf() = default;

  /// Sets one parameter; unknown keys are an error so operator typos
  /// surface instead of silently doing nothing.
  virtual util::Status set_parameter(std::string_view key, const util::YamlNode& value) {
    (void)value;
    return util::Error::invalid_argument("unknown parameter: " + std::string(key));
  }

  /// Checks that set_parameter(key, value) would succeed WITHOUT applying
  /// it. Policy reconfiguration validates a whole document with this before
  /// mutating anything, so a bad trailing entry cannot leave a policy
  /// half-applied. Implementations overriding set_parameter must keep this
  /// in sync.
  virtual util::Status validate_parameter(std::string_view key,
                                          const util::YamlNode& value) const {
    (void)value;
    return util::Error::invalid_argument("unknown parameter: " + std::string(key));
  }

  /// Simulated execution cost of one invocation in microseconds. The guard
  /// charges this against the per-TTI deadline budget; the default of 0
  /// models a well-behaved VSF that finishes comfortably within the TTI.
  /// A wall-clock backstop in VsfGuard catches real (untyped) overruns.
  virtual std::int64_t declared_cost_us() const { return 0; }
};

/// MAC CMI slot: UE downlink scheduling. Returns the DCIs for `subframe`
/// (empty decision = nothing scheduled). A remote-stub implementation
/// returns the master's pushed decision instead of computing one.
class DlSchedulerVsf : public Vsf {
 public:
  virtual lte::SchedulingDecision schedule_dl(AgentApi& api, std::int64_t subframe) = 0;
};

/// MAC CMI slot: UE uplink scheduling.
class UlSchedulerVsf : public Vsf {
 public:
  virtual lte::SchedulingDecision schedule_ul(AgentApi& api, std::int64_t subframe) = 0;
};

/// RRC CMI slot: handover trigger policy. Returns RNTI + target cell when a
/// handover should be initiated.
struct HandoverDecision {
  lte::Rnti rnti = lte::kInvalidRnti;
  lte::CellId target_cell = 0;
};
class HandoverPolicyVsf : public Vsf {
 public:
  virtual std::optional<HandoverDecision> evaluate(AgentApi& api, std::int64_t subframe) = 0;
};

/// Process-wide registry of VSF implementations, keyed by
/// (module, vsf, implementation) -- the stand-in for the shared-library
/// loader (see header comment).
class VsfFactory {
 public:
  using Factory = std::function<std::unique_ptr<Vsf>()>;

  static VsfFactory& instance();

  void register_implementation(std::string module, std::string vsf, std::string implementation,
                               Factory factory);
  util::Result<std::unique_ptr<Vsf>> create(std::string_view module, std::string_view vsf,
                                            std::string_view implementation) const;
  bool has(std::string_view module, std::string_view vsf, std::string_view implementation) const;

 private:
  VsfFactory() = default;
  std::map<std::string, Factory> factories_;  // "module/vsf/impl"
};

/// Agent-side cache of pushed VSF instances (paper: "the pushed code is
/// initially stored in a cache memory at the agent side... the cache can
/// store many different implementations for a specific VSF, which the
/// master can swap at runtime").
///
/// The cache also tracks per-implementation health for the containment
/// layer (VsfGuard): consecutive failures accumulate until the guard
/// quarantines the entry. A quarantined implementation cannot be linked to
/// a CMI slot (policy reconfiguration to it is rejected) until the master
/// pushes a fresh VSF updation for the same name, which re-instantiates
/// the implementation and clears the quarantine.
class VsfCache {
 public:
  /// Instantiates and stores an implementation. Idempotent per name while
  /// healthy; re-pushing a quarantined name re-instantiates it and clears
  /// the quarantine (the paper's updation path doubles as the recovery
  /// path). Callers holding raw pointers to the old instance must re-link
  /// after a refresh.
  util::Status store(const std::string& module, const std::string& vsf,
                     const std::string& implementation);
  /// Stores an agent-constructed instance directly (used for the built-in
  /// remote stub, which needs access to the agent's decision queue).
  void store_instance(const std::string& module, const std::string& vsf,
                      const std::string& implementation, std::unique_ptr<Vsf> instance);
  /// Cached instance lookup; nullptr if not pushed.
  Vsf* get(std::string_view module, std::string_view vsf,
           std::string_view implementation) const;
  std::size_t size() const { return cache_.size(); }

  /// Records one guard-detected failure; returns the new consecutive count.
  /// Unknown keys return 0 (agent-built instances outside the cache).
  std::uint32_t record_failure(std::string_view module, std::string_view vsf,
                               std::string_view implementation);
  /// Clears the consecutive-failure count after a clean invocation.
  void record_success(std::string_view module, std::string_view vsf,
                      std::string_view implementation);
  /// Marks an implementation quarantined (no-op on unknown keys).
  void quarantine(std::string_view module, std::string_view vsf,
                  std::string_view implementation);
  bool is_quarantined(std::string_view module, std::string_view vsf,
                      std::string_view implementation) const;
  std::uint32_t consecutive_failures(std::string_view module, std::string_view vsf,
                                     std::string_view implementation) const;
  /// Number of currently quarantined implementations.
  std::size_t quarantined_count() const;

 private:
  struct Entry {
    std::unique_ptr<Vsf> instance;
    std::uint32_t consecutive_failures = 0;
    bool quarantined = false;
  };
  std::map<std::string, Entry, std::less<>> cache_;  // "module/vsf/impl"
};

/// Canonical cache/registry key.
std::string vsf_key(std::string_view module, std::string_view vsf,
                    std::string_view implementation);

}  // namespace flexran::agent
