// Virtual Subsystem Functions (paper Sec. 4.3.1). A VSF implements the
// action the agent takes for one operation of a control module (e.g. "UE
// downlink scheduling"). The master pushes implementations over the FlexRAN
// protocol (VSF updation); the agent caches them and links them to CMI
// slots at runtime (policy reconfiguration).
//
// Substitution note (DESIGN.md): the paper ships VSFs as shared libraries
// compiled against the agent's architecture and dlopen()s them. Here a
// pushed VSF names an implementation in a process-wide factory registry;
// the cache, swap and parameter semantics -- what Sec. 5.4 measures -- are
// identical, and a dlopen-based loader would slot in behind VsfFactory.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "agent/agent_api.h"
#include "lte/allocation.h"
#include "util/result.h"
#include "util/yaml_lite.h"

namespace flexran::agent {

/// Base of every VSF: runtime-reconfigurable named parameters (the
/// "parameters" section of a policy reconfiguration message, Fig. 3).
class Vsf {
 public:
  virtual ~Vsf() = default;

  /// Sets one parameter; unknown keys are an error so operator typos
  /// surface instead of silently doing nothing.
  virtual util::Status set_parameter(std::string_view key, const util::YamlNode& value) {
    (void)value;
    return util::Error::invalid_argument("unknown parameter: " + std::string(key));
  }
};

/// MAC CMI slot: UE downlink scheduling. Returns the DCIs for `subframe`
/// (empty decision = nothing scheduled). A remote-stub implementation
/// returns the master's pushed decision instead of computing one.
class DlSchedulerVsf : public Vsf {
 public:
  virtual lte::SchedulingDecision schedule_dl(AgentApi& api, std::int64_t subframe) = 0;
};

/// MAC CMI slot: UE uplink scheduling.
class UlSchedulerVsf : public Vsf {
 public:
  virtual lte::SchedulingDecision schedule_ul(AgentApi& api, std::int64_t subframe) = 0;
};

/// RRC CMI slot: handover trigger policy. Returns RNTI + target cell when a
/// handover should be initiated.
struct HandoverDecision {
  lte::Rnti rnti = lte::kInvalidRnti;
  lte::CellId target_cell = 0;
};
class HandoverPolicyVsf : public Vsf {
 public:
  virtual std::optional<HandoverDecision> evaluate(AgentApi& api, std::int64_t subframe) = 0;
};

/// Process-wide registry of VSF implementations, keyed by
/// (module, vsf, implementation) -- the stand-in for the shared-library
/// loader (see header comment).
class VsfFactory {
 public:
  using Factory = std::function<std::unique_ptr<Vsf>()>;

  static VsfFactory& instance();

  void register_implementation(std::string module, std::string vsf, std::string implementation,
                               Factory factory);
  util::Result<std::unique_ptr<Vsf>> create(std::string_view module, std::string_view vsf,
                                            std::string_view implementation) const;
  bool has(std::string_view module, std::string_view vsf, std::string_view implementation) const;

 private:
  VsfFactory() = default;
  std::map<std::string, Factory> factories_;  // "module/vsf/impl"
};

/// Agent-side cache of pushed VSF instances (paper: "the pushed code is
/// initially stored in a cache memory at the agent side... the cache can
/// store many different implementations for a specific VSF, which the
/// master can swap at runtime").
class VsfCache {
 public:
  /// Instantiates and stores an implementation (idempotent per name).
  util::Status store(const std::string& module, const std::string& vsf,
                     const std::string& implementation);
  /// Stores an agent-constructed instance directly (used for the built-in
  /// remote stub, which needs access to the agent's decision queue).
  void store_instance(const std::string& module, const std::string& vsf,
                      const std::string& implementation, std::unique_ptr<Vsf> instance);
  /// Cached instance lookup; nullptr if not pushed.
  Vsf* get(std::string_view module, std::string_view vsf,
           std::string_view implementation) const;
  std::size_t size() const { return cache_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Vsf>> cache_;  // "module/vsf/impl"
};

/// Canonical cache/registry key.
std::string vsf_key(std::string_view module, std::string_view vsf,
                    std::string_view implementation);

}  // namespace flexran::agent
