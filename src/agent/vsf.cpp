#include "agent/vsf.h"

namespace flexran::agent {

std::string vsf_key(std::string_view module, std::string_view vsf,
                    std::string_view implementation) {
  std::string key;
  key.reserve(module.size() + vsf.size() + implementation.size() + 2);
  key.append(module);
  key.push_back('/');
  key.append(vsf);
  key.push_back('/');
  key.append(implementation);
  return key;
}

VsfFactory& VsfFactory::instance() {
  static VsfFactory factory;
  return factory;
}

void VsfFactory::register_implementation(std::string module, std::string vsf,
                                         std::string implementation, Factory factory) {
  factories_[vsf_key(module, vsf, implementation)] = std::move(factory);
}

util::Result<std::unique_ptr<Vsf>> VsfFactory::create(std::string_view module,
                                                      std::string_view vsf,
                                                      std::string_view implementation) const {
  auto it = factories_.find(vsf_key(module, vsf, implementation));
  if (it == factories_.end()) {
    return util::Error::not_found("no VSF implementation " +
                                  vsf_key(module, vsf, implementation));
  }
  return it->second();
}

bool VsfFactory::has(std::string_view module, std::string_view vsf,
                     std::string_view implementation) const {
  return factories_.contains(vsf_key(module, vsf, implementation));
}

util::Status VsfCache::store(const std::string& module, const std::string& vsf,
                             const std::string& implementation) {
  const auto key = vsf_key(module, vsf, implementation);
  if (cache_.contains(key)) return {};  // already pushed
  auto instance = VsfFactory::instance().create(module, vsf, implementation);
  if (!instance.ok()) return instance.error();
  cache_[key] = std::move(instance.value());
  return {};
}

void VsfCache::store_instance(const std::string& module, const std::string& vsf,
                              const std::string& implementation,
                              std::unique_ptr<Vsf> instance) {
  cache_[vsf_key(module, vsf, implementation)] = std::move(instance);
}

Vsf* VsfCache::get(std::string_view module, std::string_view vsf,
                   std::string_view implementation) const {
  auto it = cache_.find(vsf_key(module, vsf, implementation));
  return it == cache_.end() ? nullptr : it->second.get();
}

}  // namespace flexran::agent
