#include "agent/vsf.h"

namespace flexran::agent {

std::string vsf_key(std::string_view module, std::string_view vsf,
                    std::string_view implementation) {
  std::string key;
  key.reserve(module.size() + vsf.size() + implementation.size() + 2);
  key.append(module);
  key.push_back('/');
  key.append(vsf);
  key.push_back('/');
  key.append(implementation);
  return key;
}

VsfFactory& VsfFactory::instance() {
  static VsfFactory factory;
  return factory;
}

void VsfFactory::register_implementation(std::string module, std::string vsf,
                                         std::string implementation, Factory factory) {
  factories_[vsf_key(module, vsf, implementation)] = std::move(factory);
}

util::Result<std::unique_ptr<Vsf>> VsfFactory::create(std::string_view module,
                                                      std::string_view vsf,
                                                      std::string_view implementation) const {
  auto it = factories_.find(vsf_key(module, vsf, implementation));
  if (it == factories_.end()) {
    return util::Error::not_found("no VSF implementation " +
                                  vsf_key(module, vsf, implementation));
  }
  return it->second();
}

bool VsfFactory::has(std::string_view module, std::string_view vsf,
                     std::string_view implementation) const {
  return factories_.contains(vsf_key(module, vsf, implementation));
}

util::Status VsfCache::store(const std::string& module, const std::string& vsf,
                             const std::string& implementation) {
  const auto key = vsf_key(module, vsf, implementation);
  auto it = cache_.find(key);
  if (it != cache_.end() && !it->second.quarantined) return {};  // already pushed
  // New push, or a fresh updation of a quarantined implementation: either
  // way instantiate from the factory and start with a clean health record.
  auto instance = VsfFactory::instance().create(module, vsf, implementation);
  if (!instance.ok()) return instance.error();
  cache_[key] = Entry{std::move(instance.value()), 0, false};
  return {};
}

void VsfCache::store_instance(const std::string& module, const std::string& vsf,
                              const std::string& implementation,
                              std::unique_ptr<Vsf> instance) {
  cache_[vsf_key(module, vsf, implementation)] = Entry{std::move(instance), 0, false};
}

Vsf* VsfCache::get(std::string_view module, std::string_view vsf,
                   std::string_view implementation) const {
  auto it = cache_.find(vsf_key(module, vsf, implementation));
  return it == cache_.end() ? nullptr : it->second.instance.get();
}

std::uint32_t VsfCache::record_failure(std::string_view module, std::string_view vsf,
                                       std::string_view implementation) {
  auto it = cache_.find(vsf_key(module, vsf, implementation));
  if (it == cache_.end()) return 0;
  return ++it->second.consecutive_failures;
}

void VsfCache::record_success(std::string_view module, std::string_view vsf,
                              std::string_view implementation) {
  auto it = cache_.find(vsf_key(module, vsf, implementation));
  if (it != cache_.end()) it->second.consecutive_failures = 0;
}

void VsfCache::quarantine(std::string_view module, std::string_view vsf,
                          std::string_view implementation) {
  auto it = cache_.find(vsf_key(module, vsf, implementation));
  if (it != cache_.end()) it->second.quarantined = true;
}

bool VsfCache::is_quarantined(std::string_view module, std::string_view vsf,
                              std::string_view implementation) const {
  auto it = cache_.find(vsf_key(module, vsf, implementation));
  return it != cache_.end() && it->second.quarantined;
}

std::uint32_t VsfCache::consecutive_failures(std::string_view module, std::string_view vsf,
                                             std::string_view implementation) const {
  auto it = cache_.find(vsf_key(module, vsf, implementation));
  return it == cache_.end() ? 0 : it->second.consecutive_failures;
}

std::size_t VsfCache::quarantined_count() const {
  std::size_t n = 0;
  for (const auto& [key, entry] : cache_) {
    if (entry.quarantined) ++n;
  }
  return n;
}

}  // namespace flexran::agent
