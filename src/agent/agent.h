// The FlexRAN Agent (paper Fig. 2): per-eNodeB local controller. It
// bridges the data plane and the master: dispatches incoming FlexRAN
// protocol messages to the right control module / VSF, runs the active
// scheduling VSFs each subframe, buffers master-pushed schedule-ahead
// decisions, manages statistics reports and event notifications, and can
// act autonomously under delegated control when the master is far away.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "agent/agent_api.h"
#include "agent/control_module.h"
#include "agent/reports.h"
#include "agent/schedulers.h"
#include "agent/vsf.h"
#include "agent/vsf_guard.h"
#include "net/transport.h"
#include "proto/accounting.h"
#include "proto/messages.h"
#include "sim/simulator.h"
#include "stack/enodeb.h"

namespace flexran::agent {

struct AgentConfig {
  lte::EnbId enb_id = 1;
  std::string name = "agent";
  /// Initial DL scheduler behavior ("local_rr", "local_pf", "remote", ...).
  std::string dl_scheduler = "local_rr";
  /// Initial UL scheduler behavior.
  std::string ul_scheduler = "local_rr";
  /// Send a subframe_tick event to the master every TTI (master-agent sync,
  /// the paper's per-TTI synchronized mode). Also controllable at runtime
  /// via EventSubscription.
  bool subframe_sync = false;
  /// Resilience under delegated control: if the DL scheduler behavior is
  /// "remote" and no message has been received from the master for this
  /// many TTIs, the agent autonomously falls back to `fallback_scheduler`
  /// so UEs keep being served through a control-channel outage. 0 = off.
  /// The fallback is two-way: once master messages resume, the DL scheduler
  /// is re-promoted to remote control.
  std::int64_t remote_fallback_ttis = 0;
  std::string fallback_scheduler = "local_rr";

  // ---- session fault tolerance (docs/fault_tolerance.md) -------------------
  /// Reconnect automatically (via the reconnect provider) when the
  /// transport reports a disconnect.
  bool auto_reconnect = true;
  /// First retry delay after a failed reconnect attempt; doubles per
  /// failure up to the max (exponential backoff).
  double reconnect_initial_backoff_ms = 20.0;
  double reconnect_max_backoff_ms = 1000.0;
  /// If the master has not been heard from at all this session, re-send the
  /// hello every this many TTIs (covers a hello lost to a partition that
  /// raced the connect). 0 = never.
  std::int64_t hello_retry_ttis = 100;
  /// Deterministic per-agent spread multiplied into every reconnect backoff
  /// (and retry-after hold): each delay is scaled by a factor in
  /// [1, 1 + reconnect_jitter) derived from a stable hash of the agent's
  /// identity. After a master restart the whole fleet retries; without
  /// jitter all agents that observed the outage at the same TTI would
  /// retry in lockstep forever (the backoff doubles identically). 0 =
  /// lockstep (the seed behavior).
  double reconnect_jitter = 0.5;

  // ---- delegated-control containment (docs/delegation_safety.md) -----------
  /// Consecutive guard failures of one implementation before quarantine.
  std::uint32_t vsf_quarantine_threshold = 3;
  /// Simulated per-invocation deadline budget in microseconds (one TTI).
  std::int64_t vsf_budget_us = 1000;
  /// Wall-clock backstop for real (undeclared) overruns, in microseconds.
  std::int64_t vsf_wall_clock_cap_us = 250'000;
  /// Built-in local defaults the guard falls back to within the same TTI.
  /// The DL fallback is `fallback_scheduler` above (shared with the
  /// remote-outage fallback, one unified degradation path).
  std::string ul_fallback_scheduler = "local_rr";
  std::string handover_fallback_policy = "a3";
};

class Agent final : public stack::EnodebDataPlane::Listener {
 public:
  Agent(sim::Simulator& sim, stack::EnodebDataPlane& data_plane, AgentConfig config);
  ~Agent() override;
  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Attaches the transport to the master, opens a new session epoch and
  /// sends the hello. The agent also installs itself as the data plane's
  /// listener. Call again (possibly with a different transport) to
  /// reconnect after disconnect().
  void connect(net::Transport& transport);
  /// Tears the session down: detaches the transport and clears
  /// session-scoped state (queued remote decisions, event subscriptions,
  /// stats registrations -- the master reinstalls them on re-sync). Does
  /// not schedule a reconnect; crash/restart harnesses drive that.
  void disconnect();
  bool connected() const { return transport_ != nullptr; }

  /// Supplies transports for automatic reconnection. Returning nullptr
  /// means "master unreachable, try again later" (exponential backoff).
  using ReconnectProvider = std::function<net::Transport*()>;
  void set_reconnect_provider(ReconnectProvider provider) {
    reconnect_provider_ = std::move(provider);
  }
  /// Schedules a reconnect attempt `delay` from now (idempotent while one
  /// is pending). Used on restart and by the transport-loss handler.
  void schedule_reconnect(sim::TimeUs delay = 0);

  /// Current session epoch (1 = first connection, bumped every reconnect).
  std::uint32_t session_epoch() const { return session_epoch_; }

  AgentApi& api() { return api_; }
  MacControlModule& mac() { return mac_; }
  RrcControlModule& rrc() { return rrc_; }
  VsfCache& vsf_cache() { return cache_; }
  VsfGuard& vsf_guard() { return guard_; }
  const VsfGuard& vsf_guard() const { return guard_; }
  ReportsManager& reports() { return reports_; }
  const AgentConfig& config() const { return config_; }

  /// Applies a policy reconfiguration YAML document locally (the same code
  /// path a PolicyReconfiguration protocol message takes).
  util::Status apply_policy(const std::string& yaml);

  /// X2-equivalent: receives the UE context detached by a handover so it
  /// can be re-established at the target cell. Without a sink the context
  /// is dropped (UE released), as when no neighbor relation exists.
  using HandoverSink =
      std::function<void(stack::UeProfile context, lte::CellId target, lte::Rnti old_rnti)>;
  void set_handover_sink(HandoverSink sink) { handover_sink_ = std::move(sink); }
  std::uint64_t handovers_executed() const { return handovers_executed_; }

  // ---- data plane listener -------------------------------------------------
  void on_subframe_start(std::int64_t subframe) override;
  void on_rach(lte::Rnti rnti, std::int64_t subframe) override;
  void on_ue_attached(lte::Rnti rnti, std::int64_t subframe) override;
  void on_ue_detached(lte::Rnti rnti, std::int64_t subframe) override;
  void on_scheduling_request(lte::Rnti rnti, std::int64_t subframe) override;

  // ---- introspection -------------------------------------------------------
  const proto::SignalingAccountant& tx_accounting() const { return tx_accounting_; }
  /// Master -> agent signaling as received, recorded with the same
  /// frame-header-bytes convention as every other accounting site, so the
  /// Fig. 7 breakdowns reconcile from both ends of the link.
  const proto::SignalingAccountant& rx_accounting() const { return rx_accounting_; }
  std::uint64_t missed_deadline_decisions() const { return missed_deadline_decisions_; }
  std::uint64_t remote_decisions_applied() const { return remote_decisions_applied_; }
  std::uint64_t messages_received() const { return messages_received_; }
  std::uint64_t fallback_activations() const { return fallback_activations_; }
  /// Times the DL scheduler was handed back to remote control after a
  /// fallback, because master messages resumed.
  std::uint64_t fallback_recoveries() const { return fallback_recoveries_; }
  /// Master messages dropped because they carried a stale session epoch.
  std::uint64_t fenced_messages() const { return fenced_messages_; }
  std::uint64_t reconnect_attempts() const { return reconnect_attempts_; }
  std::uint64_t hello_retries() const { return hello_retries_; }
  /// Highest master incarnation observed (docs/fault_tolerance.md "Master
  /// restart"); 0 = incarnation-unaware master.
  std::uint32_t master_incarnation() const { return master_incarnation_; }
  /// Master messages dropped because they carried an older incarnation
  /// (traffic from a dead master straggling in after a restart).
  std::uint64_t fenced_incarnation_messages() const { return fenced_incarnation_messages_; }
  /// Master restarts detected through an incarnation bump.
  std::uint64_t master_restarts_seen() const { return master_restarts_seen_; }
  /// Retry-after hints honored (re-sync deferred by the master's gate).
  std::uint64_t resync_deferrals() const { return resync_deferrals_; }
  /// Simulated times of reconnect attempts (capped; for jitter tests).
  const std::vector<sim::TimeUs>& reconnect_attempt_times() const {
    return reconnect_attempt_times_;
  }
  /// The per-agent jittered view of a backoff delay (exposed so tests can
  /// assert that distinct agents spread out without replaying the clock).
  sim::TimeUs jittered_backoff(sim::TimeUs backoff) const;
  std::size_t queued_decisions() const { return dl_decision_queue_.size(); }
  /// Policy reconfigurations accepted / rejected by the two-phase apply.
  std::uint64_t policies_applied() const { return policies_applied_; }
  std::uint64_t policies_rejected() const { return policies_rejected_; }

 private:
  void handle_message(std::span<const std::uint8_t> data);
  void handle_envelope(const proto::Envelope& envelope);
  void send_hello();
  void on_transport_disconnect(const util::Error& error);
  void try_reconnect(sim::TimeUs next_backoff);

  template <typename M>
  void send_message(const M& message, std::uint32_t xid = 0);

  std::optional<lte::SchedulingDecision> take_dl_decision(std::int64_t subframe);
  void execute_handover(lte::Rnti rnti, lte::CellId target);
  /// Guard failure hook: turns a verdict into a vsf_failure /
  /// vsf_quarantined triggered event for the master.
  void on_vsf_failure(const VsfFailureRecord& record);

  sim::Simulator& sim_;
  stack::EnodebDataPlane& data_plane_;
  AgentConfig config_;
  AgentApi api_;
  VsfCache cache_;
  MacControlModule mac_;
  RrcControlModule rrc_;
  VsfGuard guard_;
  ReportsManager reports_;

  net::Transport* transport_ = nullptr;  // not owned

  /// Schedule-ahead buffer: master decisions keyed by target subframe.
  std::map<std::int64_t, lte::SchedulingDecision> dl_decision_queue_;
  std::set<proto::EventType> subscribed_events_;

  proto::SignalingAccountant tx_accounting_;
  proto::SignalingAccountant rx_accounting_;
  /// Per-link scratch for the zero-allocation wire path
  /// (docs/wire_fastpath.md): the send encoder and receive envelope are
  /// cleared and reused per message, so steady-state signaling touches the
  /// allocator only when a message outgrows every previous one.
  proto::WireEncoder send_enc_;
  proto::Envelope rx_envelope_;
  /// Latest master envelope timestamp not yet echoed (0 = none): attached
  /// as ts_echo_us to the next outgoing message, then cleared, feeding the
  /// master's end-to-end control-latency histogram
  /// (docs/observability.md). Zero-cost when the master never stamps.
  std::uint64_t pending_ts_echo_us_ = 0;
  std::uint64_t missed_deadline_decisions_ = 0;
  std::uint64_t remote_decisions_applied_ = 0;
  std::uint64_t messages_received_ = 0;
  std::uint64_t fallback_activations_ = 0;
  std::uint64_t fallback_recoveries_ = 0;
  std::uint64_t fenced_messages_ = 0;
  std::uint64_t reconnect_attempts_ = 0;
  std::uint64_t hello_retries_ = 0;
  std::uint64_t policies_applied_ = 0;
  std::uint64_t policies_rejected_ = 0;
  std::int64_t last_master_contact_subframe_ = 0;
  std::int64_t last_hello_subframe_ = 0;
  std::uint32_t session_epoch_ = 0;
  /// Highest master incarnation seen; older-incarnation messages fence.
  std::uint32_t master_incarnation_ = 0;
  std::uint64_t fenced_incarnation_messages_ = 0;
  std::uint64_t master_restarts_seen_ = 0;
  std::uint64_t resync_deferrals_ = 0;
  /// While set, the hello retry loop stays quiet (a restarted master's
  /// admission gate asked us to hold).
  sim::TimeUs hello_hold_until_ = 0;
  std::vector<sim::TimeUs> reconnect_attempt_times_;
  bool master_heard_this_session_ = false;
  bool fallback_active_ = false;
  bool reconnect_pending_ = false;
  ReconnectProvider reconnect_provider_;
  HandoverSink handover_sink_;
  std::uint64_t handovers_executed_ = 0;
  std::uint32_t next_xid_ = 1;
};

}  // namespace flexran::agent
