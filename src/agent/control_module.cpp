#include "agent/control_module.h"

namespace flexran::agent {

util::Status ControlModule::set_behavior(const std::string& slot_name,
                                         const std::string& implementation) {
  auto it = slots_.find(slot_name);
  if (it == slots_.end()) {
    return util::Error::not_found("module " + name_ + " has no slot " + slot_name);
  }
  Vsf* vsf = cache_->get(name_, slot_name, implementation);
  if (vsf == nullptr) {
    return util::Error::not_found("implementation not in cache: " +
                                  vsf_key(name_, slot_name, implementation));
  }
  auto valid = validate(slot_name, *vsf);
  if (!valid.ok()) return valid;
  it->second.impl_name = implementation;
  it->second.vsf = vsf;
  on_behavior_changed(slot_name, vsf);
  return {};
}

util::Status ControlModule::set_parameter(const std::string& slot_name, std::string_view key,
                                          const util::YamlNode& value) {
  auto it = slots_.find(slot_name);
  if (it == slots_.end()) {
    return util::Error::not_found("module " + name_ + " has no slot " + slot_name);
  }
  if (it->second.vsf == nullptr) {
    return util::Error::conflict("slot " + slot_name + " has no active implementation");
  }
  return it->second.vsf->set_parameter(key, value);
}

std::string ControlModule::active_implementation(const std::string& slot_name) const {
  const Slot* s = slot(slot_name);
  return s == nullptr ? "" : s->impl_name;
}

// ------------------------------------------------------------------- MAC --

MacControlModule::MacControlModule(VsfCache& cache) : ControlModule(kName, cache) {
  declare_slot(kDlSchedulerSlot);
  declare_slot(kUlSchedulerSlot);
}

util::Status MacControlModule::validate(const std::string& slot, Vsf& vsf) const {
  if (slot == kDlSchedulerSlot && dynamic_cast<DlSchedulerVsf*>(&vsf) == nullptr) {
    return util::Error::invalid_argument("VSF is not a DL scheduler");
  }
  if (slot == kUlSchedulerSlot && dynamic_cast<UlSchedulerVsf*>(&vsf) == nullptr) {
    return util::Error::invalid_argument("VSF is not a UL scheduler");
  }
  return {};
}

void MacControlModule::on_behavior_changed(const std::string& slot, Vsf* vsf) {
  if (slot == kDlSchedulerSlot) dl_scheduler_ = dynamic_cast<DlSchedulerVsf*>(vsf);
  if (slot == kUlSchedulerSlot) ul_scheduler_ = dynamic_cast<UlSchedulerVsf*>(vsf);
}

// ------------------------------------------------------------------- RRC --

RrcControlModule::RrcControlModule(VsfCache& cache) : ControlModule(kName, cache) {
  declare_slot(kHandoverPolicySlot);
}

util::Status RrcControlModule::validate(const std::string& slot, Vsf& vsf) const {
  if (slot == kHandoverPolicySlot && dynamic_cast<HandoverPolicyVsf*>(&vsf) == nullptr) {
    return util::Error::invalid_argument("VSF is not a handover policy");
  }
  return {};
}

void RrcControlModule::on_behavior_changed(const std::string& slot, Vsf* vsf) {
  if (slot == kHandoverPolicySlot) handover_policy_ = dynamic_cast<HandoverPolicyVsf*>(vsf);
}

// ------------------------------------------------------ policy application

util::Status apply_policy_document(const util::YamlNode& root,
                                   std::span<ControlModule* const> modules) {
  if (!root.is_map()) return util::Error::invalid_argument("policy root must be a map");
  // Structure (paper Fig. 3):
  //   <module>:
  //     <vsf slot>:
  //       behavior: <cached implementation>
  //       parameters: { key: value, ... }
  for (const auto& [module_name, slots] : root.entries()) {
    ControlModule* module = nullptr;
    for (ControlModule* candidate : modules) {
      if (candidate->name() == module_name) {
        module = candidate;
        break;
      }
    }
    if (module == nullptr) {
      return util::Error::not_found("unknown control module: " + module_name);
    }
    if (!slots.is_map()) {
      return util::Error::invalid_argument("module entry must map VSF slots");
    }
    for (const auto& [slot_name, spec] : slots.entries()) {
      if (const auto* behavior = spec.find("behavior"); behavior != nullptr) {
        auto status = module->set_behavior(slot_name, behavior->as_string());
        if (!status.ok()) return status;
      }
      if (const auto* parameters = spec.find("parameters"); parameters != nullptr) {
        for (const auto& [key, value] : parameters->entries()) {
          auto status = module->set_parameter(slot_name, key, value);
          if (!status.ok()) return status;
        }
      }
    }
  }
  return {};
}

util::Status apply_policy_yaml(const std::string& yaml,
                               std::span<ControlModule* const> modules) {
  auto doc = util::parse_yaml(yaml);
  if (!doc.ok()) return doc.error();
  return apply_policy_document(doc.value(), modules);
}

}  // namespace flexran::agent
