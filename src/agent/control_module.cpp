#include "agent/control_module.h"

namespace flexran::agent {

util::Status ControlModule::set_behavior(const std::string& slot_name,
                                         const std::string& implementation) {
  auto it = slots_.find(slot_name);
  if (it == slots_.end()) {
    return util::Error::not_found("module " + name_ + " has no slot " + slot_name);
  }
  if (cache_->is_quarantined(name_, slot_name, implementation)) {
    return util::Error::conflict("implementation quarantined: " +
                                 vsf_key(name_, slot_name, implementation) +
                                 " (push a fresh VSF updation to restore)");
  }
  Vsf* vsf = cache_->get(name_, slot_name, implementation);
  if (vsf == nullptr) {
    return util::Error::not_found("implementation not in cache: " +
                                  vsf_key(name_, slot_name, implementation));
  }
  auto valid = validate(slot_name, *vsf);
  if (!valid.ok()) return valid;
  it->second.impl_name = implementation;
  it->second.vsf = vsf;
  on_behavior_changed(slot_name, vsf);
  return {};
}

util::Status ControlModule::validate_behavior(const std::string& slot_name,
                                              const std::string& implementation) const {
  if (!slots_.contains(slot_name)) {
    return util::Error::not_found("module " + name_ + " has no slot " + slot_name);
  }
  if (cache_->is_quarantined(name_, slot_name, implementation)) {
    return util::Error::conflict("implementation quarantined: " +
                                 vsf_key(name_, slot_name, implementation) +
                                 " (push a fresh VSF updation to restore)");
  }
  Vsf* vsf = cache_->get(name_, slot_name, implementation);
  if (vsf == nullptr) {
    return util::Error::not_found("implementation not in cache: " +
                                  vsf_key(name_, slot_name, implementation));
  }
  return validate(slot_name, *vsf);
}

util::Status ControlModule::set_parameter(const std::string& slot_name, std::string_view key,
                                          const util::YamlNode& value) {
  auto it = slots_.find(slot_name);
  if (it == slots_.end()) {
    return util::Error::not_found("module " + name_ + " has no slot " + slot_name);
  }
  if (it->second.vsf == nullptr) {
    return util::Error::conflict("slot " + slot_name + " has no active implementation");
  }
  return it->second.vsf->set_parameter(key, value);
}

util::Status ControlModule::validate_parameter(const std::string& slot_name,
                                               const std::string& behavior,
                                               std::string_view key,
                                               const util::YamlNode& value) const {
  const Slot* s = slot(slot_name);
  if (s == nullptr) {
    return util::Error::not_found("module " + name_ + " has no slot " + slot_name);
  }
  const Vsf* target =
      behavior.empty() ? s->vsf : cache_->get(name_, slot_name, behavior);
  if (target == nullptr) {
    return util::Error::conflict("slot " + slot_name + " has no active implementation");
  }
  return target->validate_parameter(key, value);
}

std::string ControlModule::active_implementation(const std::string& slot_name) const {
  const Slot* s = slot(slot_name);
  return s == nullptr ? "" : s->impl_name;
}

// ------------------------------------------------------------------- MAC --

MacControlModule::MacControlModule(VsfCache& cache) : ControlModule(kName, cache) {
  declare_slot(kDlSchedulerSlot);
  declare_slot(kUlSchedulerSlot);
}

util::Status MacControlModule::validate(const std::string& slot, Vsf& vsf) const {
  if (slot == kDlSchedulerSlot && dynamic_cast<DlSchedulerVsf*>(&vsf) == nullptr) {
    return util::Error::invalid_argument("VSF is not a DL scheduler");
  }
  if (slot == kUlSchedulerSlot && dynamic_cast<UlSchedulerVsf*>(&vsf) == nullptr) {
    return util::Error::invalid_argument("VSF is not a UL scheduler");
  }
  return {};
}

void MacControlModule::on_behavior_changed(const std::string& slot, Vsf* vsf) {
  if (slot == kDlSchedulerSlot) dl_scheduler_ = dynamic_cast<DlSchedulerVsf*>(vsf);
  if (slot == kUlSchedulerSlot) ul_scheduler_ = dynamic_cast<UlSchedulerVsf*>(vsf);
}

// ------------------------------------------------------------------- RRC --

RrcControlModule::RrcControlModule(VsfCache& cache) : ControlModule(kName, cache) {
  declare_slot(kHandoverPolicySlot);
}

util::Status RrcControlModule::validate(const std::string& slot, Vsf& vsf) const {
  if (slot == kHandoverPolicySlot && dynamic_cast<HandoverPolicyVsf*>(&vsf) == nullptr) {
    return util::Error::invalid_argument("VSF is not a handover policy");
  }
  return {};
}

void RrcControlModule::on_behavior_changed(const std::string& slot, Vsf* vsf) {
  if (slot == kHandoverPolicySlot) handover_policy_ = dynamic_cast<HandoverPolicyVsf*>(vsf);
}

// ------------------------------------------------------ policy application

namespace {

ControlModule* find_module(std::span<ControlModule* const> modules,
                           const std::string& module_name) {
  for (ControlModule* candidate : modules) {
    if (candidate->name() == module_name) return candidate;
  }
  return nullptr;
}

// First phase of atomic application: checks the full document without
// mutating any module, so a rejection cannot leave a policy half-applied.
util::Status validate_policy_document(const util::YamlNode& root,
                                      std::span<ControlModule* const> modules) {
  if (!root.is_map()) return util::Error::invalid_argument("policy root must be a map");
  for (const auto& [module_name, slots] : root.entries()) {
    const ControlModule* module = find_module(modules, module_name);
    if (module == nullptr) {
      return util::Error::not_found("unknown control module: " + module_name);
    }
    if (!slots.is_map()) {
      return util::Error::invalid_argument("module entry must map VSF slots");
    }
    for (const auto& [slot_name, spec] : slots.entries()) {
      if (!module->has_slot(slot_name)) {
        return util::Error::not_found("module " + module_name + " has no slot " + slot_name);
      }
      if (!spec.is_map()) {
        return util::Error::invalid_argument("slot entry " + module_name + "/" + slot_name +
                                             " must be a map (behavior / parameters)");
      }
      std::string behavior_name;
      if (const auto* behavior = spec.find("behavior"); behavior != nullptr) {
        if (!behavior->is_scalar()) {
          return util::Error::invalid_argument("behavior for " + module_name + "/" + slot_name +
                                               " must be a scalar implementation name");
        }
        behavior_name = behavior->as_string();
        auto status = module->validate_behavior(slot_name, behavior_name);
        if (!status.ok()) return status;
      }
      if (const auto* parameters = spec.find("parameters"); parameters != nullptr) {
        if (!parameters->is_map()) {
          return util::Error::invalid_argument("parameters for " + module_name + "/" +
                                               slot_name + " must be a map");
        }
        for (const auto& [key, value] : parameters->entries()) {
          auto status = module->validate_parameter(slot_name, behavior_name, key, value);
          if (!status.ok()) return status;
        }
      }
    }
  }
  return {};
}

}  // namespace

util::Status apply_policy_document(const util::YamlNode& root,
                                   std::span<ControlModule* const> modules) {
  // Structure (paper Fig. 3):
  //   <module>:
  //     <vsf slot>:
  //       behavior: <cached implementation>
  //       parameters: { key: value, ... }
  //
  // Two phases: validate everything, then apply. The apply phase can only
  // fail if a validate_parameter override disagrees with set_parameter --
  // a VSF implementation bug -- and in that case we still stop at the
  // first error.
  auto valid = validate_policy_document(root, modules);
  if (!valid.ok()) return valid;
  for (const auto& [module_name, slots] : root.entries()) {
    ControlModule* module = find_module(modules, module_name);
    for (const auto& [slot_name, spec] : slots.entries()) {
      if (const auto* behavior = spec.find("behavior"); behavior != nullptr) {
        auto status = module->set_behavior(slot_name, behavior->as_string());
        if (!status.ok()) return status;
      }
      if (const auto* parameters = spec.find("parameters"); parameters != nullptr) {
        for (const auto& [key, value] : parameters->entries()) {
          auto status = module->set_parameter(slot_name, key, value);
          if (!status.ok()) return status;
        }
      }
    }
  }
  return {};
}

util::Status apply_policy_yaml(const std::string& yaml,
                               std::span<ControlModule* const> modules) {
  auto doc = util::parse_yaml(yaml);
  if (!doc.ok()) return doc.error();
  return apply_policy_document(doc.value(), modules);
}

}  // namespace flexran::agent
