// Delegated-control containment (the robustness counterpart of paper
// Sec. 4.3.1): every CMI slot invocation runs through VsfGuard, which
// treats pushed VSF code as untrusted. The guard
//
//   1. catches exceptions escaping a VSF,
//   2. enforces a per-invocation deadline budget (simulated time via
//      Vsf::declared_cost_us, backstopped by a generous wall-clock cap for
//      real overruns under the testbed),
//   3. validates every SchedulingDecision against the cell configuration
//      before it reaches the MAC (PRB bounds per carrier, overlapping
//      allocations, unknown RNTIs, out-of-range MCS), and
//   4. on any failure falls back to the built-in local default VSF for
//      that slot within the SAME TTI, so the data plane never misses a
//      scheduling opportunity.
//
// Failures are counted per cached implementation; after
// `quarantine_threshold` consecutive failures the implementation is
// quarantined in the VsfCache (policy reconfiguration to it is rejected
// until the master pushes a fresh VSF updation) and the slot is relinked
// to the fallback implementation. The failure hook lets the Agent turn
// guard verdicts into vsf_failure / vsf_quarantined triggered events.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "agent/control_module.h"
#include "agent/vsf.h"
#include "proto/messages.h"
#include "util/stats.h"

namespace flexran::agent {

struct VsfGuardConfig {
  /// Consecutive failures of one implementation before quarantine.
  std::uint32_t quarantine_threshold = 3;
  /// Simulated-time budget per invocation, charged from declared_cost_us().
  /// Default: one 1 ms TTI.
  std::int64_t budget_us = 1000;
  /// Wall-clock backstop for real (undeclared) overruns. Deliberately
  /// generous so legitimate schedulers never trip it under sanitizers or
  /// debug builds; an infinite loop still gets caught.
  std::int64_t wall_clock_cap_us = 250'000;
};

/// One guard verdict, delivered to the failure hook (and from there to the
/// master as a triggered event).
struct VsfFailureRecord {
  std::string module;
  std::string slot;
  std::string implementation;
  proto::VsfFailureKind kind = proto::VsfFailureKind::none;
  std::uint32_t consecutive_failures = 0;
  bool quarantined = false;
  std::int64_t subframe = 0;
  std::string detail;
};

class VsfGuard {
 public:
  using FailureHook = std::function<void(const VsfFailureRecord&)>;

  VsfGuard(VsfGuardConfig config, VsfCache& cache) : config_(config), cache_(&cache) {}

  void set_failure_hook(FailureHook hook) { hook_ = std::move(hook); }
  const VsfGuardConfig& config() const { return config_; }

  /// Guarded invocation of the MAC DL / UL scheduling slots. Always returns
  /// a decision that is safe to hand to the MAC (possibly empty).
  /// `fallback_impl` names the built-in local default in the VsfCache.
  lte::SchedulingDecision run_dl(MacControlModule& mac, const std::string& fallback_impl,
                                 AgentApi& api, std::int64_t subframe);
  lte::SchedulingDecision run_ul(MacControlModule& mac, const std::string& fallback_impl,
                                 AgentApi& api, std::int64_t subframe);

  /// Guarded invocation of the RRC handover-policy slot.
  std::optional<HandoverDecision> run_handover(RrcControlModule& rrc,
                                               const std::string& fallback_impl, AgentApi& api,
                                               std::int64_t subframe);

  /// Checks a decision against the cell configuration: per-carrier PRB
  /// bounds (dl_prbs / scell_prbs / ul_prbs), non-empty grants, overlap
  /// within a carrier, MCS range, RNTIs known to the MAC. Empty decisions
  /// short-circuit before any per-DCI work (and before validations_run()
  /// is incremented) -- the common nothing-to-send TTI costs nothing.
  util::Status validate_decision(const lte::SchedulingDecision& decision, const AgentApi& api);

  // Introspection.
  std::uint64_t vsf_failures() const { return vsf_failures_; }
  std::uint64_t quarantines() const { return quarantines_; }
  std::uint64_t fallback_decisions() const { return fallback_decisions_; }
  std::uint64_t unscheduled_slots() const { return unscheduled_slots_; }
  std::uint64_t validations_run() const { return validations_run_; }
  /// Invocations of an implementation that was already quarantined (and is
  /// not the designated fallback). The quarantine relink in note_failure
  /// is supposed to make this impossible; the InvariantMonitor reads it
  /// every coordinator cycle and flags any increase
  /// (docs/fault_tolerance.md, invariant catalog).
  std::uint64_t quarantined_invocations() const { return quarantined_invocations_; }
  /// Wall-clock time from failure detection to a validated fallback
  /// decision, per fallback invocation (the bench's "fallback latency").
  const util::RunningStats& fallback_latency_us() const { return fallback_latency_us_; }

 private:
  struct InvokeOutcome {
    proto::VsfFailureKind kind = proto::VsfFailureKind::none;
    std::string detail;
    bool failed() const { return kind != proto::VsfFailureKind::none; }
  };

  /// Budget check + exception containment around one VSF invocation.
  InvokeOutcome invoke_checked(const Vsf& vsf, const std::function<void()>& body);
  /// Failure bookkeeping: per-impl counters, quarantine + slot relink to
  /// the fallback, hook dispatch.
  void note_failure(ControlModule& module, const std::string& slot, const std::string& impl,
                    const std::string& fallback_impl, const InvokeOutcome& outcome,
                    std::int64_t subframe);

  lte::SchedulingDecision run_mac_slot(
      MacControlModule& mac, const std::string& slot, const std::string& fallback_impl,
      AgentApi& api, std::int64_t subframe,
      const std::function<lte::SchedulingDecision(Vsf&)>& invoke);

  VsfGuardConfig config_;
  VsfCache* cache_;  // not owned
  FailureHook hook_;

  std::uint64_t vsf_failures_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t fallback_decisions_ = 0;
  std::uint64_t unscheduled_slots_ = 0;
  std::uint64_t validations_run_ = 0;
  std::uint64_t quarantined_invocations_ = 0;
  util::RunningStats fallback_latency_us_;
};

}  // namespace flexran::agent
