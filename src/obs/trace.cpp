#include "obs/trace.h"

#include <algorithm>

namespace flexran::obs {

TraceRing::TraceRing(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceRing::add(const CycleTrace& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_] = trace;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
  updater_us_.add(trace.updater_us);
  event_us_.add(trace.event_us);
  apps_us_.add(trace.apps_us);
  flush_us_.add(trace.flush_us);
}

std::uint64_t TraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::vector<CycleTrace> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CycleTrace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

util::RunningStats TraceRing::updater_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return updater_us_;
}

util::RunningStats TraceRing::event_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return event_us_;
}

util::RunningStats TraceRing::apps_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return apps_us_;
}

util::RunningStats TraceRing::flush_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flush_us_;
}

}  // namespace flexran::obs
