#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace flexran::obs {

namespace {

void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double updated = std::bit_cast<double>(expected) + delta;
    if (bits.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(updated),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// `name{k=v,...}` -> `name{k="v",...}` (Prometheus exposition quoting).
std::string prometheus_name(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return name;
  std::string out = name.substr(0, brace + 1);
  std::size_t i = brace + 1;
  while (i < name.size() && name[i] != '}') {
    const auto eq = name.find('=', i);
    auto end = name.find(',', i);
    if (end == std::string::npos || end > name.find('}', i)) end = name.find('}', i);
    if (eq == std::string::npos || eq > end) break;
    out.append(name, i, eq - i + 1);
    out.push_back('"');
    out.append(name, eq + 1, end - eq - 1);
    out.push_back('"');
    if (name[end] == ',') out.push_back(',');
    i = end + 1;
  }
  out.push_back('}');
  return out;
}

/// Same quoting, with an extra label appended inside the block (for
/// histogram quantile lines).
std::string prometheus_name_with(const std::string& name, const std::string& extra) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return name + "{" + extra + "}";
  std::string quoted = prometheus_name(name);
  quoted.insert(quoted.size() - 1, "," + extra);
  return quoted;
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

void Gauge::set(double v) {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) bounds_.push_back(1.0);
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_bits_, sample);
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::mean() const {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return i <= bounds_.size() ? buckets_[i].load(std::memory_order_relaxed) : 0;
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target, then linear interpolation across the bucket that
  // contains it (the standard fixed-bucket estimator).
  const double rank = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      if (i == bounds_.size()) return bounds_.back();  // overflow: clamp
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double fraction = std::clamp((rank - cumulative) / in_bucket, 0.0, 1.0);
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

std::vector<double> exponential_bounds(double start, double factor, std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::string labeled(std::string name,
                    std::initializer_list<std::pair<const char*, std::string>> labels) {
  if (labels.size() == 0) return name;
  name.push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) name.push_back(',');
    first = false;
    name += key;
    name.push_back('=');
    name += value;
  }
  name.push_back('}');
  return name;
}

std::string labeled(std::string name,
                    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return name;
  name.push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) name.push_back(',');
    first = false;
    name += key;
    name.push_back('=');
    name += value;
  }
  name.push_back('}');
  return name;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

void MetricsRegistry::register_probe(const std::string& name, std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_[name] = std::move(fn);
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() + probes_.size();
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += prometheus_name(name) + " " + format_number(static_cast<double>(counter->value())) +
           "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += prometheus_name(name) + " " + format_number(gauge->value()) + "\n";
  }
  for (const auto& [name, probe] : probes_) {
    out += prometheus_name(name) + " " + format_number(probe()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out += prometheus_name(name + "_count") + " " +
           format_number(static_cast<double>(histogram->count())) + "\n";
    out += prometheus_name(name + "_sum") + " " + format_number(histogram->sum()) + "\n";
    for (const auto& [q, label] :
         {std::pair<double, const char*>{0.5, "quantile=\"0.5\""},
          std::pair<double, const char*>{0.95, "quantile=\"0.95\""},
          std::pair<double, const char*>{0.99, "quantile=\"0.99\""}}) {
      out += prometheus_name_with(name, label) + " " + format_number(histogram->quantile(q)) +
             "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::json(std::int64_t t_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& name, const std::string& value) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += value;
  };
  if (t_us >= 0) append("t_us", format_number(static_cast<double>(t_us)));
  for (const auto& [name, counter] : counters_) {
    append(name, format_number(static_cast<double>(counter->value())));
  }
  for (const auto& [name, gauge] : gauges_) append(name, format_number(gauge->value()));
  for (const auto& [name, probe] : probes_) append(name, format_number(probe()));
  for (const auto& [name, histogram] : histograms_) {
    std::string value = "{\"count\":" + format_number(static_cast<double>(histogram->count())) +
                        ",\"sum\":" + format_number(histogram->sum()) +
                        ",\"p50\":" + format_number(histogram->p50()) +
                        ",\"p95\":" + format_number(histogram->p95()) +
                        ",\"p99\":" + format_number(histogram->p99()) + "}";
    append(name, value);
  }
  out.push_back('}');
  return out;
}

}  // namespace flexran::obs
