// Control-loop tracing (docs/observability.md): one CycleTrace record per
// Task Manager cycle, spanning the updater slot, the Event Notification
// Service, the application slot, and the command-batch flush onto the
// wire. Records land in a fixed-capacity ring (most recent N cycles kept
// verbatim) plus per-stage RunningStats over every cycle ever recorded.
//
// Single-writer by construction: only the Task Manager coordinator thread
// calls add(), matching its cycle loop. Readers (exporters, benches,
// tests) take the ring mutex, which the writer holds only for the O(1)
// append -- tracing is off entirely (no clock reads, no ring) unless a
// TraceRing is attached, preserving the repo's zero-cost-when-off
// convention.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/stats.h"

namespace flexran::obs {

/// Stage timings for one Task Manager cycle, in microseconds of wall time.
struct CycleTrace {
  std::int64_t cycle = 0;
  double updater_us = 0.0;   // RIB updater slot (drain + overload step + publish)
  double event_us = 0.0;     // Event Notification Service dispatch
  double apps_us = 0.0;      // application slot (all tiers)
  double flush_us = 0.0;     // command-batch flush onto the wire
  std::size_t updates_applied = 0;   // agent messages drained into the RIB
  std::uint64_t commands_flushed = 0;  // commands sent at slot retirement
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096);

  void add(const CycleTrace& trace);

  /// Cycles ever recorded (>= size() once the ring wraps).
  std::uint64_t recorded() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Retained records, oldest first.
  std::vector<CycleTrace> snapshot() const;

  util::RunningStats updater_us() const;
  util::RunningStats event_us() const;
  util::RunningStats apps_us() const;
  util::RunningStats flush_us() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<CycleTrace> ring_;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
  util::RunningStats updater_us_;
  util::RunningStats event_us_;
  util::RunningStats apps_us_;
  util::RunningStats flush_us_;
};

}  // namespace flexran::obs
