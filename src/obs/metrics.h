// Unified observability layer (docs/observability.md): a process-wide
// metrics registry of named counters, gauges and fixed-bucket latency
// histograms. Instruments are registered once (under a mutex) and then
// sampled lock-free on the hot path: Counter::inc / Gauge::set /
// Histogram::observe are a relaxed atomic op each, safe from any thread.
//
// The registry also supports pull-model "probes" -- callbacks evaluated
// only at export time -- which is how the pre-existing ad-hoc counters
// (SignalingAccountant buckets, ClassedQueue shed/coalesce counters,
// TaskManager wall stats, OverloadMonitor state, SimTransport link
// counters) are migrated without adding a single instruction to their
// hot paths. Export formats: a Prometheus-style text snapshot and a JSON
// object (one flat map keyed by instrument name).
//
// Instrument names follow Prometheus conventions with an optional label
// block appended as `name{key=value,...}` (values unquoted internally;
// prometheus_text() adds the quoting).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace flexran::obs {

/// Monotonic counter; relaxed atomic increment on the hot path.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (a double, stored bit-cast so set/read stay lock-free).
class Gauge {
 public:
  void set(double v);
  double value() const;

 private:
  std::atomic<std::uint64_t> bits_{0};  // bit pattern of 0.0 is 0
};

/// Fixed-bucket latency histogram. Bucket `i` counts samples in
/// (bounds[i-1], bounds[i]]; one implicit overflow bucket catches samples
/// above the last bound. observe() is a branch-free-ish binary search plus
/// two relaxed atomic adds -- no locks, callable concurrently.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double sample);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double mean() const;
  /// q in [0, 1]; linear interpolation inside the selected bucket. Returns
  /// 0 on an empty histogram; overflow-bucket quantiles clamp to the last
  /// bound (the histogram cannot resolve beyond it).
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; index bounds().size() is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // bit pattern of the double sum
};

/// `count` bounds starting at `start`, each `factor` times the previous --
/// the usual latency-bucket layout (e.g. 10us .. ~10ms for factor 2).
std::vector<double> exponential_bounds(double start, double factor, std::size_t count);

/// Renders `name{k=v,...}` (no quotes; empty label list = bare name).
std::string labeled(std::string name,
                    std::initializer_list<std::pair<const char*, std::string>> labels);
/// Same, for label sets composed at runtime (e.g. a conditional `shard`
/// label appended to a per-agent set).
std::string labeled(std::string name,
                    const std::vector<std::pair<std::string, std::string>>& labels);

/// Named-instrument registry. Registration (counter/gauge/histogram/
/// register_probe) takes a mutex and is expected at setup time; returned
/// references stay valid for the registry's lifetime, so hot paths hold a
/// pointer and never re-look-up. Export walks every instrument and
/// evaluates every probe under the mutex.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Get-or-create; `upper_bounds` is used only on first creation.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  /// Pull-model gauge: `fn` runs at export time. Registering an existing
  /// name replaces the probe.
  void register_probe(const std::string& name, std::function<double()> fn);

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Instruments + probes registered.
  std::size_t size() const;

  /// Prometheus text exposition: one `name{labels} value` line per counter,
  /// gauge and probe; histograms expand to `_count`, `_sum` and quantile
  /// lines.
  std::string prometheus_text() const;
  /// One flat JSON object; histograms render as nested objects with count,
  /// sum, p50/p95/p99. `t_us >= 0` adds a "t_us" timestamp member.
  std::string json(std::int64_t t_us = -1) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> probes_;
};

}  // namespace flexran::obs
