// UE mobility: a trajectory through a laid-out set of cell sites. Each TTI
// the data plane re-derives the UE's radio profile (per-cell received
// powers) from its interpolated position, so CQI, interference, and RRC
// measurement reports all follow the motion -- the substrate for the
// mobility-management use case the paper sketches in Sec. 7.1.
#pragma once

#include <vector>

#include "lte/types.h"
#include "phy/radio_env.h"
#include "sim/simulator.h"

namespace flexran::phy {

struct CellSite {
  lte::CellId cell = 0;
  double tx_power_dbm = kMacroTxPowerDbm;
  double x_km = 0.0;
  double y_km = 0.0;
};

class MobilityTrack {
 public:
  struct Waypoint {
    sim::TimeUs at = 0;
    double x_km = 0.0;
    double y_km = 0.0;
  };

  MobilityTrack(std::vector<CellSite> sites, std::vector<Waypoint> waypoints);

  /// Position at `now` (linear interpolation; clamped at the ends).
  Waypoint position_at(sim::TimeUs now) const;

  /// Radio profile at `now` with `serving` as the serving cell.
  UeRadioProfile profile_at(sim::TimeUs now, lte::CellId serving) const;

  const std::vector<CellSite>& sites() const { return sites_; }

 private:
  std::vector<CellSite> sites_;
  std::vector<Waypoint> waypoints_;  // sorted by time
};

}  // namespace flexran::phy
