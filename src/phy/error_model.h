// Transport-block error model: draws ACK/NACK for a transmission given the
// MCS the scheduler chose and the CQI the channel actually supported at
// transmission time (stale CQI at the scheduler is how latency degrades
// throughput in Fig. 9).
#pragma once

#include "lte/tables.h"
#include "util/rng.h"

namespace flexran::phy {

class ErrorModel {
 public:
  explicit ErrorModel(std::uint64_t seed = 11) : rng_(seed) {}

  /// True if the transport block decodes. Retransmissions get a combining
  /// gain: each prior attempt halves the effective BLER.
  bool transport_block_ok(int mcs, int actual_cqi, int retx_count = 0) {
    double bler = lte::bler_for_mcs_at_cqi(mcs, actual_cqi);
    for (int i = 0; i < retx_count; ++i) bler *= 0.5;
    return !rng_.chance(bler);
  }

 private:
  util::Rng rng_;
};

}  // namespace flexran::phy
