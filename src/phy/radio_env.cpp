#include "phy/radio_env.h"

#include <cmath>

namespace flexran::phy {

namespace {
double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
double mw_to_db(double mw) { return 10.0 * std::log10(mw); }
}  // namespace

double pathloss_db(double distance_km) {
  const double d = std::max(distance_km, 0.01);  // 10 m minimum coupling distance
  return 128.1 + 37.6 * std::log10(d);
}

double UeRadioProfile::sinr_db(const std::set<lte::CellId>& active_cells) const {
  const auto serving_it = rx_power_dbm.find(serving_cell);
  if (serving_it == rx_power_dbm.end()) return -20.0;
  const double signal_mw = dbm_to_mw(serving_it->second);
  double interference_mw = 0.0;
  for (const auto& [cell, power_dbm] : rx_power_dbm) {
    if (cell == serving_cell) continue;
    if (active_cells.contains(cell)) interference_mw += dbm_to_mw(power_dbm);
  }
  const double denom_mw = interference_mw + dbm_to_mw(noise_dbm);
  return mw_to_db(signal_mw / denom_mw);
}

UeRadioProfile UeRadioProfile::from_distances(
    lte::CellId serving, double serving_tx_dbm, double serving_distance_km,
    const std::map<lte::CellId, std::pair<double, double>>& interferers) {
  UeRadioProfile profile;
  profile.serving_cell = serving;
  profile.rx_power_dbm[serving] = serving_tx_dbm - pathloss_db(serving_distance_km);
  for (const auto& [cell, tx_and_distance] : interferers) {
    profile.rx_power_dbm[cell] = tx_and_distance.first - pathloss_db(tx_and_distance.second);
  }
  return profile;
}

void RadioEnvironment::set_transmitting(lte::CellId cell, bool active) {
  if (active) {
    active_.insert(cell);
  } else {
    active_.erase(cell);
  }
}

double RadioEnvironment::sinr_db(const UeRadioProfile& profile) const {
  return profile.sinr_db(active_);
}

}  // namespace flexran::phy
