// Multi-cell radio environment with interference: per-UE received powers
// from every cell, SINR as a function of which interfering cells are
// actually transmitting in the current subframe. This is the substrate for
// the eICIC experiment (paper Sec. 6.1): during an almost-blank subframe a
// muted macro contributes no interference, so small-cell UEs see high SINR.
#pragma once

#include <map>
#include <set>

#include "lte/types.h"

namespace flexran::phy {

/// Thermal noise over 10 MHz (~ -174 dBm/Hz + 70 dB) plus a 7 dB UE noise
/// figure.
constexpr double kNoiseFloorDbm = -97.0;

/// 3GPP log-distance pathloss (TR 36.814 macro): PL(dB) = 128.1 + 37.6
/// log10(d_km).
double pathloss_db(double distance_km);

/// Typical transmit powers.
constexpr double kMacroTxPowerDbm = 46.0;
constexpr double kPicoTxPowerDbm = 30.0;

struct UeRadioProfile {
  lte::CellId serving_cell = 0;
  /// Received power per cell (serving included), dBm.
  std::map<lte::CellId, double> rx_power_dbm;
  double noise_dbm = kNoiseFloorDbm;

  /// SINR when `active_cells` (excluding the serving cell) are transmitting.
  double sinr_db(const std::set<lte::CellId>& active_cells) const;

  /// Convenience builder from geometry.
  static UeRadioProfile from_distances(lte::CellId serving, double serving_tx_dbm,
                                       double serving_distance_km,
                                       const std::map<lte::CellId, std::pair<double, double>>&
                                           interferers /* cell -> (tx_dbm, distance_km) */);
};

/// Tracks which cells transmit in the current subframe. The data plane marks
/// a cell active when its scheduler allocated any PRB; channel models that
/// depend on interference query SINR through this.
class RadioEnvironment {
 public:
  void set_transmitting(lte::CellId cell, bool active);
  bool transmitting(lte::CellId cell) const { return active_.contains(cell); }
  const std::set<lte::CellId>& active_cells() const { return active_; }
  void clear() { active_.clear(); }

  double sinr_db(const UeRadioProfile& profile) const;

 private:
  std::set<lte::CellId> active_;
};

}  // namespace flexran::phy
