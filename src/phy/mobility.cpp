#include "phy/mobility.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flexran::phy {

MobilityTrack::MobilityTrack(std::vector<CellSite> sites, std::vector<Waypoint> waypoints)
    : sites_(std::move(sites)), waypoints_(std::move(waypoints)) {
  assert(!sites_.empty() && !waypoints_.empty());
  std::sort(waypoints_.begin(), waypoints_.end(),
            [](const Waypoint& a, const Waypoint& b) { return a.at < b.at; });
}

MobilityTrack::Waypoint MobilityTrack::position_at(sim::TimeUs now) const {
  if (now <= waypoints_.front().at) return waypoints_.front();
  if (now >= waypoints_.back().at) return waypoints_.back();
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (now <= waypoints_[i].at) {
      const Waypoint& a = waypoints_[i - 1];
      const Waypoint& b = waypoints_[i];
      const double frac =
          static_cast<double>(now - a.at) / static_cast<double>(b.at - a.at);
      return {now, a.x_km + frac * (b.x_km - a.x_km), a.y_km + frac * (b.y_km - a.y_km)};
    }
  }
  return waypoints_.back();
}

UeRadioProfile MobilityTrack::profile_at(sim::TimeUs now, lte::CellId serving) const {
  const Waypoint pos = position_at(now);
  UeRadioProfile profile;
  profile.serving_cell = serving;
  for (const auto& site : sites_) {
    const double dx = pos.x_km - site.x_km;
    const double dy = pos.y_km - site.y_km;
    const double distance = std::sqrt(dx * dx + dy * dy);
    profile.rx_power_dbm[site.cell] = site.tx_power_dbm - pathloss_db(distance);
  }
  return profile;
}

}  // namespace flexran::phy
