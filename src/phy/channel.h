// Emulated-PHY channel models. A ChannelModel produces the wideband CQI a UE
// would report at a given time; the data-plane MAC samples it each CQI
// reporting period. The paper runs most experiments with OAI's PHY
// abstraction and controlled CQI (Secs. 5.2, 6.2); these models give the
// same control knobs.
#pragma once

#include <memory>
#include <vector>

#include "lte/tables.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace flexran::phy {

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;
  /// Wideband SINR seen by the UE at simulated time `now`.
  virtual double sinr_db(sim::TimeUs now) = 0;
  /// Reported wideband CQI at `now` (derived from SINR by default).
  virtual int cqi(sim::TimeUs now) { return lte::sinr_db_to_cqi(sinr_db(now)); }
};

/// Constant channel pinned to an exact CQI (Table 2 / Fig. 11 style).
class FixedCqiChannel final : public ChannelModel {
 public:
  explicit FixedCqiChannel(int cqi) : cqi_(cqi) {}
  double sinr_db(sim::TimeUs) override { return lte::cqi_to_sinr_db(cqi_); }
  int cqi(sim::TimeUs) override { return cqi_; }
  void set_cqi(int cqi) { cqi_ = cqi; }

 private:
  int cqi_;
};

/// Piecewise-constant CQI schedule: [(t0, cqi0), (t1, cqi1), ...]. Used to
/// emulate the controlled channel fluctuations of the MEC experiment
/// (Fig. 11: CQI toggling 3<->2 and 10<->4).
class ScheduledCqiChannel final : public ChannelModel {
 public:
  struct Step {
    sim::TimeUs at;
    int cqi;
  };
  explicit ScheduledCqiChannel(std::vector<Step> steps);

  double sinr_db(sim::TimeUs now) override { return lte::cqi_to_sinr_db(cqi(now)); }
  int cqi(sim::TimeUs now) override;

  /// Convenience: square wave toggling between two CQIs.
  static std::unique_ptr<ScheduledCqiChannel> square_wave(int cqi_a, int cqi_b,
                                                          sim::TimeUs half_period,
                                                          sim::TimeUs total_duration);

 private:
  std::vector<Step> steps_;  // sorted by time
};

/// Replays a recorded CQI trace at a fixed sample period (holding the last
/// value past the end, or looping). Lets measured drive-test traces or
/// externally generated fading processes drive the emulated PHY.
class TraceCqiChannel final : public ChannelModel {
 public:
  TraceCqiChannel(std::vector<int> samples, sim::TimeUs sample_period, bool loop = false);

  double sinr_db(sim::TimeUs now) override { return lte::cqi_to_sinr_db(cqi(now)); }
  int cqi(sim::TimeUs now) override;
  std::size_t length() const { return samples_.size(); }

 private:
  std::vector<int> samples_;
  sim::TimeUs sample_period_;
  bool loop_;
};

/// Bounded random walk over SINR around a mean -- a cheap block-fading model
/// used to make remote scheduling decisions go stale with latency (Fig. 9).
class FadingChannel final : public ChannelModel {
 public:
  struct Config {
    double mean_sinr_db = 18.0;
    double stddev_db = 3.0;
    /// Coherence time: SINR is re-drawn (AR(1)) once per block.
    sim::TimeUs coherence = 20 * sim::kTtiUs;
    /// AR(1) memory in (0, 1); closer to 1 = slower fading.
    double memory = 0.85;
    std::uint64_t seed = 7;
  };
  explicit FadingChannel(Config config);

  double sinr_db(sim::TimeUs now) override;

 private:
  void advance_to(sim::TimeUs now);

  Config config_;
  util::Rng rng_;
  sim::TimeUs block_end_ = 0;
  double current_db_;
};

}  // namespace flexran::phy
