#include "phy/error_model.h"

// ErrorModel is header-only; this TU anchors the library target.
