#include "phy/channel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flexran::phy {

ScheduledCqiChannel::ScheduledCqiChannel(std::vector<Step> steps) : steps_(std::move(steps)) {
  assert(!steps_.empty());
  std::sort(steps_.begin(), steps_.end(),
            [](const Step& a, const Step& b) { return a.at < b.at; });
}

int ScheduledCqiChannel::cqi(sim::TimeUs now) {
  int current = steps_.front().cqi;
  for (const auto& step : steps_) {
    if (step.at > now) break;
    current = step.cqi;
  }
  return current;
}

std::unique_ptr<ScheduledCqiChannel> ScheduledCqiChannel::square_wave(int cqi_a, int cqi_b,
                                                                      sim::TimeUs half_period,
                                                                      sim::TimeUs total_duration) {
  std::vector<Step> steps;
  bool use_a = true;
  for (sim::TimeUs t = 0; t < total_duration; t += half_period) {
    steps.push_back({t, use_a ? cqi_a : cqi_b});
    use_a = !use_a;
  }
  return std::make_unique<ScheduledCqiChannel>(std::move(steps));
}

TraceCqiChannel::TraceCqiChannel(std::vector<int> samples, sim::TimeUs sample_period, bool loop)
    : samples_(std::move(samples)), sample_period_(sample_period), loop_(loop) {
  assert(!samples_.empty() && sample_period_ > 0);
}

int TraceCqiChannel::cqi(sim::TimeUs now) {
  auto index = static_cast<std::size_t>(now / sample_period_);
  if (index >= samples_.size()) {
    index = loop_ ? index % samples_.size() : samples_.size() - 1;
  }
  return samples_[index];
}

FadingChannel::FadingChannel(Config config)
    : config_(config), rng_(config.seed), current_db_(config.mean_sinr_db) {}

void FadingChannel::advance_to(sim::TimeUs now) {
  while (block_end_ <= now) {
    // AR(1): x' = mean + memory*(x - mean) + noise.
    const double innovation_sd = config_.stddev_db * std::sqrt(1.0 - config_.memory * config_.memory);
    current_db_ = config_.mean_sinr_db + config_.memory * (current_db_ - config_.mean_sinr_db) +
                  rng_.normal(0.0, innovation_sd);
    block_end_ += config_.coherence;
  }
}

double FadingChannel::sinr_db(sim::TimeUs now) {
  advance_to(now);
  return current_db_;
}

}  // namespace flexran::phy
