#include "wifi/wifi_ap.h"

#include <algorithm>
#include <cmath>

namespace flexran::wifi {

StationId WifiApDataPlane::add_station(StationProfile profile) {
  const StationId id = next_station_++;
  stations_[id] = Station{profile, 0, 0};
  return id;
}

void WifiApDataPlane::enqueue_dl(StationId station, std::uint32_t bytes) {
  auto it = stations_.find(station);
  if (it != stations_.end()) it->second.queue_bytes += bytes;
}

std::vector<StationView> WifiApDataPlane::station_view() const {
  std::vector<StationView> out;
  out.reserve(stations_.size());
  for (const auto& [id, station] : stations_) {
    out.push_back({id, station.queue_bytes, station.profile.phy_rate_mbps});
  }
  return out;
}

double WifiApDataPlane::contention_efficiency(int backlogged_stations) {
  if (backlogged_stations <= 1) return 1.0;
  // DCF-style degradation: each extra contender costs collision/backoff
  // airtime, saturating around 60%.
  return std::max(0.6, 1.0 - 0.05 * (backlogged_stations - 1));
}

std::uint32_t WifiApDataPlane::apply_airtime(const AirtimeAllocation& allocation) {
  int backlogged = 0;
  for (const auto& [id, station] : stations_) {
    (void)id;
    if (station.queue_bytes > 0) ++backlogged;
  }
  const double efficiency = contention_efficiency(backlogged);

  double fraction_used = 0.0;
  std::uint32_t delivered_total = 0;
  for (const auto& [id, fraction] : allocation) {
    auto it = stations_.find(id);
    if (it == stations_.end() || it->second.queue_bytes == 0 || fraction <= 0.0) continue;
    const double share = std::min(fraction, 1.0 - fraction_used);
    if (share <= 0.0) break;
    fraction_used += share;

    // bytes = rate * slot(1ms) * share * efficiency.
    const double budget =
        it->second.profile.phy_rate_mbps * 1e6 / 8.0 / 1000.0 * share * efficiency;
    const auto take =
        static_cast<std::uint32_t>(std::min<double>(budget, it->second.queue_bytes));
    it->second.queue_bytes -= take;
    it->second.delivered += take;
    delivered_total += take;
    if (take > 0 && on_delivery_) on_delivery_(id, take);
  }
  return delivered_total;
}

void WifiApDataPlane::slot(std::int64_t index) {
  if (!scheduler_) return;
  const auto allocation = scheduler_(index);
  (void)apply_airtime(allocation);
}

std::uint64_t WifiApDataPlane::delivered_bytes(StationId station) const {
  auto it = stations_.find(station);
  return it == stations_.end() ? 0 : it->second.delivered;
}

}  // namespace flexran::wifi
