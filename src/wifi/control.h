// WiFi control module: the Sec. 7.2 demonstration that FlexRAN's control
// machinery is technology-agnostic. This module plugs a WiFi-specific CMI
// slot ("airtime_scheduler") into the SAME VsfFactory / VsfCache /
// policy-reconfiguration pipeline the LTE modules use -- no LTE types
// anywhere, and a policy document like
//
//   wifi_mac:
//     airtime_scheduler:
//       behavior: weighted
//       parameters:
//         weights:
//           - station: 1
//             weight: 3
//
// drives it through agent::apply_policy_yaml unchanged.
#pragma once

#include "agent/control_module.h"
#include "wifi/wifi_ap.h"

namespace flexran::wifi {

/// WiFi CMI slot type: decides one slot's airtime split.
class AirtimeSchedulerVsf : public agent::Vsf {
 public:
  virtual AirtimeAllocation schedule(const std::vector<StationView>& stations,
                                     std::int64_t slot) = 0;
};

/// Equal airtime across backlogged stations (802.11 DCF-like fairness).
class FairAirtimeVsf final : public AirtimeSchedulerVsf {
 public:
  AirtimeAllocation schedule(const std::vector<StationView>& stations,
                             std::int64_t slot) override;
};

/// Weighted airtime; per-station weights are runtime parameters.
class WeightedAirtimeVsf final : public AirtimeSchedulerVsf {
 public:
  AirtimeAllocation schedule(const std::vector<StationView>& stations,
                             std::int64_t slot) override;
  util::Status set_parameter(std::string_view key, const util::YamlNode& value) override;
  util::Status validate_parameter(std::string_view key,
                                  const util::YamlNode& value) const override;

 private:
  std::map<StationId, double> weights_;
};

class WifiControlModule final : public agent::ControlModule {
 public:
  static constexpr const char* kName = "wifi_mac";
  static constexpr const char* kAirtimeSlot = "airtime_scheduler";

  explicit WifiControlModule(agent::VsfCache& cache);

  AirtimeSchedulerVsf* airtime_scheduler() const { return airtime_; }

 protected:
  util::Status validate(const std::string& slot, agent::Vsf& vsf) const override;
  void on_behavior_changed(const std::string& slot, agent::Vsf* vsf) override;

 private:
  AirtimeSchedulerVsf* airtime_ = nullptr;
};

/// Registers wifi_mac/airtime_scheduler/{fair, weighted} with the global
/// VsfFactory (idempotent).
void register_wifi_vsfs();

}  // namespace flexran::wifi
