// A minimal WiFi access-point data plane, built to substantiate the paper's
// Sec. 7.2 claim that FlexRAN's control machinery is technology-agnostic:
// "the number and type of the control modules and VSFs on the agent side
// would change to reflect the capabilities and needs of the new technology
// (e.g. no PDCP module for WiFi)".
//
// The model is deliberately small but real: stations have per-STA downlink
// queues and PHY rates; each 1 ms slot the active airtime scheduler divides
// the slot's airtime across backlogged stations, and CSMA contention burns
// an efficiency factor that falls with the number of contenders. Control
// and data planes are split exactly as in the LTE stack: the data plane
// only applies airtime allocations; deciding them is a VSF.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/simulator.h"
#include "util/result.h"

namespace flexran::wifi {

using StationId = std::uint32_t;

struct StationProfile {
  /// PHY rate toward this station (MCS/spatial streams folded in), Mb/s.
  double phy_rate_mbps = 120.0;
};

/// One slot's airtime allocation: station -> fraction of the slot, summing
/// to <= 1. Produced by the airtime-scheduler VSF, applied by the AP.
using AirtimeAllocation = std::map<StationId, double>;

/// What the airtime scheduler sees each slot.
struct StationView {
  StationId station = 0;
  std::uint32_t queue_bytes = 0;
  double phy_rate_mbps = 0.0;
};

class WifiApDataPlane {
 public:
  using DeliveryFn = std::function<void(StationId, std::uint32_t bytes)>;

  explicit WifiApDataPlane(sim::Simulator& sim) : sim_(sim) {}

  StationId add_station(StationProfile profile);
  void enqueue_dl(StationId station, std::uint32_t bytes);
  void set_delivery_callback(DeliveryFn fn) { on_delivery_ = std::move(fn); }

  /// Scheduler inputs (the "statistics" half of the agent API).
  std::vector<StationView> station_view() const;

  /// The action API: applies one slot's allocation. Fractions are clamped;
  /// allocations to unknown or idle stations are ignored. Returns bytes
  /// delivered this slot.
  std::uint32_t apply_airtime(const AirtimeAllocation& allocation);

  /// Drives one 1 ms slot; the installed scheduler hook decides.
  using SchedulerHook = std::function<AirtimeAllocation(std::int64_t slot)>;
  void set_scheduler(SchedulerHook hook) { scheduler_ = std::move(hook); }
  void slot(std::int64_t index);

  std::uint64_t delivered_bytes(StationId station) const;
  std::size_t station_count() const { return stations_.size(); }

  /// CSMA efficiency for n contenders (1.0 down toward ~0.6).
  static double contention_efficiency(int backlogged_stations);

 private:
  struct Station {
    StationProfile profile;
    std::uint32_t queue_bytes = 0;
    std::uint64_t delivered = 0;
  };

  sim::Simulator& sim_;
  std::map<StationId, Station> stations_;
  DeliveryFn on_delivery_;
  SchedulerHook scheduler_;
  StationId next_station_ = 1;
};

}  // namespace flexran::wifi
