#include "wifi/control.h"

namespace flexran::wifi {

AirtimeAllocation FairAirtimeVsf::schedule(const std::vector<StationView>& stations,
                                           std::int64_t /*slot*/) {
  AirtimeAllocation allocation;
  int backlogged = 0;
  for (const auto& station : stations) {
    if (station.queue_bytes > 0) ++backlogged;
  }
  if (backlogged == 0) return allocation;
  for (const auto& station : stations) {
    if (station.queue_bytes > 0) allocation[station.station] = 1.0 / backlogged;
  }
  return allocation;
}

AirtimeAllocation WeightedAirtimeVsf::schedule(const std::vector<StationView>& stations,
                                               std::int64_t /*slot*/) {
  AirtimeAllocation allocation;
  double total_weight = 0.0;
  for (const auto& station : stations) {
    if (station.queue_bytes == 0) continue;
    auto it = weights_.find(station.station);
    total_weight += it != weights_.end() ? it->second : 1.0;
  }
  if (total_weight <= 0.0) return allocation;
  for (const auto& station : stations) {
    if (station.queue_bytes == 0) continue;
    auto it = weights_.find(station.station);
    const double weight = it != weights_.end() ? it->second : 1.0;
    allocation[station.station] = weight / total_weight;
  }
  return allocation;
}

namespace {

// Shared by set_parameter (commits) and validate_parameter (discards).
util::Result<std::map<StationId, double>> parse_weights(std::string_view key,
                                                        const util::YamlNode& value) {
  if (key != "weights") {
    return util::Error::invalid_argument("unknown parameter: " + std::string(key));
  }
  if (!value.is_sequence()) {
    return util::Error::invalid_argument("weights must be a sequence");
  }
  std::map<StationId, double> parsed;
  for (const auto& item : value.items()) {
    const auto* station = item.find("station");
    const auto* weight = item.find("weight");
    if (station == nullptr || weight == nullptr) {
      return util::Error::invalid_argument("weights entries need station + weight");
    }
    auto id = station->as_int();
    if (!id.ok()) return id.error();
    auto w = weight->as_double();
    if (!w.ok()) return w.error();
    if (*w < 0) return util::Error::invalid_argument("weight must be >= 0");
    parsed[static_cast<StationId>(*id)] = *w;
  }
  return parsed;
}

}  // namespace

util::Status WeightedAirtimeVsf::set_parameter(std::string_view key,
                                               const util::YamlNode& value) {
  auto parsed = parse_weights(key, value);
  if (!parsed.ok()) return parsed.error();
  weights_ = std::move(parsed.value());
  return {};
}

util::Status WeightedAirtimeVsf::validate_parameter(std::string_view key,
                                                    const util::YamlNode& value) const {
  auto parsed = parse_weights(key, value);
  if (!parsed.ok()) return parsed.error();
  return {};
}

WifiControlModule::WifiControlModule(agent::VsfCache& cache) : ControlModule(kName, cache) {
  declare_slot(kAirtimeSlot);
}

util::Status WifiControlModule::validate(const std::string& slot, agent::Vsf& vsf) const {
  if (slot == kAirtimeSlot && dynamic_cast<AirtimeSchedulerVsf*>(&vsf) == nullptr) {
    return util::Error::invalid_argument("VSF is not an airtime scheduler");
  }
  return {};
}

void WifiControlModule::on_behavior_changed(const std::string& slot, agent::Vsf* vsf) {
  if (slot == kAirtimeSlot) airtime_ = dynamic_cast<AirtimeSchedulerVsf*>(vsf);
}

void register_wifi_vsfs() {
  static const bool registered = [] {
    auto& factory = agent::VsfFactory::instance();
    factory.register_implementation(WifiControlModule::kName, WifiControlModule::kAirtimeSlot,
                                    "fair", [] { return std::make_unique<FairAirtimeVsf>(); });
    factory.register_implementation(WifiControlModule::kName, WifiControlModule::kAirtimeSlot,
                                    "weighted",
                                    [] { return std::make_unique<WeightedAirtimeVsf>(); });
    return true;
  }();
  (void)registered;
}

}  // namespace flexran::wifi
