#include "traffic/tcp.h"

#include <algorithm>

namespace flexran::traffic {

TcpFlow::TcpFlow(sim::Simulator& sim, EnqueueFn enqueue, QueueBytesFn queue_bytes,
                 TcpConfig config)
    : sim_(sim),
      enqueue_(std::move(enqueue)),
      queue_bytes_(std::move(queue_bytes)),
      config_(config),
      cwnd_(config.initial_cwnd_bytes),
      ssthresh_(config.ssthresh_bytes) {}

void TcpFlow::transfer(std::uint64_t bytes, CompletionFn on_complete) {
  transfers_.push_back({bytes, std::move(on_complete)});
  maybe_send();
}

void TcpFlow::on_delivered(std::uint32_t wire_bytes) {
  inflight_bytes_ -= std::min<std::uint64_t>(inflight_bytes_, wire_bytes);
  const auto payload =
      static_cast<std::uint32_t>(static_cast<double>(wire_bytes) / wire_factor());
  payload_delivered_ += payload;

  // ACK-clocked window growth (suppressed during post-loss cooldown).
  if (current_tti_ >= cooldown_until_tti_) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += payload;  // slow start: one MSS per MSS acked
    } else {
      cwnd_ += std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 static_cast<double>(config_.mss_bytes) * payload / static_cast<double>(cwnd_)));
    }
  }

  // Progress the head transfer.
  std::uint64_t credit = payload;
  while (credit > 0 && !transfers_.empty()) {
    Transfer& head = transfers_.front();
    const std::uint64_t used = std::min(credit, head.remaining);
    head.remaining -= used;
    credit -= used;
    if (head.remaining == 0) {
      auto done = std::move(head.on_complete);
      transfers_.pop_front();
      if (done) done();
    }
  }
  maybe_send();
}

void TcpFlow::on_tti(std::int64_t tti) {
  current_tti_ = tti;
  maybe_send();
}

void TcpFlow::maybe_send() {
  // Outstanding payload for queued transfers (wire bytes already enqueued
  // count via inflight).
  auto backlog = [&]() -> std::uint64_t {
    if (persistent_) return UINT64_MAX;
    std::uint64_t total = 0;
    for (const auto& transfer : transfers_) total += transfer.remaining;
    // Subtract what is already in flight (in payload terms).
    const auto inflight_payload =
        static_cast<std::uint64_t>(static_cast<double>(inflight_bytes_) / wire_factor());
    return total > inflight_payload ? total - inflight_payload : 0;
  };

  while (inflight_bytes_ + config_.mss_bytes + config_.header_bytes <= cwnd_ && backlog() > 0) {
    // Congestion check: a full bearer queue means the next packet would be
    // tail-dropped. React once per cooldown window.
    if (queue_bytes_() + config_.mss_bytes + config_.header_bytes >= config_.queue_limit_bytes) {
      if (current_tti_ >= cooldown_until_tti_) {
        ssthresh_ = std::max(config_.min_cwnd_bytes, cwnd_ / 2);
        cwnd_ = ssthresh_;
        cooldown_until_tti_ = current_tti_ + config_.loss_cooldown_ttis;
        ++loss_events_;
      }
      return;
    }
    const std::uint32_t wire = config_.mss_bytes + config_.header_bytes;
    enqueue_(wire);
    inflight_bytes_ += wire;
  }
}

}  // namespace flexran::traffic
