#include "traffic/udp.h"

#include <algorithm>

namespace flexran::traffic {

void UdpCbrSource::set_rate_mbps(double rate_mbps) {
  rate_mbps_ = std::max(0.0, rate_mbps);
  if (rate_mbps_ <= 0.0) {
    interval_ = 0;
    return;
  }
  const double packets_per_second = rate_mbps_ * 1e6 / 8.0 / static_cast<double>(packet_bytes_);
  interval_ = std::max<sim::TimeUs>(1, static_cast<sim::TimeUs>(1e6 / packets_per_second));
}

void UdpCbrSource::start() {
  if (running_ || interval_ <= 0) return;
  running_ = true;
  const auto generation = ++generation_;
  sim_.after(interval_, [this, generation] {
    if (generation == generation_) emit();
  });
}

void UdpCbrSource::emit() {
  if (!running_) return;
  sink_(packet_bytes_);
  bytes_sent_ += packet_bytes_;
  const auto generation = generation_;
  sim_.after(interval_, [this, generation] {
    if (generation == generation_) emit();
  });
}

}  // namespace flexran::traffic
