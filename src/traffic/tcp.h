// Window-based TCP flow model over an LTE bearer. Classic NewReno-style
// dynamics driven by the data plane's delivery feedback: slow start /
// congestion avoidance, halving on (tail-drop) loss inferred from bearer
// queue occupancy. Used for the Table 2 maximum-TCP-throughput measurement
// and as the download engine of the DASH client (Fig. 11), where the
// congestion sawtooth after overshoot is exactly the behavior the paper's
// default player suffers from.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulator.h"
#include "util/stats.h"

namespace flexran::traffic {

struct TcpConfig {
  std::uint32_t mss_bytes = 1460;
  /// IP+TCP header overhead charged per MSS of payload.
  std::uint32_t header_bytes = 40;
  std::uint32_t initial_cwnd_bytes = 10 * 1460;
  std::uint32_t min_cwnd_bytes = 2 * 1460;
  std::uint32_t ssthresh_bytes = 65'535;
  /// Bearer (RLC) queue depth at which the eNodeB would tail-drop; reaching
  /// it is treated as a congestion signal.
  std::uint32_t queue_limit_bytes = 120'000;
  /// TTIs of post-loss quiescence (one wireless RTT) before cwnd can grow
  /// again -- models fast-recovery's duplicate-ACK round.
  int loss_cooldown_ttis = 60;
};

class TcpFlow {
 public:
  /// `enqueue` pushes wire bytes (payload + headers) onto the bearer.
  using EnqueueFn = std::function<void(std::uint32_t bytes)>;
  /// `queue_bytes` reads the bearer's current RLC queue occupancy.
  using QueueBytesFn = std::function<std::uint32_t()>;
  using CompletionFn = std::function<void()>;

  TcpFlow(sim::Simulator& sim, EnqueueFn enqueue, QueueBytesFn queue_bytes, TcpConfig config = {});

  /// Queues an application transfer (transfers run sequentially).
  void transfer(std::uint64_t bytes, CompletionFn on_complete = nullptr);
  /// Endless backlog (iperf/speedtest mode).
  void start_persistent() { persistent_ = true; }
  bool idle() const { return !persistent_ && transfers_.empty() && inflight_bytes_ == 0; }

  /// Wire from the data plane: payload bytes delivered to the UE. Only
  /// bytes belonging to this flow should be credited.
  void on_delivered(std::uint32_t bytes);
  /// Pump once per TTI: sends while the window allows.
  void on_tti(std::int64_t tti);

  std::uint64_t payload_delivered() const { return payload_delivered_; }
  std::uint32_t cwnd_bytes() const { return cwnd_; }
  std::uint64_t loss_events() const { return loss_events_; }
  /// Application goodput over the whole lifetime, Mb/s.
  double mean_goodput_mbps(double elapsed_s) const {
    return elapsed_s > 0 ? static_cast<double>(payload_delivered_) * 8.0 / elapsed_s / 1e6 : 0.0;
  }

 private:
  struct Transfer {
    std::uint64_t remaining = 0;
    CompletionFn on_complete;
  };

  void maybe_send();
  double wire_factor() const {
    return 1.0 + static_cast<double>(config_.header_bytes) / static_cast<double>(config_.mss_bytes);
  }

  sim::Simulator& sim_;
  EnqueueFn enqueue_;
  QueueBytesFn queue_bytes_;
  TcpConfig config_;

  std::deque<Transfer> transfers_;
  bool persistent_ = false;

  std::uint32_t cwnd_;
  std::uint32_t ssthresh_;
  std::uint64_t inflight_bytes_ = 0;  // wire bytes enqueued, not yet delivered
  std::int64_t cooldown_until_tti_ = -1;
  std::int64_t current_tti_ = 0;

  std::uint64_t payload_delivered_ = 0;
  std::uint64_t loss_events_ = 0;
};

}  // namespace flexran::traffic
