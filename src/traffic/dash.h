// DASH adaptive video streaming model (paper Sec. 6.2). A client downloads
// fixed-duration segments over a TcpFlow, maintains a playback buffer, and
// adapts the bitrate per segment:
//
//  * reference mode -- models the dash.js reference player: a
//    throughput-rule (highest bitrate under safety_factor * estimated
//    throughput) combined with buffer-confidence step-ups (with a full
//    buffer the player probes one level higher regardless of the estimate,
//    which is how it ends up at 19.6 Mb/s over a 15 Mb/s link in Fig. 11b);
//  * assisted mode -- the bitrate is capped by the FlexRAN MEC application,
//    which maps RIB CQI averages to the maximum sustainable bitrate
//    (Table 2) and pushes it out-of-band.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "traffic/tcp.h"
#include "util/stats.h"

namespace flexran::traffic {

struct DashVideo {
  /// Available representations, Mb/s, ascending.
  std::vector<double> bitrates_mbps;
  double segment_seconds = 2.0;
};

/// The two test videos of the paper's MEC experiment.
DashVideo paper_video_low();   // 1.2 / 2 / 4 Mb/s
DashVideo paper_video_4k();    // 2.9 / 4.9 / 7.3 / 9.6 / 14.6 / 19.6 Mb/s

enum class AbrMode { reference, assisted };

struct DashClientConfig {
  AbrMode mode = AbrMode::reference;
  double safety_factor = 0.8;
  double startup_buffer_s = 4.0;
  double rebuffer_target_s = 4.0;
  double max_buffer_s = 60.0;
  /// reference: buffer level above which the player probes one level up
  /// (dash.js buffer-confidence behavior, the overshoot mechanism of
  /// Fig. 11b). Disabled by default -- pure throughput rule, the behavior
  /// the paper's Fig. 11a case exhibits.
  bool buffer_probing = false;
  double step_up_buffer_s = 16.0;
  double ewma_alpha = 0.4;
  /// Sampling period of the bitrate/buffer time series.
  sim::TimeUs sample_period = sim::from_seconds(0.5);
};

class DashClient {
 public:
  DashClient(sim::Simulator& sim, TcpFlow& flow, DashVideo video, DashClientConfig config = {});

  void start();
  /// Drive once per TTI (after the flow's on_tti).
  void on_tti(std::int64_t tti);

  /// Assisted mode: maximum sustainable bitrate pushed by the MEC app
  /// (out-of-band channel). <= 0 means "no guidance yet" -> lowest ladder.
  void set_bitrate_cap_mbps(double cap) { bitrate_cap_mbps_ = cap; }

  double current_bitrate_mbps() const { return video_.bitrates_mbps[current_index_]; }
  double buffer_seconds() const { return buffer_s_; }
  int freeze_count() const { return freeze_count_; }
  double total_freeze_seconds() const { return total_freeze_s_; }
  int segments_downloaded() const { return segments_downloaded_; }
  const util::TimeSeries& bitrate_series() const { return bitrate_series_; }
  const util::TimeSeries& buffer_series() const { return buffer_series_; }

 private:
  void maybe_request();
  void on_segment_complete();
  std::size_t choose_index() const;
  std::size_t highest_under(double mbps) const;

  sim::Simulator& sim_;
  TcpFlow& flow_;
  DashVideo video_;
  DashClientConfig config_;

  std::size_t current_index_ = 0;
  double buffer_s_ = 0.0;
  bool started_ = false;
  bool playing_ = false;
  bool downloading_ = false;
  bool frozen_ = false;
  double bitrate_cap_mbps_ = 0.0;

  util::Ewma throughput_estimate_mbps_;
  sim::TimeUs segment_request_time_ = 0;

  int freeze_count_ = 0;
  double total_freeze_s_ = 0.0;
  int segments_downloaded_ = 0;

  util::TimeSeries bitrate_series_;
  util::TimeSeries buffer_series_;
  sim::TimeUs last_sample_ = 0;
};

}  // namespace flexran::traffic
