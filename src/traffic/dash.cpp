#include "traffic/dash.h"

#include <algorithm>

namespace flexran::traffic {

DashVideo paper_video_low() { return {{1.2, 2.0, 4.0}, 2.0}; }

DashVideo paper_video_4k() { return {{2.9, 4.9, 7.3, 9.6, 14.6, 19.6}, 2.0}; }

DashClient::DashClient(sim::Simulator& sim, TcpFlow& flow, DashVideo video,
                       DashClientConfig config)
    : sim_(sim),
      flow_(flow),
      video_(std::move(video)),
      config_(config),
      throughput_estimate_mbps_(config.ewma_alpha) {}

void DashClient::start() {
  started_ = true;
  maybe_request();
}

std::size_t DashClient::highest_under(double mbps) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < video_.bitrates_mbps.size(); ++i) {
    if (video_.bitrates_mbps[i] <= mbps) best = i;
  }
  return best;
}

std::size_t DashClient::choose_index() const {
  if (config_.mode == AbrMode::assisted) {
    if (bitrate_cap_mbps_ <= 0.0) return 0;
    return highest_under(bitrate_cap_mbps_);
  }
  // Reference player: throughput rule ...
  std::size_t choice = 0;
  if (throughput_estimate_mbps_.seeded()) {
    choice = highest_under(config_.safety_factor * throughput_estimate_mbps_.value());
  }
  // ... plus buffer-confidence probing: with a comfortable buffer, step one
  // level above the current representation even beyond the estimate.
  if (config_.buffer_probing && buffer_s_ >= config_.step_up_buffer_s &&
      current_index_ + 1 < video_.bitrates_mbps.size()) {
    choice = std::max(choice, current_index_ + 1);
  }
  return choice;
}

void DashClient::maybe_request() {
  if (!started_ || downloading_ || buffer_s_ >= config_.max_buffer_s) return;
  current_index_ = choose_index();
  const double segment_bits = video_.bitrates_mbps[current_index_] * 1e6 * video_.segment_seconds;
  downloading_ = true;
  segment_request_time_ = sim_.now();
  flow_.transfer(static_cast<std::uint64_t>(segment_bits / 8.0), [this] { on_segment_complete(); });
}

void DashClient::on_segment_complete() {
  const double elapsed_s = sim::to_seconds(sim_.now() - segment_request_time_);
  const double segment_bits = video_.bitrates_mbps[current_index_] * 1e6 * video_.segment_seconds;
  if (elapsed_s > 0) throughput_estimate_mbps_.add(segment_bits / elapsed_s / 1e6);
  buffer_s_ += video_.segment_seconds;
  ++segments_downloaded_;
  downloading_ = false;
  maybe_request();
}

void DashClient::on_tti(std::int64_t /*tti*/) {
  if (!started_) return;

  // Playback state machine.
  if (!playing_) {
    if (buffer_s_ >= (frozen_ ? config_.rebuffer_target_s : config_.startup_buffer_s)) {
      playing_ = true;
      frozen_ = false;
    } else if (frozen_) {
      total_freeze_s_ += 0.001;
    }
  } else {
    buffer_s_ = std::max(0.0, buffer_s_ - 0.001);
    if (buffer_s_ <= 0.0) {
      playing_ = false;
      frozen_ = true;
      ++freeze_count_;
    }
  }

  maybe_request();

  if (sim_.now() - last_sample_ >= config_.sample_period) {
    const double t = sim::to_seconds(sim_.now());
    bitrate_series_.add(t, video_.bitrates_mbps[current_index_]);
    buffer_series_.add(t, buffer_s_);
    last_sample_ = sim_.now();
  }
}

}  // namespace flexran::traffic
