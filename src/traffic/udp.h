// Constant-bit-rate UDP traffic source, the workload of the paper's
// scalability, eICIC and RAN-sharing experiments ("uniform downlink UDP
// traffic was generated for all the UEs").
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulator.h"

namespace flexran::traffic {

class UdpCbrSource {
 public:
  /// `sink` receives packet payloads (e.g. EpcStub::downlink bound to a UE,
  /// or EnodebDataPlane::enqueue_ul).
  using SinkFn = std::function<void(std::uint32_t bytes)>;

  UdpCbrSource(sim::Simulator& sim, SinkFn sink, double rate_mbps,
               std::uint32_t packet_bytes = 1400)
      : sim_(sim), sink_(std::move(sink)), packet_bytes_(packet_bytes) {
    set_rate_mbps(rate_mbps);
  }

  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }

  void set_rate_mbps(double rate_mbps);
  double rate_mbps() const { return rate_mbps_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  void emit();

  sim::Simulator& sim_;
  SinkFn sink_;
  std::uint32_t packet_bytes_;
  double rate_mbps_ = 0.0;
  sim::TimeUs interval_ = 0;
  bool running_ = false;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale timer chains
};

}  // namespace flexran::traffic
