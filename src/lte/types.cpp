#include "lte/types.h"

namespace flexran::lte {

int prb_count_for_bandwidth_mhz(double mhz) {
  // 36.101 Table 5.6-1.
  if (mhz <= 1.4) return 6;
  if (mhz <= 3.0) return 15;
  if (mhz <= 5.0) return 25;
  if (mhz <= 10.0) return 50;
  if (mhz <= 15.0) return 75;
  return 100;
}

const char* to_string(Direction dir) {
  return dir == Direction::downlink ? "downlink" : "uplink";
}

const char* to_string(Duplex duplex) { return duplex == Duplex::fdd ? "FDD" : "TDD"; }

}  // namespace flexran::lte
