// Link-adaptation tables derived from 3GPP TS 36.213: CQI spectral
// efficiencies (Table 7.2.3-1), a wideband CQI->MCS mapping, and a transport
// block size model.
//
// TBS model (documented in DESIGN.md): instead of the full 36.213 Table
// 7.1.7.2.1-1 we compute bits = n_prb * data_re_per_prb * efficiency(mcs),
// with data_re_per_prb calibrated to 100 REs (168 per PRB-pair minus PDCCH,
// reference signals and PBCH/SCH overhead) so that 50 PRBs at CQI 15 yield
// ~27 Mb/s at PHY, matching the ~25 Mb/s application-level downlink the
// paper measures on 10 MHz / TM1 OAI (Fig. 6b).
#pragma once

#include <cstdint>

#include "lte/types.h"

namespace flexran::lte {

/// CQI index range: 0 (out of range) .. 15.
constexpr int kMinCqi = 0;
constexpr int kMaxCqi = 15;

/// MCS index range for PDSCH/PUSCH: 0..28.
constexpr int kMaxMcs = 28;

/// Spectral efficiency (bits per resource element) for a CQI index,
/// 36.213 Table 7.2.3-1. CQI 0 -> 0.
double cqi_efficiency(int cqi);

/// Wideband CQI -> MCS mapping used by every scheduler in this repo
/// (standard BLER<=10% operating point). CQI 0 -> -1 (do not schedule).
int cqi_to_mcs(int cqi);

/// Spectral efficiency for an MCS index (piecewise from the CQI table).
double mcs_efficiency(int mcs);

/// Highest CQI whose efficiency is <= the given efficiency (link
/// adaptation inverse); clamps into [0, 15].
int efficiency_to_cqi(double efficiency);

/// Resource elements usable for data per PRB-pair per TTI after control /
/// pilot overhead (calibration constant, see header comment).
constexpr int kDataRePerPrb = 100;

/// Transport block size in bits for `n_prb` PRBs at MCS `mcs`.
std::int64_t tbs_bits(int mcs, int n_prb);

/// Convenience: TBS from CQI directly (via cqi_to_mcs).
std::int64_t tbs_bits_for_cqi(int cqi, int n_prb);

/// Per-UE-category cap on transport block bits per TTI (36.306, cat 1-8
/// subset). Category 4 = 150752 bits.
std::int64_t category_max_tbs_bits(int ue_category);

/// SINR (dB) -> CQI via Shannon with an implementation-margin factor of
/// 0.75, quantized against the CQI efficiency table.
int sinr_db_to_cqi(double sinr_db);

/// Midpoint SINR (dB) that yields a given CQI (inverse of the above; used
/// by channel models specified directly in CQI terms).
double cqi_to_sinr_db(int cqi);

/// First-transmission block error probability when transmitting at `mcs`
/// to a UE whose channel supports `cqi`: ~10% at the matched operating
/// point, falling when conservative and rising steeply when aggressive.
double bler_for_mcs_at_cqi(int mcs, int cqi);

/// Resource block group size P for a carrier of `dl_prbs` PRBs
/// (allocation type 0 granularity, 36.213 Table 7.1.6.1-1). The last RBG
/// is partial when dl_prbs is not divisible by P -- a type-0 allocation
/// rounded up to whole RBGs must still be clipped to dl_prbs, which the
/// decision validator (agent::validate_decision) enforces.
int rbg_size(int dl_prbs);

/// Number of RBGs covering `dl_prbs` PRBs (ceiling division by rbg_size).
int rbg_count(int dl_prbs);

}  // namespace flexran::lte
