// Resource-block allocations and DCI (Downlink/Uplink Control Information)
// structures. A scheduling decision -- whether made by a local agent-side
// VSF or pushed by the master controller -- is a list of DCIs for one TTI.
#pragma once

#include <bitset>
#include <cstdint>
#include <vector>

#include "lte/tables.h"
#include "lte/types.h"

namespace flexran::lte {

/// Bitmap over the PRBs of a carrier (allocation type 0 with 1-PRB
/// granularity, which is what the simulated MAC applies).
class RbAllocation {
 public:
  RbAllocation() = default;

  void set(int prb) { bits_.set(static_cast<std::size_t>(prb)); }
  void set_range(int first, int count) {
    for (int i = 0; i < count; ++i) bits_.set(static_cast<std::size_t>(first + i));
  }
  bool test(int prb) const { return bits_.test(static_cast<std::size_t>(prb)); }
  int count() const { return static_cast<int>(bits_.count()); }
  bool empty() const { return bits_.none(); }
  void clear() { bits_.reset(); }

  bool overlaps(const RbAllocation& other) const { return (bits_ & other.bits_).any(); }
  /// Highest allocated PRB index, -1 when empty.
  int highest_set() const {
    for (int prb = kMaxPrbs - 1; prb >= 0; --prb) {
      if (bits_.test(static_cast<std::size_t>(prb))) return prb;
    }
    return -1;
  }
  RbAllocation& merge(const RbAllocation& other) {
    bits_ |= other.bits_;
    return *this;
  }

  /// Compact wire form: two 64-bit words covering up to 100 PRBs.
  std::uint64_t word(int index) const {
    std::uint64_t out = 0;
    for (int bit = 0; bit < 64; ++bit) {
      const int prb = index * 64 + bit;
      if (prb < kMaxPrbs && bits_.test(static_cast<std::size_t>(prb))) out |= 1ull << bit;
    }
    return out;
  }
  static RbAllocation from_words(std::uint64_t w0, std::uint64_t w1) {
    RbAllocation alloc;
    for (int prb = 0; prb < kMaxPrbs; ++prb) {
      const std::uint64_t word = prb < 64 ? w0 : w1;
      if ((word >> (prb % 64)) & 1ull) alloc.set(prb);
    }
    return alloc;
  }

  bool operator==(const RbAllocation& other) const { return bits_ == other.bits_; }

 private:
  std::bitset<kMaxPrbs> bits_;
};

/// A downlink scheduling grant for one UE in one TTI.
struct DlDci {
  Rnti rnti = kInvalidRnti;
  RbAllocation rbs;
  int mcs = 0;
  std::uint8_t harq_pid = 0;
  bool new_data = true;  // NDI toggle abstracted as a flag
  /// Component carrier: 0 = PCell, 1 = SCell (carrier aggregation). A
  /// SCell grant is only valid for UEs whose SCell has been activated.
  std::uint8_t carrier = 0;

  std::int64_t tbs() const { return tbs_bits(mcs, rbs.count()); }
};

/// An uplink scheduling grant for one UE in one TTI.
struct UlDci {
  Rnti rnti = kInvalidRnti;
  RbAllocation rbs;
  int mcs = 0;

  std::int64_t tbs() const { return tbs_bits(mcs, rbs.count()); }
};

/// One TTI's worth of decisions for a cell. `subframe` is the absolute TTI
/// index the decision targets -- the schedule-ahead mechanism (paper
/// Sec. 5.3) issues decisions with subframe = observed_subframe + n.
struct SchedulingDecision {
  CellId cell_id = 0;
  std::int64_t subframe = 0;
  std::vector<DlDci> dl;
  std::vector<UlDci> ul;

  bool empty() const { return dl.empty() && ul.empty(); }
};

}  // namespace flexran::lte
