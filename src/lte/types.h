// Core LTE identifiers and configuration types shared by the data plane, the
// agent API, and the FlexRAN protocol. Matches the paper's experimental
// setup defaults: FDD, transmission mode 1, 10 MHz (50 PRB), band 5.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace flexran::lte {

/// Radio Network Temporary Identifier: identifies a UE within a cell.
using Rnti = std::uint16_t;
constexpr Rnti kInvalidRnti = 0;

using CellId = std::uint32_t;
using EnbId = std::uint32_t;

enum class Duplex : std::uint8_t { fdd = 0, tdd = 1 };

/// Downlink transmission modes (36.213); the paper evaluates TM1 (single
/// antenna port).
enum class TransmissionMode : std::uint8_t {
  tm1_single_antenna = 1,
  tm2_tx_diversity = 2,
  tm3_open_loop_mimo = 3,
  tm4_closed_loop_mimo = 4,
};

enum class Direction : std::uint8_t { downlink = 0, uplink = 1 };

/// LTE channel bandwidths and their PRB counts (36.101 Table 5.6-1).
int prb_count_for_bandwidth_mhz(double mhz);

/// Maximum PRBs in any LTE bandwidth (20 MHz).
constexpr int kMaxPrbs = 100;

/// Number of HARQ processes for FDD.
constexpr int kNumHarqProcesses = 8;

/// Subframes per radio frame.
constexpr int kSubframesPerFrame = 10;

/// Logical channel groups used in buffer status reporting.
constexpr int kNumLcGroups = 4;

/// Logical channel identity (SRB0/1/2 = 0/1/2, DRBs from 3).
using Lcid = std::uint8_t;
constexpr Lcid kSrb0 = 0;
constexpr Lcid kSrb1 = 1;
constexpr Lcid kDefaultDrb = 3;

struct CellConfig {
  CellId cell_id = 0;
  double bandwidth_mhz = 10.0;
  Duplex duplex = Duplex::fdd;
  TransmissionMode tx_mode = TransmissionMode::tm1_single_antenna;
  int band = 5;
  int antenna_ports = 1;
  /// Physical cell identity (0..503).
  int pci = 0;

  int dl_prbs() const { return prb_count_for_bandwidth_mhz(bandwidth_mhz); }
  int ul_prbs() const { return prb_count_for_bandwidth_mhz(bandwidth_mhz); }
};

struct EnbConfig {
  EnbId enb_id = 0;
  std::string name = "enb";
  std::array<CellConfig, 1> cells{};  // the primary cell (PCell)
  /// Optional secondary component carrier for carrier aggregation. Assumed
  /// on a separate frequency (no interference coupling with the PCell
  /// radio environment).
  std::optional<CellConfig> scell;
};

/// UE configuration exposed over the agent API (Table 1 "Configuration").
struct UeConfig {
  Rnti rnti = kInvalidRnti;
  CellId primary_cell = 0;
  TransmissionMode tx_mode = TransmissionMode::tm1_single_antenna;
  /// UE category caps the per-TTI transport block size (cat 4 ~ 150 Mb/s).
  int ue_category = 4;
  bool carrier_aggregation = false;
};

const char* to_string(Direction dir);
const char* to_string(Duplex duplex);

}  // namespace flexran::lte
