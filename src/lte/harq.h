// Simplified FDD HARQ bookkeeping: 8 stop-and-wait processes per UE per
// direction. The PHY error model decides ACK/NACK per transport block; a
// NACKed block is retransmitted by the MAC on the same process. Feedback
// arrives kFeedbackDelay TTIs after transmission (4 in FDD).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "lte/types.h"

namespace flexran::lte {

constexpr int kHarqFeedbackDelayTtis = 4;
constexpr int kMaxHarqRetransmissions = 3;

struct HarqProcess {
  bool active = false;
  std::int64_t tb_bits = 0;
  int mcs = 0;
  int n_prb = 0;
  int retx_count = 0;
  std::int64_t tx_subframe = 0;
};

class HarqEntity {
 public:
  /// Returns a free process id, or nullopt if all 8 are awaiting feedback.
  std::optional<std::uint8_t> find_free_process() const;

  /// Marks a process busy with an (re)transmission.
  void start(std::uint8_t pid, std::int64_t tb_bits, int mcs, int n_prb, std::int64_t subframe);

  /// ACK: frees the process and returns the delivered bits.
  std::int64_t ack(std::uint8_t pid);

  /// NACK: keeps the process for retransmission; returns false (and frees
  /// the process, dropping the block) once kMaxHarqRetransmissions is hit.
  bool nack(std::uint8_t pid);

  const HarqProcess& process(std::uint8_t pid) const {
    return processes_[pid % kNumHarqProcesses];
  }
  /// Processes that still need a retransmission scheduled.
  int pending_retransmissions() const;
  std::int64_t dropped_blocks() const { return dropped_; }

 private:
  std::array<HarqProcess, kNumHarqProcesses> processes_{};
  std::int64_t dropped_ = 0;
};

}  // namespace flexran::lte
