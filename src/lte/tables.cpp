#include "lte/tables.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace flexran::lte {

namespace {

// 36.213 Table 7.2.3-1: modulation efficiency in bits per RE.
constexpr std::array<double, 16> kCqiEfficiency = {
    0.0,     // 0: out of range
    0.1523,  // QPSK
    0.2344,  //
    0.3770,  //
    0.6016,  //
    0.8770,  //
    1.1758,  //
    1.4766,  // 16QAM from CQI 7 in the CQI table
    1.9141,  //
    2.4063,  //
    2.7305,  // 64QAM from CQI 10
    3.3223,  //
    3.9023,  //
    4.5234,  //
    5.1152,  //
    5.5547,  // 15
};

// Wideband CQI -> MCS at the <=10% BLER operating point.
constexpr std::array<int, 16> kCqiToMcs = {
    -1, 0, 2, 4, 6, 8, 11, 13, 15, 18, 20, 22, 24, 26, 27, 28,
};

}  // namespace

double cqi_efficiency(int cqi) {
  cqi = std::clamp(cqi, kMinCqi, kMaxCqi);
  return kCqiEfficiency[static_cast<std::size_t>(cqi)];
}

int cqi_to_mcs(int cqi) {
  cqi = std::clamp(cqi, kMinCqi, kMaxCqi);
  return kCqiToMcs[static_cast<std::size_t>(cqi)];
}

double mcs_efficiency(int mcs) {
  if (mcs < 0) return 0.0;
  mcs = std::min(mcs, kMaxMcs);
  // Invert the CQI->MCS mapping piecewise-linearly: between two mapped MCS
  // points, interpolate the CQI efficiencies.
  for (int cqi = kMaxCqi; cqi >= 1; --cqi) {
    const int mapped = kCqiToMcs[static_cast<std::size_t>(cqi)];
    if (mcs >= mapped) {
      if (cqi == kMaxCqi || mcs == mapped) return kCqiEfficiency[static_cast<std::size_t>(cqi)];
      const int next_mapped = kCqiToMcs[static_cast<std::size_t>(cqi + 1)];
      const double frac = static_cast<double>(mcs - mapped) / static_cast<double>(next_mapped - mapped);
      return kCqiEfficiency[static_cast<std::size_t>(cqi)] +
             frac * (kCqiEfficiency[static_cast<std::size_t>(cqi + 1)] -
                     kCqiEfficiency[static_cast<std::size_t>(cqi)]);
    }
  }
  return kCqiEfficiency[1];
}

int efficiency_to_cqi(double efficiency) {
  for (int cqi = kMaxCqi; cqi >= 1; --cqi) {
    if (kCqiEfficiency[static_cast<std::size_t>(cqi)] <= efficiency) return cqi;
  }
  return 0;
}

std::int64_t tbs_bits(int mcs, int n_prb) {
  if (mcs < 0 || n_prb <= 0) return 0;
  const double bits = static_cast<double>(n_prb) * kDataRePerPrb * mcs_efficiency(mcs);
  return static_cast<std::int64_t>(bits);
}

std::int64_t tbs_bits_for_cqi(int cqi, int n_prb) { return tbs_bits(cqi_to_mcs(cqi), n_prb); }

std::int64_t category_max_tbs_bits(int ue_category) {
  // 36.306 Table 4.1-1, max DL-SCH bits per TTI.
  switch (ue_category) {
    case 1: return 10296;
    case 2: return 51024;
    case 3: return 102048;
    case 4: return 150752;
    case 5: return 299552;
    case 6:
    case 7: return 301504;
    default: return 391656;  // cat 8+ (clamped)
  }
}

int sinr_db_to_cqi(double sinr_db) {
  const double sinr_linear = std::pow(10.0, sinr_db / 10.0);
  const double efficiency = 0.75 * std::log2(1.0 + sinr_linear);
  return efficiency_to_cqi(efficiency);
}

double cqi_to_sinr_db(int cqi) {
  cqi = std::clamp(cqi, 1, kMaxCqi);
  // Invert eff = 0.75*log2(1+snr) at the midpoint between this CQI's
  // efficiency and the next one's (so sinr_db_to_cqi round-trips).
  const double eff_lo = cqi_efficiency(cqi);
  const double eff_hi = cqi < kMaxCqi ? cqi_efficiency(cqi + 1) : eff_lo * 1.08;
  const double eff = 0.5 * (eff_lo + eff_hi);
  const double snr_linear = std::pow(2.0, eff / 0.75) - 1.0;
  return 10.0 * std::log10(snr_linear);
}

double bler_for_mcs_at_cqi(int mcs, int cqi) {
  if (cqi <= 0) return 1.0;
  const int matched = cqi_to_mcs(cqi);
  const int delta = mcs - matched;
  if (delta <= -3) return 0.0;
  if (delta == -2) return 0.01;
  if (delta == -1) return 0.03;
  if (delta == 0) return 0.10;  // standard operating point
  if (delta == 1) return 0.35;
  if (delta == 2) return 0.65;
  if (delta == 3) return 0.85;
  return 0.97;
}

int rbg_size(int dl_prbs) {
  // 36.213 Table 7.1.6.1-1.
  if (dl_prbs <= 10) return 1;
  if (dl_prbs <= 26) return 2;
  if (dl_prbs <= 63) return 3;
  return 4;
}

int rbg_count(int dl_prbs) {
  if (dl_prbs <= 0) return 0;
  const int p = rbg_size(dl_prbs);
  return (dl_prbs + p - 1) / p;
}

}  // namespace flexran::lte
