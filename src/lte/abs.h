// Almost-Blank Subframe patterns for eICIC (paper Sec. 6.1). A pattern is a
// 40-subframe bitmap (as in the X2 ABS Information IE, 36.423); subframe n
// is almost-blank when bit (n mod 40) is set. The paper's experiment uses 4
// ABSs per 10-subframe frame, i.e. a pattern with period 10 repeated 4x.
#pragma once

#include <bitset>
#include <cstdint>
#include <string>

namespace flexran::lte {

class AbsPattern {
 public:
  static constexpr int kPatternLength = 40;

  AbsPattern() = default;

  /// Pattern with `abs_per_frame` almost-blank subframes in every
  /// 10-subframe frame, placed at the start of the frame.
  static AbsPattern per_frame(int abs_per_frame) {
    AbsPattern p;
    for (int frame = 0; frame < kPatternLength / 10; ++frame) {
      for (int i = 0; i < abs_per_frame && i < 10; ++i) {
        p.bits_.set(static_cast<std::size_t>(frame * 10 + i));
      }
    }
    return p;
  }

  static AbsPattern none() { return AbsPattern{}; }

  void set(int index, bool value = true) {
    bits_.set(static_cast<std::size_t>(index % kPatternLength), value);
  }

  bool is_abs(std::int64_t subframe) const {
    return bits_.test(static_cast<std::size_t>(subframe % kPatternLength));
  }

  int abs_count() const { return static_cast<int>(bits_.count()); }
  bool any() const { return bits_.any(); }

  /// Wire form: 40 bits in a u64.
  std::uint64_t to_bits() const {
    std::uint64_t out = 0;
    for (int i = 0; i < kPatternLength; ++i) {
      if (bits_.test(static_cast<std::size_t>(i))) out |= 1ull << i;
    }
    return out;
  }
  static AbsPattern from_bits(std::uint64_t bits) {
    AbsPattern p;
    for (int i = 0; i < kPatternLength; ++i) {
      if ((bits >> i) & 1ull) p.bits_.set(static_cast<std::size_t>(i));
    }
    return p;
  }

  bool operator==(const AbsPattern& other) const { return bits_ == other.bits_; }

 private:
  std::bitset<kPatternLength> bits_;
};

}  // namespace flexran::lte
