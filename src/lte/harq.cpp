#include "lte/harq.h"

namespace flexran::lte {

std::optional<std::uint8_t> HarqEntity::find_free_process() const {
  for (std::uint8_t pid = 0; pid < kNumHarqProcesses; ++pid) {
    if (!processes_[pid].active) return pid;
  }
  return std::nullopt;
}

void HarqEntity::start(std::uint8_t pid, std::int64_t tb_bits, int mcs, int n_prb,
                       std::int64_t subframe) {
  HarqProcess& p = processes_[pid % kNumHarqProcesses];
  if (!p.active) {
    p = HarqProcess{};
    p.tb_bits = tb_bits;
    p.mcs = mcs;
    p.n_prb = n_prb;
  }
  p.active = true;
  p.tx_subframe = subframe;
}

std::int64_t HarqEntity::ack(std::uint8_t pid) {
  HarqProcess& p = processes_[pid % kNumHarqProcesses];
  const std::int64_t bits = p.tb_bits;
  p = HarqProcess{};
  return bits;
}

bool HarqEntity::nack(std::uint8_t pid) {
  HarqProcess& p = processes_[pid % kNumHarqProcesses];
  if (!p.active) return false;
  if (++p.retx_count > kMaxHarqRetransmissions) {
    ++dropped_;
    p = HarqProcess{};
    return false;
  }
  return true;
}

int HarqEntity::pending_retransmissions() const {
  int pending = 0;
  for (const auto& p : processes_) {
    if (p.active && p.retx_count > 0) ++pending;
  }
  return pending;
}

}  // namespace flexran::lte
