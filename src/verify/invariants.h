// Runtime verification of the control plane's safety properties
// (docs/fault_tolerance.md "Invariant catalog"). The InvariantMonitor
// installs itself as the Coordinator's post-cycle hook and re-checks,
// after every coordinator cycle, the invariants the rest of the codebase
// only implies:
//
//   I1 single ownership  -- no agent lives in two active shards' RIBs, and
//      none is assigned to a dead shard while a survivor could adopt it
//   I2 monotonicity      -- shard incarnations and snapshot versions never
//      go backwards; per-agent session epochs never regress within one
//      (shard, restart) ownership span
//   I3 composite union   -- the composite RibSnapshot is the exact union
//      of the active shards' snapshots (same keys, shared subtrees) with
//      version = sum of the shard versions
//   I4 command gating    -- no command reaches a non-re-synced agent while
//      its shard recovers, and no recovering shard sources handovers
//   I5 bounded queues    -- ingest occupancy never exceeds the configured
//      budget, and nothing unsheddable is admitted past it
//   I6 quarantine        -- a quarantined (non-fallback) VSF implementation
//      is never invoked again
//
// Modes: `off` (free), `log` (count + record violations; the fuzzer's
// mode, so it can minimize), `trap` (abort with the violation and a trace
// of recent cycle digests; what ctest scenarios and the chaos soaks run
// with). All checks run on the coordinator thread inside run_cycle().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "controller/coordinator.h"

namespace flexran::verify {

enum class Mode { off, log, trap };

const char* to_string(Mode mode);
/// Parses "off" | "log" | "trap".
util::Result<Mode> parse_mode(const std::string& name);

/// One recorded invariant breach.
struct Violation {
  std::string invariant;  // catalog key, e.g. "composite_union"
  std::int64_t cycle = 0;
  sim::TimeUs at_us = 0;
  std::string detail;
};

class InvariantMonitor {
 public:
  explicit InvariantMonitor(ctrl::Coordinator& coordinator, Mode mode = Mode::log);

  /// Installs the monitor as the coordinator's post-cycle hook. The
  /// monitor must outlive the coordinator's last run_cycle().
  void install();

  void set_mode(Mode mode) { mode_ = mode; }
  Mode mode() const { return mode_; }

  /// Registers an agent-side input for I6: a probe returning that agent's
  /// cumulative count of quarantined (non-fallback) VSF invocations. The
  /// monitor depends only on the controller layer; agent state crosses
  /// this seam as plain counters.
  void add_quarantine_probe(std::string label, std::function<std::uint64_t()> probe);

  /// Runs every check once, immediately (tests; end-of-run sweeps).
  void check_now();

  std::uint64_t checks_run() const { return checks_run_; }
  std::uint64_t violations_total() const { return violations_total_; }
  /// Recorded violations (capped; violations_total() keeps counting).
  const std::vector<Violation>& violations() const { return violations_; }
  /// "invariant@cycle: detail" lines for the first `limit` violations.
  std::vector<std::string> violation_summaries(std::size_t limit = 16) const;

 private:
  /// Per-agent epoch baseline, valid for one (owning shard, shard restart
  /// count) span: adoption and master restart legitimately reset the
  /// observed epoch, so the baseline re-arms when either moves.
  struct AgentBaseline {
    std::size_t shard = 0;
    std::uint64_t shard_restarts = 0;
    std::uint32_t epoch = 0;
  };
  struct ShardBaseline {
    std::uint32_t incarnation = 0;
    std::uint64_t version = 0;
    std::uint64_t commands_sent_unresynced = 0;
    std::uint64_t handovers_while_recovering = 0;
    std::uint64_t budget_overflows = 0;
  };
  struct QuarantineProbe {
    std::string label;
    std::function<std::uint64_t()> probe;
    std::uint64_t last = 0;
  };

  void check_cycle(std::int64_t cycle);
  void check_ownership(std::int64_t cycle);
  void check_monotonicity(std::int64_t cycle);
  void check_composite(std::int64_t cycle);
  void check_shard_counters(std::int64_t cycle);
  void check_quarantine_probes(std::int64_t cycle);
  void report(const char* invariant, std::int64_t cycle, std::string detail);
  void record_digest(std::int64_t cycle);
  std::string dump_state() const;

  ctrl::Coordinator* coordinator_;
  Mode mode_;
  std::map<ctrl::AgentId, AgentBaseline> agents_;
  std::vector<ShardBaseline> shards_;
  std::vector<QuarantineProbe> quarantine_probes_;
  std::uint64_t checks_run_ = 0;
  std::uint64_t violations_total_ = 0;
  std::vector<Violation> violations_;
  /// Last few per-cycle digests, dumped by trap mode so the abort carries
  /// the run-up, not just the moment of death.
  std::deque<std::string> digests_;
};

}  // namespace flexran::verify
