// Deterministic chaos fuzzer (docs/chaos_fuzzing.md): from one integer
// seed, generates a randomized sharded topology plus a randomized fault
// schedule composing every FaultKind, runs it under the InvariantMonitor,
// and -- on a violation -- greedily minimizes the schedule and renders a
// standalone repro scenario that `flexran-sim --check` fails on.
//
// Everything downstream of the seed is bit-deterministic: the same seed
// always produces the same topology, the same schedule, the same run and
// the same repro YAML. That is the whole contract -- a one-line "seed N
// violated I3" report from a CI soak is a complete bug report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/config.h"

namespace flexran::verify {

struct FuzzConfig {
  /// Master seed; everything else derives from it. Must be >= 1.
  std::uint64_t seed = 1;
  /// Simulated length of each generated run. Faults land in the window
  /// [0.2 s, duration - 2.2 s], so every schedule gets a settle tail long
  /// enough for re-syncs, failovers and quarantine rollbacks to converge.
  double duration_s = 4.0;
  /// Upper bound on generated faults per run (actual count is random).
  int max_faults = 8;
  /// Deliberately re-introduced defect for self-checks ("" = none,
  /// "stale_composite"); forces shards >= 2 so the defect is observable.
  std::string defect;
};

/// Outcome of one scenario execution, judged by the same bar
/// `flexran-sim --check` applies plus the monitor's violation count.
struct RunVerdict {
  bool violated = false;
  /// Human-readable reasons ("3 invariant violations", "1/2 agents up").
  std::vector<std::string> reasons;
  std::uint64_t invariant_checks = 0;
  std::uint64_t invariant_violations = 0;
};

struct FuzzResult {
  std::uint64_t seed = 0;
  /// The generated spec, as run (invariants: log).
  scenario::ScenarioSpec spec;
  bool violated = false;
  std::vector<std::string> reasons;
  std::uint64_t invariant_checks = 0;
  /// Total scenario executions, including minimization trials.
  std::uint64_t runs = 0;
  /// Smallest still-violating schedule (== spec when clean or when
  /// minimization was skipped). May have zero faults: a defect the
  /// monitor catches without any chaos minimizes to an empty schedule.
  scenario::ScenarioSpec minimized;
  /// Standalone repro document (empty when clean): comment header with
  /// provenance + scenario_to_yaml(minimized).
  std::string repro;
};

/// Deterministically expands a FuzzConfig into a runnable ScenarioSpec:
/// 2-4 eNodeBs, 1-3 shards (>= 2 with a defect or shard faults), random
/// pins, one UE per cell, master recovery always on, and a time-sorted
/// fault schedule where every crash restarts and every shard_kill /
/// shard_drain leaves at least one shard standing.
scenario::ScenarioSpec generate_scenario(const FuzzConfig& config);

/// Runs the spec with `invariants` forced to "log" (the monitor must
/// observe, not abort) and returns the verdict.
RunVerdict run_fuzz_spec(const scenario::ScenarioSpec& spec);

/// Greedy delta-debugging over the fault schedule: repeatedly re-runs the
/// scenario with one fault removed and keeps any removal that still
/// violates, until a full pass removes nothing. `runs`, when given, is
/// incremented once per trial execution.
scenario::ScenarioSpec minimize_schedule(const scenario::ScenarioSpec& spec,
                                         std::uint64_t* runs = nullptr);

/// Renders a minimized spec as a standalone scenario document with a
/// provenance header (fuzz seed, violated invariants, replay command).
std::string repro_yaml(const scenario::ScenarioSpec& spec,
                       const std::vector<std::string>& reasons);

/// The whole pipeline for one seed: generate, run, and -- on violation --
/// minimize (unless `minimize` is false) and render the repro.
FuzzResult fuzz_seed(const FuzzConfig& config, bool minimize = true);

}  // namespace flexran::verify
