#include "verify/invariants.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>

#include "util/logging.h"
#include "util/strings.h"

namespace flexran::verify {

namespace {
constexpr std::size_t kMaxStoredViolations = 64;
constexpr std::size_t kDigestCycles = 32;
}  // namespace

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::off:
      return "off";
    case Mode::log:
      return "log";
    case Mode::trap:
      return "trap";
  }
  return "?";
}

util::Result<Mode> parse_mode(const std::string& name) {
  if (name == "off") return Mode::off;
  if (name == "log") return Mode::log;
  if (name == "trap") return Mode::trap;
  return util::Error::invalid_argument("invariants mode must be off | log | trap, got '" + name +
                                       "'");
}

InvariantMonitor::InvariantMonitor(ctrl::Coordinator& coordinator, Mode mode)
    : coordinator_(&coordinator), mode_(mode) {
  shards_.resize(coordinator.shard_count());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].incarnation = coordinator.shard(i).incarnation();
    shards_[i].version = coordinator.shard(i).snapshot_version();
  }
}

void InvariantMonitor::install() {
  coordinator_->set_post_cycle_hook([this](std::int64_t cycle) { check_cycle(cycle); });
}

void InvariantMonitor::add_quarantine_probe(std::string label,
                                            std::function<std::uint64_t()> probe) {
  quarantine_probes_.push_back({std::move(label), std::move(probe), 0});
}

void InvariantMonitor::check_now() { check_cycle(coordinator_->cycles_run()); }

void InvariantMonitor::check_cycle(std::int64_t cycle) {
  if (mode_ == Mode::off) return;
  ++checks_run_;
  record_digest(cycle);
  check_ownership(cycle);
  check_monotonicity(cycle);
  check_composite(cycle);
  check_shard_counters(cycle);
  check_quarantine_probes(cycle);
}

// I1: every agent is owned by exactly one active shard. The assignment map
// and the shards' live RIBs must agree -- except that an agent assigned to
// a dead shard with NO survivor left is a legitimate orphan (the failover
// window with nowhere to go), not a violation.
void InvariantMonitor::check_ownership(std::int64_t cycle) {
  using ShardHealth = ctrl::Coordinator::ShardHealth;
  const auto assignments = coordinator_->assignments();
  std::map<ctrl::AgentId, std::size_t> assigned(assignments.begin(), assignments.end());

  bool any_alive = false;
  for (std::size_t i = 0; i < coordinator_->shard_count(); ++i) {
    if (coordinator_->shard_health(i) == ShardHealth::alive) any_alive = true;
  }

  std::map<ctrl::AgentId, std::size_t> owner_by_rib;
  for (std::size_t i = 0; i < coordinator_->shard_count(); ++i) {
    const auto health = coordinator_->shard_health(i);
    if (health != ShardHealth::alive && health != ShardHealth::draining) continue;
    for (const auto& [id, node] : coordinator_->shard(i).rib().agents()) {
      (void)node;
      auto [it, inserted] = owner_by_rib.emplace(id, i);
      if (!inserted) {
        report("single_ownership", cycle,
               util::format("agent %u present in shard %zu and shard %zu RIBs", id, it->second,
                            i));
      }
      if (!assigned.contains(id)) {
        report("single_ownership", cycle,
               util::format("agent %u in shard %zu RIB but not in the assignment map", id, i));
      }
    }
  }

  for (const auto& [id, shard] : assignments) {
    const auto health = coordinator_->shard_health(shard);
    const bool active = health == ShardHealth::alive || health == ShardHealth::draining;
    if (!active) {
      if (any_alive) {
        report("single_ownership", cycle,
               util::format("agent %u assigned to %s shard %zu while a live shard exists", id,
                            ctrl::to_string(health), shard));
      }
      continue;  // last-shard-down orphan: permitted
    }
    auto it = owner_by_rib.find(id);
    if (it == owner_by_rib.end()) {
      report("single_ownership", cycle,
             util::format("agent %u assigned to shard %zu but absent from its RIB", id, shard));
    } else if (it->second != shard) {
      report("single_ownership", cycle,
             util::format("agent %u assigned to shard %zu but owned by shard %zu's RIB", id,
                          shard, it->second));
    }
  }
}

// I2: shard incarnations and snapshot versions only move forward (both
// survive restart() by design: the incarnation is bumped, the snapshot
// store is retained). Per-agent epochs only move forward within one
// ownership span -- adoption or a master restart legitimately starts a new
// span, so the baseline re-arms when the (shard, restarts) pair moves.
void InvariantMonitor::check_monotonicity(std::int64_t cycle) {
  for (std::size_t i = 0; i < coordinator_->shard_count(); ++i) {
    const auto& core = coordinator_->shard(i);
    ShardBaseline& base = shards_[i];
    const std::uint32_t incarnation = core.incarnation();
    if (incarnation < base.incarnation) {
      report("incarnation_monotonic", cycle,
             util::format("shard %zu incarnation went %u -> %u", i, base.incarnation,
                          incarnation));
    } else {
      base.incarnation = incarnation;
    }
    const std::uint64_t version = core.snapshot_version();
    if (version < base.version) {
      report("version_monotonic", cycle,
             util::format("shard %zu snapshot version went %llu -> %llu", i,
                          static_cast<unsigned long long>(base.version),
                          static_cast<unsigned long long>(version)));
    } else {
      base.version = version;
    }
  }

  using ShardHealth = ctrl::Coordinator::ShardHealth;
  const auto assignments = coordinator_->assignments();
  for (const auto& [id, shard] : assignments) {
    const auto health = coordinator_->shard_health(shard);
    if (health != ShardHealth::alive && health != ShardHealth::draining) continue;
    const auto& core = coordinator_->shard(shard);
    const ctrl::AgentNode* node = core.rib().find_agent(id);
    if (node == nullptr) continue;  // check_ownership already flagged it
    const std::uint64_t restarts = core.master_restarts();
    auto [it, inserted] = agents_.try_emplace(id, AgentBaseline{shard, restarts, node->epoch});
    if (inserted) continue;
    AgentBaseline& base = it->second;
    if (base.shard != shard || base.shard_restarts != restarts) {
      base = {shard, restarts, node->epoch};  // new ownership span
    } else if (node->epoch < base.epoch) {
      report("epoch_monotonic", cycle,
             util::format("agent %u epoch went %u -> %u within shard %zu", id, base.epoch,
                          node->epoch, shard));
    } else {
      base.epoch = node->epoch;
    }
  }
  // Drop baselines for agents that left, so a reused id starts fresh.
  for (auto it = agents_.begin(); it != agents_.end();) {
    const bool still_assigned =
        std::any_of(assignments.begin(), assignments.end(),
                    [&](const auto& entry) { return entry.first == it->first; });
    it = still_assigned ? std::next(it) : agents_.erase(it);
  }
}

// I3: with more than one shard, the composite snapshot is the exact union
// of the active shards' snapshots. "Exact" is checkable by pointer: the
// composition shares agent subtrees, so every composite entry must BE the
// owning shard's entry, and the version must be the sum of the shard
// versions. A stale composite (missing invalidation) fails the version sum
// first and the subtree identity second.
void InvariantMonitor::check_composite(std::int64_t cycle) {
  using ShardHealth = ctrl::Coordinator::ShardHealth;
  if (coordinator_->shard_count() < 2) return;
  const auto composite = coordinator_->rib_snapshot();

  std::uint64_t version_sum = 0;
  std::size_t union_count = 0;
  for (std::size_t i = 0; i < coordinator_->shard_count(); ++i) {
    const auto health = coordinator_->shard_health(i);
    if (health != ShardHealth::alive && health != ShardHealth::draining) continue;
    const auto part = coordinator_->shard(i).rib_snapshot();
    version_sum += part->version();
    union_count += part->agent_count();
    for (const auto& [id, node] : part->agents()) {
      auto it = composite->agents().find(id);
      if (it == composite->agents().end()) {
        report("composite_union", cycle,
               util::format("agent %u in shard %zu snapshot but missing from the composite", id,
                            i));
      } else if (it->second.get() != node.get()) {
        report("composite_union", cycle,
               util::format("agent %u composite subtree differs from shard %zu's snapshot "
                            "(stale composite)",
                            id, i));
      }
    }
  }
  if (composite->version() != version_sum) {
    report("composite_union", cycle,
           util::format("composite version %llu != sum of active shard versions %llu",
                        static_cast<unsigned long long>(composite->version()),
                        static_cast<unsigned long long>(version_sum)));
  }
  if (composite->agent_count() != union_count) {
    report("composite_union", cycle,
           util::format("composite holds %zu agents, the active shard snapshots %zu",
                        composite->agent_count(), union_count));
  }
}

// I4 + I5: tripwire counters exposed by ShardCore. These are cumulative,
// so the invariant is "never increases"; occupancy is re-checked directly
// against the configured budget every cycle.
void InvariantMonitor::check_shard_counters(std::int64_t cycle) {
  for (std::size_t i = 0; i < coordinator_->shard_count(); ++i) {
    const auto& core = coordinator_->shard(i);
    ShardBaseline& base = shards_[i];
    if (core.commands_sent_unresynced() > base.commands_sent_unresynced) {
      report("command_gating", cycle,
             util::format("shard %zu delivered %llu command(s) to non-re-synced agents while "
                          "recovering",
                          i,
                          static_cast<unsigned long long>(core.commands_sent_unresynced() -
                                                          base.commands_sent_unresynced)));
    }
    base.commands_sent_unresynced = core.commands_sent_unresynced();
    if (core.handovers_while_recovering() > base.handovers_while_recovering) {
      report("recovering_handover", cycle,
             util::format("shard %zu sourced %llu handover(s) while recovering", i,
                          static_cast<unsigned long long>(core.handovers_while_recovering() -
                                                          base.handovers_while_recovering)));
    }
    base.handovers_while_recovering = core.handovers_while_recovering();

    const net::QueueBudget& budget = core.ingest_budget();
    if (budget.enabled()) {
      if (budget.max_messages > 0 && core.pending_updates() > budget.max_messages) {
        report("queue_budget", cycle,
               util::format("shard %zu ingest occupancy %zu messages over budget %zu", i,
                            core.pending_updates(), budget.max_messages));
      }
      if (budget.max_bytes > 0 && core.pending_bytes() > budget.max_bytes) {
        report("queue_budget", cycle,
               util::format("shard %zu ingest occupancy %zu bytes over budget %zu", i,
                            core.pending_bytes(), budget.max_bytes));
      }
    }
    if (core.ingest_budget_overflows() > base.budget_overflows) {
      report("queue_budget", cycle,
             util::format("shard %zu admitted %llu unsheddable message(s) past the budget", i,
                          static_cast<unsigned long long>(core.ingest_budget_overflows() -
                                                          base.budget_overflows)));
    }
    base.budget_overflows = core.ingest_budget_overflows();
  }
}

// I6: agent-side counters registered by the scenario layer. An increase
// means a quarantined non-fallback VSF ran again.
void InvariantMonitor::check_quarantine_probes(std::int64_t cycle) {
  for (auto& probe : quarantine_probes_) {
    const std::uint64_t now = probe.probe();
    if (now > probe.last) {
      report("quarantine_respected", cycle,
             util::format("%s invoked a quarantined VSF implementation %llu time(s)",
                          probe.label.c_str(), static_cast<unsigned long long>(now - probe.last)));
    }
    probe.last = now;
  }
}

void InvariantMonitor::report(const char* invariant, std::int64_t cycle, std::string detail) {
  Violation violation;
  violation.invariant = invariant;
  violation.cycle = cycle;
  violation.at_us = coordinator_->now();
  violation.detail = std::move(detail);
  ++violations_total_;
  if (violations_.size() < kMaxStoredViolations) violations_.push_back(violation);
  FLEXRAN_LOG(error, "invariant") << violation.invariant << " violated at cycle " << cycle
                                  << ": " << violation.detail;
  if (mode_ == Mode::trap) {
    std::fprintf(stderr,
                 "\n=== INVARIANT TRAP ===\n%s violated at cycle %lld (t=%lldus)\n  %s\n%s",
                 violation.invariant.c_str(), static_cast<long long>(cycle),
                 static_cast<long long>(violation.at_us), violation.detail.c_str(),
                 dump_state().c_str());
    std::abort();
  }
}

void InvariantMonitor::record_digest(std::int64_t cycle) {
  std::string digest = util::format("cycle %lld t=%lldus:", static_cast<long long>(cycle),
                                    static_cast<long long>(coordinator_->now()));
  for (std::size_t i = 0; i < coordinator_->shard_count(); ++i) {
    const auto& core = coordinator_->shard(i);
    digest += util::format(" shard%zu[%s inc=%u v=%llu agents=%zu%s]", i,
                           ctrl::to_string(coordinator_->shard_health(i)), core.incarnation(),
                           static_cast<unsigned long long>(core.snapshot_version()),
                           core.rib().agents().size(), core.recovering() ? " recovering" : "");
  }
  digests_.push_back(std::move(digest));
  while (digests_.size() > kDigestCycles) digests_.pop_front();
}

std::string InvariantMonitor::dump_state() const {
  std::string out = "--- last cycles (oldest first) ---\n";
  for (const auto& digest : digests_) out += digest + "\n";
  out += "--- assignment ---\n";
  for (const auto& [id, shard] : coordinator_->assignments()) {
    out += util::format("agent %u -> shard %zu\n", id, shard);
  }
  return out;
}

std::vector<std::string> InvariantMonitor::violation_summaries(std::size_t limit) const {
  std::vector<std::string> out;
  for (const auto& violation : violations_) {
    if (out.size() >= limit) break;
    out.push_back(util::format("%s@%lld: %s", violation.invariant.c_str(),
                               static_cast<long long>(violation.cycle),
                               violation.detail.c_str()));
  }
  return out;
}

}  // namespace flexran::verify
