#include "verify/fuzzer.h"

#include <algorithm>

#include "util/rng.h"
#include "util/strings.h"

namespace flexran::verify {

namespace {

/// Milliseconds-grid draw in [lo_ms, hi_ms], returned in seconds. The
/// whole generator works on a 1 ms grid so scenario_to_yaml's %.3f
/// round-trips every value exactly.
double ms_grid(util::Rng& rng, int lo_ms, int hi_ms) {
  return static_cast<double>(rng.uniform_int(lo_ms, hi_ms)) / 1000.0;
}

/// Picks an eNodeB target: the whole fleet (-1) or one index.
int pick_enb(util::Rng& rng, std::size_t enbs) {
  return static_cast<int>(rng.uniform_int(-1, static_cast<std::int64_t>(enbs) - 1));
}

/// Picks one index from the currently-active shards.
int pick_active_shard(util::Rng& rng, const std::vector<bool>& active) {
  std::vector<int> candidates;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (active[i]) candidates.push_back(static_cast<int>(i));
  }
  return candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
}

}  // namespace

scenario::ScenarioSpec generate_scenario(const FuzzConfig& config) {
  util::Rng rng(config.seed);
  scenario::ScenarioSpec spec;
  spec.duration_s = config.duration_s;
  spec.stats_period_ttis = 2;
  spec.seed = config.seed;

  // Topology: 2-4 cells over 1-3 shards; a defect self-check needs the
  // composite path, which only exists with shards >= 2.
  spec.shards = static_cast<std::size_t>(rng.uniform_int(1, 3));
  if (!config.defect.empty()) spec.shards = std::max<std::size_t>(2, spec.shards);
  spec.defect = config.defect;
  spec.invariants = "log";
  spec.remote_scheduler = rng.chance(0.5);
  spec.schedule_ahead_sf = 8;

  // Fault-tolerance knobs mirror the hand-written chaos scenarios: tight
  // enough that faults are observed, loose enough that the settle tail
  // always converges.
  spec.agent_timeout_ms = 50.0;
  spec.agent_disconnect_timeout_ms = 200.0;
  spec.request_timeout_ms = 30.0;
  if (rng.chance(0.5)) {
    spec.ingest_max_messages = 32;
    spec.ingest_max_bytes = 16384;
  }
  spec.master_recovery = true;
  spec.resync_tokens_per_s = 20.0;
  spec.resync_burst = 2.0;
  spec.resync_retry_after_ms = 40.0;
  spec.readiness_quorum = 1.0;
  spec.readiness_timeout_ms = 1500.0;
  spec.warm_checkpoint = rng.chance(0.5);
  spec.checkpoint_period_s = 0.3;

  const auto enb_count = static_cast<std::size_t>(rng.uniform_int(2, 4));
  for (std::size_t i = 0; i < enb_count; ++i) {
    scenario::ScenarioEnbSpec enb;
    enb.enb_id = static_cast<lte::EnbId>(i + 1);
    enb.name = "fuzz-" + std::to_string(i + 1);
    if (spec.shards > 1 && rng.chance(0.4)) {
      enb.shard = rng.uniform_int(0, static_cast<std::int64_t>(spec.shards) - 1);
    }
    enb.control_delay_ms = static_cast<double>(rng.uniform_int(1, 3));
    enb.remote_fallback_ttis = 30;
    spec.enbs.push_back(std::move(enb));
  }
  for (std::size_t i = 0; i < enb_count; ++i) {
    scenario::ScenarioUeSpec ue;
    ue.enb = static_cast<lte::EnbId>(i + 1);
    ue.cqi = static_cast<int>(rng.uniform_int(8, 15));
    if (rng.chance(0.5)) {
      ue.traffic = "cbr";
      ue.rate_mbps = static_cast<double>(rng.uniform_int(1, 3));
    }
    spec.ues.push_back(std::move(ue));
  }

  // Schedule: draw the times first (sorted, ms grid, inside the window
  // that leaves a 2 s settle tail), then assign kinds in time order so
  // shard-state constraints (at least one survivor, no dead targets) hold
  // at each event's firing time.
  const int window_lo_ms = 200;
  const int window_hi_ms = static_cast<int>((config.duration_s - 2.2) * 1000.0);
  const auto fault_count =
      window_hi_ms > window_lo_ms ? rng.uniform_int(0, config.max_faults) : 0;
  std::vector<int> times_ms;
  for (std::int64_t i = 0; i < fault_count; ++i) {
    times_ms.push_back(static_cast<int>(rng.uniform_int(window_lo_ms, window_hi_ms)));
  }
  std::sort(times_ms.begin(), times_ms.end());

  std::vector<bool> shard_active(spec.shards, true);
  bool drain_used = false;
  for (const int at_ms : times_ms) {
    const auto active_count = static_cast<std::size_t>(
        std::count(shard_active.begin(), shard_active.end(), true));
    // Candidate kinds legal at this point of the timeline.
    std::vector<scenario::FaultKind> kinds = {
        scenario::FaultKind::partition,    scenario::FaultKind::delay_spike,
        scenario::FaultKind::corrupt,      scenario::FaultKind::duplicate,
        scenario::FaultKind::reorder,      scenario::FaultKind::crash,
        scenario::FaultKind::flap,         scenario::FaultKind::vsf_crash,
        scenario::FaultKind::vsf_overrun,  scenario::FaultKind::vsf_invalid,
        scenario::FaultKind::report_flood, scenario::FaultKind::master_crash,
    };
    if (active_count >= 2) {
      kinds.push_back(scenario::FaultKind::shard_kill);
      if (!drain_used) kinds.push_back(scenario::FaultKind::shard_drain);
    }
    scenario::FaultEvent fault;
    fault.at_s = static_cast<double>(at_ms) / 1000.0;
    fault.kind = kinds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kinds.size()) - 1))];
    switch (fault.kind) {
      case scenario::FaultKind::partition:
        fault.enb = pick_enb(rng, enb_count);
        fault.duration_s = ms_grid(rng, 50, 300);
        break;
      case scenario::FaultKind::delay_spike:
        fault.enb = pick_enb(rng, enb_count);
        fault.delay_ms = static_cast<double>(rng.uniform_int(5, 40));
        fault.duration_s = ms_grid(rng, 50, 300);
        break;
      case scenario::FaultKind::corrupt:
      case scenario::FaultKind::duplicate:
      case scenario::FaultKind::reorder:
        fault.enb = pick_enb(rng, enb_count);
        fault.count = static_cast<int>(rng.uniform_int(1, 6));
        break;
      case scenario::FaultKind::crash:
        // Every generated crash restarts; a crash with no restart can
        // never pass the end-state bar and would drown real findings.
        fault.enb = pick_enb(rng, enb_count);
        fault.duration_s = ms_grid(rng, 50, 400);
        break;
      case scenario::FaultKind::flap:
        fault.enb = pick_enb(rng, enb_count);
        fault.count = static_cast<int>(rng.uniform_int(2, 4));
        fault.period_s = ms_grid(rng, 20, 50);
        break;
      case scenario::FaultKind::vsf_crash:
      case scenario::FaultKind::vsf_overrun:
      case scenario::FaultKind::vsf_invalid:
        fault.enb = pick_enb(rng, enb_count);
        break;
      case scenario::FaultKind::report_flood:
        fault.enb = pick_enb(rng, enb_count);
        fault.count = static_cast<int>(rng.uniform_int(8, 32));
        fault.duration_s = ms_grid(rng, 200, 500);
        break;
      case scenario::FaultKind::master_crash:
        // Target a live shard: restarting an already-dead core would test
        // a state no operator can reach.
        fault.shard = pick_active_shard(rng, shard_active);
        fault.duration_s = ms_grid(rng, 100, 300);
        break;
      case scenario::FaultKind::shard_kill:
        fault.shard = pick_active_shard(rng, shard_active);
        shard_active[static_cast<std::size_t>(fault.shard)] = false;
        break;
      case scenario::FaultKind::shard_drain:
        fault.shard = pick_active_shard(rng, shard_active);
        shard_active[static_cast<std::size_t>(fault.shard)] = false;
        drain_used = true;
        break;
      case scenario::FaultKind::heal:
      case scenario::FaultKind::restart:
        break;  // never generated standalone
    }
    spec.faults.push_back(fault);
  }
  return spec;
}

RunVerdict run_fuzz_spec(const scenario::ScenarioSpec& spec) {
  scenario::ScenarioSpec run = spec;
  // The monitor must observe and count, never abort: minimization needs
  // to compare verdicts across dozens of trial runs.
  run.invariants = "log";
  const auto summary = scenario::run_scenario(run);
  RunVerdict verdict;
  verdict.invariant_checks = summary.invariant_checks;
  verdict.invariant_violations = summary.invariant_violations;
  if (summary.invariant_violations > 0) {
    verdict.violated = true;
    verdict.reasons.push_back(
        util::format("%llu invariant violations",
                     static_cast<unsigned long long>(summary.invariant_violations)));
    for (const auto& detail : summary.invariant_details) {
      verdict.reasons.push_back(detail);
    }
  }
  // End-state bar, identical to `flexran-sim --check`: whatever was
  // injected, the control plane must have converged by the end.
  if (summary.agents_up != summary.agents_total) {
    verdict.violated = true;
    verdict.reasons.push_back(util::format("only %d/%d agents up at end",
                                           summary.agents_up, summary.agents_total));
  }
  if (summary.recovering_at_end) {
    verdict.violated = true;
    verdict.reasons.push_back("a shard was still recovering at end");
  }
  if (summary.agents_orphaned > 0) {
    verdict.violated = true;
    verdict.reasons.push_back(util::format("%zu agents orphaned", summary.agents_orphaned));
  }
  if (summary.failover_pending > 0) {
    verdict.violated = true;
    verdict.reasons.push_back(
        util::format("%zu adoptions still pending", summary.failover_pending));
  }
  return verdict;
}

scenario::ScenarioSpec minimize_schedule(const scenario::ScenarioSpec& spec,
                                         std::uint64_t* runs) {
  scenario::ScenarioSpec best = spec;
  bool shrunk = true;
  while (shrunk && !best.faults.empty()) {
    shrunk = false;
    for (std::size_t i = 0; i < best.faults.size(); ++i) {
      scenario::ScenarioSpec trial = best;
      trial.faults.erase(trial.faults.begin() + static_cast<std::ptrdiff_t>(i));
      if (runs != nullptr) ++*runs;
      if (run_fuzz_spec(trial).violated) {
        best = std::move(trial);
        shrunk = true;
        break;
      }
    }
  }
  return best;
}

std::string repro_yaml(const scenario::ScenarioSpec& spec,
                       const std::vector<std::string>& reasons) {
  std::string out = "# Minimized chaos repro (docs/chaos_fuzzing.md).\n";
  out += util::format("# Found by flexran-fuzz --seed=%llu; %zu fault(s) survived "
                      "minimization.\n",
                      static_cast<unsigned long long>(spec.seed), spec.faults.size());
  for (const auto& reason : reasons) out += "# violated: " + reason + "\n";
  out += "# Replay: ./build/tools/flexran-sim <this file> --check\n";
  out += scenario::scenario_to_yaml(spec);
  return out;
}

FuzzResult fuzz_seed(const FuzzConfig& config, bool minimize) {
  FuzzResult result;
  result.seed = config.seed;
  result.spec = generate_scenario(config);
  auto verdict = run_fuzz_spec(result.spec);
  result.runs = 1;
  result.violated = verdict.violated;
  result.reasons = verdict.reasons;
  result.invariant_checks = verdict.invariant_checks;
  result.minimized = result.spec;
  if (result.violated && minimize) {
    result.minimized = minimize_schedule(result.spec, &result.runs);
    // Re-run the survivor once so the repro header carries the reasons
    // of the minimized schedule, not the original one.
    auto final_verdict = run_fuzz_spec(result.minimized);
    ++result.runs;
    if (!final_verdict.reasons.empty()) result.reasons = final_verdict.reasons;
  }
  if (result.violated) result.repro = repro_yaml(result.minimized, result.reasons);
  return result;
}

}  // namespace flexran::verify
