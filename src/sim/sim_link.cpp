#include "sim/sim_link.h"

#include <algorithm>
#include <utility>

namespace flexran::sim {

TimeUs SimLink::serialization_delay(std::size_t bytes) const {
  if (config_.rate_bps <= 0) return 0;
  return static_cast<TimeUs>(static_cast<double>(bytes) * 8.0 / static_cast<double>(config_.rate_bps) * 1e6);
}

void SimLink::send(std::vector<std::uint8_t> payload) {
  if (down_) {
    ++packets_dropped_;
    return;
  }
  ++packets_sent_;
  bytes_sent_ += payload.size();

  // Rate limiting: packets serialize back-to-back.
  const TimeUs start = std::max(sim_.now(), tx_free_at_);
  tx_free_at_ = start + serialization_delay(payload.size());

  TimeUs arrival = tx_free_at_ + config_.delay;
  if (config_.jitter > 0) arrival += static_cast<TimeUs>(rng_.uniform() * static_cast<double>(config_.jitter));
  if (config_.loss > 0.0 && rng_.chance(config_.loss)) {
    // TCP-style recovery: the payload still arrives, one RTT later.
    ++packets_retransmitted_;
    arrival += 2 * config_.delay;
  }
  // Preserve in-order delivery.
  arrival = std::max(arrival, last_delivery_);
  last_delivery_ = arrival;

  sim_.at(arrival, [this, data = std::move(payload)]() mutable {
    if (deliver_) deliver_(std::move(data));
  });
}

}  // namespace flexran::sim
