#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

namespace flexran::sim {

namespace {
// Min-heap comparator (std heap algorithms build max-heaps, so invert).
struct EventLater {
  bool operator()(const auto& a, const auto& b) const {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};
}  // namespace

void Simulator::at(TimeUs when, Callback fn) {
  assert(fn);
  // Guard against scheduling into the past; clamp to "immediately".
  heap_.push_back(Event{std::max(when, now_), next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
}

Simulator::Event Simulator::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

void Simulator::run() {
  stopped_ = false;
  while (!heap_empty() && !stopped_) {
    Event event = pop_event();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
}

void Simulator::run_until(TimeUs until) {
  stopped_ = false;
  while (!heap_empty() && !stopped_ && heap_top_time() <= until) {
    Event event = pop_event();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
  if (!stopped_ && now_ < until) now_ = until;
}

void TtiTicker::subscribe(TtiCallback fn, int priority) {
  subscribers_.push_back({priority, next_order_++, std::move(fn)});
  std::stable_sort(subscribers_.begin(), subscribers_.end(), [](const auto& a, const auto& b) {
    return a.priority != b.priority ? a.priority < b.priority : a.order < b.order;
  });
}

void TtiTicker::start() {
  if (running_) return;
  running_ = true;
  const TimeUs next_boundary = ((sim_.now() / kTtiUs) + 1) * kTtiUs;
  sim_.at(next_boundary, [this] { tick(); });
}

void TtiTicker::tick() {
  if (!running_) return;
  const std::int64_t tti = sim_.current_tti();
  for (auto& sub : subscribers_) sub.fn(tti);
  sim_.after(kTtiUs, [this] { tick(); });
}

}  // namespace flexran::sim
