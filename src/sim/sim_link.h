// Simulated point-to-point link — the netem equivalent used for the
// master<->agent control channel. Models one-way propagation delay, jitter,
// a serialization rate, and random loss, while preserving FIFO delivery
// order (as TCP would after reordering repair).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace flexran::sim {

struct LinkConfig {
  /// One-way propagation delay.
  TimeUs delay = 0;
  /// Uniform jitter in [0, jitter] added per packet.
  TimeUs jitter = 0;
  /// Serialization rate in bits/s; 0 = infinite.
  std::int64_t rate_bps = 0;
  /// Packet loss probability in [0, 1). Lost packets are retransmitted after
  /// one RTT (delay * 2) to mimic TCP recovery rather than dropped silently.
  double loss = 0.0;
  std::uint64_t seed = 1;
};

class SimLink {
 public:
  using DeliverFn = std::function<void(std::vector<std::uint8_t>)>;

  SimLink(Simulator& sim, LinkConfig config) : sim_(sim), config_(config), rng_(config.seed) {}

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  const LinkConfig& config() const { return config_; }
  /// Latency reconfiguration at runtime (paper Sec. 5.3 uses netem the same
  /// way); applies to packets sent after the call.
  void set_delay(TimeUs delay) { config_.delay = delay; }

  /// Simulates a network partition: while down, packets are dropped
  /// outright (no TCP-style recovery; the path is gone).
  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }

  void send(std::vector<std::uint8_t> payload);

  /// Bytes still queued behind the serializer right now -- the link-level
  /// occupancy a sender's byte budget is checked against. Always 0 on a
  /// rate-unlimited link (packets serialize instantly).
  std::uint64_t backlog_bytes() const {
    const TimeUs now = sim_.now();
    if (config_.rate_bps <= 0 || tx_free_at_ <= now) return 0;
    return static_cast<std::uint64_t>(static_cast<double>(tx_free_at_ - now) * 1e-6 *
                                      static_cast<double>(config_.rate_bps) / 8.0);
  }

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t packets_retransmitted() const { return packets_retransmitted_; }

 private:
  TimeUs serialization_delay(std::size_t bytes) const;

  Simulator& sim_;
  LinkConfig config_;
  util::Rng rng_;
  DeliverFn deliver_;
  /// Time the previous packet finished serializing (rate limiting).
  TimeUs tx_free_at_ = 0;
  /// Delivery-order floor so jitter cannot reorder packets.
  TimeUs last_delivery_ = 0;
  bool down_ = false;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_retransmitted_ = 0;
  std::uint64_t packets_dropped_ = 0;
};

}  // namespace flexran::sim
