// Single-threaded discrete-event simulator. All FlexRAN experiments run in
// simulated time so latency sweeps (paper Fig. 9) and long traffic runs
// (Figs. 10-12) are deterministic and fast. The LTE TTI (1 ms) is the
// platform's natural heartbeat; TtiTicker fans a per-TTI callback out to the
// data plane, the agents and the master controller task manager.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace flexran::sim {

/// Simulated time in microseconds since simulation start.
using TimeUs = std::int64_t;

constexpr TimeUs kUsPerMs = 1000;
constexpr TimeUs kUsPerSec = 1'000'000;
/// LTE Transmission Time Interval: one subframe, 1 ms.
constexpr TimeUs kTtiUs = kUsPerMs;

constexpr double to_seconds(TimeUs t) { return static_cast<double>(t) / 1e6; }
constexpr TimeUs from_seconds(double s) { return static_cast<TimeUs>(s * 1e6); }
constexpr TimeUs from_ms(double ms) { return static_cast<TimeUs>(ms * 1e3); }

class Simulator {
 public:
  using Callback = std::function<void()>;

  TimeUs now() const { return now_; }
  /// Subframe number (TTI count) at the current time.
  std::int64_t current_tti() const { return now_ / kTtiUs; }

  /// Schedule `fn` at absolute simulated time `when` (>= now).
  void at(TimeUs when, Callback fn);
  /// Schedule `fn` after `delay` microseconds.
  void after(TimeUs delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  /// Run events until the queue empties or `stop()` is called.
  void run();
  /// Run events with time <= `until`; afterwards now() == until (unless
  /// stopped earlier).
  void run_until(TimeUs until);
  /// Run for `duration` more microseconds.
  void run_for(TimeUs duration) { run_until(now_ + duration); }
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeUs time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback fn;
  };

  bool heap_empty() const { return heap_.empty(); }
  TimeUs heap_top_time() const { return heap_.front().time; }
  Event pop_event();

  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::vector<Event> heap_;  // min-heap via std::push_heap/pop_heap
};

/// Invokes subscribers at every TTI boundary, in subscription order.
/// Subscribers registered with a priority run lowest-priority-value first
/// (the data plane runs before the agent, which runs before traffic sinks).
class TtiTicker {
 public:
  using TtiCallback = std::function<void(std::int64_t tti)>;

  explicit TtiTicker(Simulator& sim) : sim_(sim) {}

  /// Lower `priority` runs earlier within the tick.
  void subscribe(TtiCallback fn, int priority = 100);

  /// Begin ticking at the next TTI boundary.
  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }

 private:
  void tick();

  struct Subscriber {
    int priority;
    std::uint64_t order;
    TtiCallback fn;
  };

  Simulator& sim_;
  std::vector<Subscriber> subscribers_;
  std::uint64_t next_order_ = 0;
  bool running_ = false;
};

}  // namespace flexran::sim
