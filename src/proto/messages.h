// FlexRAN protocol messages (paper Sec. 4.3.2 and Table 1). Five call
// classes flow between master and agent:
//   configuration  - EnbConfig/UeConfig/LcConfig request+reply (synchronous)
//   statistics     - StatsRequest / StatsReply (async, one-off|periodic|triggered)
//   commands       - DlMacConfig / UlMacConfig / HandoverCommand / AbsConfig
//   event-triggers - EventNotification (subframe tick = master-agent sync,
//                    UE attach, RACH, scheduling request)
//   delegation     - ControlDelegation (VSF updation) / PolicyReconfiguration
// Every message travels inside an Envelope carrying version/type/xid.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "lte/abs.h"
#include "lte/allocation.h"
#include "lte/types.h"
#include "net/flow_control.h"
#include "proto/wire.h"
#include "util/result.h"

namespace flexran::proto {

constexpr std::uint8_t kProtocolVersion = 1;

enum class MessageType : std::uint8_t {
  hello = 1,
  echo_request = 2,
  echo_reply = 3,
  enb_config_request = 4,
  enb_config_reply = 5,
  ue_config_request = 6,
  ue_config_reply = 7,
  lc_config_request = 8,
  lc_config_reply = 9,
  stats_request = 10,
  stats_reply = 11,
  dl_mac_config = 12,
  ul_mac_config = 13,
  handover_command = 14,
  abs_config = 15,
  event_notification = 16,
  control_delegation = 17,
  policy_reconfiguration = 18,
  event_subscription = 19,
  carrier_restriction = 20,
  drx_config = 21,
  scell_command = 22,
};

/// Overhead accounting buckets used by the Fig. 7 experiment.
enum class MessageCategory : std::uint8_t {
  agent_management,  // hello, echo, config exchange, non-sync events
  sync,              // subframe-tick notifications (master-agent TTI sync)
  stats,             // statistics reports
  commands,          // scheduling decisions and other control commands
  delegation,        // VSF updation / policy reconfiguration
};

const char* to_string(MessageType type);
const char* to_string(MessageCategory category);

// ---------------------------------------------------------------- envelope

struct Envelope {
  std::uint8_t version = kProtocolVersion;
  MessageType type = MessageType::hello;
  std::uint32_t xid = 0;
  /// Session epoch: incremented by the agent on every (re)connect and
  /// echoed by the master once learned. 0 = epoch-unaware sender (accepted
  /// everywhere, for compatibility with pre-epoch peers). Receivers fence
  /// messages carrying an epoch older than the current session, so commands
  /// and reports in flight across an agent restart cannot be misapplied.
  std::uint32_t epoch = 0;
  /// Master queue status piggybacked on every master -> agent message while
  /// the master is under pressure (docs/overload_protection.md): the
  /// numeric OverloadState (0 = normal, 1 = elevated, 2 = critical).
  /// 0 is omitted on the wire, so a healthy control channel carries no
  /// overhead and pre-overload peers interoperate unchanged.
  std::uint8_t queue_status = 0;
  /// Report-throttle hint: multiplier the agent applies to every periodic
  /// report period while set (0/1 = no throttling). Covers registrations
  /// the master never issued itself (e.g. operator tooling driving the
  /// agent directly); master-issued requests are additionally renegotiated
  /// through the stats-request machinery.
  std::uint32_t throttle_hint = 0;
  /// Sender timestamp in simulated microseconds, stamped by the master on
  /// outgoing messages while observability is enabled
  /// (docs/observability.md). 0 (omitted) = not stamped.
  std::uint64_t ts_us = 0;
  /// Timestamp echo: the agent returns the most recent master `ts_us` it
  /// received, once, on its next outgoing message. The master records
  /// `now - ts_echo_us` into the per-agent end-to-end control-latency
  /// histogram. 0 (omitted) = nothing to echo.
  std::uint64_t ts_echo_us = 0;
  /// Master incarnation epoch (docs/fault_tolerance.md "Master restart"):
  /// bumped on every master (re)start and stamped on every master send
  /// while crash recovery is enabled. The mirror image of the agent-side
  /// session `epoch` above: agents fence messages from an older incarnation
  /// (commands issued by a dead master must not be applied) and treat a
  /// higher one as "master restarted -- re-hello and full re-sync".
  /// 0 is omitted on the wire: an incarnation-unaware sender is accepted
  /// everywhere and a recovery-disabled deployment is wire-identical.
  std::uint32_t master_epoch = 0;
  /// Re-sync admission deferral hint, milliseconds: stamped by a restarted
  /// master on messages to an agent whose full re-sync the token-bucket
  /// admission gate has deferred (piggybacked like `throttle_hint`). The
  /// agent holds its hello retries for roughly this long; the master drives
  /// the deferred re-sync itself once a token frees up. 0 (omitted) = no
  /// deferral in effect.
  std::uint32_t retry_after_ms = 0;
  std::vector<std::uint8_t> body;

  std::vector<std::uint8_t> encode() const;
  /// Appends the trailing envelope fields (5..11, all zero-omitted) to `enc`.
  /// Split out so encode_envelope() can write the body inline between the
  /// leading fields and this tail; byte layout matches encode().
  void encode_tail(WireEncoder& enc) const;
  static util::Result<Envelope> decode(std::span<const std::uint8_t> data);
  /// Allocation-free variant of decode(): resets `out` and decodes into it,
  /// reusing `out.body`'s capacity. Receive paths keep one Envelope per link
  /// and call this per message.
  static util::Status decode_into(std::span<const std::uint8_t> data, Envelope& out);
};

// ------------------------------------------------------- agent management

struct Hello {
  static constexpr MessageType kType = MessageType::hello;
  lte::EnbId enb_id = 0;
  std::string name;
  std::uint32_t n_cells = 1;
  std::vector<std::string> capabilities;
  /// Session epoch of this connection (1 on first connect; higher values
  /// announce a reconnect and make the master run a full re-sync).
  std::uint32_t epoch = 0;

  void encode_body(WireEncoder& enc) const;
  static util::Result<Hello> decode_body(std::span<const std::uint8_t> data);
};

/// Echo doubles as liveness probe and time sync (carries the agent's
/// current subframe and a timestamp to estimate RTT).
struct EchoRequest {
  static constexpr MessageType kType = MessageType::echo_request;
  std::int64_t subframe = 0;
  std::int64_t timestamp_us = 0;

  void encode_body(WireEncoder& enc) const;
  static util::Result<EchoRequest> decode_body(std::span<const std::uint8_t> data);
};

struct EchoReply {
  static constexpr MessageType kType = MessageType::echo_reply;
  std::int64_t subframe = 0;
  std::int64_t echoed_timestamp_us = 0;

  void encode_body(WireEncoder& enc) const;
  static util::Result<EchoReply> decode_body(std::span<const std::uint8_t> data);
};

// ----------------------------------------------------------- configuration

struct EnbConfigRequest {
  static constexpr MessageType kType = MessageType::enb_config_request;
  void encode_body(WireEncoder&) const {}
  static util::Result<EnbConfigRequest> decode_body(std::span<const std::uint8_t>) {
    return EnbConfigRequest{};
  }
};

struct CellConfigMsg {
  lte::CellId cell_id = 0;
  double bandwidth_mhz = 10.0;
  std::uint8_t duplex = 0;
  std::uint8_t tx_mode = 1;
  std::uint8_t antenna_ports = 1;
  std::uint16_t band = 5;
  std::uint16_t pci = 0;

  static CellConfigMsg from(const lte::CellConfig& config);
  lte::CellConfig to_cell_config() const;
};

struct EnbConfigReply {
  static constexpr MessageType kType = MessageType::enb_config_reply;
  lte::EnbId enb_id = 0;
  std::vector<CellConfigMsg> cells;

  void encode_body(WireEncoder& enc) const;
  static util::Result<EnbConfigReply> decode_body(std::span<const std::uint8_t> data);
};

struct UeConfigRequest {
  static constexpr MessageType kType = MessageType::ue_config_request;
  void encode_body(WireEncoder&) const {}
  static util::Result<UeConfigRequest> decode_body(std::span<const std::uint8_t>) {
    return UeConfigRequest{};
  }
};

struct UeConfigMsg {
  lte::Rnti rnti = lte::kInvalidRnti;
  lte::CellId primary_cell = 0;
  std::uint8_t tx_mode = 1;
  std::uint8_t ue_category = 4;
  bool carrier_aggregation = false;

  static UeConfigMsg from(const lte::UeConfig& config);
  lte::UeConfig to_ue_config() const;
};

struct UeConfigReply {
  static constexpr MessageType kType = MessageType::ue_config_reply;
  std::vector<UeConfigMsg> ues;

  void encode_body(WireEncoder& enc) const;
  static util::Result<UeConfigReply> decode_body(std::span<const std::uint8_t> data);
};

struct LcConfigRequest {
  static constexpr MessageType kType = MessageType::lc_config_request;
  void encode_body(WireEncoder&) const {}
  static util::Result<LcConfigRequest> decode_body(std::span<const std::uint8_t>) {
    return LcConfigRequest{};
  }
};

struct LcConfigMsg {
  lte::Rnti rnti = lte::kInvalidRnti;
  lte::Lcid lcid = lte::kDefaultDrb;
  std::uint8_t lc_group = 1;
};

struct LcConfigReply {
  static constexpr MessageType kType = MessageType::lc_config_reply;
  std::vector<LcConfigMsg> channels;

  void encode_body(WireEncoder& enc) const;
  static util::Result<LcConfigReply> decode_body(std::span<const std::uint8_t> data);
};

// --------------------------------------------------------------- statistics

enum class ReportMode : std::uint8_t { one_off = 0, periodic = 1, triggered = 2 };

/// Bitmask of what to include in a stats report.
namespace stats_flags {
constexpr std::uint32_t kBsr = 1u << 0;
constexpr std::uint32_t kCqi = 1u << 1;
constexpr std::uint32_t kPhr = 1u << 2;
constexpr std::uint32_t kRlcQueue = 1u << 3;
constexpr std::uint32_t kMacCounters = 1u << 4;
constexpr std::uint32_t kCellLoad = 1u << 5;
constexpr std::uint32_t kHarq = 1u << 6;
constexpr std::uint32_t kRsrp = 1u << 7;
constexpr std::uint32_t kAllUeFlags =
    kBsr | kCqi | kPhr | kRlcQueue | kMacCounters | kHarq | kRsrp;
constexpr std::uint32_t kAll = kAllUeFlags | kCellLoad;
}  // namespace stats_flags

struct StatsRequest {
  static constexpr MessageType kType = MessageType::stats_request;
  std::uint32_t request_id = 0;
  ReportMode mode = ReportMode::one_off;
  /// For periodic mode: interval in TTIs.
  std::uint32_t periodicity_ttis = 1;
  std::uint32_t flags = stats_flags::kAll;
  /// Empty = all UEs.
  std::vector<lte::Rnti> ues;

  void encode_body(WireEncoder& enc) const;
  static util::Result<StatsRequest> decode_body(std::span<const std::uint8_t> data);
};

/// One RRC measurement entry: received power from a cell (serving included).
struct RsrpMeasurement {
  lte::CellId cell_id = 0;
  /// RSRP in dBm; wire form is centi-dB signed varint.
  double rsrp_dbm = -140.0;
};

struct UeStatsReport {
  lte::Rnti rnti = lte::kInvalidRnti;
  /// Buffer status per logical channel group, bytes.
  std::array<std::uint32_t, lte::kNumLcGroups> bsr_bytes{};
  std::int32_t phr_db = 20;
  std::uint8_t wb_cqi = 0;
  /// CQI measured on protected (almost-blank) subframes -- 36.331 restricted
  /// measurements; what an eICIC coordinator uses for small-cell UEs.
  std::uint8_t wb_cqi_protected = 0;
  std::uint32_t rlc_queue_bytes = 0;
  std::uint32_t pending_harq = 0;
  std::uint64_t dl_bytes_delivered = 0;
  std::uint64_t ul_bytes_received = 0;
  /// Uplink buffer status (from the UE's BSR MAC control elements), bytes.
  std::uint32_t ul_buffer_bytes = 0;
  /// RRC measurement report: per-cell RSRP (paper Table 1 lists "reference
  /// signal received power measurements for the RRC module"). Populated for
  /// UEs with a radio profile; empty under abstract channel models.
  std::vector<RsrpMeasurement> rsrp;

  std::uint32_t total_bsr() const {
    std::uint32_t total = 0;
    for (auto b : bsr_bytes) total += b;
    return total;
  }
};

struct CellStatsReport {
  lte::CellId cell_id = 0;
  double noise_interference_dbm = -97.0;
  std::uint32_t dl_prbs_in_use = 0;
  std::uint32_t ul_prbs_in_use = 0;
  std::uint32_t active_ues = 0;
};

struct StatsReply {
  static constexpr MessageType kType = MessageType::stats_reply;
  std::uint32_t request_id = 0;
  std::int64_t subframe = 0;
  std::vector<UeStatsReport> ue_reports;
  std::vector<CellStatsReport> cell_reports;

  void encode_body(WireEncoder& enc) const;
  static util::Result<StatsReply> decode_body(std::span<const std::uint8_t> data);
  /// Allocation-free variant of decode_body(): resets `out` and decodes into
  /// it, reusing the report vectors (and each report's rsrp vector) in place.
  /// With a warm `out` of the same shape this performs zero heap allocations.
  static util::Status decode_body_into(std::span<const std::uint8_t> data, StatsReply& out);
};

// ----------------------------------------------------------------- commands

struct DlMacConfig {
  static constexpr MessageType kType = MessageType::dl_mac_config;
  lte::CellId cell_id = 0;
  std::int64_t target_subframe = 0;
  std::vector<lte::DlDci> dcis;

  void encode_body(WireEncoder& enc) const;
  static util::Result<DlMacConfig> decode_body(std::span<const std::uint8_t> data);
};

struct UlMacConfig {
  static constexpr MessageType kType = MessageType::ul_mac_config;
  lte::CellId cell_id = 0;
  std::int64_t target_subframe = 0;
  std::vector<lte::UlDci> dcis;

  void encode_body(WireEncoder& enc) const;
  static util::Result<UlMacConfig> decode_body(std::span<const std::uint8_t> data);
};

struct HandoverCommand {
  static constexpr MessageType kType = MessageType::handover_command;
  lte::Rnti rnti = lte::kInvalidRnti;
  lte::CellId source_cell = 0;
  lte::CellId target_cell = 0;

  void encode_body(WireEncoder& enc) const;
  static util::Result<HandoverCommand> decode_body(std::span<const std::uint8_t> data);
};

struct AbsConfig {
  static constexpr MessageType kType = MessageType::abs_config;
  lte::CellId cell_id = 0;
  lte::AbsPattern pattern;
  /// True = this cell mutes during ABS (macro role); false = the pattern
  /// only marks protected subframes (small-cell role).
  bool mute_during_abs = true;

  void encode_body(WireEncoder& enc) const;
  static util::Result<AbsConfig> decode_body(std::span<const std::uint8_t> data);
};

/// Restricts the downlink carrier to its first `max_dl_prbs` PRBs
/// (0 = unrestricted). Added for the Licensed Shared Access use case the
/// paper sketches in Sec. 7.1: an incumbent reclaiming part of the band is
/// enforced by evacuating the upper PRBs. Also a demonstration of protocol
/// extensibility (Sec. 7.2): a new technology-specific message slots in
/// without touching existing ones.
struct CarrierRestriction {
  static constexpr MessageType kType = MessageType::carrier_restriction;
  lte::CellId cell_id = 0;
  std::uint16_t max_dl_prbs = 0;

  void encode_body(WireEncoder& enc) const;
  static util::Result<CarrierRestriction> decode_body(std::span<const std::uint8_t> data);
};

/// DRX (discontinuous reception) command for a UE -- paper Table 1 lists
/// "DRX commands" among the Commands call class. The UE listens for the
/// first `on_duration_ttis` of every `cycle_ttis`-long DRX cycle and sleeps
/// for the rest; cycle 0 disables DRX.
struct DrxConfig {
  static constexpr MessageType kType = MessageType::drx_config;
  lte::Rnti rnti = lte::kInvalidRnti;
  std::uint16_t cycle_ttis = 0;
  std::uint16_t on_duration_ttis = 0;

  void encode_body(WireEncoder& enc) const;
  static util::Result<DrxConfig> decode_body(std::span<const std::uint8_t> data);
};

/// (De)activates a UE's secondary component carrier -- paper Table 1 lists
/// "(de)activating component carriers in carrier aggregation" among the
/// Commands call class.
struct ScellCommand {
  static constexpr MessageType kType = MessageType::scell_command;
  lte::Rnti rnti = lte::kInvalidRnti;
  bool activate = true;

  void encode_body(WireEncoder& enc) const;
  static util::Result<ScellCommand> decode_body(std::span<const std::uint8_t> data);
};

// ----------------------------------------------------------- event triggers

enum class EventType : std::uint8_t {
  subframe_tick = 1,  // master-agent sync, sent every TTI when enabled
  ue_attach = 2,
  ue_detach = 3,
  rach_attempt = 4,
  scheduling_request = 5,
  // Master-internal lifecycle events (never sent on the wire): surfaced to
  // applications by the Event Notification Service so they can react to an
  // agent's control channel going away and coming back.
  agent_disconnected = 6,
  agent_reconnected = 7,
  /// A tracked request exhausted its retries; `xid` identifies it.
  request_timeout = 8,
  // Delegated-control containment (docs/delegation_safety.md): triggered
  // events the agent sends when guarded VSF execution misbehaves or a
  // policy reconfiguration is (not) applied.
  /// A guarded VSF invocation failed (exception / deadline overrun /
  /// invalid decision) and the slot fell back to the local default for the
  /// TTI. Carries module/vsf/implementation, the failure kind and the
  /// consecutive-failure count.
  vsf_failure = 9,
  /// An implementation crossed the consecutive-failure threshold and was
  /// quarantined in the agent's VSF cache.
  vsf_quarantined = 10,
  /// A policy reconfiguration was validated and applied atomically; `xid`
  /// echoes the PolicyReconfiguration envelope. The master promotes the
  /// matching policy to last-known-good.
  policy_applied = 11,
  /// A policy reconfiguration failed validation and was NOT applied (the
  /// old policy stays active); `detail` carries the reason.
  policy_rejected = 12,
  /// Master-internal: the overload watchdog moved the master to a new
  /// OverloadState (docs/overload_protection.md). `overload_state` carries
  /// the new state, `detail` its name. Emitted once per transition so apps
  /// can back off (or resume) their own signaling.
  overload_state_changed = 13,
};

/// Why a guarded VSF invocation failed (vsf_failure / vsf_quarantined).
enum class VsfFailureKind : std::uint8_t {
  none = 0,
  /// The VSF threw an exception.
  exception = 1,
  /// The invocation exceeded its deadline budget (declared simulated cost
  /// or wall-clock backstop).
  overrun = 2,
  /// The returned SchedulingDecision failed validation (PRB bounds,
  /// overlap, unknown RNTI, MCS range).
  invalid_decision = 3,
};

const char* to_string(VsfFailureKind kind);

struct EventNotification {
  static constexpr MessageType kType = MessageType::event_notification;
  EventType event = EventType::subframe_tick;
  std::int64_t subframe = 0;
  lte::Rnti rnti = lte::kInvalidRnti;
  lte::CellId cell_id = 0;
  /// For request_timeout events: the xid of the failed request. For
  /// policy_applied / policy_rejected: the xid of the policy envelope.
  std::uint32_t xid = 0;
  // ---- delegated-control containment fields (vsf_* / policy_* events) ------
  /// CMI address of the failing slot, e.g. "mac" / "dl_ue_scheduler".
  std::string module;
  std::string vsf;
  /// The cached implementation that failed or was quarantined.
  std::string implementation;
  VsfFailureKind failure_kind = VsfFailureKind::none;
  /// Consecutive failures recorded against the implementation.
  std::uint32_t failure_count = 0;
  /// Human-readable reason (validation error, rejected-policy message).
  std::string detail;
  /// For overload_state_changed: the numeric OverloadState entered
  /// (0 = normal, 1 = elevated, 2 = critical).
  std::uint8_t overload_state = 0;

  void encode_body(WireEncoder& enc) const;
  static util::Result<EventNotification> decode_body(std::span<const std::uint8_t> data);
};

const char* to_string(EventType event);

/// Master -> agent: (un)subscribe from event notifications (paper: "the
/// master can choose whether or not to be notified for a specific event
/// occurring at the eNodeB by registering for it at the agent").
struct EventSubscription {
  static constexpr MessageType kType = MessageType::event_subscription;
  std::vector<EventType> events;
  bool enable = true;

  void encode_body(WireEncoder& enc) const;
  static util::Result<EventSubscription> decode_body(std::span<const std::uint8_t> data);
};

// -------------------------------------------------------- control delegation

/// VSF updation: push a control-function implementation to the agent cache.
/// `implementation` names a registered factory; `blob` carries opaque
/// payload (stand-in for the paper's compiled shared library, see DESIGN.md
/// substitution table).
struct ControlDelegation {
  static constexpr MessageType kType = MessageType::control_delegation;
  std::string module;          // e.g. "mac"
  std::string vsf;             // e.g. "dl_ue_scheduler"
  std::string implementation;  // e.g. "local_pf"
  std::uint32_t version = 1;
  std::vector<std::uint8_t> blob;

  void encode_body(WireEncoder& enc) const;
  static util::Result<ControlDelegation> decode_body(std::span<const std::uint8_t> data);
};

/// Policy reconfiguration: YAML document selecting cached VSF behaviors and
/// setting their parameters (paper Fig. 3).
struct PolicyReconfiguration {
  static constexpr MessageType kType = MessageType::policy_reconfiguration;
  std::string yaml;

  void encode_body(WireEncoder& enc) const;
  static util::Result<PolicyReconfiguration> decode_body(std::span<const std::uint8_t> data);
};

// ------------------------------------------------------------------ helpers

/// Process-wide counters for wire data that decoded without error but lost
/// information on the way: the decoder keeps the message rather than reject
/// it, and counts the loss here so it is visible instead of silent. Surfaced
/// through the master's accounting probes (docs/observability.md).
struct DecodeAnomalies {
  /// UeStatsReport carried more bsr_bytes entries (field 2) than the fixed
  /// kNumLcGroups array holds; the extras were dropped.
  std::atomic<std::uint64_t> bsr_overflow{0};
};

DecodeAnomalies& decode_anomalies();

/// Category for Fig. 7 signaling accounting. Event notifications split by
/// event type: subframe ticks are `sync`, everything else `agent_management`.
MessageCategory categorize(MessageType type, const std::vector<std::uint8_t>& body);

/// Traffic class for the overload-protection layer (net::TrafficClass,
/// docs/overload_protection.md). Session and command/config traffic maps
/// to unsheddable classes; event notifications split by event type:
/// subframe ticks are `sync` (coalescible, superseded every TTI),
/// everything else is `event`.
net::TrafficClass traffic_class(MessageType type, const std::vector<std::uint8_t>& body);

/// Body-independent variants, for callers that only have the type. For
/// event_notification these return the non-tick answer (agent_management /
/// event); use the typed overloads below when the message is in hand.
MessageCategory categorize(MessageType type);
net::TrafficClass traffic_class(MessageType type);

/// Typed variants: same answers as the (type, body) overloads without the
/// body re-decode those need for event notifications. Send paths that hold
/// the message struct use these on the zero-allocation path.
template <typename M>
MessageCategory categorize(const M&) {
  return categorize(M::kType);
}
inline MessageCategory categorize(const EventNotification& event) {
  return event.event == EventType::subframe_tick ? MessageCategory::sync
                                                 : MessageCategory::agent_management;
}

template <typename M>
net::TrafficClass traffic_class(const M&) {
  return traffic_class(M::kType);
}
inline net::TrafficClass traffic_class(const EventNotification& event) {
  return event.event == EventType::subframe_tick ? net::TrafficClass::sync
                                                 : net::TrafficClass::event;
}

/// Encodes `message` inside an envelope directly into `enc` (which the caller
/// has clear()ed): the body is written inline through begin_message/
/// end_message, so there is no per-send body vector and no copy. `header`
/// supplies every envelope field except `type` (taken from M::kType) and
/// `body` (ignored). Bytes are identical to pack()/Envelope::encode().
template <typename M>
void encode_envelope(WireEncoder& enc, const Envelope& header, const M& message) {
  enc.field_varint(1, header.version);
  enc.field_varint(2, static_cast<std::uint64_t>(M::kType));
  if (header.xid != 0) enc.field_varint(3, header.xid);
  const std::size_t mark = enc.begin_message(4);
  message.encode_body(enc);
  enc.end_message(mark);
  header.encode_tail(enc);
}

/// Packs a message struct into an encoded envelope.
template <typename M>
std::vector<std::uint8_t> pack(const M& message, std::uint32_t xid = 0) {
  WireEncoder enc;
  Envelope envelope;
  envelope.type = M::kType;
  envelope.xid = xid;
  encode_envelope(enc, envelope, message);
  return enc.take();
}

/// Unpacks an envelope body into a message struct; the caller has already
/// matched envelope.type against M::kType.
template <typename M>
util::Result<M> unpack(const Envelope& envelope) {
  if (envelope.type != M::kType) {
    return util::Error::decode_failure("envelope type mismatch");
  }
  return M::decode_body(envelope.body);
}

/// Conversions between wire DCIs and the lte:: scheduling types.
DlMacConfig to_dl_mac_config(const lte::SchedulingDecision& decision);
UlMacConfig to_ul_mac_config(const lte::SchedulingDecision& decision);

}  // namespace flexran::proto
