#include "proto/wire.h"

#include <cstring>

namespace flexran::proto {

std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^ static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^ -static_cast<std::int64_t>(value & 1);
}

void WireEncoder::varint(std::uint64_t value) {
  while (value >= 0x80) {
    buffer_.write_u8(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.write_u8(static_cast<std::uint8_t>(value));
}

std::size_t varint_size(std::uint64_t value) {
  std::size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

void WireEncoder::tag(int field, WireType type) {
  varint(static_cast<std::uint64_t>(field) << 3 | static_cast<std::uint64_t>(type));
}

std::size_t WireEncoder::begin_message(int field) {
  tag(field, WireType::length_delimited);
  buffer_.write_u8(0);  // length placeholder, backpatched by end_message
  return buffer_.size();
}

void WireEncoder::end_message(std::size_t mark) {
  const std::size_t length = buffer_.size() - mark;
  const std::size_t prefix_bytes = varint_size(length);
  if (prefix_bytes > 1) {
    // The 1-byte placeholder is too narrow: open a gap right after it and
    // let the payload slide right. The format stays minimal-varint, so the
    // bytes match what a fresh sub-encoder + field_bytes would have produced.
    buffer_.insert_zeros(mark, prefix_bytes - 1);
  }
  std::uint8_t* prefix = buffer_.mutable_data() + (mark - 1);
  std::uint64_t value = length;
  while (value >= 0x80) {
    *prefix++ = static_cast<std::uint8_t>(value) | 0x80;
    value >>= 7;
  }
  *prefix = static_cast<std::uint8_t>(value);
}

void WireEncoder::field_varint(int field, std::uint64_t value) {
  tag(field, WireType::varint);
  varint(value);
}

void WireEncoder::field_double(int field, double value) {
  tag(field, WireType::fixed64);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  buffer_.write_u64(bits);
}

void WireEncoder::field_fixed32(int field, std::uint32_t value) {
  tag(field, WireType::fixed32);
  buffer_.write_u32(value);
}

void WireEncoder::field_bytes(int field, std::span<const std::uint8_t> bytes) {
  tag(field, WireType::length_delimited);
  varint(bytes.size());
  buffer_.write_bytes(bytes);
}

void WireEncoder::field_string(int field, std::string_view text) {
  tag(field, WireType::length_delimited);
  varint(text.size());
  buffer_.write_string(text);
}

util::Result<WireDecoder::FieldHeader> WireDecoder::next_field() {
  auto raw = read_varint();
  if (!raw.ok()) return raw.error();
  const auto type_bits = static_cast<std::uint8_t>(*raw & 0x7);
  if (type_bits != 0 && type_bits != 1 && type_bits != 2 && type_bits != 5) {
    return util::Error::decode_failure("unsupported wire type");
  }
  FieldHeader header;
  header.field = static_cast<int>(*raw >> 3);
  header.type = static_cast<WireType>(type_bits);
  if (header.field <= 0) return util::Error::decode_failure("invalid field number");
  return header;
}

util::Result<std::uint64_t> WireDecoder::read_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 64) return util::Error::decode_failure("varint too long");
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return util::Error::decode_failure("varint past end");
}

util::Result<double> WireDecoder::read_double() {
  if (data_.size() - pos_ < 8) return util::Error::decode_failure("fixed64 past end");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

util::Result<std::uint32_t> WireDecoder::read_fixed32() {
  if (data_.size() - pos_ < 4) return util::Error::decode_failure("fixed32 past end");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return value;
}

util::Result<std::span<const std::uint8_t>> WireDecoder::read_bytes() {
  auto length = read_varint();
  if (!length.ok()) return length.error();
  if (data_.size() - pos_ < *length) return util::Error::decode_failure("bytes past end");
  auto out = data_.subspan(pos_, *length);
  pos_ += *length;
  return out;
}

util::Result<std::string> WireDecoder::read_string() {
  auto bytes = read_bytes();
  if (!bytes.ok()) return bytes.error();
  return std::string(bytes->begin(), bytes->end());
}

util::Status WireDecoder::skip(WireType type) {
  switch (type) {
    case WireType::varint: {
      auto v = read_varint();
      if (!v.ok()) return v.error();
      return {};
    }
    case WireType::fixed64: {
      auto v = read_double();
      if (!v.ok()) return v.error();
      return {};
    }
    case WireType::fixed32: {
      auto v = read_fixed32();
      if (!v.ok()) return v.error();
      return {};
    }
    case WireType::length_delimited: {
      auto v = read_bytes();
      if (!v.ok()) return v.error();
      return {};
    }
  }
  return util::Error::decode_failure("unknown wire type");
}

}  // namespace flexran::proto
