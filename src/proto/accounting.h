// Per-category signaling byte/message accounting, the instrumentation
// behind the paper's Fig. 7 (agent-to-master and master-to-agent overhead
// broken down into agent management / sync / stats / commands).
#pragma once

#include <array>
#include <cstdint>

#include "proto/messages.h"

namespace flexran::proto {

class SignalingAccountant {
 public:
  static constexpr std::size_t kNumCategories = 5;

  void record(MessageCategory category, std::size_t bytes) {
    auto& bucket = buckets_[static_cast<std::size_t>(category)];
    bucket.bytes += bytes;
    bucket.messages += 1;
  }

  std::uint64_t bytes(MessageCategory category) const {
    return buckets_[static_cast<std::size_t>(category)].bytes;
  }
  std::uint64_t messages(MessageCategory category) const {
    return buckets_[static_cast<std::size_t>(category)].messages;
  }
  std::uint64_t total_bytes() const {
    std::uint64_t total = 0;
    for (const auto& bucket : buckets_) total += bucket.bytes;
    return total;
  }
  std::uint64_t total_messages() const {
    std::uint64_t total = 0;
    for (const auto& bucket : buckets_) total += bucket.messages;
    return total;
  }
  void reset() { buckets_ = {}; }

 private:
  struct Bucket {
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
  };
  std::array<Bucket, kNumCategories> buckets_{};
};

}  // namespace flexran::proto
