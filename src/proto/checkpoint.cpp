#include "proto/checkpoint.h"

namespace flexran::proto {

namespace {

using util::Error;
using util::Result;
using util::Status;

/// Local copy of the messages.cpp decode-loop helper (that one lives in an
/// anonymous namespace): iterates fields, dispatching to `handler`, which
/// returns false for unknown fields (skipped, forward-compatible).
template <typename Handler>
Status decode_fields(std::span<const std::uint8_t> data, Handler&& handler) {
  WireDecoder dec(data);
  while (!dec.done()) {
    auto header = dec.next_field();
    if (!header.ok()) return header.error();
    auto handled = handler(dec, *header);
    if (!handled.ok()) return handled.error();
    if (!*handled) {
      auto skipped = dec.skip(header->type);
      if (!skipped.ok()) return skipped;
    }
  }
  return {};
}

Result<std::uint64_t> expect_varint(WireDecoder& dec, const WireDecoder::FieldHeader& header) {
  if (header.type != WireType::varint) return Error::decode_failure("expected varint");
  return dec.read_varint();
}

Result<std::string> expect_string(WireDecoder& dec, const WireDecoder::FieldHeader& header) {
  if (header.type != WireType::length_delimited) return Error::decode_failure("expected bytes");
  return dec.read_string();
}

Result<std::span<const std::uint8_t>> expect_bytes(WireDecoder& dec,
                                                   const WireDecoder::FieldHeader& header) {
  if (header.type != WireType::length_delimited) return Error::decode_failure("expected bytes");
  return dec.read_bytes();
}

#define ASSIGN_VARINT(target, cast_type)                   \
  do {                                                     \
    auto v_ = expect_varint(dec, header);                  \
    if (!v_.ok()) return Result<bool>(v_.error());         \
    (target) = static_cast<cast_type>(*v_);                \
  } while (0)

WireEncoder encode_agent(const CheckpointAgent& agent) {
  WireEncoder enc;
  enc.field_varint(1, agent.id);
  enc.field_string(2, agent.name);
  for (const auto& cap : agent.capabilities) enc.field_string(3, cap);
  if (agent.epoch != 0) enc.field_varint(4, agent.epoch);
  WireEncoder config;
  agent.config.encode_body(config);
  enc.field_message(5, config);
  for (const auto& report : agent.reports) {
    WireEncoder sub;
    report.encode_body(sub);
    enc.field_message(6, sub);
  }
  for (const auto& policy : agent.policy_history) enc.field_string(7, policy);
  return enc;
}

Result<CheckpointAgent> decode_agent(std::span<const std::uint8_t> data) {
  CheckpointAgent out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.id, std::uint32_t); return true;
      case 2: {
        auto s = expect_string(dec, header);
        if (!s.ok()) return Result<bool>(s.error());
        out.name = std::move(*s);
        return true;
      }
      case 3: {
        auto s = expect_string(dec, header);
        if (!s.ok()) return Result<bool>(s.error());
        out.capabilities.push_back(std::move(*s));
        return true;
      }
      case 4: ASSIGN_VARINT(out.epoch, std::uint32_t); return true;
      case 5: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        auto config = EnbConfigReply::decode_body(*bytes);
        if (!config.ok()) return Result<bool>(config.error());
        out.config = std::move(*config);
        return true;
      }
      case 6: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        auto report = StatsRequest::decode_body(*bytes);
        if (!report.ok()) return Result<bool>(report.error());
        out.reports.push_back(std::move(*report));
        return true;
      }
      case 7: {
        auto s = expect_string(dec, header);
        if (!s.ok()) return Result<bool>(s.error());
        out.policy_history.push_back(std::move(*s));
        return true;
      }
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

}  // namespace

std::vector<std::uint8_t> MasterCheckpoint::encode() const {
  WireEncoder enc;
  enc.field_varint(1, version);
  if (incarnation != 0) enc.field_varint(2, incarnation);
  if (saved_at_us != 0) enc.field_varint(3, saved_at_us);
  for (const auto& agent : agents) enc.field_message(4, encode_agent(agent));
  // Shard identity rides as `shard + 1` so the standalone default (-1)
  // stays off the wire and old checkpoints decode to it.
  if (shard >= 0) enc.field_varint(5, static_cast<std::uint64_t>(shard) + 1);
  for (const auto id : agent_ids) enc.field_varint(6, id);
  return enc.take();
}

Result<MasterCheckpoint> MasterCheckpoint::decode(std::span<const std::uint8_t> data) {
  MasterCheckpoint out;
  bool saw_version = false;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: {
        ASSIGN_VARINT(out.version, std::uint32_t);
        saw_version = true;
        return true;
      }
      case 2: ASSIGN_VARINT(out.incarnation, std::uint32_t); return true;
      case 3: ASSIGN_VARINT(out.saved_at_us, std::uint64_t); return true;
      case 4: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        auto agent = decode_agent(*bytes);
        if (!agent.ok()) return Result<bool>(agent.error());
        out.agents.push_back(std::move(*agent));
        return true;
      }
      case 5: {
        std::uint64_t stamped = 0;
        ASSIGN_VARINT(stamped, std::uint64_t);
        if (stamped != 0) out.shard = static_cast<int>(stamped - 1);
        return true;
      }
      case 6: {
        std::uint32_t id = 0;
        ASSIGN_VARINT(id, std::uint32_t);
        out.agent_ids.push_back(id);
        return true;
      }
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  if (!saw_version) return Error::decode_failure("checkpoint missing version");
  if (out.version != kVersion) {
    return Error::unsupported("checkpoint version " + std::to_string(out.version) +
                              " (expected " + std::to_string(kVersion) + ")");
  }
  return out;
}

}  // namespace flexran::proto
