// Protobuf-compatible wire primitives, written from scratch (the paper uses
// Google Protocol Buffers for FlexRAN protocol messages; signaling-overhead
// results depend on this compact encoding). Supported wire types: varint
// (0), 64-bit (1), length-delimited (2), 32-bit (5). Unknown fields are
// skippable, giving the same forward-compatibility protobuf provides.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace flexran::proto {

enum class WireType : std::uint8_t {
  varint = 0,
  fixed64 = 1,
  length_delimited = 2,
  fixed32 = 5,
};

std::uint64_t zigzag_encode(std::int64_t value);
std::int64_t zigzag_decode(std::uint64_t value);

class WireEncoder {
 public:
  WireEncoder() = default;

  void varint(std::uint64_t value);

  void field_varint(int field, std::uint64_t value);
  void field_svarint(int field, std::int64_t value) { field_varint(field, zigzag_encode(value)); }
  void field_bool(int field, bool value) { field_varint(field, value ? 1 : 0); }
  void field_double(int field, double value);
  void field_fixed32(int field, std::uint32_t value);
  void field_bytes(int field, std::span<const std::uint8_t> bytes);
  void field_string(int field, std::string_view text);
  /// Embeds a pre-encoded sub-message.
  void field_message(int field, const WireEncoder& sub) { field_bytes(field, sub.bytes()); }

  std::span<const std::uint8_t> bytes() const { return buffer_.contents(); }
  std::size_t size() const { return buffer_.size(); }
  std::vector<std::uint8_t> take() { return buffer_.take(); }

 private:
  void tag(int field, WireType type);
  util::ByteBuffer buffer_;
};

class WireDecoder {
 public:
  explicit WireDecoder(std::span<const std::uint8_t> data) : data_(data) {}

  struct FieldHeader {
    int field = 0;
    WireType type = WireType::varint;
  };

  bool done() const { return pos_ >= data_.size(); }

  util::Result<FieldHeader> next_field();
  util::Result<std::uint64_t> read_varint();
  std::int64_t read_svarint_from(std::uint64_t raw) const { return zigzag_decode(raw); }
  util::Result<double> read_double();
  util::Result<std::uint32_t> read_fixed32();
  util::Result<std::span<const std::uint8_t>> read_bytes();
  util::Result<std::string> read_string();
  /// Skips the value of the field whose header was just read.
  util::Status skip(WireType type);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace flexran::proto
