// Protobuf-compatible wire primitives, written from scratch (the paper uses
// Google Protocol Buffers for FlexRAN protocol messages; signaling-overhead
// results depend on this compact encoding). Supported wire types: varint
// (0), 64-bit (1), length-delimited (2), 32-bit (5). Unknown fields are
// skippable, giving the same forward-compatibility protobuf provides.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace flexran::proto {

enum class WireType : std::uint8_t {
  varint = 0,
  fixed64 = 1,
  length_delimited = 2,
  fixed32 = 5,
};

std::uint64_t zigzag_encode(std::int64_t value);
std::int64_t zigzag_decode(std::uint64_t value);

/// Number of bytes the minimal varint encoding of `value` occupies.
std::size_t varint_size(std::uint64_t value);

class WireEncoder {
 public:
  WireEncoder() = default;

  void varint(std::uint64_t value);

  void field_varint(int field, std::uint64_t value);
  void field_svarint(int field, std::int64_t value) { field_varint(field, zigzag_encode(value)); }
  void field_bool(int field, bool value) { field_varint(field, value ? 1 : 0); }
  void field_double(int field, double value);
  void field_fixed32(int field, std::uint32_t value);
  void field_bytes(int field, std::span<const std::uint8_t> bytes);
  void field_string(int field, std::string_view text);
  /// Embeds a pre-encoded sub-message (legacy path: the sub-message was built
  /// in its own encoder and is copied here; prefer begin_message/end_message).
  void field_message(int field, const WireEncoder& sub) { field_bytes(field, sub.bytes()); }

  // -- in-place nested messages (length-prefix backpatching) -----------------
  // Encodes a length-delimited sub-message directly into this encoder's
  // buffer, with no per-sub-message allocation or copy. begin_message writes
  // the tag plus a 1-byte length placeholder and returns a mark (the payload
  // start offset); end_message backpatches the minimal length varint. When the
  // payload turns out >= 128 bytes the tail is shifted right to widen the
  // prefix -- still within reused capacity in steady state. Output is
  // byte-identical to field_message. Nests arbitrarily (inner end before
  // outer).
  std::size_t begin_message(int field);
  void end_message(std::size_t mark);

  /// Drops content, keeps capacity: the clear()-and-reuse lifecycle that makes
  /// per-link scratch encoders allocation-free in steady state.
  void clear() { buffer_.clear(); }
  void reserve(std::size_t capacity) { buffer_.reserve(capacity); }

  std::span<const std::uint8_t> bytes() const { return buffer_.contents(); }
  std::size_t size() const { return buffer_.size(); }
  std::vector<std::uint8_t> take() { return buffer_.take(); }

 private:
  void tag(int field, WireType type);
  util::ByteBuffer buffer_;
};

class WireDecoder {
 public:
  explicit WireDecoder(std::span<const std::uint8_t> data) : data_(data) {}

  struct FieldHeader {
    int field = 0;
    WireType type = WireType::varint;
  };

  bool done() const { return pos_ >= data_.size(); }

  util::Result<FieldHeader> next_field();
  util::Result<std::uint64_t> read_varint();
  std::int64_t read_svarint_from(std::uint64_t raw) const { return zigzag_decode(raw); }
  util::Result<double> read_double();
  util::Result<std::uint32_t> read_fixed32();
  util::Result<std::span<const std::uint8_t>> read_bytes();
  util::Result<std::string> read_string();
  /// Skips the value of the field whose header was just read.
  util::Status skip(WireType type);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace flexran::proto
