// Warm-checkpoint codec (docs/fault_tolerance.md "Master restart"): a
// periodic, versioned serialization of the master's *durable* state --
// agent identities and configurations, installed report registrations,
// and the last-known-good policy history. Volatile state (live stats,
// in-flight requests, session liveness) is deliberately excluded: it is
// rebuilt from agent re-syncs after a restart. A master constructed over
// a checkpoint needs only a delta re-sync (stats + subscriptions) per
// agent instead of the full three-way configuration fetch.
//
// The encoding reuses the wire-format primitives from proto/wire.h, so a
// checkpoint is decodable with the same hardening guarantees as any
// control-channel frame: truncation and corruption surface as clean
// util::Result errors, never as crashes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "proto/messages.h"
#include "proto/wire.h"
#include "util/result.h"

namespace flexran::proto {

/// Durable per-agent state. The configuration rides as an embedded
/// EnbConfigReply (enb_id + per-cell configs) so the checkpoint reuses the
/// existing config codec instead of inventing a parallel one.
struct CheckpointAgent {
  std::uint32_t id = 0;
  std::string name;
  std::vector<std::string> capabilities;
  /// Last session epoch the master had learned from this agent.
  std::uint32_t epoch = 0;
  /// Cell-level configuration exactly as last reported.
  EnbConfigReply config;
  /// Report registrations the master had installed (re-arming these after
  /// a warm restore is part of the delta re-sync).
  std::vector<StatsRequest> reports;
  /// Last-known-good policy history, newest first (capped master-side).
  std::vector<std::string> policy_history;
};

struct MasterCheckpoint {
  /// Format version; decode rejects anything it does not understand with a
  /// clean error (a newer master never misreads an older file silently).
  static constexpr std::uint32_t kVersion = 1;
  std::uint32_t version = kVersion;
  /// Incarnation of the master that wrote the checkpoint; a restarted
  /// master resumes at `incarnation + 1` so fencing stays monotonic across
  /// the restart.
  std::uint32_t incarnation = 0;
  /// Simulated time the checkpoint was taken (diagnostic only).
  std::uint64_t saved_at_us = 0;
  /// Shard that wrote the checkpoint, or -1 for a standalone master. A
  /// restoring shard rejects a checkpoint stamped with a different shard
  /// index: shards under one coordinator must never restore a neighbor's
  /// agent set (the coordinator itself reads foreign checkpoints during
  /// failover, but it does so explicitly, not through restart()).
  int shard = -1;
  /// Every agent id the shard owned at save time -- including agents whose
  /// durable state was still empty (no hello yet) and therefore have no
  /// CheckpointAgent entry. Failover uses this to tell "cold because the
  /// agent was never captured" from "cold because the checkpoint is stale".
  std::vector<std::uint32_t> agent_ids;
  std::vector<CheckpointAgent> agents;

  std::vector<std::uint8_t> encode() const;
  static util::Result<MasterCheckpoint> decode(std::span<const std::uint8_t> data);
};

}  // namespace flexran::proto
