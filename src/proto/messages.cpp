#include "proto/messages.h"

#include <cmath>

namespace flexran::proto {

namespace {

using util::Error;
using util::Result;
using util::Status;

/// Shared decode-loop helper: iterates fields, dispatching to `handler`
/// (returns false if the field is unknown, in which case it is skipped).
template <typename Handler>
Status decode_fields(std::span<const std::uint8_t> data, Handler&& handler) {
  WireDecoder dec(data);
  while (!dec.done()) {
    auto header = dec.next_field();
    if (!header.ok()) return header.error();
    auto handled = handler(dec, *header);
    if (!handled.ok()) return handled.error();
    if (!*handled) {
      auto skipped = dec.skip(header->type);
      if (!skipped.ok()) return skipped;
    }
  }
  return {};
}

Result<std::uint64_t> expect_varint(WireDecoder& dec, const WireDecoder::FieldHeader& header) {
  if (header.type != WireType::varint) return Error::decode_failure("expected varint");
  return dec.read_varint();
}

Result<std::string> expect_string(WireDecoder& dec, const WireDecoder::FieldHeader& header) {
  if (header.type != WireType::length_delimited) return Error::decode_failure("expected bytes");
  return dec.read_string();
}

Result<std::span<const std::uint8_t>> expect_bytes(WireDecoder& dec,
                                                   const WireDecoder::FieldHeader& header) {
  if (header.type != WireType::length_delimited) return Error::decode_failure("expected bytes");
  return dec.read_bytes();
}

Result<double> expect_double(WireDecoder& dec, const WireDecoder::FieldHeader& header) {
  if (header.type != WireType::fixed64) return Error::decode_failure("expected fixed64");
  return dec.read_double();
}

// Sugar: assign-or-propagate for the common varint case.
#define ASSIGN_VARINT(target, cast_type)                   \
  do {                                                     \
    auto v_ = expect_varint(dec, header);                  \
    if (!v_.ok()) return Result<bool>(v_.error());         \
    (target) = static_cast<cast_type>(*v_);                \
  } while (0)

#define ASSIGN_SVARINT(target)                              \
  do {                                                      \
    auto v_ = expect_varint(dec, header);                   \
    if (!v_.ok()) return Result<bool>(v_.error());          \
    (target) = zigzag_decode(*v_);                          \
  } while (0)

}  // namespace

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::hello: return "hello";
    case MessageType::echo_request: return "echo_request";
    case MessageType::echo_reply: return "echo_reply";
    case MessageType::enb_config_request: return "enb_config_request";
    case MessageType::enb_config_reply: return "enb_config_reply";
    case MessageType::ue_config_request: return "ue_config_request";
    case MessageType::ue_config_reply: return "ue_config_reply";
    case MessageType::lc_config_request: return "lc_config_request";
    case MessageType::lc_config_reply: return "lc_config_reply";
    case MessageType::stats_request: return "stats_request";
    case MessageType::stats_reply: return "stats_reply";
    case MessageType::dl_mac_config: return "dl_mac_config";
    case MessageType::ul_mac_config: return "ul_mac_config";
    case MessageType::handover_command: return "handover_command";
    case MessageType::abs_config: return "abs_config";
    case MessageType::event_notification: return "event_notification";
    case MessageType::control_delegation: return "control_delegation";
    case MessageType::policy_reconfiguration: return "policy_reconfiguration";
    case MessageType::event_subscription: return "event_subscription";
    case MessageType::carrier_restriction: return "carrier_restriction";
    case MessageType::drx_config: return "drx_config";
    case MessageType::scell_command: return "scell_command";
  }
  return "?";
}

const char* to_string(MessageCategory category) {
  switch (category) {
    case MessageCategory::agent_management: return "agent_management";
    case MessageCategory::sync: return "sync";
    case MessageCategory::stats: return "stats";
    case MessageCategory::commands: return "commands";
    case MessageCategory::delegation: return "delegation";
  }
  return "?";
}

const char* to_string(EventType event) {
  switch (event) {
    case EventType::subframe_tick: return "subframe_tick";
    case EventType::ue_attach: return "ue_attach";
    case EventType::ue_detach: return "ue_detach";
    case EventType::rach_attempt: return "rach_attempt";
    case EventType::scheduling_request: return "scheduling_request";
    case EventType::agent_disconnected: return "agent_disconnected";
    case EventType::agent_reconnected: return "agent_reconnected";
    case EventType::request_timeout: return "request_timeout";
    case EventType::vsf_failure: return "vsf_failure";
    case EventType::vsf_quarantined: return "vsf_quarantined";
    case EventType::policy_applied: return "policy_applied";
    case EventType::policy_rejected: return "policy_rejected";
    case EventType::overload_state_changed: return "overload_state_changed";
  }
  return "?";
}

const char* to_string(VsfFailureKind kind) {
  switch (kind) {
    case VsfFailureKind::none: return "none";
    case VsfFailureKind::exception: return "exception";
    case VsfFailureKind::overrun: return "overrun";
    case VsfFailureKind::invalid_decision: return "invalid_decision";
  }
  return "?";
}

// ----------------------------------------------------------------- Envelope

std::vector<std::uint8_t> Envelope::encode() const {
  WireEncoder enc;
  enc.field_varint(1, version);
  enc.field_varint(2, static_cast<std::uint64_t>(type));
  if (xid != 0) enc.field_varint(3, xid);
  enc.field_bytes(4, body);
  encode_tail(enc);
  return enc.take();
}

void Envelope::encode_tail(WireEncoder& enc) const {
  if (epoch != 0) enc.field_varint(5, epoch);
  if (queue_status != 0) enc.field_varint(6, queue_status);
  if (throttle_hint != 0) enc.field_varint(7, throttle_hint);
  if (ts_us != 0) enc.field_varint(8, ts_us);
  if (ts_echo_us != 0) enc.field_varint(9, ts_echo_us);
  if (master_epoch != 0) enc.field_varint(10, master_epoch);
  if (retry_after_ms != 0) enc.field_varint(11, retry_after_ms);
}

Result<Envelope> Envelope::decode(std::span<const std::uint8_t> data) {
  Envelope out;
  auto status = decode_into(data, out);
  if (!status.ok()) return status.error();
  return out;
}

Status Envelope::decode_into(std::span<const std::uint8_t> data, Envelope& out) {
  // Reset to defaults field by field (rather than `out = Envelope{}`) so the
  // body vector keeps its capacity across reuse.
  out.version = kProtocolVersion;
  out.type = MessageType::hello;
  out.xid = 0;
  out.epoch = 0;
  out.queue_status = 0;
  out.throttle_hint = 0;
  out.ts_us = 0;
  out.ts_echo_us = 0;
  out.master_epoch = 0;
  out.retry_after_ms = 0;
  out.body.clear();
  bool saw_type = false;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.version, std::uint8_t); return true;
      case 2: {
        ASSIGN_VARINT(out.type, MessageType);
        saw_type = true;
        return true;
      }
      case 3: ASSIGN_VARINT(out.xid, std::uint32_t); return true;
      case 4: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        out.body.assign(bytes->begin(), bytes->end());
        return true;
      }
      case 5: ASSIGN_VARINT(out.epoch, std::uint32_t); return true;
      case 6: ASSIGN_VARINT(out.queue_status, std::uint8_t); return true;
      case 7: ASSIGN_VARINT(out.throttle_hint, std::uint32_t); return true;
      case 8: ASSIGN_VARINT(out.ts_us, std::uint64_t); return true;
      case 9: ASSIGN_VARINT(out.ts_echo_us, std::uint64_t); return true;
      case 10: ASSIGN_VARINT(out.master_epoch, std::uint32_t); return true;
      case 11: ASSIGN_VARINT(out.retry_after_ms, std::uint32_t); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status;
  if (!saw_type) return Error::decode_failure("envelope missing type");
  return {};
}

// -------------------------------------------------------------------- Hello

void Hello::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, enb_id);
  enc.field_string(2, name);
  enc.field_varint(3, n_cells);
  for (const auto& cap : capabilities) enc.field_string(4, cap);
  if (epoch != 0) enc.field_varint(5, epoch);
}

Result<Hello> Hello::decode_body(std::span<const std::uint8_t> data) {
  Hello out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.enb_id, lte::EnbId); return true;
      case 2: {
        auto s = expect_string(dec, header);
        if (!s.ok()) return Result<bool>(s.error());
        out.name = std::move(*s);
        return true;
      }
      case 3: ASSIGN_VARINT(out.n_cells, std::uint32_t); return true;
      case 4: {
        auto s = expect_string(dec, header);
        if (!s.ok()) return Result<bool>(s.error());
        out.capabilities.push_back(std::move(*s));
        return true;
      }
      case 5: ASSIGN_VARINT(out.epoch, std::uint32_t); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

// --------------------------------------------------------------------- Echo

void EchoRequest::encode_body(WireEncoder& enc) const {
  enc.field_svarint(1, subframe);
  enc.field_svarint(2, timestamp_us);
}

Result<EchoRequest> EchoRequest::decode_body(std::span<const std::uint8_t> data) {
  EchoRequest out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_SVARINT(out.subframe); return true;
      case 2: ASSIGN_SVARINT(out.timestamp_us); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

void EchoReply::encode_body(WireEncoder& enc) const {
  enc.field_svarint(1, subframe);
  enc.field_svarint(2, echoed_timestamp_us);
}

Result<EchoReply> EchoReply::decode_body(std::span<const std::uint8_t> data) {
  EchoReply out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_SVARINT(out.subframe); return true;
      case 2: ASSIGN_SVARINT(out.echoed_timestamp_us); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

// ------------------------------------------------------------- cell configs

CellConfigMsg CellConfigMsg::from(const lte::CellConfig& config) {
  CellConfigMsg msg;
  msg.cell_id = config.cell_id;
  msg.bandwidth_mhz = config.bandwidth_mhz;
  msg.duplex = static_cast<std::uint8_t>(config.duplex);
  msg.tx_mode = static_cast<std::uint8_t>(config.tx_mode);
  msg.antenna_ports = static_cast<std::uint8_t>(config.antenna_ports);
  msg.band = static_cast<std::uint16_t>(config.band);
  msg.pci = static_cast<std::uint16_t>(config.pci);
  return msg;
}

lte::CellConfig CellConfigMsg::to_cell_config() const {
  lte::CellConfig config;
  config.cell_id = cell_id;
  config.bandwidth_mhz = bandwidth_mhz;
  config.duplex = static_cast<lte::Duplex>(duplex);
  config.tx_mode = static_cast<lte::TransmissionMode>(tx_mode);
  config.antenna_ports = antenna_ports;
  config.band = band;
  config.pci = pci;
  return config;
}

namespace {

// Nested encoders write straight into the parent encoder via begin_message/
// end_message: no per-sub-message WireEncoder, no copy, same bytes.
void encode_cell_config(WireEncoder& enc, int field, const CellConfigMsg& cell) {
  const auto mark = enc.begin_message(field);
  enc.field_varint(1, cell.cell_id);
  enc.field_double(2, cell.bandwidth_mhz);
  enc.field_varint(3, cell.duplex);
  enc.field_varint(4, cell.tx_mode);
  enc.field_varint(5, cell.antenna_ports);
  enc.field_varint(6, cell.band);
  enc.field_varint(7, cell.pci);
  enc.end_message(mark);
}

Result<CellConfigMsg> decode_cell_config(std::span<const std::uint8_t> data) {
  CellConfigMsg out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.cell_id, lte::CellId); return true;
      case 2: {
        auto v = expect_double(dec, header);
        if (!v.ok()) return Result<bool>(v.error());
        out.bandwidth_mhz = *v;
        return true;
      }
      case 3: ASSIGN_VARINT(out.duplex, std::uint8_t); return true;
      case 4: ASSIGN_VARINT(out.tx_mode, std::uint8_t); return true;
      case 5: ASSIGN_VARINT(out.antenna_ports, std::uint8_t); return true;
      case 6: ASSIGN_VARINT(out.band, std::uint16_t); return true;
      case 7: ASSIGN_VARINT(out.pci, std::uint16_t); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

}  // namespace

void EnbConfigReply::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, enb_id);
  for (const auto& cell : cells) encode_cell_config(enc, 2, cell);
}

Result<EnbConfigReply> EnbConfigReply::decode_body(std::span<const std::uint8_t> data) {
  EnbConfigReply out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.enb_id, lte::EnbId); return true;
      case 2: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        auto cell = decode_cell_config(*bytes);
        if (!cell.ok()) return Result<bool>(cell.error());
        out.cells.push_back(std::move(*cell));
        return true;
      }
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

// --------------------------------------------------------------- UE configs

UeConfigMsg UeConfigMsg::from(const lte::UeConfig& config) {
  UeConfigMsg msg;
  msg.rnti = config.rnti;
  msg.primary_cell = config.primary_cell;
  msg.tx_mode = static_cast<std::uint8_t>(config.tx_mode);
  msg.ue_category = static_cast<std::uint8_t>(config.ue_category);
  msg.carrier_aggregation = config.carrier_aggregation;
  return msg;
}

lte::UeConfig UeConfigMsg::to_ue_config() const {
  lte::UeConfig config;
  config.rnti = rnti;
  config.primary_cell = primary_cell;
  config.tx_mode = static_cast<lte::TransmissionMode>(tx_mode);
  config.ue_category = ue_category;
  config.carrier_aggregation = carrier_aggregation;
  return config;
}

namespace {

void encode_ue_config(WireEncoder& enc, int field, const UeConfigMsg& ue) {
  const auto mark = enc.begin_message(field);
  enc.field_varint(1, ue.rnti);
  enc.field_varint(2, ue.primary_cell);
  enc.field_varint(3, ue.tx_mode);
  enc.field_varint(4, ue.ue_category);
  enc.field_bool(5, ue.carrier_aggregation);
  enc.end_message(mark);
}

Result<UeConfigMsg> decode_ue_config(std::span<const std::uint8_t> data) {
  UeConfigMsg out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.rnti, lte::Rnti); return true;
      case 2: ASSIGN_VARINT(out.primary_cell, lte::CellId); return true;
      case 3: ASSIGN_VARINT(out.tx_mode, std::uint8_t); return true;
      case 4: ASSIGN_VARINT(out.ue_category, std::uint8_t); return true;
      case 5: ASSIGN_VARINT(out.carrier_aggregation, bool); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

}  // namespace

void UeConfigReply::encode_body(WireEncoder& enc) const {
  for (const auto& ue : ues) encode_ue_config(enc, 1, ue);
}

Result<UeConfigReply> UeConfigReply::decode_body(std::span<const std::uint8_t> data) {
  UeConfigReply out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    if (header.field != 1) return false;
    auto bytes = expect_bytes(dec, header);
    if (!bytes.ok()) return Result<bool>(bytes.error());
    auto ue = decode_ue_config(*bytes);
    if (!ue.ok()) return Result<bool>(ue.error());
    out.ues.push_back(std::move(*ue));
    return true;
  });
  if (!status.ok()) return status.error();
  return out;
}

// --------------------------------------------------------------- LC configs

void LcConfigReply::encode_body(WireEncoder& enc) const {
  for (const auto& lc : channels) {
    const auto mark = enc.begin_message(1);
    enc.field_varint(1, lc.rnti);
    enc.field_varint(2, lc.lcid);
    enc.field_varint(3, lc.lc_group);
    enc.end_message(mark);
  }
}

Result<LcConfigReply> LcConfigReply::decode_body(std::span<const std::uint8_t> data) {
  LcConfigReply out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    if (header.field != 1) return false;
    auto bytes = expect_bytes(dec, header);
    if (!bytes.ok()) return Result<bool>(bytes.error());
    LcConfigMsg lc;
    auto sub_status =
        decode_fields(*bytes, [&](WireDecoder& sub_dec,
                                  const WireDecoder::FieldHeader& sub_header) -> Result<bool> {
          auto& dec = sub_dec;
          const auto& header = sub_header;
          switch (header.field) {
            case 1: ASSIGN_VARINT(lc.rnti, lte::Rnti); return true;
            case 2: ASSIGN_VARINT(lc.lcid, lte::Lcid); return true;
            case 3: ASSIGN_VARINT(lc.lc_group, std::uint8_t); return true;
            default: return false;
          }
        });
    if (!sub_status.ok()) return Result<bool>(sub_status.error());
    out.channels.push_back(lc);
    return true;
  });
  if (!status.ok()) return status.error();
  return out;
}

// -------------------------------------------------------------------- stats

void StatsRequest::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, request_id);
  enc.field_varint(2, static_cast<std::uint64_t>(mode));
  enc.field_varint(3, periodicity_ttis);
  enc.field_varint(4, flags);
  for (auto rnti : ues) enc.field_varint(5, rnti);
}

Result<StatsRequest> StatsRequest::decode_body(std::span<const std::uint8_t> data) {
  StatsRequest out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.request_id, std::uint32_t); return true;
      case 2: ASSIGN_VARINT(out.mode, ReportMode); return true;
      case 3: ASSIGN_VARINT(out.periodicity_ttis, std::uint32_t); return true;
      case 4: ASSIGN_VARINT(out.flags, std::uint32_t); return true;
      case 5: {
        auto v = expect_varint(dec, header);
        if (!v.ok()) return Result<bool>(v.error());
        out.ues.push_back(static_cast<lte::Rnti>(*v));
        return true;
      }
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

namespace {

void encode_ue_report(WireEncoder& enc, int field, const UeStatsReport& report) {
  const auto mark = enc.begin_message(field);
  enc.field_varint(1, report.rnti);
  for (auto bsr : report.bsr_bytes) enc.field_varint(2, bsr);
  enc.field_svarint(3, report.phr_db);
  enc.field_varint(4, report.wb_cqi);
  enc.field_varint(5, report.rlc_queue_bytes);
  if (report.pending_harq != 0) enc.field_varint(6, report.pending_harq);
  if (report.dl_bytes_delivered != 0) enc.field_varint(7, report.dl_bytes_delivered);
  if (report.ul_bytes_received != 0) enc.field_varint(8, report.ul_bytes_received);
  if (report.wb_cqi_protected != 0) enc.field_varint(9, report.wb_cqi_protected);
  if (report.ul_buffer_bytes != 0) enc.field_varint(11, report.ul_buffer_bytes);
  for (const auto& measurement : report.rsrp) {
    const auto sub = enc.begin_message(10);
    enc.field_varint(1, measurement.cell_id);
    // llround (not truncation) so decode -> re-encode is a fixpoint.
    enc.field_svarint(2, std::llround(measurement.rsrp_dbm * 100.0));
    enc.end_message(sub);
  }
  enc.end_message(mark);
}

/// Resets a report to struct defaults without releasing rsrp capacity.
void reset_ue_report(UeStatsReport& out) {
  out.rnti = lte::kInvalidRnti;
  out.bsr_bytes.fill(0);
  out.phr_db = 20;
  out.wb_cqi = 0;
  out.wb_cqi_protected = 0;
  out.rlc_queue_bytes = 0;
  out.pending_harq = 0;
  out.dl_bytes_delivered = 0;
  out.ul_bytes_received = 0;
  out.ul_buffer_bytes = 0;
  out.rsrp.clear();
}

Status decode_ue_report_into(std::span<const std::uint8_t> data, UeStatsReport& out) {
  reset_ue_report(out);
  std::size_t bsr_index = 0;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.rnti, lte::Rnti); return true;
      case 2: {
        auto v = expect_varint(dec, header);
        if (!v.ok()) return Result<bool>(v.error());
        if (bsr_index < out.bsr_bytes.size()) {
          out.bsr_bytes[bsr_index++] = static_cast<std::uint32_t>(*v);
        } else {
          // Keep the message but make the information loss visible: a peer
          // with more LC groups than we model is an anomaly worth counting,
          // not a decode failure (forward compatibility keeps the session up).
          decode_anomalies().bsr_overflow.fetch_add(1, std::memory_order_relaxed);
        }
        return true;
      }
      case 3: {
        auto v = expect_varint(dec, header);
        if (!v.ok()) return Result<bool>(v.error());
        out.phr_db = static_cast<std::int32_t>(zigzag_decode(*v));
        return true;
      }
      case 4: ASSIGN_VARINT(out.wb_cqi, std::uint8_t); return true;
      case 5: ASSIGN_VARINT(out.rlc_queue_bytes, std::uint32_t); return true;
      case 6: ASSIGN_VARINT(out.pending_harq, std::uint32_t); return true;
      case 7: ASSIGN_VARINT(out.dl_bytes_delivered, std::uint64_t); return true;
      case 8: ASSIGN_VARINT(out.ul_bytes_received, std::uint64_t); return true;
      case 9: ASSIGN_VARINT(out.wb_cqi_protected, std::uint8_t); return true;
      case 11: ASSIGN_VARINT(out.ul_buffer_bytes, std::uint32_t); return true;
      case 10: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        RsrpMeasurement measurement;
        auto sub_status = decode_fields(
            *bytes, [&](WireDecoder& sub_dec,
                        const WireDecoder::FieldHeader& sub_header) -> Result<bool> {
              auto& dec = sub_dec;
              const auto& header = sub_header;
              switch (header.field) {
                case 1: ASSIGN_VARINT(measurement.cell_id, lte::CellId); return true;
                case 2: {
                  auto v = expect_varint(dec, header);
                  if (!v.ok()) return Result<bool>(v.error());
                  measurement.rsrp_dbm = static_cast<double>(zigzag_decode(*v)) / 100.0;
                  return true;
                }
                default: return false;
              }
            });
        if (!sub_status.ok()) return Result<bool>(sub_status.error());
        out.rsrp.push_back(measurement);
        return true;
      }
      default: return false;
    }
  });
  return status;
}

void encode_cell_report(WireEncoder& enc, int field, const CellStatsReport& report) {
  const auto mark = enc.begin_message(field);
  enc.field_varint(1, report.cell_id);
  enc.field_double(2, report.noise_interference_dbm);
  enc.field_varint(3, report.dl_prbs_in_use);
  enc.field_varint(4, report.ul_prbs_in_use);
  enc.field_varint(5, report.active_ues);
  enc.end_message(mark);
}

Result<CellStatsReport> decode_cell_report(std::span<const std::uint8_t> data) {
  CellStatsReport out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.cell_id, lte::CellId); return true;
      case 2: {
        auto v = expect_double(dec, header);
        if (!v.ok()) return Result<bool>(v.error());
        out.noise_interference_dbm = *v;
        return true;
      }
      case 3: ASSIGN_VARINT(out.dl_prbs_in_use, std::uint32_t); return true;
      case 4: ASSIGN_VARINT(out.ul_prbs_in_use, std::uint32_t); return true;
      case 5: ASSIGN_VARINT(out.active_ues, std::uint32_t); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

}  // namespace

void StatsReply::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, request_id);
  enc.field_svarint(2, subframe);
  for (const auto& report : ue_reports) encode_ue_report(enc, 3, report);
  for (const auto& report : cell_reports) encode_cell_report(enc, 4, report);
}

Result<StatsReply> StatsReply::decode_body(std::span<const std::uint8_t> data) {
  StatsReply out;
  auto status = decode_body_into(data, out);
  if (!status.ok()) return status.error();
  return out;
}

Status StatsReply::decode_body_into(std::span<const std::uint8_t> data, StatsReply& out) {
  out.request_id = 0;
  out.subframe = 0;
  // Decode over the existing report slots so their heap blocks (the vectors
  // themselves and each report's rsrp) are reused; trim to the decoded count
  // at the end. A same-shape reply touches no allocator at all.
  std::size_t n_ue = 0;
  std::size_t n_cell = 0;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.request_id, std::uint32_t); return true;
      case 2: ASSIGN_SVARINT(out.subframe); return true;
      case 3: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        if (n_ue == out.ue_reports.size()) out.ue_reports.emplace_back();
        auto report = decode_ue_report_into(*bytes, out.ue_reports[n_ue]);
        if (!report.ok()) return Result<bool>(report.error());
        ++n_ue;
        return true;
      }
      case 4: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        auto report = decode_cell_report(*bytes);
        if (!report.ok()) return Result<bool>(report.error());
        if (n_cell == out.cell_reports.size()) out.cell_reports.emplace_back();
        out.cell_reports[n_cell++] = *report;
        return true;
      }
      default: return false;
    }
  });
  if (!status.ok()) return status;
  out.ue_reports.resize(n_ue);
  out.cell_reports.resize(n_cell);
  return {};
}

// ----------------------------------------------------------------- commands

namespace {

void encode_dl_dci(WireEncoder& enc, int field, const lte::DlDci& dci) {
  const auto mark = enc.begin_message(field);
  enc.field_varint(1, dci.rnti);
  enc.field_varint(2, dci.rbs.word(0));
  if (dci.rbs.word(1) != 0) enc.field_varint(3, dci.rbs.word(1));
  enc.field_varint(4, static_cast<std::uint64_t>(dci.mcs));
  enc.field_varint(5, dci.harq_pid);
  enc.field_bool(6, dci.new_data);
  if (dci.carrier != 0) enc.field_varint(7, dci.carrier);
  enc.end_message(mark);
}

Result<lte::DlDci> decode_dl_dci(std::span<const std::uint8_t> data) {
  lte::DlDci out;
  std::uint64_t w0 = 0;
  std::uint64_t w1 = 0;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.rnti, lte::Rnti); return true;
      case 2: ASSIGN_VARINT(w0, std::uint64_t); return true;
      case 3: ASSIGN_VARINT(w1, std::uint64_t); return true;
      case 4: ASSIGN_VARINT(out.mcs, int); return true;
      case 5: ASSIGN_VARINT(out.harq_pid, std::uint8_t); return true;
      case 6: ASSIGN_VARINT(out.new_data, bool); return true;
      case 7: ASSIGN_VARINT(out.carrier, std::uint8_t); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  out.rbs = lte::RbAllocation::from_words(w0, w1);
  return out;
}

void encode_ul_dci(WireEncoder& enc, int field, const lte::UlDci& dci) {
  const auto mark = enc.begin_message(field);
  enc.field_varint(1, dci.rnti);
  enc.field_varint(2, dci.rbs.word(0));
  if (dci.rbs.word(1) != 0) enc.field_varint(3, dci.rbs.word(1));
  enc.field_varint(4, static_cast<std::uint64_t>(dci.mcs));
  enc.end_message(mark);
}

Result<lte::UlDci> decode_ul_dci(std::span<const std::uint8_t> data) {
  lte::UlDci out;
  std::uint64_t w0 = 0;
  std::uint64_t w1 = 0;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.rnti, lte::Rnti); return true;
      case 2: ASSIGN_VARINT(w0, std::uint64_t); return true;
      case 3: ASSIGN_VARINT(w1, std::uint64_t); return true;
      case 4: ASSIGN_VARINT(out.mcs, int); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  out.rbs = lte::RbAllocation::from_words(w0, w1);
  return out;
}

}  // namespace

void DlMacConfig::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, cell_id);
  enc.field_svarint(2, target_subframe);
  for (const auto& dci : dcis) encode_dl_dci(enc, 3, dci);
}

Result<DlMacConfig> DlMacConfig::decode_body(std::span<const std::uint8_t> data) {
  DlMacConfig out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.cell_id, lte::CellId); return true;
      case 2: ASSIGN_SVARINT(out.target_subframe); return true;
      case 3: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        auto dci = decode_dl_dci(*bytes);
        if (!dci.ok()) return Result<bool>(dci.error());
        out.dcis.push_back(std::move(*dci));
        return true;
      }
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

void UlMacConfig::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, cell_id);
  enc.field_svarint(2, target_subframe);
  for (const auto& dci : dcis) encode_ul_dci(enc, 3, dci);
}

Result<UlMacConfig> UlMacConfig::decode_body(std::span<const std::uint8_t> data) {
  UlMacConfig out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.cell_id, lte::CellId); return true;
      case 2: ASSIGN_SVARINT(out.target_subframe); return true;
      case 3: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        auto dci = decode_ul_dci(*bytes);
        if (!dci.ok()) return Result<bool>(dci.error());
        out.dcis.push_back(std::move(*dci));
        return true;
      }
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

void HandoverCommand::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, rnti);
  enc.field_varint(2, source_cell);
  enc.field_varint(3, target_cell);
}

Result<HandoverCommand> HandoverCommand::decode_body(std::span<const std::uint8_t> data) {
  HandoverCommand out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.rnti, lte::Rnti); return true;
      case 2: ASSIGN_VARINT(out.source_cell, lte::CellId); return true;
      case 3: ASSIGN_VARINT(out.target_cell, lte::CellId); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

void AbsConfig::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, cell_id);
  enc.field_varint(2, pattern.to_bits());
  enc.field_bool(3, mute_during_abs);
}

Result<AbsConfig> AbsConfig::decode_body(std::span<const std::uint8_t> data) {
  AbsConfig out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.cell_id, lte::CellId); return true;
      case 2: {
        auto v = expect_varint(dec, header);
        if (!v.ok()) return Result<bool>(v.error());
        out.pattern = lte::AbsPattern::from_bits(*v);
        return true;
      }
      case 3: ASSIGN_VARINT(out.mute_during_abs, bool); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

void CarrierRestriction::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, cell_id);
  enc.field_varint(2, max_dl_prbs);
}

Result<CarrierRestriction> CarrierRestriction::decode_body(std::span<const std::uint8_t> data) {
  CarrierRestriction out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.cell_id, lte::CellId); return true;
      case 2: ASSIGN_VARINT(out.max_dl_prbs, std::uint16_t); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

void DrxConfig::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, rnti);
  enc.field_varint(2, cycle_ttis);
  enc.field_varint(3, on_duration_ttis);
}

Result<DrxConfig> DrxConfig::decode_body(std::span<const std::uint8_t> data) {
  DrxConfig out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.rnti, lte::Rnti); return true;
      case 2: ASSIGN_VARINT(out.cycle_ttis, std::uint16_t); return true;
      case 3: ASSIGN_VARINT(out.on_duration_ttis, std::uint16_t); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

void ScellCommand::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, rnti);
  enc.field_bool(2, activate);
}

Result<ScellCommand> ScellCommand::decode_body(std::span<const std::uint8_t> data) {
  ScellCommand out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.rnti, lte::Rnti); return true;
      case 2: ASSIGN_VARINT(out.activate, bool); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

// ------------------------------------------------------------------- events

void EventNotification::encode_body(WireEncoder& enc) const {
  enc.field_varint(1, static_cast<std::uint64_t>(event));
  enc.field_svarint(2, subframe);
  if (rnti != lte::kInvalidRnti) enc.field_varint(3, rnti);
  if (cell_id != 0) enc.field_varint(4, cell_id);
  if (xid != 0) enc.field_varint(5, xid);
  if (!module.empty()) enc.field_string(6, module);
  if (!vsf.empty()) enc.field_string(7, vsf);
  if (!implementation.empty()) enc.field_string(8, implementation);
  if (failure_kind != VsfFailureKind::none) {
    enc.field_varint(9, static_cast<std::uint64_t>(failure_kind));
  }
  if (failure_count != 0) enc.field_varint(10, failure_count);
  if (!detail.empty()) enc.field_string(11, detail);
  if (overload_state != 0) enc.field_varint(12, overload_state);
}

Result<EventNotification> EventNotification::decode_body(std::span<const std::uint8_t> data) {
  EventNotification out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: ASSIGN_VARINT(out.event, EventType); return true;
      case 2: ASSIGN_SVARINT(out.subframe); return true;
      case 3: ASSIGN_VARINT(out.rnti, lte::Rnti); return true;
      case 4: ASSIGN_VARINT(out.cell_id, lte::CellId); return true;
      case 5: ASSIGN_VARINT(out.xid, std::uint32_t); return true;
      case 6:
      case 7:
      case 8:
      case 11: {
        auto s = expect_string(dec, header);
        if (!s.ok()) return Result<bool>(s.error());
        (header.field == 6    ? out.module
         : header.field == 7  ? out.vsf
         : header.field == 8  ? out.implementation
                              : out.detail) = std::move(*s);
        return true;
      }
      case 9: ASSIGN_VARINT(out.failure_kind, VsfFailureKind); return true;
      case 10: ASSIGN_VARINT(out.failure_count, std::uint32_t); return true;
      case 12: ASSIGN_VARINT(out.overload_state, std::uint8_t); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

void EventSubscription::encode_body(WireEncoder& enc) const {
  for (const auto event : events) enc.field_varint(1, static_cast<std::uint64_t>(event));
  enc.field_bool(2, enable);
}

Result<EventSubscription> EventSubscription::decode_body(std::span<const std::uint8_t> data) {
  EventSubscription out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1: {
        auto v = expect_varint(dec, header);
        if (!v.ok()) return Result<bool>(v.error());
        out.events.push_back(static_cast<EventType>(*v));
        return true;
      }
      case 2: ASSIGN_VARINT(out.enable, bool); return true;
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

// --------------------------------------------------------------- delegation

void ControlDelegation::encode_body(WireEncoder& enc) const {
  enc.field_string(1, module);
  enc.field_string(2, vsf);
  enc.field_string(3, implementation);
  enc.field_varint(4, version);
  if (!blob.empty()) enc.field_bytes(5, blob);
}

Result<ControlDelegation> ControlDelegation::decode_body(std::span<const std::uint8_t> data) {
  ControlDelegation out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    switch (header.field) {
      case 1:
      case 2:
      case 3: {
        auto s = expect_string(dec, header);
        if (!s.ok()) return Result<bool>(s.error());
        (header.field == 1 ? out.module : header.field == 2 ? out.vsf : out.implementation) =
            std::move(*s);
        return true;
      }
      case 4: ASSIGN_VARINT(out.version, std::uint32_t); return true;
      case 5: {
        auto bytes = expect_bytes(dec, header);
        if (!bytes.ok()) return Result<bool>(bytes.error());
        out.blob.assign(bytes->begin(), bytes->end());
        return true;
      }
      default: return false;
    }
  });
  if (!status.ok()) return status.error();
  return out;
}

void PolicyReconfiguration::encode_body(WireEncoder& enc) const { enc.field_string(1, yaml); }

Result<PolicyReconfiguration> PolicyReconfiguration::decode_body(
    std::span<const std::uint8_t> data) {
  PolicyReconfiguration out;
  auto status = decode_fields(data, [&](WireDecoder& dec,
                                        const WireDecoder::FieldHeader& header) -> Result<bool> {
    if (header.field != 1) return false;
    auto s = expect_string(dec, header);
    if (!s.ok()) return Result<bool>(s.error());
    out.yaml = std::move(*s);
    return true;
  });
  if (!status.ok()) return status.error();
  return out;
}

// ------------------------------------------------------------------ helpers

DecodeAnomalies& decode_anomalies() {
  static DecodeAnomalies anomalies;
  return anomalies;
}

MessageCategory categorize(MessageType type) {
  switch (type) {
    case MessageType::stats_request:
    case MessageType::stats_reply:
      return MessageCategory::stats;
    case MessageType::dl_mac_config:
    case MessageType::ul_mac_config:
    case MessageType::handover_command:
    case MessageType::abs_config:
    case MessageType::carrier_restriction:
    case MessageType::drx_config:
    case MessageType::scell_command:
      return MessageCategory::commands;
    case MessageType::control_delegation:
    case MessageType::policy_reconfiguration:
      return MessageCategory::delegation;
    default:
      return MessageCategory::agent_management;
  }
}

MessageCategory categorize(MessageType type, const std::vector<std::uint8_t>& body) {
  if (type == MessageType::event_notification) {
    auto event = EventNotification::decode_body(body);
    if (event.ok() && event->event == EventType::subframe_tick) return MessageCategory::sync;
    return MessageCategory::agent_management;
  }
  return categorize(type);
}

net::TrafficClass traffic_class(MessageType type) {
  switch (type) {
    case MessageType::hello:
    case MessageType::echo_request:
    case MessageType::echo_reply:
      return net::TrafficClass::session;
    case MessageType::dl_mac_config:
    case MessageType::ul_mac_config:
    case MessageType::handover_command:
    case MessageType::abs_config:
    case MessageType::carrier_restriction:
    case MessageType::drx_config:
    case MessageType::scell_command:
    case MessageType::control_delegation:
    case MessageType::policy_reconfiguration:
      return net::TrafficClass::command;
    case MessageType::stats_reply:
      return net::TrafficClass::stats;
    case MessageType::event_notification:
      return net::TrafficClass::event;
    default:
      // Config exchange, stats requests, event subscriptions: negotiated
      // state the peer waits on -- never shed.
      return net::TrafficClass::config;
  }
}

net::TrafficClass traffic_class(MessageType type, const std::vector<std::uint8_t>& body) {
  if (type == MessageType::event_notification) {
    auto event = EventNotification::decode_body(body);
    if (event.ok() && event->event == EventType::subframe_tick) return net::TrafficClass::sync;
    return net::TrafficClass::event;
  }
  return traffic_class(type);
}

DlMacConfig to_dl_mac_config(const lte::SchedulingDecision& decision) {
  DlMacConfig msg;
  msg.cell_id = decision.cell_id;
  msg.target_subframe = decision.subframe;
  msg.dcis = decision.dl;
  return msg;
}

UlMacConfig to_ul_mac_config(const lte::SchedulingDecision& decision) {
  UlMacConfig msg;
  msg.cell_id = decision.cell_id;
  msg.target_subframe = decision.subframe;
  msg.dcis = decision.ul;
  return msg;
}

}  // namespace flexran::proto
