// Lightweight expected-like result type used across the FlexRAN codebase for
// recoverable failures (decode errors, missing RIB entries, transport
// failures). Exceptions are reserved for programming errors.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace flexran::util {

/// Error payload: a stable code plus a human-readable message.
struct Error {
  enum class Code {
    invalid_argument,
    not_found,
    decode_failure,
    encode_failure,
    transport_failure,
    capacity_exceeded,
    unsupported,
    conflict,
    timeout,
    internal,
  };

  Code code = Code::internal;
  std::string message;

  static Error invalid_argument(std::string msg) { return {Code::invalid_argument, std::move(msg)}; }
  static Error not_found(std::string msg) { return {Code::not_found, std::move(msg)}; }
  static Error decode_failure(std::string msg) { return {Code::decode_failure, std::move(msg)}; }
  static Error encode_failure(std::string msg) { return {Code::encode_failure, std::move(msg)}; }
  static Error transport_failure(std::string msg) { return {Code::transport_failure, std::move(msg)}; }
  static Error capacity_exceeded(std::string msg) { return {Code::capacity_exceeded, std::move(msg)}; }
  static Error unsupported(std::string msg) { return {Code::unsupported, std::move(msg)}; }
  static Error conflict(std::string msg) { return {Code::conflict, std::move(msg)}; }
  static Error timeout(std::string msg) { return {Code::timeout, std::move(msg)}; }
  static Error internal(std::string msg) { return {Code::internal, std::move(msg)}; }
};

const char* to_string(Error::Code code);

/// Result<T>: either a value or an Error. Result<void> specializes below.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : storage_(std::move(error)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }
  T value_or(T fallback) const& { return ok() ? std::get<T>(storage_) : std::move(fallback); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Error> storage_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)), has_error_(true) {}  // NOLINT

  bool ok() const { return !has_error_; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(has_error_);
    return error_;
  }

 private:
  Error error_;
  bool has_error_ = false;
};

using Status = Result<void>;

}  // namespace flexran::util
