// Statistics helpers shared by the metrics collector, the RIB, and the
// benchmark harnesses: running moments, EWMA, histograms/CDFs, time series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace flexran::util {

/// Welford running mean/variance with min/max.
class RunningStats {
 public:
  void add(double sample);
  void reset() { *this = RunningStats{}; }

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double total() const { return total_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double total_ = 0.0;
};

/// Exponentially weighted moving average, alpha in (0, 1].
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}
  void add(double sample) {
    value_ = seeded_ ? alpha_ * sample + (1.0 - alpha_) * value_ : sample;
    seeded_ = true;
  }
  double value() const { return value_; }
  bool seeded() const { return seeded_; }
  void reset() { seeded_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Collects raw samples; computes empirical quantiles / a CDF on demand.
class SampleSet {
 public:
  void add(double sample) { samples_.push_back(sample); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  /// q in [0, 1]; nearest-rank on the sorted samples.
  double quantile(double q) const;
  /// Sorted copy of the samples (the x-axis of an empirical CDF).
  std::vector<double> sorted() const;
  const std::vector<double>& raw() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

/// (time, value) series used for experiment outputs such as Fig. 11/12a.
class TimeSeries {
 public:
  struct Point {
    double time = 0.0;
    double value = 0.0;
  };

  void add(double time, double value) { points_.push_back({time, value}); }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  /// Mean of values with time in [from, to).
  double mean_in(double from, double to) const;
  double last_value() const { return points_.empty() ? 0.0 : points_.back().value; }

 private:
  std::vector<Point> points_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double sample);
  std::size_t count() const { return count_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  double bucket_lo(std::size_t index) const { return lo_ + width_ * static_cast<double>(index); }
  double bucket_width() const { return width_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::size_t count_ = 0;
};

}  // namespace flexran::util
