// Minimal structured logger. One global sink; components log through
// FLEXRAN_LOG(level) << ... streams. The default sink writes to stderr and is
// silenced below `warn` so simulation-heavy tests and benches stay quiet.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace flexran::util {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

const char* to_string(LogLevel level);

using LogSink = std::function<void(LogLevel, std::string_view component, std::string_view message)>;

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::off; }

  /// Replace the sink (pass nullptr to restore the stderr default).
  void set_sink(LogSink sink);

  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::warn;
  LogSink sink_;
};

/// RAII one-line log statement: LogLine(level, "agent") << "msg " << x;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component), active_(Logger::instance().enabled(level)) {}
  ~LogLine() {
    if (active_) Logger::instance().write(level_, component_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (active_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  bool active_;
  std::ostringstream stream_;
};

}  // namespace flexran::util

#define FLEXRAN_LOG(level, component) \
  ::flexran::util::LogLine(::flexran::util::LogLevel::level, component)
