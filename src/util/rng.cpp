#include "util/rng.h"

#include <cmath>

namespace flexran::util {

double Rng::exponential(double mean) {
  // Guard against log(0); uniform() is in [0, 1).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(1.0 - u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace flexran::util
