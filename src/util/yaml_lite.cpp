#include "util/yaml_lite.h"

#include <cassert>

#include "util/strings.h"

namespace flexran::util {

YamlNode YamlNode::scalar(std::string value) {
  YamlNode node;
  node.kind_ = Kind::scalar;
  node.scalar_ = std::move(value);
  return node;
}

YamlNode YamlNode::map() {
  YamlNode node;
  node.kind_ = Kind::map;
  return node;
}

YamlNode YamlNode::sequence() {
  YamlNode node;
  node.kind_ = Kind::sequence;
  return node;
}

Result<long long> YamlNode::as_int() const {
  long long value = 0;
  if (!is_scalar() || !parse_int(scalar_, value)) {
    return Error::decode_failure("yaml scalar is not an integer: " + scalar_);
  }
  return value;
}

Result<double> YamlNode::as_double() const {
  double value = 0.0;
  if (!is_scalar() || !parse_double(scalar_, value)) {
    return Error::decode_failure("yaml scalar is not a number: " + scalar_);
  }
  return value;
}

bool YamlNode::has(std::string_view key) const { return find(key) != nullptr; }

const YamlNode* YamlNode::find(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

YamlNode& YamlNode::at(const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  assert(false && "yaml key not found");
  static YamlNode missing;
  return missing;
}

YamlNode& YamlNode::insert(std::string key, YamlNode value) {
  entries_.emplace_back(std::move(key), std::move(value));
  return entries_.back().second;
}

YamlNode& YamlNode::append(YamlNode value) {
  items_.push_back(std::move(value));
  return items_.back();
}

std::string YamlNode::dump(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out;
  switch (kind_) {
    case Kind::scalar:
      out = scalar_;
      break;
    case Kind::map:
      for (const auto& [key, value] : entries_) {
        out += pad + key + ":";
        if (value.is_scalar()) {
          out += " " + value.scalar_ + "\n";
        } else if (value.is_sequence() && !value.items_.empty() && value.items_.front().is_scalar()) {
          // Inline form for scalar sequences.
          out += " [";
          for (std::size_t i = 0; i < value.items_.size(); ++i) {
            if (i > 0) out += ", ";
            out += value.items_[i].scalar_;
          }
          out += "]\n";
        } else {
          out += "\n" + value.dump(indent + 1);
        }
      }
      break;
    case Kind::sequence:
      for (const auto& item : items_) {
        if (item.is_scalar()) {
          out += pad + "- " + item.scalar_ + "\n";
        } else {
          out += pad + "-\n" + item.dump(indent + 1);
        }
      }
      break;
  }
  return out;
}

namespace {

struct Line {
  int indent = 0;
  std::string text;  // trimmed content
};

std::vector<Line> lex(std::string_view text) {
  std::vector<Line> lines;
  for (const auto& raw : split_lines(text)) {
    std::string_view view = raw;
    // Strip comments that start a token (simplistic: full-line or ' #').
    if (auto pos = view.find(" #"); pos != std::string_view::npos) view = view.substr(0, pos);
    std::size_t indent = 0;
    while (indent < view.size() && view[indent] == ' ') ++indent;
    const std::string_view content = trim(view);
    if (content.empty() || content.front() == '#') continue;
    lines.push_back({static_cast<int>(indent), std::string(content)});
  }
  return lines;
}

Result<YamlNode> parse_inline_sequence(std::string_view text) {
  // text is "[a, b, c]".
  auto inner = trim(text.substr(1, text.size() - 2));
  YamlNode seq = YamlNode::sequence();
  if (inner.empty()) return seq;
  for (const auto& part : split(inner, ',')) {
    seq.append(YamlNode::scalar(std::string(trim(part))));
  }
  return seq;
}

Result<YamlNode> parse_scalar_or_inline(std::string_view text) {
  auto trimmed = trim(text);
  if (trimmed.size() >= 2 && trimmed.front() == '[' && trimmed.back() == ']') {
    return parse_inline_sequence(trimmed);
  }
  // Strip surrounding quotes if present.
  if (trimmed.size() >= 2 &&
      ((trimmed.front() == '"' && trimmed.back() == '"') ||
       (trimmed.front() == '\'' && trimmed.back() == '\''))) {
    trimmed = trimmed.substr(1, trimmed.size() - 2);
  }
  return YamlNode::scalar(std::string(trimmed));
}

// Recursive-descent over the lexed lines. `pos` advances through `lines`;
// a block ends when indentation drops below `indent`.
Result<YamlNode> parse_block(const std::vector<Line>& lines, std::size_t& pos, int indent);

Result<YamlNode> parse_map_block(const std::vector<Line>& lines, std::size_t& pos, int indent) {
  YamlNode node = YamlNode::map();
  while (pos < lines.size() && lines[pos].indent == indent && lines[pos].text.front() != '-') {
    const Line& line = lines[pos];
    const auto colon = line.text.find(':');
    if (colon == std::string::npos) {
      return Error::decode_failure("yaml: expected 'key:' in line '" + line.text + "'");
    }
    std::string key(trim(std::string_view(line.text).substr(0, colon)));
    std::string_view rest = trim(std::string_view(line.text).substr(colon + 1));
    ++pos;
    if (!rest.empty()) {
      auto value = parse_scalar_or_inline(rest);
      if (!value.ok()) return value.error();
      node.insert(std::move(key), std::move(value.value()));
    } else if (pos < lines.size() && lines[pos].indent > indent) {
      auto child = parse_block(lines, pos, lines[pos].indent);
      if (!child.ok()) return child.error();
      node.insert(std::move(key), std::move(child.value()));
    } else {
      node.insert(std::move(key), YamlNode::scalar(""));
    }
  }
  return node;
}

Result<YamlNode> parse_sequence_block(const std::vector<Line>& lines, std::size_t& pos, int indent) {
  YamlNode node = YamlNode::sequence();
  while (pos < lines.size() && lines[pos].indent == indent && lines[pos].text.front() == '-') {
    const Line& line = lines[pos];
    std::string_view rest = trim(std::string_view(line.text).substr(1));
    if (!rest.empty() && rest.find(':') != std::string_view::npos &&
        !(rest.front() == '[')) {
      // "- key: value" opens an inline map item whose further keys are
      // indented past the dash.
      const int item_indent = line.indent + 2;
      std::vector<Line> synthetic{{item_indent, std::string(rest)}};
      // Pull subsequent deeper lines into the same item.
      std::size_t next = pos + 1;
      while (next < lines.size() && lines[next].indent >= item_indent &&
             !(lines[next].indent == indent && lines[next].text.front() == '-')) {
        synthetic.push_back(lines[next]);
        ++next;
      }
      std::size_t sub_pos = 0;
      auto item = parse_map_block(synthetic, sub_pos, item_indent);
      if (!item.ok()) return item.error();
      node.append(std::move(item.value()));
      pos = next;
    } else if (!rest.empty()) {
      auto value = parse_scalar_or_inline(rest);
      if (!value.ok()) return value.error();
      node.append(std::move(value.value()));
      ++pos;
    } else {
      ++pos;
      if (pos < lines.size() && lines[pos].indent > indent) {
        auto child = parse_block(lines, pos, lines[pos].indent);
        if (!child.ok()) return child.error();
        node.append(std::move(child.value()));
      } else {
        node.append(YamlNode::scalar(""));
      }
    }
  }
  return node;
}

Result<YamlNode> parse_block(const std::vector<Line>& lines, std::size_t& pos, int indent) {
  if (pos >= lines.size()) return YamlNode::map();
  if (lines[pos].text.front() == '-') return parse_sequence_block(lines, pos, indent);
  return parse_map_block(lines, pos, indent);
}

}  // namespace

Result<YamlNode> parse_yaml(std::string_view text) {
  const auto lines = lex(text);
  if (lines.empty()) return YamlNode::map();
  std::size_t pos = 0;
  auto root = parse_block(lines, pos, lines.front().indent);
  if (!root.ok()) return root;
  if (pos != lines.size()) {
    return Error::decode_failure("yaml: trailing content at line '" + lines[pos].text + "'");
  }
  return root;
}

}  // namespace flexran::util
