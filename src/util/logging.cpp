#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace flexran::util {

namespace {
std::mutex g_sink_mutex;

void default_sink(LogLevel level, std::string_view component, std::string_view message) {
  std::scoped_lock lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", to_string(level), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()), message.data());
}
}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : sink_(default_sink) {}

void Logger::set_sink(LogSink sink) {
  std::scoped_lock lock(g_sink_mutex);
  sink_ = sink ? std::move(sink) : LogSink(default_sink);
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  LogSink sink;
  {
    std::scoped_lock lock(g_sink_mutex);
    sink = sink_;
  }
  sink(level, component, message);
}

}  // namespace flexran::util
