#include "util/result.h"

namespace flexran::util {

const char* to_string(Error::Code code) {
  switch (code) {
    case Error::Code::invalid_argument: return "invalid_argument";
    case Error::Code::not_found: return "not_found";
    case Error::Code::decode_failure: return "decode_failure";
    case Error::Code::encode_failure: return "encode_failure";
    case Error::Code::transport_failure: return "transport_failure";
    case Error::Code::capacity_exceeded: return "capacity_exceeded";
    case Error::Code::unsupported: return "unsupported";
    case Error::Code::conflict: return "conflict";
    case Error::Code::timeout: return "timeout";
    case Error::Code::internal: return "internal";
  }
  return "?";
}

}  // namespace flexran::util
