#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace flexran::util {

void RunningStats::add(double sample) {
  ++count_;
  total_ += sample;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  auto sorted_samples = sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted_samples.size() - 1) + 0.5);
  return sorted_samples[rank];
}

std::vector<double> SampleSet::sorted() const {
  std::vector<double> out = samples_;
  std::sort(out.begin(), out.end());
  return out;
}

double TimeSeries::mean_in(double from, double to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : points_) {
    if (p.time >= from && p.time < to) {
      sum += p.value;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)), buckets_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double sample) {
  auto index = static_cast<std::ptrdiff_t>((sample - lo_) / width_);
  index = std::clamp<std::ptrdiff_t>(index, 0, static_cast<std::ptrdiff_t>(buckets_.size()) - 1);
  ++buckets_[static_cast<std::size_t>(index)];
  ++count_;
}

}  // namespace flexran::util
