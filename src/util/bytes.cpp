#include "util/bytes.h"

#include <algorithm>

namespace flexran::util {

void ByteBuffer::write_u16(std::uint16_t value) {
  write_u8(static_cast<std::uint8_t>(value & 0xff));
  write_u8(static_cast<std::uint8_t>(value >> 8));
}

void ByteBuffer::write_u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    write_u8(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void ByteBuffer::write_u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    write_u8(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void ByteBuffer::write_bytes(std::span<const std::uint8_t> bytes) {
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

void ByteBuffer::write_string(std::string_view text) {
  data_.insert(data_.end(), text.begin(), text.end());
}

Result<std::uint8_t> ByteBuffer::read_u8() {
  if (readable() < 1) return Error::decode_failure("read_u8 past end");
  return data_[read_pos_++];
}

Result<std::uint16_t> ByteBuffer::read_u16() {
  if (readable() < 2) return Error::decode_failure("read_u16 past end");
  std::uint16_t value = static_cast<std::uint16_t>(data_[read_pos_]) |
                        static_cast<std::uint16_t>(data_[read_pos_ + 1]) << 8;
  read_pos_ += 2;
  return value;
}

Result<std::uint32_t> ByteBuffer::read_u32() {
  if (readable() < 4) return Error::decode_failure("read_u32 past end");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(data_[read_pos_ + i]) << (8 * i);
  }
  read_pos_ += 4;
  return value;
}

Result<std::uint64_t> ByteBuffer::read_u64() {
  if (readable() < 8) return Error::decode_failure("read_u64 past end");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data_[read_pos_ + i]) << (8 * i);
  }
  read_pos_ += 8;
  return value;
}

Result<std::vector<std::uint8_t>> ByteBuffer::read_bytes(std::size_t count) {
  if (readable() < count) return Error::decode_failure("read_bytes past end");
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(read_pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(read_pos_ + count));
  read_pos_ += count;
  return out;
}

Result<std::string> ByteBuffer::read_string(std::size_t count) {
  if (readable() < count) return Error::decode_failure("read_string past end");
  std::string out(data_.begin() + static_cast<std::ptrdiff_t>(read_pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(read_pos_ + count));
  read_pos_ += count;
  return out;
}

void ByteBuffer::compact() {
  if (read_pos_ == 0) return;
  if (read_pos_ == data_.size()) {
    // Fully drained: O(1) reset, capacity kept for the next burst.
    data_.clear();
    read_pos_ = 0;
    return;
  }
  if (read_pos_ < kCompactThresholdBytes) return;
  compact_now();
}

void ByteBuffer::compact_now() {
  if (read_pos_ == 0) return;
  data_.erase(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(read_pos_));
  read_pos_ = 0;
}

void ByteBuffer::insert_zeros(std::size_t pos, std::size_t count) {
  if (count == 0) return;
  if (pos > data_.size()) pos = data_.size();
  data_.insert(data_.begin() + static_cast<std::ptrdiff_t>(pos), count, 0);
}

}  // namespace flexran::util
