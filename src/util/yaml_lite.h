// Minimal YAML subset parser, sufficient for FlexRAN policy-reconfiguration
// messages (paper Fig. 3): nested maps via 2+-space indentation, block
// sequences ("- item"), inline sequences ("[a, b, c]"), and scalar values.
// Anchors, multi-line scalars, and flow maps are intentionally unsupported.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace flexran::util {

class YamlNode {
 public:
  enum class Kind { scalar, map, sequence };

  YamlNode() : kind_(Kind::scalar) {}
  static YamlNode scalar(std::string value);
  static YamlNode map();
  static YamlNode sequence();

  Kind kind() const { return kind_; }
  bool is_scalar() const { return kind_ == Kind::scalar; }
  bool is_map() const { return kind_ == Kind::map; }
  bool is_sequence() const { return kind_ == Kind::sequence; }

  // Scalar access.
  const std::string& as_string() const { return scalar_; }
  Result<long long> as_int() const;
  Result<double> as_double() const;

  // Map access. Keys preserve insertion order.
  bool has(std::string_view key) const;
  const YamlNode* find(std::string_view key) const;
  YamlNode& at(const std::string& key);
  const std::vector<std::pair<std::string, YamlNode>>& entries() const { return entries_; }
  YamlNode& insert(std::string key, YamlNode value);

  // Sequence access.
  const std::vector<YamlNode>& items() const { return items_; }
  YamlNode& append(YamlNode value);

  /// Serializes back to YAML text (used to build protocol messages).
  std::string dump(int indent = 0) const;

 private:
  Kind kind_;
  std::string scalar_;
  std::vector<std::pair<std::string, YamlNode>> entries_;  // map
  std::vector<YamlNode> items_;                            // sequence
};

/// Parses a document; the root is always a map.
Result<YamlNode> parse_yaml(std::string_view text);

}  // namespace flexran::util
