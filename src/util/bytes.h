// Growable byte buffer with separate read/write cursors, used by the wire
// codec and the transports. All multi-byte integers are little-endian on the
// wire (fixed-width accessors); varints live in proto/wire.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace flexran::util {

/// Consumed-prefix size at which compact() actually erases. Small enough to
/// bound idle memory, large enough that drip-fed streams do not memmove the
/// pending tail on every byte.
constexpr std::size_t kCompactThresholdBytes = 4096;

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::uint8_t> data) : data_(std::move(data)) {}
  explicit ByteBuffer(std::span<const std::uint8_t> data) : data_(data.begin(), data.end()) {}

  // -- write side -----------------------------------------------------------
  void write_u8(std::uint8_t value) { data_.push_back(value); }
  void write_u16(std::uint16_t value);
  void write_u32(std::uint32_t value);
  void write_u64(std::uint64_t value);
  void write_bytes(std::span<const std::uint8_t> bytes);
  void write_string(std::string_view text);

  // -- read side ------------------------------------------------------------
  Result<std::uint8_t> read_u8();
  Result<std::uint16_t> read_u16();
  Result<std::uint32_t> read_u32();
  Result<std::uint64_t> read_u64();
  Result<std::vector<std::uint8_t>> read_bytes(std::size_t count);
  Result<std::string> read_string(std::size_t count);

  std::size_t readable() const { return data_.size() - read_pos_; }
  std::size_t read_position() const { return read_pos_; }
  void rewind() { read_pos_ = 0; }
  /// Move the read cursor to an absolute position (clamped to size()). O(1),
  /// unlike rewind-and-replay; stream reassembly uses this to restore a mark.
  void seek(std::size_t pos) { read_pos_ = pos < data_.size() ? pos : data_.size(); }
  /// Advance the read cursor by `count` bytes (clamped to the end).
  void skip(std::size_t count) { seek(read_pos_ + count); }
  /// Drop already-consumed bytes. Amortized: the erase+memmove only happens
  /// once the consumed prefix passes kCompactThresholdBytes (or the buffer is
  /// fully drained, which is a cheap clear), so per-feed cost stays O(new
  /// bytes) instead of O(buffered bytes).
  void compact();
  /// Unconditional prefix drop, for callers that need size() == readable().
  void compact_now();

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void clear() {
    data_.clear();
    read_pos_ = 0;
  }
  void reserve(std::size_t capacity) { data_.reserve(capacity); }
  std::size_t capacity() const { return data_.capacity(); }

  // -- in-place patching (wire encoder length backpatching) ------------------
  std::uint8_t* mutable_data() { return data_.data(); }
  /// Opens a `count`-byte zero gap at `pos`, shifting the tail right. Used by
  /// the wire encoder to widen a reserved length prefix after the fact.
  void insert_zeros(std::size_t pos, std::size_t count);

  std::span<const std::uint8_t> contents() const { return data_; }
  std::span<const std::uint8_t> remaining() const {
    return std::span<const std::uint8_t>(data_).subspan(read_pos_);
  }
  const std::vector<std::uint8_t>& vec() const { return data_; }
  std::vector<std::uint8_t> take() {
    read_pos_ = 0;
    return std::move(data_);
  }

 private:
  std::vector<std::uint8_t> data_;
  std::size_t read_pos_ = 0;
};

}  // namespace flexran::util
