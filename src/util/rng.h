// Deterministic RNG for reproducible simulations: xoshiro256** seeded via
// splitmix64. Every stochastic component takes an explicit Rng (or seed) so
// experiment runs are repeatable bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace flexran::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % range);
  }

  /// Bernoulli draw.
  bool chance(double probability) { return uniform() < probability; }

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (no cached spare; fine for sim rates).
  double normal(double mean = 0.0, double stddev = 1.0);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace flexran::util
