// Small string utilities used by the YAML-lite parser and table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace flexran::util {

std::string_view trim(std::string_view text);
std::vector<std::string> split(std::string_view text, char delimiter);
std::vector<std::string> split_lines(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);
std::string to_lower(std::string_view text);

/// Parses a decimal integer/real; returns false on malformed input.
bool parse_int(std::string_view text, long long& out);
bool parse_double(std::string_view text, double& out);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace flexran::util
