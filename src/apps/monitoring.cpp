#include "apps/monitoring.h"

namespace flexran::apps {

void MonitoringApp::on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) {
  if (period_ > 0 && cycle % period_ != 0) return;
  ++snapshots_;
  summaries_.clear();
  const auto rib = api.rib_snapshot();
  for (const auto& [id, agent_node] : rib->agents()) {
    const auto& agent = *agent_node;
    AgentSummary summary;
    double cqi_sum = 0.0;
    // Scan the SoA hot columns instead of walking cells -> UE map nodes:
    // same totals, contiguous memory (docs/wire_fastpath.md).
    const auto& hot = agent.hot;
    summary.ue_count = hot.size();
    for (std::size_t i = 0; i < hot.size(); ++i) {
      cqi_sum += hot.wb_cqi[i];
      summary.total_queue_bytes += hot.rlc_queue_bytes[i];
      summary.total_dl_bytes += hot.dl_bytes_delivered[i];
    }
    if (summary.ue_count > 0) summary.mean_cqi = cqi_sum / static_cast<double>(summary.ue_count);
    summaries_[id] = summary;
  }
}

}  // namespace flexran::apps
