#include "apps/monitoring.h"

namespace flexran::apps {

void MonitoringApp::on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) {
  if (period_ > 0 && cycle % period_ != 0) return;
  ++snapshots_;
  summaries_.clear();
  const auto rib = api.rib_snapshot();
  for (const auto& [id, agent_node] : rib->agents()) {
    const auto& agent = *agent_node;
    AgentSummary summary;
    double cqi_sum = 0.0;
    for (const auto& [cell_id, cell] : agent.cells) {
      (void)cell_id;
      for (const auto& [rnti, ue] : cell.ues) {
        (void)rnti;
        ++summary.ue_count;
        cqi_sum += ue.stats.wb_cqi;
        summary.total_queue_bytes += ue.stats.rlc_queue_bytes;
        summary.total_dl_bytes += ue.stats.dl_bytes_delivered;
      }
    }
    if (summary.ue_count > 0) summary.mean_cqi = cqi_sum / static_cast<double>(summary.ue_count);
    summaries_[id] = summary;
  }
}

}  // namespace flexran::apps
