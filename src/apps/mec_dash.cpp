#include "apps/mec_dash.h"

#include <algorithm>
#include <cmath>

namespace flexran::apps {

CqiBitrateTable paper_table2_bitrates() {
  // Paper Table 2: CQI -> max sustainable video bitrate (Mb/s), measured on
  // the authors' testbed. bench_table2_cqi regenerates this repo's own
  // calibration of the same mapping.
  return {{2, 1.4}, {3, 2.0}, {4, 2.9}, {10, 7.3}, {15, 11.0}};
}

CqiBitrateTable calibrated_table2_bitrates() {
  // Measured by bench_table2_cqi against this repo's PHY calibration
  // (kDataRePerPrb = 100): highest bitrate playing with zero freezes.
  return {{2, 0.7}, {3, 1.0}, {4, 2.0}, {6, 4.0}, {10, 7.3}, {15, 11.0}};
}

double sustainable_bitrate_mbps(const CqiBitrateTable& table, double cqi) {
  if (table.empty()) return 0.0;
  auto upper = table.lower_bound(static_cast<int>(std::ceil(cqi)));
  if (upper == table.begin()) return upper->second;
  if (upper == table.end()) return std::prev(upper)->second;
  const auto lower = std::prev(upper);
  const double span = upper->first - lower->first;
  if (span <= 0) return lower->second;
  const double frac = (cqi - lower->first) / span;
  return lower->second + frac * (upper->second - lower->second);
}

void MecDashApp::on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) {
  if (config_.period_cycles > 0 && cycle % config_.period_cycles != 0) return;
  const auto rib = api.rib_snapshot();
  const auto* agent = rib->find_agent(config_.agent);
  if (agent == nullptr) return;
  for (const auto& [cell_id, cell] : agent->cells) {
    (void)cell_id;
    const double share_divisor =
        config_.load_aware ? std::max<double>(1.0, cell.stats.active_ues) : 1.0;
    for (const auto& [rnti, ue] : cell.ues) {
      if (!ue.cqi_avg.seeded()) continue;
      const double mbps =
          sustainable_bitrate_mbps(config_.table, ue.cqi_avg.value()) / share_divisor;
      auto it = last_pushed_.find(rnti);
      if (it != last_pushed_.end() && it->second == mbps) continue;  // no change
      last_pushed_[rnti] = mbps;
      if (push_) push_(rnti, mbps);
    }
  }
}

double MecDashApp::last_pushed_mbps(lte::Rnti rnti) const {
  auto it = last_pushed_.find(rnti);
  return it == last_pushed_.end() ? 0.0 : it->second;
}

}  // namespace flexran::apps
