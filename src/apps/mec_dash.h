// Mobile Edge Computing DASH-assist application (paper Sec. 6.2). Consumes
// the real-time CQI information in the RIB, smooths it with an exponential
// moving average, maps it through a measured CQI -> max-sustainable-bitrate
// table (the paper's Table 2), and pushes the result to the video client
// over an out-of-band channel (a callback here).
#pragma once

#include <functional>
#include <map>

#include "controller/app.h"

namespace flexran::apps {

/// CQI -> maximum sustainable video bitrate (Mb/s). Keys need not be dense;
/// lookups interpolate linearly and clamp at the ends.
using CqiBitrateTable = std::map<int, double>;

/// The mapping measured in the paper's Table 2 (the authors' testbed
/// calibration; see also calibrated_table2_bitrates).
CqiBitrateTable paper_table2_bitrates();

/// The same mapping measured on THIS repo's substrate by bench_table2_cqi.
/// Our PHY calibration charges more per-PRB overhead, so sustainable
/// bitrates sit lower than the paper's at equal CQI. This is the table the
/// MEC application uses by default -- a deployment would measure its own.
CqiBitrateTable calibrated_table2_bitrates();

/// Interpolated lookup.
double sustainable_bitrate_mbps(const CqiBitrateTable& table, double cqi);

class MecDashApp final : public ctrl::App {
 public:
  using PushBitrateFn = std::function<void(lte::Rnti, double mbps)>;

  struct Config {
    ctrl::AgentId agent = 0;
    CqiBitrateTable table = calibrated_table2_bitrates();
    /// Push period in task-manager cycles (the app is not time critical).
    std::int64_t period_cycles = 100;
    /// Divide the sustainable bitrate by the number of UEs sharing the
    /// cell: Table 2 is calibrated for a sole UE, and a fair scheduler
    /// gives each of N active UEs ~1/N of the carrier. Exactly the kind of
    /// decision only the RAN-side view enables.
    bool load_aware = true;
  };

  MecDashApp(Config config, PushBitrateFn push)
      : config_(std::move(config)), push_(std::move(push)) {}

  std::string_view name() const override { return "mec_dash"; }
  int priority() const override { return 150; }

  void on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) override;

  double last_pushed_mbps(lte::Rnti rnti) const;

 private:
  Config config_;
  PushBitrateFn push_;
  std::map<lte::Rnti, double> last_pushed_;
};

}  // namespace flexran::apps
