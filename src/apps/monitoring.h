// Monitoring application: the paper's canonical non-time-critical app.
// Periodically snapshots the RIB into a summary other services can consume
// (the MEC app of Sec. 6.2 is conceptually a consumer of this).
#pragma once

#include <map>

#include "controller/app.h"

namespace flexran::apps {

class MonitoringApp final : public ctrl::App {
 public:
  struct AgentSummary {
    std::size_t ue_count = 0;
    double mean_cqi = 0.0;
    std::uint64_t total_queue_bytes = 0;
    std::uint64_t total_dl_bytes = 0;
  };

  /// Snapshot every `period_cycles` task-manager cycles.
  explicit MonitoringApp(std::int64_t period_cycles = 100) : period_(period_cycles) {}

  std::string_view name() const override { return "monitoring"; }
  int priority() const override { return 200; }  // explicitly non-critical

  void on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) override;

  const std::map<ctrl::AgentId, AgentSummary>& summaries() const { return summaries_; }
  std::int64_t snapshots_taken() const { return snapshots_; }

 private:
  std::int64_t period_;
  std::int64_t snapshots_ = 0;
  std::map<ctrl::AgentId, AgentSummary> summaries_;
};

}  // namespace flexran::apps
