// Licensed Shared Access controller application (paper Sec. 7.1: "an LSA
// controller dynamically manages the access to the shared spectrum based on
// these agreements. Such an operation could easily be implemented as an
// application on top of FlexRAN"). The incumbent's activity calendar is a
// sequence of windows; while the incumbent is active the app evacuates the
// shared upper PRBs of every managed cell via CarrierRestriction commands
// and restores the full carrier afterwards.
#pragma once

#include <vector>

#include "controller/app.h"

namespace flexran::apps {

struct LsaWindow {
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

struct LsaConfig {
  /// Agents whose cells use the shared band; empty = all.
  std::vector<ctrl::AgentId> agents;
  /// PRBs the MNO may keep while the incumbent is active.
  int restricted_prbs = 30;
  /// Incumbent activity calendar (non-overlapping, ascending).
  std::vector<LsaWindow> incumbent_windows;
  std::int64_t period_cycles = 10;
};

class LsaControllerApp final : public ctrl::App {
 public:
  explicit LsaControllerApp(LsaConfig config) : config_(std::move(config)) {}

  std::string_view name() const override { return "lsa_controller"; }
  int priority() const override { return 30; }

  void on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) override;

  bool incumbent_active() const { return incumbent_active_; }
  std::uint64_t restrictions_sent() const { return restrictions_sent_; }

 private:
  bool incumbent_active_at(double now_seconds) const;
  void apply(ctrl::NorthboundApi& api, bool active);

  LsaConfig config_;
  bool incumbent_active_ = false;
  bool applied_once_ = false;
  std::uint64_t restrictions_sent_ = 0;
};

}  // namespace flexran::apps
