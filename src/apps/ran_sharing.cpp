#include "apps/ran_sharing.h"

#include <algorithm>
#include <cmath>

#include "lte/tables.h"
#include "util/strings.h"

namespace flexran::apps {

std::string make_slice_policy_yaml(const std::vector<SliceSpec>& slices) {
  std::string yaml =
      "mac:\n"
      "  dl_ue_scheduler:\n"
      "    behavior: sliced\n"
      "    parameters:\n"
      "      slices:\n";
  for (const auto& slice : slices) {
    yaml += util::format("        - share: %.4f\n", slice.share);
    yaml += "          policy: " + slice.policy + "\n";
    auto render_list = [](const std::vector<lte::Rnti>& rntis) {
      std::string out = "[";
      for (std::size_t i = 0; i < rntis.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(rntis[i]);
      }
      return out + "]";
    };
    yaml += "          rntis: " + render_list(slice.rntis) + "\n";
    if (slice.policy == "group") {
      yaml += "          premium_rntis: " + render_list(slice.premium_rntis) + "\n";
      yaml += util::format("          premium_share: %.4f\n", slice.premium_share);
    }
  }
  return yaml;
}

namespace {

// Shared by set_parameter (commits the result) and validate_parameter
// (discards it): the whole value parses or nothing is applied.
util::Result<std::vector<SliceSpec>> parse_slices(std::string_view key,
                                                  const util::YamlNode& value) {
  if (key != "slices") {
    return util::Error::invalid_argument("unknown parameter: " + std::string(key));
  }
  if (!value.is_sequence()) {
    return util::Error::invalid_argument("slices must be a sequence");
  }
  std::vector<SliceSpec> parsed;
  for (const auto& item : value.items()) {
    SliceSpec spec;
    if (const auto* share = item.find("share"); share != nullptr) {
      auto v = share->as_double();
      if (!v.ok() || *v < 0.0 || *v > 1.0) {
        return util::Error::invalid_argument("slice share must be in [0, 1]");
      }
      spec.share = *v;
    }
    if (const auto* policy = item.find("policy"); policy != nullptr) {
      spec.policy = policy->as_string();
      if (spec.policy != "fair" && spec.policy != "group") {
        return util::Error::invalid_argument("slice policy must be fair or group");
      }
    }
    auto parse_rntis = [&](const char* field, std::vector<lte::Rnti>& out) -> util::Status {
      const auto* node = item.find(field);
      if (node == nullptr) return {};
      if (!node->is_sequence()) return util::Error::invalid_argument("rnti list expected");
      for (const auto& rnti_node : node->items()) {
        auto v = rnti_node.as_int();
        if (!v.ok()) return v.error();
        out.push_back(static_cast<lte::Rnti>(*v));
      }
      return {};
    };
    if (auto s = parse_rntis("rntis", spec.rntis); !s.ok()) return s.error();
    if (auto s = parse_rntis("premium_rntis", spec.premium_rntis); !s.ok()) return s.error();
    if (const auto* premium = item.find("premium_share"); premium != nullptr) {
      auto v = premium->as_double();
      if (!v.ok()) return v.error();
      spec.premium_share = std::clamp(*v, 0.0, 1.0);
    }
    parsed.push_back(std::move(spec));
  }
  return parsed;
}

}  // namespace

util::Status SlicedDlVsf::set_parameter(std::string_view key, const util::YamlNode& value) {
  auto parsed = parse_slices(key, value);
  if (!parsed.ok()) return parsed.error();
  slices_ = std::move(parsed.value());
  rotations_.assign(slices_.size(), 0);
  premium_rotations_.assign(slices_.size(), 0);
  return {};
}

util::Status SlicedDlVsf::validate_parameter(std::string_view key,
                                             const util::YamlNode& value) const {
  auto parsed = parse_slices(key, value);
  if (!parsed.ok()) return parsed.error();
  return {};
}

std::vector<agent::PrbDemand> SlicedDlVsf::demands_for(
    agent::AgentApi& /*api*/, const std::vector<stack::SchedUeInfo>& view,
    const std::set<lte::Rnti>& members, int budget_prbs, std::size_t& rotation) const {
  std::vector<agent::PrbDemand> wants;
  for (const auto& info : view) {
    if (!members.contains(info.rnti)) continue;
    if (info.dl_queue_bytes == 0 && info.pending_dl_retx == 0) continue;
    const int mcs = lte::cqi_to_mcs(std::max(info.cqi, 1));
    agent::PrbDemand demand;
    demand.rnti = info.rnti;
    demand.mcs = mcs;
    demand.prbs_wanted =
        info.pending_dl_retx > 0 ? budget_prbs : agent::prbs_needed(info.dl_bits_needed, mcs);
    wants.push_back(demand);
  }
  if (wants.empty()) return wants;
  std::rotate(wants.begin(), wants.begin() + static_cast<std::ptrdiff_t>(rotation % wants.size()),
              wants.end());
  ++rotation;
  return agent::equal_share_demands(std::move(wants), budget_prbs);
}

lte::SchedulingDecision SlicedDlVsf::schedule_dl(agent::AgentApi& api, std::int64_t subframe) {
  lte::SchedulingDecision decision;
  decision.cell_id = api.cell_id();
  decision.subframe = subframe;
  if (api.muted_in(subframe) || slices_.empty()) return decision;

  const auto view = api.scheduler_view();
  const int total_prbs = api.dl_prbs();
  int first_prb = 0;

  for (std::size_t i = 0; i < slices_.size(); ++i) {
    const SliceSpec& slice = slices_[i];
    int budget = static_cast<int>(std::floor(slice.share * total_prbs));
    budget = std::min(budget, total_prbs - first_prb);
    if (budget <= 0) continue;

    // UEs that RACHed but have no slice yet ride on the first slice so they
    // can complete attach signaling.
    std::set<lte::Rnti> members(slice.rntis.begin(), slice.rntis.end());
    if (i == 0) {
      std::set<lte::Rnti> assigned;
      for (const auto& s : slices_) assigned.insert(s.rntis.begin(), s.rntis.end());
      for (const auto& info : view) {
        if (!assigned.contains(info.rnti)) members.insert(info.rnti);
      }
    }

    if (slice.policy == "group" && !slice.premium_rntis.empty()) {
      const std::set<lte::Rnti> premium(slice.premium_rntis.begin(), slice.premium_rntis.end());
      std::set<lte::Rnti> secondary;
      for (const auto rnti : members) {
        if (!premium.contains(rnti)) secondary.insert(rnti);
      }
      const int premium_budget = static_cast<int>(std::floor(slice.premium_share * budget));
      auto premium_demands =
          demands_for(api, view, premium, premium_budget, premium_rotations_[i]);
      auto premium_dcis = agent::pack_dl_allocations(premium_demands, premium_budget, first_prb);
      int premium_used = 0;
      for (const auto& dci : premium_dcis) premium_used += dci.rbs.count();
      decision.dl.insert(decision.dl.end(), premium_dcis.begin(), premium_dcis.end());

      const int secondary_budget = budget - premium_budget;
      auto secondary_demands =
          demands_for(api, view, secondary, secondary_budget, rotations_[i]);
      auto secondary_dcis = agent::pack_dl_allocations(secondary_demands, secondary_budget,
                                                       first_prb + premium_budget);
      decision.dl.insert(decision.dl.end(), secondary_dcis.begin(), secondary_dcis.end());
    } else {
      auto demands = demands_for(api, view, members, budget, rotations_[i]);
      auto dcis = agent::pack_dl_allocations(demands, budget, first_prb);
      decision.dl.insert(decision.dl.end(), dcis.begin(), dcis.end());
    }
    first_prb += budget;
  }
  return decision;
}

// ------------------------------------------------------------------- app --

void RanSharingApp::on_start(ctrl::NorthboundApi& api) {
  (void)api.push_vsf(agent_, "mac", "dl_ue_scheduler", "sliced");
  if (!steps_.empty() && steps_.front().at_seconds <= 0.0) {
    (void)api.send_policy(agent_, make_slice_policy_yaml(steps_.front().slices));
    next_step_ = 1;
  }
}

void RanSharingApp::on_cycle(std::int64_t /*cycle*/, ctrl::NorthboundApi& api) {
  while (next_step_ < steps_.size() &&
         sim::to_seconds(api.now()) >= steps_[next_step_].at_seconds) {
    (void)api.send_policy(agent_, make_slice_policy_yaml(steps_[next_step_].slices));
    ++next_step_;
  }
}

}  // namespace flexran::apps
