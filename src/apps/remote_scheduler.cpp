#include "apps/remote_scheduler.h"

#include <algorithm>

#include "agent/schedulers.h"
#include "lte/tables.h"

namespace flexran::apps {

void RemoteSchedulerApp::on_cycle(std::int64_t /*cycle*/, ctrl::NorthboundApi& api) {
  const auto rib = api.rib_snapshot();
  // Readiness barrier (docs/fault_tolerance.md "Master restart"): a
  // recovering snapshot shows a half-rebuilt fleet whose agent state is
  // whatever survived the crash -- issue nothing until the barrier drops.
  // Agents keep serving UEs through their fallback VSFs meanwhile.
  if (rib->recovering()) return;
  std::vector<ctrl::AgentId> scope = config_.agents;
  if (scope.empty()) {
    for (const auto& [id, agent] : rib->agents()) {
      (void)agent;
      scope.push_back(id);
    }
  }

  for (const auto agent_id : scope) {
    const auto* agent = rib->find_agent(agent_id);
    if (agent == nullptr || agent->last_subframe == 0) continue;  // not synced yet
    if (agent->is_stale()) continue;  // unreachable; its fallback VSF has control
    if (demoted_.contains(agent_id)) continue;  // quarantined; local VSF has control

    const std::int64_t observed = agent->last_subframe;
    const std::int64_t target = observed + config_.schedule_ahead_sf;
    std::int64_t& last = last_target_[agent_id];
    if (last == 0) last = target - 1;
    // After a stall (app paused, master overloaded) skip straight past
    // subframes whose deadline already passed instead of burning the
    // per-cycle budget on them.
    if (last < observed) last = observed;

    int issued = 0;
    while (last < target && issued < config_.max_decisions_per_cycle) {
      ++last;
      auto decision = build_decision(*agent, last);
      if (!decision.dcis.empty() && api.send_dl_mac_config(agent_id, decision).ok()) {
        ++decisions_sent_;
        ++issued;
      }
      if (config_.schedule_ul) {
        auto ul_decision = build_ul_decision(*agent, last);
        if (!ul_decision.dcis.empty() && api.send_ul_mac_config(agent_id, ul_decision).ok()) {
          ++decisions_sent_;
        }
      }
    }
  }
}

void RemoteSchedulerApp::on_event(const ctrl::Event& event, ctrl::NorthboundApi& /*api*/) {
  switch (event.notification.event) {
    case proto::EventType::vsf_quarantined:
      if (demoted_.insert(event.agent).second) ++demotions_;
      break;
    case proto::EventType::policy_applied:
    case proto::EventType::agent_reconnected:
      // A valid policy is back in force (the master's rollback landed, or a
      // fresh session re-ran the handshake): resume remote decisions.
      demoted_.erase(event.agent);
      break;
    default:
      break;
  }
}

proto::DlMacConfig RemoteSchedulerApp::build_decision(const ctrl::AgentNode& agent,
                                                      std::int64_t target_subframe) {
  proto::DlMacConfig decision;
  decision.target_subframe = target_subframe;

  int prbs = 50;
  if (!agent.cells.empty()) {
    decision.cell_id = agent.cells.begin()->first;
    prbs = agent.cells.begin()->second.config.dl_prbs();
  }

  std::vector<agent::PrbDemand> wants;
  for (const auto& [cell_id, cell] : agent.cells) {
    (void)cell_id;
    for (const auto& [rnti, ue] : cell.ues) {
      const bool has_data = ue.stats.rlc_queue_bytes > 0 || ue.stats.total_bsr() > 0;
      const bool has_retx = ue.stats.pending_harq > 0;
      if (!has_data && !has_retx) continue;
      const int cqi = std::max<int>(ue.stats.wb_cqi, 1);
      const int mcs = lte::cqi_to_mcs(cqi);
      agent::PrbDemand demand;
      demand.rnti = rnti;
      demand.mcs = mcs;
      const auto bits = static_cast<std::int64_t>(
          static_cast<double>(std::max(ue.stats.rlc_queue_bytes, ue.stats.total_bsr())) * 8.0 *
          1.1);
      demand.prbs_wanted = has_retx ? prbs : agent::prbs_needed(bits, mcs);
      wants.push_back(demand);
    }
  }
  if (wants.empty()) return decision;

  auto& rot = rotation_[agent.id];
  std::rotate(wants.begin(), wants.begin() + static_cast<std::ptrdiff_t>(rot % wants.size()),
              wants.end());
  ++rot;
  decision.dcis =
      agent::pack_dl_allocations(agent::equal_share_demands(std::move(wants), prbs), prbs);
  return decision;
}

proto::UlMacConfig RemoteSchedulerApp::build_ul_decision(const ctrl::AgentNode& agent,
                                                         std::int64_t target_subframe) {
  proto::UlMacConfig decision;
  decision.target_subframe = target_subframe;
  int prbs = 50;
  if (!agent.cells.empty()) {
    decision.cell_id = agent.cells.begin()->first;
    prbs = agent.cells.begin()->second.config.ul_prbs();
  }
  std::vector<agent::PrbDemand> wants;
  for (const auto& [cell_id, cell] : agent.cells) {
    (void)cell_id;
    for (const auto& [rnti, ue] : cell.ues) {
      if (ue.stats.ul_buffer_bytes == 0) continue;
      // UL link adaptation: conservative fixed operating point (the master
      // does not see per-UE UL CQI; real deployments use SRS measurements).
      const int mcs = lte::cqi_to_mcs(8);
      agent::PrbDemand demand;
      demand.rnti = rnti;
      demand.mcs = mcs;
      demand.prbs_wanted = agent::prbs_needed(
          static_cast<std::int64_t>(ue.stats.ul_buffer_bytes) * 9, mcs);
      wants.push_back(demand);
    }
  }
  if (wants.empty()) return decision;
  decision.dcis =
      agent::pack_ul_allocations(agent::equal_share_demands(std::move(wants), prbs), prbs);
  return decision;
}

}  // namespace flexran::apps
