// RAN sharing & virtualization (paper Sec. 6.3): an agent-side downlink
// scheduler (SlicedDlVsf) that partitions the carrier's PRBs between
// operators (MNO / MVNOs) and applies a per-operator scheduling policy
// ("fair" round robin or "group" premium/secondary), plus a master
// application that introduces MVNOs and re-balances their resource shares
// at runtime through policy reconfiguration messages.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "agent/schedulers.h"
#include "controller/app.h"

namespace flexran::apps {

/// One operator's slice of the carrier.
struct SliceSpec {
  /// Fraction of PRBs, in [0, 1]; specs should sum to <= 1.
  double share = 0.5;
  /// "fair" (equal split) or "group" (premium users get premium_share of
  /// the slice's PRBs, secondary users the rest).
  std::string policy = "fair";
  std::vector<lte::Rnti> rntis;
  std::vector<lte::Rnti> premium_rntis;
  double premium_share = 0.7;
};

/// Renders slice specs as the parameters section of a policy
/// reconfiguration message targeting mac/dl_ue_scheduler (behavior: sliced).
std::string make_slice_policy_yaml(const std::vector<SliceSpec>& slices);

class SlicedDlVsf final : public agent::DlSchedulerVsf {
 public:
  lte::SchedulingDecision schedule_dl(agent::AgentApi& api, std::int64_t subframe) override;
  util::Status set_parameter(std::string_view key, const util::YamlNode& value) override;
  util::Status validate_parameter(std::string_view key,
                                  const util::YamlNode& value) const override;

  const std::vector<SliceSpec>& slices() const { return slices_; }

 private:
  std::vector<agent::PrbDemand> demands_for(
      agent::AgentApi& api, const std::vector<stack::SchedUeInfo>& view,
      const std::set<lte::Rnti>& members, int budget_prbs, std::size_t& rotation) const;

  std::vector<SliceSpec> slices_;
  std::vector<std::size_t> rotations_;          // per slice (fair / secondary)
  std::vector<std::size_t> premium_rotations_;  // per slice (premium group)
};

/// Master app driving the Fig. 12a experiment: pushes the sliced scheduler
/// and applies scripted share re-configurations at given times.
class RanSharingApp final : public ctrl::App {
 public:
  struct Step {
    double at_seconds = 0.0;
    std::vector<SliceSpec> slices;
  };

  RanSharingApp(ctrl::AgentId agent, std::vector<Step> steps)
      : agent_(agent), steps_(std::move(steps)) {}

  std::string_view name() const override { return "ran_sharing"; }
  int priority() const override { return 50; }

  void on_start(ctrl::NorthboundApi& api) override;
  void on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) override;

  std::size_t steps_applied() const { return next_step_; }

 private:
  ctrl::AgentId agent_;
  std::vector<Step> steps_;
  std::size_t next_step_ = 0;
};

}  // namespace flexran::apps
