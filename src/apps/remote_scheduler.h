// Centralized (remote) downlink scheduling application -- the paper's most
// demanding workload: per-TTI scheduling decisions computed at the master
// from RIB state and pushed to agents over the FlexRAN protocol
// (Secs. 5.2.1 and 5.3). Supports schedule-ahead operation: a decision for
// observed subframe x is issued targeting subframe x + n, which must cover
// the control-channel one-way latency for the decision to be applicable.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "controller/app.h"

namespace flexran::apps {

struct RemoteSchedulerConfig {
  /// n: how many subframes ahead of the agent's last reported subframe a
  /// decision targets (Fig. 9 x-axis; >= 1).
  int schedule_ahead_sf = 2;
  /// Agents under this scheduler's control; empty = all connected agents.
  std::vector<ctrl::AgentId> agents;
  /// Cap on decisions issued per agent per cycle (bounds catch-up bursts
  /// after the master stalls).
  int max_decisions_per_cycle = 4;
  /// Also schedule the uplink from reported UL buffer status. The agent's
  /// local UL VSF should then be disabled ("remote" is DL-only as a slot,
  /// so point ul_ue_scheduler at nothing by leaving it unset) or its grants
  /// will race the master's -- the data plane rejects the overlap.
  bool schedule_ul = false;
};

class RemoteSchedulerApp final : public ctrl::App {
 public:
  explicit RemoteSchedulerApp(RemoteSchedulerConfig config = {}) : config_(config) {}

  std::string_view name() const override { return "remote_scheduler"; }
  /// Time critical: runs first in every cycle.
  int priority() const override { return 1; }

  void on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) override;
  /// Demotes an agent to local scheduling on vsf_quarantined -- the same
  /// degradation path the latency fallback takes (the agent's local VSF has
  /// control, remote decisions would race it). Re-promotes once the agent
  /// reports a valid policy applied or reconnects with a fresh session.
  void on_event(const ctrl::Event& event, ctrl::NorthboundApi& api) override;

  std::uint64_t decisions_sent() const { return decisions_sent_; }
  void set_schedule_ahead(int subframes) { config_.schedule_ahead_sf = subframes; }
  int schedule_ahead() const { return config_.schedule_ahead_sf; }
  /// Agents currently demoted to local scheduling after a VSF quarantine.
  bool is_demoted(ctrl::AgentId agent) const { return demoted_.contains(agent); }
  std::uint64_t demotions() const { return demotions_; }

 private:
  /// Builds one RR decision for `target_subframe` from the agent's RIB
  /// state.
  proto::DlMacConfig build_decision(const ctrl::AgentNode& agent, std::int64_t target_subframe);
  proto::UlMacConfig build_ul_decision(const ctrl::AgentNode& agent,
                                       std::int64_t target_subframe);

  RemoteSchedulerConfig config_;
  std::map<ctrl::AgentId, std::int64_t> last_target_;
  std::map<ctrl::AgentId, std::size_t> rotation_;
  std::set<ctrl::AgentId> demoted_;
  std::uint64_t decisions_sent_ = 0;
  std::uint64_t demotions_ = 0;
};

}  // namespace flexran::apps
