#include "apps/lsa.h"

namespace flexran::apps {

bool LsaControllerApp::incumbent_active_at(double now_seconds) const {
  for (const auto& window : config_.incumbent_windows) {
    if (now_seconds >= window.start_seconds && now_seconds < window.end_seconds) return true;
  }
  return false;
}

void LsaControllerApp::apply(ctrl::NorthboundApi& api, bool active) {
  const auto rib = api.rib_snapshot();
  std::vector<ctrl::AgentId> scope = config_.agents;
  if (scope.empty()) {
    for (const auto& [id, agent] : rib->agents()) {
      (void)agent;
      scope.push_back(id);
    }
  }
  for (const auto agent_id : scope) {
    const auto* agent = rib->find_agent(agent_id);
    proto::CarrierRestriction restriction;
    restriction.cell_id =
        agent != nullptr && !agent->cells.empty() ? agent->cells.begin()->first : 0;
    restriction.max_dl_prbs =
        active ? static_cast<std::uint16_t>(config_.restricted_prbs) : 0;
    if (api.send_carrier_restriction(agent_id, restriction).ok()) ++restrictions_sent_;
  }
}

void LsaControllerApp::on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) {
  if (config_.period_cycles > 0 && cycle % config_.period_cycles != 0) return;
  const bool active = incumbent_active_at(sim::to_seconds(api.now()));
  if (applied_once_ && active == incumbent_active_) return;
  incumbent_active_ = active;
  applied_once_ = true;
  apply(api, active);
}

}  // namespace flexran::apps
