#include "apps/eicic.h"

#include <algorithm>

#include "apps/ran_sharing.h"
#include "lte/tables.h"

namespace flexran::apps {

const char* to_string(EicicMode mode) {
  switch (mode) {
    case EicicMode::uncoordinated: return "uncoordinated";
    case EicicMode::eicic: return "eicic";
    case EicicMode::optimized: return "optimized eicic";
  }
  return "?";
}

// ------------------------------------------------------------------- VSFs --

lte::SchedulingDecision EicicSmallCellDlVsf::schedule_dl(agent::AgentApi& api,
                                                         std::int64_t subframe) {
  lte::SchedulingDecision decision;
  decision.cell_id = api.cell_id();
  decision.subframe = subframe;
  // Small cells transmit only in protected (almost-blank) subframes.
  if (!api.is_abs(subframe)) return decision;

  std::vector<agent::PrbDemand> wants;
  for (const auto& info : api.scheduler_view()) {
    if (info.dl_queue_bytes == 0 && info.pending_dl_retx == 0) continue;
    const int cqi = std::max(info.cqi_protected, 1);  // macro is quiet now
    const int mcs = lte::cqi_to_mcs(cqi);
    agent::PrbDemand demand;
    demand.rnti = info.rnti;
    demand.mcs = mcs;
    demand.prbs_wanted =
        info.pending_dl_retx > 0 ? api.dl_prbs() : agent::prbs_needed(info.dl_bits_needed, mcs);
    wants.push_back(demand);
  }
  if (wants.empty()) return decision;
  std::rotate(wants.begin(), wants.begin() + static_cast<std::ptrdiff_t>(rotation_ % wants.size()),
              wants.end());
  ++rotation_;
  decision.dl = agent::pack_dl_allocations(
      agent::equal_share_demands(std::move(wants), api.dl_prbs()), api.dl_prbs());
  return decision;
}

lte::SchedulingDecision EicicMacroDlVsf::schedule_dl(agent::AgentApi& api,
                                                     std::int64_t subframe) {
  lte::SchedulingDecision decision;
  decision.cell_id = api.cell_id();
  decision.subframe = subframe;
  // Locally honor the ABS pattern even without a data-plane mute: under
  // optimized eICIC those subframes belong to the central coordinator.
  if (api.is_abs(subframe) || api.muted_in(subframe)) return decision;

  std::vector<agent::PrbDemand> wants;
  for (const auto& info : api.scheduler_view()) {
    if (info.dl_queue_bytes == 0 && info.pending_dl_retx == 0) continue;
    const int mcs = lte::cqi_to_mcs(std::max(info.cqi, 1));
    agent::PrbDemand demand;
    demand.rnti = info.rnti;
    demand.mcs = mcs;
    demand.prbs_wanted =
        info.pending_dl_retx > 0 ? api.dl_prbs() : agent::prbs_needed(info.dl_bits_needed, mcs);
    wants.push_back(demand);
  }
  if (wants.empty()) return decision;
  std::rotate(wants.begin(), wants.begin() + static_cast<std::ptrdiff_t>(rotation_ % wants.size()),
              wants.end());
  ++rotation_;
  decision.dl = agent::pack_dl_allocations(
      agent::equal_share_demands(std::move(wants), api.dl_prbs()), api.dl_prbs());
  return decision;
}

void register_usecase_vsfs() {
  static const bool registered = [] {
    agent::register_builtin_vsfs();
    auto& factory = agent::VsfFactory::instance();
    factory.register_implementation("mac", "dl_ue_scheduler", "eicic_small",
                                    [] { return std::make_unique<EicicSmallCellDlVsf>(); });
    factory.register_implementation("mac", "dl_ue_scheduler", "eicic_macro",
                                    [] { return std::make_unique<EicicMacroDlVsf>(); });
    factory.register_implementation("mac", "dl_ue_scheduler", "sliced",
                                    [] { return std::make_unique<SlicedDlVsf>(); });
    return true;
  }();
  (void)registered;
}

// ------------------------------------------------------------ coordinator --

void EicicCoordinatorApp::on_start(ctrl::NorthboundApi& api) {
  if (config_.mode == EicicMode::uncoordinated) return;  // nothing to configure

  // ABS pattern: the macro mutes only in static-eICIC mode; under optimized
  // eICIC the coordinator may hand ABSs back to the macro, so the data-plane
  // mute is off and the discipline lives in the eicic_macro VSF.
  proto::AbsConfig macro_abs;
  macro_abs.pattern = config_.pattern;
  macro_abs.mute_during_abs = config_.mode == EicicMode::eicic;
  (void)api.send_abs_config(config_.macro, macro_abs);

  proto::AbsConfig small_abs;
  small_abs.pattern = config_.pattern;
  small_abs.mute_during_abs = false;  // pattern marks protected subframes
  for (const auto small : config_.small_cells) {
    (void)api.send_abs_config(small, small_abs);
  }

  // Control delegation: push and activate the use-case VSFs.
  if (config_.mode == EicicMode::optimized) {
    (void)api.push_vsf(config_.macro, "mac", "dl_ue_scheduler", "eicic_macro");
    (void)api.send_policy(config_.macro,
                          "mac:\n  dl_ue_scheduler:\n    behavior: eicic_macro\n");
    for (const auto small : config_.small_cells) {
      // ABS scheduling is centralized; the local scheduler acts as a stub.
      (void)api.send_policy(small, "mac:\n  dl_ue_scheduler:\n    behavior: remote\n");
    }
  } else {
    for (const auto small : config_.small_cells) {
      (void)api.push_vsf(small, "mac", "dl_ue_scheduler", "eicic_small");
      (void)api.send_policy(small, "mac:\n  dl_ue_scheduler:\n    behavior: eicic_small\n");
    }
  }
}

std::uint64_t EicicCoordinatorApp::estimated_backlog(const ctrl::RibSnapshot& rib,
                                                     ctrl::AgentId small) {
  const auto* agent = rib.find_agent(small);
  if (agent == nullptr) return 0;
  std::uint64_t reported = 0;
  bool pending_retx = false;
  for (const auto& [cell_id, cell] : agent->cells) {
    (void)cell_id;
    for (const auto& [rnti, ue] : cell.ues) {
      (void)rnti;
      reported += std::max<std::uint64_t>(ue.stats.rlc_queue_bytes, ue.stats.total_bsr());
      pending_retx |= ue.stats.pending_harq > 0;
    }
  }
  // Retire grants the latest report already reflects; subtract the rest.
  auto& grants = recent_grants_[small];
  while (!grants.empty() && grants.front().first <= agent->last_subframe) grants.pop_front();
  std::uint64_t outstanding = 0;
  for (const auto& [sf, bytes] : grants) {
    (void)sf;
    outstanding += bytes;
  }
  if (pending_retx) return std::max<std::uint64_t>(reported, 1);
  return reported > outstanding ? reported - outstanding : 0;
}

proto::DlMacConfig EicicCoordinatorApp::build_rr_decision(const ctrl::AgentNode& agent,
                                                          std::int64_t target,
                                                          bool use_protected_cqi,
                                                          std::uint64_t backlog_cap) {
  proto::DlMacConfig decision;
  decision.target_subframe = target;
  int prbs = 50;
  if (!agent.cells.empty()) {
    decision.cell_id = agent.cells.begin()->first;
    prbs = agent.cells.begin()->second.config.dl_prbs();
  }
  std::vector<agent::PrbDemand> wants;
  std::uint64_t cap_left = backlog_cap;
  for (const auto& [cell_id, cell] : agent.cells) {
    (void)cell_id;
    for (const auto& [rnti, ue] : cell.ues) {
      const bool has_data = ue.stats.rlc_queue_bytes > 0 || ue.stats.total_bsr() > 0;
      if (!has_data && ue.stats.pending_harq == 0) continue;
      const int cqi =
          std::max<int>(use_protected_cqi ? ue.stats.wb_cqi_protected : ue.stats.wb_cqi, 1);
      const int mcs = lte::cqi_to_mcs(cqi);
      agent::PrbDemand demand;
      demand.rnti = rnti;
      demand.mcs = mcs;
      const auto queue_bytes = std::min<std::uint64_t>(
          std::max(ue.stats.rlc_queue_bytes, ue.stats.total_bsr()), cap_left);
      cap_left -= queue_bytes;
      const auto bits = static_cast<std::int64_t>(static_cast<double>(queue_bytes) * 8.8);
      demand.prbs_wanted = ue.stats.pending_harq > 0 ? prbs : agent::prbs_needed(bits, mcs);
      if (demand.prbs_wanted > 0) wants.push_back(demand);
    }
  }
  if (wants.empty()) return decision;
  auto& rot = rotation_[agent.id];
  std::rotate(wants.begin(), wants.begin() + static_cast<std::ptrdiff_t>(rot % wants.size()),
              wants.end());
  ++rot;
  decision.dcis =
      agent::pack_dl_allocations(agent::equal_share_demands(std::move(wants), prbs), prbs);
  return decision;
}

void EicicCoordinatorApp::on_cycle(std::int64_t /*cycle*/, ctrl::NorthboundApi& api) {
  if (config_.mode != EicicMode::optimized) return;  // static modes need no cycle work

  const auto rib = api.rib_snapshot();
  const auto* macro = rib->find_agent(config_.macro);
  if (macro == nullptr || macro->last_subframe == 0) return;

  const std::int64_t target = macro->last_subframe + config_.schedule_ahead_sf;
  std::int64_t& last = last_target_[config_.macro];
  if (last == 0) last = target - 1;
  if (last < macro->last_subframe) last = macro->last_subframe;

  for (int issued = 0; last < target && issued < 4; ++issued) {
    ++last;
    if (!config_.pattern.is_abs(last)) continue;  // macro's own VSF handles non-ABS

    // Coordinated ABS scheduling: small cells first.
    bool any_small_scheduled = false;
    for (const auto small : config_.small_cells) {
      const std::uint64_t backlog = estimated_backlog(*rib, small);
      if (backlog == 0) continue;
      const auto* agent = rib->find_agent(small);
      if (agent == nullptr) continue;
      auto decision = build_rr_decision(*agent, last, /*use_protected_cqi=*/true, backlog);
      if (decision.dcis.empty()) continue;
      if (api.send_dl_mac_config(small, decision).ok()) {
        any_small_scheduled = true;
        ++abs_to_small_;
        // Remember what this decision will drain so the next estimate does
        // not double-count the reported queue.
        std::uint64_t granted_bytes = 0;
        for (const auto& dci : decision.dcis) {
          granted_bytes += static_cast<std::uint64_t>(dci.tbs() / 9);  // bits -> app bytes
        }
        recent_grants_[small].emplace_back(last, std::min(granted_bytes, backlog));
      }
    }
    // Idle ABS: hand it to the macro (the "optimized" in optimized eICIC).
    if (!any_small_scheduled) {
      auto decision = build_rr_decision(*macro, last, /*use_protected_cqi=*/false,
                                        UINT64_MAX);
      if (!decision.dcis.empty() && api.send_dl_mac_config(config_.macro, decision).ok()) {
        ++abs_to_macro_;
      }
    }
  }
}

}  // namespace flexran::apps
