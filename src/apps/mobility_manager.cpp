#include "apps/mobility_manager.h"

namespace flexran::apps {

std::map<lte::CellId, MobilityManagerApp::CellRef> MobilityManagerApp::index_cells(
    const ctrl::RibSnapshot& rib) const {
  std::map<lte::CellId, CellRef> index;
  for (const auto& [agent_id, agent_node] : rib.agents()) {
    const auto& agent = *agent_node;
    for (const auto& [cell_id, cell] : agent.cells) {
      CellRef ref;
      ref.agent = agent_id;
      ref.cell = cell_id;
      ref.connected_ues = cell.stats.active_ues;
      index[cell_id] = ref;
    }
  }
  return index;
}

void MobilityManagerApp::on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) {
  if (config_.period_cycles > 0 && cycle % config_.period_cycles != 0) return;
  const auto rib = api.rib_snapshot();
  // Readiness gate: while the master (or, on a composite view, any shard)
  // is still re-syncing after a restart, measurement state is partial and a
  // handover decided on it could bounce a UE to a cell we cannot see yet.
  if (rib->recovering()) return;
  const auto cells = index_cells(*rib);

  for (const auto& [agent_id, agent_node] : rib->agents()) {
    const auto& agent = *agent_node;
    if (agent.is_stale()) continue;
    for (const auto& [serving_cell_id, cell] : agent.cells) {
      for (const auto& [rnti, ue] : cell.ues) {
        if (ue.stats.rsrp.empty()) continue;

        double serving_rsrp = -1e9;
        for (const auto& measurement : ue.stats.rsrp) {
          if (measurement.cell_id == serving_cell_id) serving_rsrp = measurement.rsrp_dbm;
        }
        if (serving_rsrp <= -1e8) continue;  // no serving measurement yet

        // Best neighbor after hysteresis and load penalty.
        lte::CellId best_cell = 0;
        double best_score = -1e9;  // RSRP is negative dBm
        for (const auto& measurement : ue.stats.rsrp) {
          if (measurement.cell_id == serving_cell_id) continue;
          auto target_it = cells.find(measurement.cell_id);
          if (target_it == cells.end()) continue;  // unmanaged cell
          const double load_delta =
              static_cast<double>(target_it->second.connected_ues) -
              static_cast<double>(cell.stats.active_ues);
          const double required = serving_rsrp + config_.hysteresis_db +
                                  std::max(0.0, load_delta) * config_.load_penalty_db_per_ue;
          if (measurement.rsrp_dbm > required && measurement.rsrp_dbm > best_score) {
            best_score = measurement.rsrp_dbm;
            best_cell = measurement.cell_id;
          }
        }

        const auto key = std::pair{agent_id, rnti};
        if (best_cell == 0) {
          streaks_.erase(key);
          continue;
        }
        if (++streaks_[key] < config_.evaluations_to_trigger) continue;
        streaks_.erase(key);

        proto::HandoverCommand command;
        command.rnti = rnti;
        command.source_cell = serving_cell_id;
        command.target_cell = best_cell;
        if (api.send_handover(agent_id, command).ok()) ++handovers_commanded_;
      }
    }
  }
}

}  // namespace flexran::apps
