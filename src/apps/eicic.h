// Optimized eICIC interference management (paper Sec. 6.1). Three pieces:
//
//  * EicicSmallCellDlVsf -- agent-side DL scheduler for small cells:
//    schedules only during almost-blank subframes (when the macro is quiet)
//    using the protected-measurement CQI; inactive otherwise, exactly as in
//    standard eICIC.
//  * EicicMacroDlVsf -- agent-side DL scheduler for the macro: a round-robin
//    scheduler that locally skips ABSs. Under *optimized* eICIC the ABS
//    subframes are owned by the master's coordinator, which pushes macro
//    decisions for ABSs the small cells leave idle; the data-plane mute is
//    therefore disabled and ABS discipline moves into this VSF.
//  * EicicCoordinatorApp -- master application: configures the ABS pattern,
//    installs the VSFs by policy, and (optimized mode) performs the
//    centralized per-ABS scheduling with small-cell priority.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "agent/schedulers.h"
#include "controller/app.h"
#include "lte/abs.h"

namespace flexran::apps {

class EicicSmallCellDlVsf final : public agent::DlSchedulerVsf {
 public:
  lte::SchedulingDecision schedule_dl(agent::AgentApi& api, std::int64_t subframe) override;

 private:
  std::size_t rotation_ = 0;
};

class EicicMacroDlVsf final : public agent::DlSchedulerVsf {
 public:
  lte::SchedulingDecision schedule_dl(agent::AgentApi& api, std::int64_t subframe) override;

 private:
  std::size_t rotation_ = 0;
};

/// Registers eicic_small / eicic_macro / sliced with the VsfFactory
/// (idempotent); call before using the use-case policies.
void register_usecase_vsfs();

enum class EicicMode {
  uncoordinated,  // no ABS; every cell schedules independently
  eicic,          // static ABS: macro muted, small cells own ABSs
  optimized,      // + master re-assigns idle ABSs to the macro
};

const char* to_string(EicicMode mode);

struct EicicConfig {
  ctrl::AgentId macro = 0;
  std::vector<ctrl::AgentId> small_cells;
  lte::AbsPattern pattern = lte::AbsPattern::per_frame(4);
  EicicMode mode = EicicMode::optimized;
  /// Schedule-ahead for the centrally scheduled ABSs.
  int schedule_ahead_sf = 2;
};

class EicicCoordinatorApp final : public ctrl::App {
 public:
  explicit EicicCoordinatorApp(EicicConfig config) : config_(std::move(config)) {}

  std::string_view name() const override { return "eicic_coordinator"; }
  int priority() const override { return 2; }  // time critical

  void on_start(ctrl::NorthboundApi& api) override;
  void on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) override;

  std::uint64_t abs_given_to_macro() const { return abs_to_macro_; }
  std::uint64_t abs_given_to_small() const { return abs_to_small_; }

 private:
  /// Backlog estimate for a small cell: RIB-reported queue bytes minus the
  /// bytes this app already granted in decisions the report cannot reflect
  /// yet (in flight past the report's subframe). Without this correction
  /// the stale RIB view would waste almost every reclaimable ABS.
  std::uint64_t estimated_backlog(const ctrl::RibSnapshot& rib, ctrl::AgentId small);
  proto::DlMacConfig build_rr_decision(const ctrl::AgentNode& agent, std::int64_t target,
                                       bool use_protected_cqi, std::uint64_t backlog_cap);

  EicicConfig config_;
  std::map<ctrl::AgentId, std::int64_t> last_target_;
  std::map<ctrl::AgentId, std::size_t> rotation_;
  /// Per small cell: (target subframe, bytes granted) decisions in flight.
  std::map<ctrl::AgentId, std::deque<std::pair<std::int64_t, std::uint64_t>>> recent_grants_;
  std::uint64_t abs_to_macro_ = 0;
  std::uint64_t abs_to_small_ = 0;
};

}  // namespace flexran::apps
