// Mobility management application (paper Sec. 7.1): "the centralized
// network view offered by FlexRAN could enable more sophisticated mobility
// management mechanisms that consider additional factors, e.g. the load of
// cells". This app makes handover decisions at the master from the RRC
// measurement reports (per-cell RSRP) in the RIB, biased by target-cell
// load, and issues handover commands over the southbound API. The
// agent-side alternative is the A3HandoverVsf running locally.
#pragma once

#include <map>

#include "controller/app.h"

namespace flexran::apps {

struct MobilityManagerConfig {
  /// A3-style margin: neighbor must beat serving RSRP by this much.
  double hysteresis_db = 3.0;
  /// Consecutive evaluations the condition must hold (time-to-trigger).
  int evaluations_to_trigger = 3;
  /// Evaluation period in task-manager cycles.
  std::int64_t period_cycles = 20;
  /// Load awareness: extra dB of margin required per connected UE the
  /// target cell has *more* than the serving cell. 0 = signal-only.
  double load_penalty_db_per_ue = 0.5;
};

class MobilityManagerApp final : public ctrl::App {
 public:
  explicit MobilityManagerApp(MobilityManagerConfig config = {}) : config_(config) {}

  std::string_view name() const override { return "mobility_manager"; }
  int priority() const override { return 20; }

  void on_cycle(std::int64_t cycle, ctrl::NorthboundApi& api) override;

  std::uint64_t handovers_commanded() const { return handovers_commanded_; }

 private:
  struct CellRef {
    ctrl::AgentId agent = 0;
    lte::CellId cell = 0;
    std::uint32_t connected_ues = 0;
  };
  /// Cell -> owning agent and load, rebuilt per evaluation.
  std::map<lte::CellId, CellRef> index_cells(const ctrl::RibSnapshot& rib) const;

  MobilityManagerConfig config_;
  /// Time-to-trigger streaks, keyed (agent, rnti).
  std::map<std::pair<ctrl::AgentId, lte::Rnti>, int> streaks_;
  std::uint64_t handovers_commanded_ = 0;
};

}  // namespace flexran::apps
