// Beyond LTE (paper Sec. 7.2): the same FlexRAN control machinery -- VSF
// factory, agent-side cache, CMI type checking, YAML policy
// reconfiguration -- driving a WiFi access point. The airtime scheduler is
// swapped and re-weighted at runtime with the exact policy format used for
// LTE MAC scheduling (Fig. 3).
//
//   ./examples/wifi_policy
#include <array>
#include <cstdio>

#include "wifi/control.h"

using namespace flexran;

int main() {
  wifi::register_wifi_vsfs();
  sim::Simulator simulator;
  wifi::WifiApDataPlane ap(simulator);
  const auto laptop = ap.add_station({240.0});
  const auto phone = ap.add_station({120.0});
  const auto iot = ap.add_station({24.0});

  // Same cache + control-module machinery as the LTE agent.
  agent::VsfCache cache;
  (void)cache.store(wifi::WifiControlModule::kName, wifi::WifiControlModule::kAirtimeSlot,
                    "fair");
  (void)cache.store(wifi::WifiControlModule::kName, wifi::WifiControlModule::kAirtimeSlot,
                    "weighted");
  wifi::WifiControlModule wifi_mac(cache);
  const std::array<agent::ControlModule*, 1> modules = {&wifi_mac};

  ap.set_scheduler([&](std::int64_t slot) -> wifi::AirtimeAllocation {
    auto* scheduler = wifi_mac.airtime_scheduler();
    return scheduler != nullptr ? scheduler->schedule(ap.station_view(), slot)
                                : wifi::AirtimeAllocation{};
  });

  auto run_phase = [&](const char* label, int slots) {
    std::array<std::uint64_t, 3> before = {ap.delivered_bytes(laptop), ap.delivered_bytes(phone),
                                           ap.delivered_bytes(iot)};
    for (int s = 0; s < slots; ++s) {
      for (auto station : {laptop, phone, iot}) ap.enqueue_dl(station, 50'000);
      ap.slot(s);
    }
    const double seconds = slots / 1000.0;
    std::printf("%-28s laptop %6.1f  phone %6.1f  iot %6.1f   (Mb/s)\n", label,
                (ap.delivered_bytes(laptop) - before[0]) * 8.0 / seconds / 1e6,
                (ap.delivered_bytes(phone) - before[1]) * 8.0 / seconds / 1e6,
                (ap.delivered_bytes(iot) - before[2]) * 8.0 / seconds / 1e6);
  };

  std::printf("WiFi AP, 3 saturated stations (PHY 240/120/24 Mb/s)\n\n");

  (void)agent::apply_policy_yaml("wifi_mac:\n  airtime_scheduler:\n    behavior: fair\n",
                                 modules);
  run_phase("policy: fair airtime", 2000);

  const char* weighted_policy =
      "wifi_mac:\n"
      "  airtime_scheduler:\n"
      "    behavior: weighted\n"
      "    parameters:\n"
      "      weights:\n"
      "        - station: 1\n"
      "          weight: 1\n"
      "        - station: 2\n"
      "          weight: 4\n"
      "        - station: 3\n"
      "          weight: 1\n";
  (void)agent::apply_policy_yaml(weighted_policy, modules);
  run_phase("policy: phone weighted 4x", 2000);

  std::printf(
      "\nThe swap used the identical Fig. 3 policy format and VSF cache the LTE\n"
      "agent uses -- no LTE types involved (paper Sec. 7.2).\n");
  return 0;
}
