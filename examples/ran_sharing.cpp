// RAN sharing example (paper Sec. 6.3): one physical eNodeB shared by an
// MNO and an MVNO through the sliced downlink scheduler VSF. The master's
// RanSharingApp re-balances the operators' resource shares at runtime with
// policy reconfiguration messages; per-operator throughput follows.
//
//   ./examples/ran_sharing
#include <cstdio>

#include "apps/eicic.h"  // register_usecase_vsfs
#include "apps/ran_sharing.h"
#include "scenario/testbed.h"

using namespace flexran;

int main() {
  apps::register_usecase_vsfs();
  scenario::Testbed testbed(scenario::per_tti_master_config());

  scenario::EnbSpec spec;
  spec.enb.enb_id = 1;
  spec.enb.cells[0].cell_id = 1;
  spec.agent.name = "shared-enb";
  auto& enb = testbed.add_enb(spec);

  // 3 UEs per operator, identical radio conditions so shares are visible.
  std::vector<lte::Rnti> mno;
  std::vector<lte::Rnti> mvno;
  for (int i = 0; i < 3; ++i) {
    stack::UeProfile profile;
    profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(15);
    mno.push_back(testbed.add_ue(0, std::move(profile)));
  }
  for (int i = 0; i < 3; ++i) {
    stack::UeProfile profile;
    profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(15);
    mvno.push_back(testbed.add_ue(0, std::move(profile)));
  }

  // Scripted share changes: 70/30 -> 40/60 at t=4s -> 80/20 at t=8s.
  auto slices = [&](double mno_share) {
    std::vector<apps::SliceSpec> out(2);
    out[0].share = mno_share;
    out[0].rntis = mno;
    out[1].share = 1.0 - mno_share;
    out[1].rntis = mvno;
    return out;
  };
  std::vector<apps::RanSharingApp::Step> steps = {
      {0.0, slices(0.7)}, {4.0, slices(0.4)}, {8.0, slices(0.8)}};
  testbed.master().add_app(std::make_unique<apps::RanSharingApp>(enb.agent_id, steps));

  // Saturate everyone.
  testbed.on_tti([&](std::int64_t) {
    for (const auto rnti : enb.data_plane->ue_rntis()) {
      const auto* ue = enb.data_plane->ue(rnti);
      if (ue != nullptr && ue->dl_queue.total_bytes() < 60'000) {
        (void)testbed.epc().downlink(rnti, 60'000);
      }
    }
  });

  std::printf("%6s %12s %12s %8s\n", "t(s)", "MNO(Mb/s)", "MVNO(Mb/s)", "split");
  std::uint64_t mno_prev = 0;
  std::uint64_t mvno_prev = 0;
  for (int window = 1; window <= 12; ++window) {
    testbed.run_seconds(1.0);
    std::uint64_t mno_total = 0;
    std::uint64_t mvno_total = 0;
    for (auto rnti : mno) mno_total += testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
    for (auto rnti : mvno) mvno_total += testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
    const double mno_mbps = scenario::Metrics::mbps(mno_total - mno_prev, 1.0);
    const double mvno_mbps = scenario::Metrics::mbps(mvno_total - mvno_prev, 1.0);
    const double split = mno_mbps + mvno_mbps > 0 ? mno_mbps / (mno_mbps + mvno_mbps) : 0.0;
    std::printf("%6d %12.2f %12.2f %7.0f%%\n", window, mno_mbps, mvno_mbps, split * 100.0);
    mno_prev = mno_total;
    mvno_prev = mvno_total;
  }
  return 0;
}
