// Control delegation example (paper Secs. 4.3.1, 5.4): the master pushes a
// custom VSF to the agent (VSF updation), then swaps the agent's scheduler
// between the local implementation and remote (centralized) control at
// runtime with policy reconfiguration -- while a UE streams data, showing
// uninterrupted service across swaps.
//
//   ./examples/delegation
#include <cstdio>

#include "apps/remote_scheduler.h"
#include "scenario/testbed.h"

using namespace flexran;

int main() {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  scenario::EnbSpec spec;
  spec.enb.enb_id = 1;
  spec.enb.cells[0].cell_id = 1;
  spec.agent.name = "delegation-demo";
  auto& enb = testbed.add_enb(spec);

  // A remote scheduler app runs continuously at the master; its decisions
  // only take effect while the agent's active behavior is "remote".
  apps::RemoteSchedulerConfig remote_config;
  remote_config.schedule_ahead_sf = 2;
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>(remote_config));

  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(15);
  const auto rnti = testbed.add_ue(0, std::move(profile));
  testbed.on_tti([&](std::int64_t) {
    const auto* ue = enb.data_plane->ue(rnti);
    if (ue != nullptr && ue->dl_queue.total_bytes() < 60'000) {
      (void)testbed.epc().downlink(rnti, 60'000);
    }
  });
  testbed.run_seconds(0.2);

  // VSF updation: push the proportional-fair implementation to the agent's
  // cache (a stand-in for shipping a compiled VSF, see DESIGN.md).
  if (auto s = testbed.master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "local_pf");
      !s.ok()) {
    std::printf("push failed: %s\n", s.error().message.c_str());
    return 1;
  }
  std::printf("pushed mac/dl_ue_scheduler/local_pf into the agent cache (%zu entries)\n\n",
              enb.agent->vsf_cache().size());

  std::printf("%-10s %-12s %10s %16s\n", "phase", "behavior", "Mb/s", "remote decisions");
  std::uint64_t prev_bytes = 0;
  std::uint64_t prev_remote = 0;
  auto phase = [&](const char* behavior) {
    // Task Manager app control (paper Sec. 4.3.3): the centralized
    // scheduler runs only while the agent is in remote mode.
    if (std::string_view(behavior) == "remote") {
      (void)testbed.master().resume_app("remote_scheduler");
    } else {
      (void)testbed.master().pause_app("remote_scheduler");
    }
    const std::string policy =
        std::string("mac:\n  dl_ue_scheduler:\n    behavior: ") + behavior + "\n";
    (void)testbed.master().send_policy(enb.agent_id, policy);
    testbed.run_seconds(2.0);
    const auto bytes = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
    const auto remote = enb.agent->remote_decisions_applied();
    std::printf("%-10s %-12s %10.2f %16lu\n", "2s", behavior,
                scenario::Metrics::mbps(bytes - prev_bytes, 2.0),
                static_cast<unsigned long>(remote - prev_remote));
    prev_bytes = bytes;
    prev_remote = remote;
  };

  phase("local_rr");
  phase("remote");    // centralized scheduling takes over
  phase("local_pf");  // the pushed VSF
  phase("remote");
  phase("local_rr");

  std::printf("\nThroughput is continuous across every swap -- the behavior switch is a\n"
              "pointer relink against the VSF cache (see bench_delegation for timing).\n");
  return 0;
}
