// Mobile edge computing example (paper Sec. 6.2): DASH video streaming over
// the LTE stack, with and without FlexRAN assistance. The MEC application
// reads the UE's smoothed CQI from the RIB, maps it through the Table-2
// CQI -> sustainable-bitrate table, and caps the client's bitrate through an
// out-of-band channel. The unassisted reference player must discover the
// channel the hard way.
//
//   ./examples/mec_dash
#include <cstdio>

#include "apps/mec_dash.h"
#include "scenario/dash_session.h"
#include "scenario/testbed.h"

using namespace flexran;

namespace {

struct RunResult {
  double mean_bitrate = 0.0;
  int freezes = 0;
  double freeze_seconds = 0.0;
};

RunResult run(traffic::AbrMode mode) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  scenario::EnbSpec spec;
  spec.enb.enb_id = 1;
  spec.enb.cells[0].cell_id = 1;
  auto& enb = testbed.add_enb(spec);

  // Channel quality swings between CQI 10 and CQI 4 every 20 s (the
  // high-variability case of Fig. 11b).
  stack::UeProfile profile;
  profile.dl_channel =
      phy::ScheduledCqiChannel::square_wave(10, 4, sim::from_seconds(20), sim::from_seconds(120));
  const auto rnti = testbed.add_ue(0, std::move(profile));
  testbed.run_ttis(50);

  traffic::DashClientConfig config;
  config.mode = mode;
  config.buffer_probing = mode == traffic::AbrMode::reference;
  config.step_up_buffer_s = 10.0;
  scenario::DashSession session(testbed, 0, rnti, traffic::paper_video_4k(), config);

  if (mode == traffic::AbrMode::assisted) {
    apps::MecDashApp::Config mec;
    mec.agent = enb.agent_id;
    auto* client = &session.client();
    testbed.master().add_app(std::make_unique<apps::MecDashApp>(
        mec, [client](lte::Rnti, double mbps) { client->set_bitrate_cap_mbps(mbps); }));
  }
  session.start();
  testbed.run_seconds(110.0);

  RunResult result;
  result.mean_bitrate = session.client().bitrate_series().mean_in(10, 110);
  result.freezes = session.client().freeze_count();
  result.freeze_seconds = session.client().total_freeze_seconds();
  return result;
}

}  // namespace

int main() {
  std::printf("DASH over FlexRAN, CQI toggling 10 <-> 4, 4K ladder {2.9..19.6} Mb/s\n\n");
  const auto reference = run(traffic::AbrMode::reference);
  const auto assisted = run(traffic::AbrMode::assisted);

  std::printf("%-22s %14s %9s %12s\n", "player", "mean bitrate", "freezes", "freeze time");
  std::printf("%-22s %11.2f Mb/s %9d %9.1f s\n", "default (reference)", reference.mean_bitrate,
              reference.freezes, reference.freeze_seconds);
  std::printf("%-22s %11.2f Mb/s %9d %9.1f s\n", "FlexRAN-assisted", assisted.mean_bitrate,
              assisted.freezes, assisted.freeze_seconds);
  std::printf("\nThe assisted player avoids the overshoot-congestion-freeze cycle by\n"
              "selecting the RIB-derived sustainable bitrate directly.\n");
  return 0;
}
