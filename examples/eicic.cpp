// Interference management example (paper Sec. 6.1): a HetNet with one
// macro and one small cell, run under the three coordination modes. Shows
// how the optimized eICIC application reclaims almost-blank subframes the
// small cell leaves idle.
//
//   ./examples/eicic
#include <cstdio>

#include "scenario/eicic_scenario.h"

using namespace flexran;

int main() {
  std::printf("HetNet: 1 macro (3 saturated UEs) + 1 small cell (1 UE @ 2 Mb/s offered)\n");
  std::printf("ABS pattern: 4 almost-blank subframes per 10-subframe frame\n\n");
  std::printf("%-18s %12s %12s %12s\n", "mode", "network", "macro", "small cell");

  for (const auto mode : {apps::EicicMode::uncoordinated, apps::EicicMode::eicic,
                          apps::EicicMode::optimized}) {
    scenario::EicicScenarioConfig config;
    config.mode = mode;
    config.warmup_s = 1.0;
    config.measure_s = 5.0;
    const auto result = scenario::run_eicic_scenario(config);
    std::printf("%-18s %9.2f Mb/s %9.2f Mb/s %9.2f Mb/s\n", to_string(mode),
                result.network_mbps, result.macro_mbps, result.small_mbps);
  }
  std::printf(
      "\nOptimized eICIC gives ABSs the small cell does not need back to the\n"
      "macro, raising network throughput without hurting the small cell.\n");
  return 0;
}
