// Quickstart: bring up a FlexRAN master controller and one agent-enabled
// eNodeB, attach two UEs, run saturating downlink traffic, and exercise the
// northbound API: monitoring through the RIB, then a policy
// reconfiguration that swaps the agent's downlink scheduler from round
// robin to proportional fair at runtime.
//
//   ./examples/quickstart
#include <cstdio>

#include "apps/monitoring.h"
#include "scenario/testbed.h"

using namespace flexran;

int main() {
  // A master configured for per-TTI statistics reporting and sync -- the
  // paper's fully synchronized mode.
  scenario::Testbed testbed(scenario::per_tti_master_config());

  // One agent-enabled eNodeB: 10 MHz FDD, transmission mode 1 (the paper's
  // setup), local round-robin downlink scheduler.
  scenario::EnbSpec spec;
  spec.enb.enb_id = 1;
  spec.enb.cells[0].cell_id = 1;
  spec.agent.name = "enb-quickstart";
  auto& enb = testbed.add_enb(spec);

  // Two UEs with different channel quality.
  auto make_ue = [](int cqi) {
    stack::UeProfile profile;
    profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
    return profile;
  };
  const auto ue_good = testbed.add_ue(0, make_ue(15));
  const auto ue_edge = testbed.add_ue(0, make_ue(7));

  // A monitoring application on the controller.
  auto* monitoring = static_cast<apps::MonitoringApp*>(
      testbed.master().add_app(std::make_unique<apps::MonitoringApp>(100)));

  // Saturating downlink traffic through the EPC stub.
  testbed.on_tti([&](std::int64_t) {
    for (auto rnti : {ue_good, ue_edge}) {
      const auto* ue = enb.data_plane->ue(rnti);
      if (ue != nullptr && ue->dl_queue.total_bytes() < 60'000) {
        (void)testbed.epc().downlink(rnti, 60'000);
      }
    }
  });

  std::printf("== phase 1: local round-robin scheduler ==\n");
  testbed.run_seconds(3.0);

  auto report = [&](const char* label, double seconds_in_phase, std::uint64_t base_good,
                    std::uint64_t base_edge) {
    const auto good = testbed.metrics().total_bytes(1, ue_good, lte::Direction::downlink);
    const auto edge = testbed.metrics().total_bytes(1, ue_edge, lte::Direction::downlink);
    std::printf("%s\n", label);
    std::printf("  UE %u (CQI 15): %6.2f Mb/s\n", ue_good,
                scenario::Metrics::mbps(good - base_good, seconds_in_phase));
    std::printf("  UE %u (CQI  7): %6.2f Mb/s\n", ue_edge,
                scenario::Metrics::mbps(edge - base_edge, seconds_in_phase));
    return std::pair(good, edge);
  };
  auto [good1, edge1] = report("throughput under round robin:", 3.0, 0, 0);

  // Northbound monitoring via the RIB.
  const auto& summary = monitoring->summaries().at(enb.agent_id);
  std::printf("monitoring app: %zu UEs, mean CQI %.1f\n", summary.ue_count, summary.mean_cqi);

  // Policy reconfiguration (paper Fig. 3): swap to proportional fair.
  std::printf("\n== phase 2: policy reconfiguration -> proportional fair ==\n");
  const char* policy =
      "mac:\n"
      "  dl_ue_scheduler:\n"
      "    behavior: local_pf\n"
      "    parameters:\n"
      "      max_ues_per_tti: 2\n";
  if (auto status = testbed.master().send_policy(enb.agent_id, policy); !status.ok()) {
    std::printf("policy send failed: %s\n", status.error().message.c_str());
    return 1;
  }
  testbed.run_seconds(3.0);
  report("throughput under proportional fair:", 3.0, good1, edge1);
  std::printf("active DL scheduler at agent: %s\n",
              enb.agent->mac().active_implementation("dl_ue_scheduler").c_str());

  // Signaling cost of the fully synchronized mode (Fig. 7 flavor).
  const auto& tx = enb.agent->tx_accounting();
  std::printf("\nagent->master signaling over %.0f s: stats %.2f Mb/s, sync %.3f Mb/s\n",
              sim::to_seconds(testbed.sim().now()),
              static_cast<double>(tx.bytes(proto::MessageCategory::stats)) * 8.0 /
                  sim::to_seconds(testbed.sim().now()) / 1e6,
              static_cast<double>(tx.bytes(proto::MessageCategory::sync)) * 8.0 /
                  sim::to_seconds(testbed.sim().now()) / 1e6);
  return 0;
}
