// FlexRAN protocol over real TCP sockets: a miniature master/agent exchange
// on localhost demonstrating the wire protocol the platform uses -- framed,
// protobuf-style-encoded envelopes. Prints each message with its type,
// size, and Fig. 7 accounting category.
//
//   ./examples/protocol_tcp
#include <cstdio>
#include <thread>

#include "net/tcp_transport.h"
#include "proto/messages.h"

using namespace flexran;

namespace {

void print_message(const char* who, const proto::Envelope& envelope, std::size_t wire_bytes) {
  std::printf("%-8s %-22s xid=%-4u %4zu bytes on the wire  [%s]\n", who,
              proto::to_string(envelope.type), envelope.xid, wire_bytes,
              proto::to_string(proto::categorize(envelope.type, envelope.body)));
}

}  // namespace

int main() {
  auto listener = net::TcpListener::listen(0);
  if (!listener.ok()) {
    std::printf("listen failed: %s\n", listener.error().message.c_str());
    return 1;
  }
  const auto port = (*listener)->port();
  std::printf("master listening on 127.0.0.1:%u\n\n", port);

  // "Master" side: accept the agent, answer its hello with a config request
  // and a stats subscription.
  std::unique_ptr<net::TcpTransport> master_side;
  std::thread master([&] {
    auto accepted = (*listener)->accept();
    if (!accepted.ok()) return;
    master_side = std::move(*accepted);
    master_side->set_receive_callback([&](std::span<const std::uint8_t> data) {
      auto envelope = proto::Envelope::decode(data);
      if (!envelope.ok()) return;
      print_message("master<-", *envelope, data.size() + net::kFrameHeaderBytes);
      if (envelope->type == proto::MessageType::hello) {
        (void)master_side->send(proto::pack(proto::EnbConfigRequest{}, 10));
        proto::StatsRequest stats;
        stats.request_id = 1;
        stats.mode = proto::ReportMode::periodic;
        stats.periodicity_ttis = 1;
        (void)master_side->send(proto::pack(stats, 11));
      }
    });
    master_side->start();
  });

  auto agent = net::TcpTransport::connect("127.0.0.1", port);
  if (!agent.ok()) {
    std::printf("connect failed: %s\n", agent.error().message.c_str());
    return 1;
  }
  master.join();

  int agent_received = 0;
  (*agent)->set_receive_callback([&](std::span<const std::uint8_t> data) {
    auto envelope = proto::Envelope::decode(data);
    if (!envelope.ok()) return;
    print_message("agent <-", *envelope, data.size() + net::kFrameHeaderBytes);
    if (envelope->type == proto::MessageType::enb_config_request) {
      proto::EnbConfigReply reply;
      reply.enb_id = 1;
      reply.cells.push_back(proto::CellConfigMsg::from(lte::CellConfig{}));
      (void)(*agent)->send(proto::pack(reply, envelope->xid));
    }
    ++agent_received;
  });
  (*agent)->start();

  // Agent hello.
  proto::Hello hello;
  hello.enb_id = 1;
  hello.name = "tcp-demo-enb";
  hello.capabilities = {"mac", "rrc", "delegation"};
  (void)(*agent)->send(proto::pack(hello, 1));

  // And one stats reply as the periodic reporting would produce.
  proto::StatsReply stats;
  stats.request_id = 1;
  stats.subframe = 1234;
  proto::UeStatsReport ue;
  ue.rnti = 70;
  ue.wb_cqi = 12;
  ue.rlc_queue_bytes = 4096;
  ue.bsr_bytes = {0, 0, 4096, 0};
  stats.ue_reports.push_back(ue);
  (void)(*agent)->send(proto::pack(stats, 2));

  for (int i = 0; i < 200 && agent_received < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  (*agent)->close();
  if (master_side) master_side->close();
  std::printf("\ndone: the same envelopes the simulated experiments use, over real TCP.\n");
  return 0;
}
