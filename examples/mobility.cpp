// Mobility management example (paper Sec. 7.1): a UE drives between two
// cells while streaming downlink data. The centralized mobility manager
// watches the RRC measurement reports (per-cell RSRP) in the RIB and
// commands the handover at the right moment; the X2-equivalent path moves
// the UE context and switches the EPC bearer, so traffic continues.
//
//   ./examples/mobility
#include <cstdio>

#include "apps/mobility_manager.h"
#include "phy/mobility.h"
#include "scenario/testbed.h"

using namespace flexran;

int main() {
  scenario::Testbed testbed(scenario::per_tti_master_config());

  auto make_spec = [](lte::EnbId id) {
    scenario::EnbSpec spec;
    spec.enb.enb_id = id;
    spec.enb.cells[0].cell_id = id;
    spec.agent.name = "cell-" + std::to_string(id);
    spec.use_radio_env = true;
    return spec;
  };
  testbed.add_enb(make_spec(1));
  testbed.add_enb(make_spec(2));
  testbed.enable_x2();

  apps::MobilityManagerConfig config;
  config.hysteresis_db = 3.0;
  config.evaluations_to_trigger = 3;
  auto* manager = static_cast<apps::MobilityManagerApp*>(
      testbed.master().add_app(std::make_unique<apps::MobilityManagerApp>(config)));

  // Two macro sites 1 km apart; the UE drives from 200 m past cell 1 to
  // 150 m short of cell 2 over 12 seconds.
  auto track = std::make_shared<phy::MobilityTrack>(
      std::vector<phy::CellSite>{{1, phy::kMacroTxPowerDbm, 0.0, 0.0},
                                 {2, phy::kMacroTxPowerDbm, 1.0, 0.0}},
      std::vector<phy::MobilityTrack::Waypoint>{{0, 0.2, 0.0},
                                                {sim::from_seconds(12), 0.85, 0.0}});
  stack::UeProfile profile;
  profile.mobility = track;
  profile.attach_after_ttis = 10;
  const auto ue_id = testbed.add_ue(0, std::move(profile));
  testbed.on_tti([&](std::int64_t) { (void)testbed.epc().downlink(ue_id, 2000); });

  std::printf("%6s %10s %8s %6s %14s %12s\n", "t(s)", "position", "serving", "CQI",
              "delivered(MB)", "handovers");
  std::uint64_t last_bytes = 0;
  for (int second = 1; second <= 13; ++second) {
    testbed.run_seconds(1.0);
    const auto location = testbed.locate_ue(ue_id);
    if (!location.has_value()) break;
    const auto& dp = *testbed.enb(location->enb_index).data_plane;
    const auto* ue = dp.ue(location->rnti);
    const auto bytes = testbed.ue_total_bytes(ue_id, lte::Direction::downlink);
    const auto pos = track->position_at(testbed.sim().now());
    std::printf("%6d %7.0f m %8u %6d %14.2f %12lu%s\n", second, pos.x_km * 1000.0,
                dp.cell_id(), ue != nullptr ? ue->reported_cqi : -1,
                static_cast<double>(bytes) / 1e6,
                static_cast<unsigned long>(manager->handovers_commanded()),
                bytes > last_bytes ? "" : "   <-- stalled");
    last_bytes = bytes;
  }

  std::printf("\nThe RIB-driven mobility manager handed the UE from cell 1 to cell 2\n"
              "without interrupting the downlink flow (the EPC bearer followed).\n");
  return 0;
}
