// Figure 9 reproduction: effect of master-agent control-channel latency and
// the scheduler's schedule-ahead parameter on downlink throughput under
// fully centralized scheduling.
//
// Expected shape (paper Sec. 5.3):
//  * lower-triangular region (one-way delay > schedule-ahead time): zero
//    throughput -- every decision misses its deadline and the UE cannot even
//    complete attach;
//  * above the diagonal: throughput decreases gradually as RTT and
//    schedule-ahead grow, because decisions are made from increasingly
//    stale channel state (the scheduler's MCS choice goes wrong more often,
//    and HARQ pays for it).
#include "apps/remote_scheduler.h"
#include "bench/bench_common.h"

using namespace flexran;

namespace {

double run_cell(int rtt_ms, int schedule_ahead_sf, double seconds) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto spec = bench::basic_enb();
  spec.agent.dl_scheduler = "remote";
  spec.uplink.delay = sim::from_ms(rtt_ms / 2.0);
  spec.downlink.delay = sim::from_ms(rtt_ms / 2.0);
  auto& enb = testbed.add_enb(spec);

  apps::RemoteSchedulerConfig config;
  config.schedule_ahead_sf = schedule_ahead_sf;
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>(config));

  // Block-fading channel: stale CQI at the master means wrong MCS choices.
  stack::UeProfile profile;
  phy::FadingChannel::Config fading;
  fading.mean_sinr_db = 22.0;
  fading.stddev_db = 5.5;
  fading.coherence = 8 * sim::kTtiUs;
  fading.memory = 0.7;
  fading.seed = static_cast<std::uint64_t>(rtt_ms * 131 + schedule_ahead_sf);
  profile.dl_channel = std::make_unique<phy::FadingChannel>(fading);
  profile.attach_after_ttis = 20;
  const auto rnti = testbed.add_ue(0, std::move(profile));
  bench::saturate_dl(testbed, 0, rnti);

  testbed.run_seconds(1.0 + seconds);
  if (!enb.data_plane->ue(rnti)->connected()) return 0.0;
  return scenario::Metrics::mbps(
      testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink), 1.0 + seconds);
}

}  // namespace

int main() {
  const double kSeconds = 4.0;
  const std::vector<int> rtts_ms = {0, 4, 8, 16, 32, 64};
  const std::vector<int> aheads = {1, 2, 4, 8, 16, 32, 48, 80};

  bench::print_header("Fig. 9 -- latency vs schedule-ahead: downlink throughput (Mb/s)");
  bench::print_note(
      "rows: schedule-ahead (subframes); columns: control-channel RTT (ms).\n"
      "0.00 = UE failed to attach (decisions always missed their deadline).");

  std::printf("\n%10s", "ahead\\RTT");
  for (int rtt : rtts_ms) std::printf("%9d", rtt);
  std::printf("\n");

  for (int ahead : aheads) {
    std::printf("%10d", ahead);
    for (int rtt : rtts_ms) {
      const double mbps = run_cell(rtt, ahead, kSeconds);
      std::printf("%9.2f", mbps);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape checks: cells with ahead < RTT/2+1 are ~0 (lower triangle); along a\n"
      "row, throughput falls as RTT rises (staler CQI); along a column, very\n"
      "large schedule-ahead also costs throughput (predicting further ahead of\n"
      "the fading process).\n");
  return 0;
}
