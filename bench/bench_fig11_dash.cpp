// Figure 11 reproduction: DASH rate adaptation, default reference player vs
// FlexRAN-assisted player, under controlled channel-quality fluctuation.
//
// 11a -- low-variability case: ladder {1.2, 2, 4} Mb/s, CQI toggling 3<->2.
//        The default player underutilizes (pinned at 1.2 even when 40% more
//        throughput is available); the assisted player tracks the channel.
//        Neither freezes.
// 11b -- high-variability case: 4K ladder {2.9..19.6} Mb/s, CQI toggling
//        10<->4. The default player overshoots (up to 19.6 over a ~12 Mb/s
//        link), collapses into congestion and freezes; the assisted player
//        holds the sustainable 7.3 Mb/s and stays smooth.
#include "apps/mec_dash.h"
#include "bench/bench_common.h"
#include "scenario/dash_session.h"

using namespace flexran;

namespace {

struct CaseResult {
  util::TimeSeries bitrate;
  util::TimeSeries buffer;
  int freezes = 0;
  double freeze_s = 0.0;
  double mean_bitrate = 0.0;
  double peak_bitrate = 0.0;
};

CaseResult run_case(bool high_variability, traffic::AbrMode mode, double seconds) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(bench::basic_enb());

  // Channel programs: the paper toggles CQI 3<->2 (low case) and 10<->4
  // (high case) on its calibration, where CQI 3 sustains the 2.0 Mb/s rung.
  // On our calibration the pair bracketing the same ladder rungs is 6<->4
  // (CQI 6 sustains 4.0, CQI 4 sustains 2.0; see bench_table2_cqi), so the
  // low case uses that -- same experiment, recalibrated channel program.
  stack::UeProfile profile;
  profile.dl_channel = high_variability
                           ? phy::ScheduledCqiChannel::square_wave(10, 4, sim::from_seconds(25),
                                                                   sim::from_seconds(seconds))
                           : phy::ScheduledCqiChannel::square_wave(6, 4, sim::from_seconds(25),
                                                                   sim::from_seconds(seconds));
  const auto rnti = testbed.add_ue(0, std::move(profile));
  testbed.run_ttis(60);

  traffic::DashClientConfig config;
  config.mode = mode;
  // The reference player's buffer-confidence probing is what overshoots in
  // the high-variability case (dash.js behavior the paper observed).
  config.buffer_probing = mode == traffic::AbrMode::reference && high_variability;
  config.step_up_buffer_s = 10.0;
  const auto video = high_variability ? traffic::paper_video_4k() : traffic::paper_video_low();
  scenario::DashSession session(testbed, 0, rnti, video, config);

  if (mode == traffic::AbrMode::assisted) {
    apps::MecDashApp::Config mec;
    mec.agent = enb.agent_id;
    mec.period_cycles = 100;
    auto* client = &session.client();
    testbed.master().add_app(std::make_unique<apps::MecDashApp>(
        mec, [client](lte::Rnti, double mbps) { client->set_bitrate_cap_mbps(mbps); }));
  }
  session.start();
  testbed.run_seconds(seconds);

  CaseResult result;
  result.bitrate = session.client().bitrate_series();
  result.buffer = session.client().buffer_series();
  result.freezes = session.client().freeze_count();
  result.freeze_s = session.client().total_freeze_seconds();
  result.mean_bitrate = result.bitrate.mean_in(5, seconds);
  for (const auto& point : result.bitrate.points()) {
    result.peak_bitrate = std::max(result.peak_bitrate, point.value);
  }
  return result;
}

void print_case(const char* title, const CaseResult& reference, const CaseResult& assisted,
                double seconds) {
  bench::print_header(title);
  std::printf("%-22s %12s %12s %9s %12s\n", "player", "mean Mb/s", "peak Mb/s", "freezes",
              "freeze (s)");
  std::printf("%-22s %12.2f %12.2f %9d %12.1f\n", "default (reference)", reference.mean_bitrate,
              reference.peak_bitrate, reference.freezes, reference.freeze_s);
  std::printf("%-22s %12.2f %12.2f %9d %12.1f\n", "FlexRAN-assisted", assisted.mean_bitrate,
              assisted.peak_bitrate, assisted.freezes, assisted.freeze_s);

  std::printf("\ntime series (10 s buckets): selected bitrate Mb/s [buffer s]\n");
  std::printf("%8s %28s %28s\n", "t (s)", "default", "assisted");
  for (double t = 0; t < seconds; t += 10.0) {
    std::printf("%8.0f %17.2f [%6.1f] %19.2f [%6.1f]\n", t,
                reference.bitrate.mean_in(t, t + 10), reference.buffer.mean_in(t, t + 10),
                assisted.bitrate.mean_in(t, t + 10), assisted.buffer.mean_in(t, t + 10));
  }
}

}  // namespace

int main() {
  const double kSeconds = 100.0;

  const auto ref_low = run_case(false, traffic::AbrMode::reference, kSeconds);
  const auto asst_low = run_case(false, traffic::AbrMode::assisted, kSeconds);
  print_case("Fig. 11a -- low throughput variability (ladder 1.2/2/4, CQI 6<->4)", ref_low,
             asst_low, kSeconds);
  std::printf(
      "\npaper: the default player underutilizes -- it never reaches the rung the\n"
      "channel can sustain -- while the assisted player tracks the sustainable\n"
      "rate as CQI toggles; neither player freezes.\n");

  const auto ref_high = run_case(true, traffic::AbrMode::reference, kSeconds);
  const auto asst_high = run_case(true, traffic::AbrMode::assisted, kSeconds);
  print_case("Fig. 11b -- high throughput variability (4K ladder, CQI 10<->4)", ref_high,
             asst_high, kSeconds);
  std::printf(
      "\npaper: default overshoots to 19.6 Mb/s over a ~15 Mb/s link, congests and\n"
      "freezes; assisted identifies ~7.3 Mb/s sustainable and stays stable.\n");
  return 0;
}
