// Figure 6 reproduction: overhead of the FlexRAN agent vs "vanilla OAI".
//
// 6a -- CPU and memory cost of adding the agent, idle and with a UE running
//       a speedtest. The paper measures a real eNodeB process; here we
//       measure (i) wall-clock host CPU time to simulate one second of the
//       eNodeB and (ii) resident heap growth, for a data plane driven by a
//       built-in local scheduler ("vanilla") vs the same data plane behind a
//       FlexRAN agent connected to a master with per-TTI reporting.
// 6b -- downlink/uplink application throughput must be identical in both
//       configurations (agent transparency).
#include <malloc.h>

#include <algorithm>
#include <chrono>

#include "agent/schedulers.h"
#include "bench/bench_common.h"

using namespace flexran;
using bench::fixed_cqi_ue;

namespace {

struct RunResult {
  double cpu_ms_per_sim_s = 0.0;
  double heap_mb = 0.0;
  double dl_mbps = 0.0;
  double ul_mbps = 0.0;
};

std::size_t heap_in_use() {
#if defined(__GLIBC__)
  return mallinfo2().uordblks;
#else
  return 0;
#endif
}

/// Vanilla configuration: the data plane driven directly by a local
/// scheduler (control and data planes fused, as in unmodified OAI).
RunResult run_vanilla(bool with_ue, double seconds) {
  const auto heap_before = heap_in_use();
  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 1;
  config.cells[0].cell_id = 1;
  stack::EnodebDataPlane dp(simulator, config);

  // Fused control logic: the built-in schedulers called directly.
  agent::register_builtin_vsfs();
  agent::AgentApi api(dp);
  agent::RoundRobinDlVsf dl_scheduler;
  agent::RoundRobinUlVsf ul_scheduler;

  class FusedListener : public stack::EnodebDataPlane::Listener {
   public:
    FusedListener(agent::AgentApi& api, agent::RoundRobinDlVsf& dl, agent::RoundRobinUlVsf& ul)
        : api_(&api), dl_(&dl), ul_(&ul) {}
    void on_subframe_start(std::int64_t subframe) override {
      auto decision = dl_->schedule_dl(*api_, subframe);
      auto ul_decision = ul_->schedule_ul(*api_, subframe);
      decision.ul = std::move(ul_decision.ul);
      if (!decision.empty()) (void)api_->apply_scheduling_decision(decision);
    }

   private:
    agent::AgentApi* api_;
    agent::RoundRobinDlVsf* dl_;
    agent::RoundRobinUlVsf* ul_;
  };
  FusedListener listener(api, dl_scheduler, ul_scheduler);
  dp.set_listener(&listener);

  std::uint64_t dl_bytes = 0;
  std::uint64_t ul_bytes = 0;
  dp.set_delivery_callback([&](lte::Rnti, std::uint32_t bytes, lte::Direction dir) {
    (dir == lte::Direction::downlink ? dl_bytes : ul_bytes) += bytes;
  });

  lte::Rnti rnti = lte::kInvalidRnti;
  if (with_ue) rnti = dp.add_ue(fixed_cqi_ue(15));

  std::size_t heap_peak = heap_before;
  sim::TtiTicker ticker(simulator);
  ticker.subscribe([&](std::int64_t tti) {
    dp.subframe_begin(tti);
    if (with_ue) {
      const auto* ue = dp.ue(rnti);
      if (ue != nullptr && ue->dl_queue.total_bytes() < 60'000) dp.enqueue_dl(rnti, 3, 60'000);
      if (ue != nullptr && ue->connected() && ue->ul_buffer_bytes < 30'000) {
        dp.enqueue_ul(rnti, 30'000);
      }
    }
    dp.subframe_end(tti);
    if (tti % 100 == 0) heap_peak = std::max(heap_peak, heap_in_use());
  });
  ticker.start();

  const auto start = std::chrono::steady_clock::now();
  simulator.run_until(sim::from_seconds(seconds));
  const auto elapsed =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();

  RunResult result;
  result.cpu_ms_per_sim_s = elapsed / seconds;
  result.heap_mb = static_cast<double>(heap_peak - heap_before) / 1e6;
  const double active = seconds - 0.1;
  result.dl_mbps = scenario::Metrics::mbps(dl_bytes, active);
  result.ul_mbps = scenario::Metrics::mbps(ul_bytes, active);
  return result;
}

/// FlexRAN configuration: same data plane behind an agent connected to a
/// master with the paper's worst-case reporting (per-TTI stats + sync).
RunResult run_flexran(bool with_ue, double seconds) {
  const auto heap_before = heap_in_use();
  scenario::Testbed testbed(scenario::per_tti_master_config());
  testbed.add_enb(bench::basic_enb());

  lte::Rnti rnti = lte::kInvalidRnti;
  if (with_ue) {
    rnti = testbed.add_ue(0, fixed_cqi_ue(15));
    bench::saturate_dl(testbed, 0, rnti);
    bench::saturate_ul(testbed, 0, rnti);
  }
  std::size_t heap_peak = heap_before;
  testbed.on_tti([&](std::int64_t tti) {
    if (tti % 100 == 0) heap_peak = std::max(heap_peak, heap_in_use());
  });

  const auto start = std::chrono::steady_clock::now();
  testbed.run_seconds(seconds);
  const auto elapsed =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();

  RunResult result;
  result.cpu_ms_per_sim_s = elapsed / seconds;
  result.heap_mb = static_cast<double>(heap_peak - heap_before) / 1e6;
  const double active = seconds - 0.1;
  result.dl_mbps =
      with_ue
          ? scenario::Metrics::mbps(testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink),
                                    active)
          : 0.0;
  result.ul_mbps =
      with_ue
          ? scenario::Metrics::mbps(testbed.metrics().total_bytes(1, rnti, lte::Direction::uplink),
                                    active)
          : 0.0;
  return result;
}

}  // namespace

int main() {
  const double kSeconds = 10.0;

  bench::print_header("Fig. 6a -- eNodeB overhead: vanilla vs FlexRAN agent");
  bench::print_note(
      "paper: agent adds ~0.2pp CPU and ~0.03 GB memory; UE service identical.\n"
      "here: host-CPU ms per simulated second + heap delta of the eNodeB sim.");

  const auto vanilla_idle = run_vanilla(false, kSeconds);
  const auto flexran_idle = run_flexran(false, kSeconds);
  const auto vanilla_ue = run_vanilla(true, kSeconds);
  const auto flexran_ue = run_flexran(true, kSeconds);

  std::printf("\n%-26s %18s %14s\n", "configuration", "cpu (ms/sim-s)", "heap (KB)");
  std::printf("%-26s %18.2f %14.2f\n", "vanilla, no UE", vanilla_idle.cpu_ms_per_sim_s,
              vanilla_idle.heap_mb * 1024);
  std::printf("%-26s %18.2f %14.2f\n", "FlexRAN, no UE", flexran_idle.cpu_ms_per_sim_s,
              flexran_idle.heap_mb * 1024);
  std::printf("%-26s %18.2f %14.2f\n", "vanilla, UE speedtest", vanilla_ue.cpu_ms_per_sim_s,
              vanilla_ue.heap_mb * 1024);
  std::printf("%-26s %18.2f %14.2f\n", "FlexRAN, UE speedtest", flexran_ue.cpu_ms_per_sim_s,
              flexran_ue.heap_mb * 1024);

  bench::print_header("Fig. 6b -- UE throughput: vanilla vs FlexRAN (transparency)");
  bench::print_note("paper: DL ~23-25 Mb/s, UL ~8-9 Mb/s, identical across configurations.");
  std::printf("\n%-26s %12s %12s\n", "configuration", "DL (Mb/s)", "UL (Mb/s)");
  std::printf("%-26s %12.2f %12.2f\n", "vanilla OAI (sim)", vanilla_ue.dl_mbps,
              vanilla_ue.ul_mbps);
  std::printf("%-26s %12.2f %12.2f\n", "OAI + FlexRAN (sim)", flexran_ue.dl_mbps,
              flexran_ue.ul_mbps);
  const double dl_delta =
      100.0 * (vanilla_ue.dl_mbps - flexran_ue.dl_mbps) / vanilla_ue.dl_mbps;
  std::printf("\nDL delta: %.2f%% (the agent is transparent to the UE)\n", dl_delta);
  return 0;
}
