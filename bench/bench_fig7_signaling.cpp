// Figure 7 reproduction: FlexRAN protocol signaling overhead between agent
// and master in the paper's worst-case configuration -- centralized per-TTI
// scheduling, per-TTI statistics reports, per-TTI master-agent sync --
// swept over the number of UEs.
//
// 7a -- agent-to-master overhead, split into statistics / sync / agent
//       management. Expect sublinear growth with UEs (report aggregation).
// 7b -- master-to-agent overhead, dominated by scheduling commands.
//
// Also prints the report-periodicity ablation the paper discusses (2-TTI
// MAC reports roughly halve the stats overhead) and the aggregation
// ablation (per-UE messages vs one aggregated report).
#include "apps/remote_scheduler.h"
#include "bench/bench_common.h"
#include "net/framing.h"
#include "traffic/udp.h"

using namespace flexran;

namespace {

struct SignalingResult {
  double stats_mbps = 0.0;
  double sync_mbps = 0.0;
  double mgmt_mbps = 0.0;
  double commands_mbps = 0.0;
  double up_total_mbps = 0.0;
  double down_total_mbps = 0.0;
};

SignalingResult run(int n_ues, std::uint32_t stats_period_ttis, double seconds,
                    proto::ReportMode mode = proto::ReportMode::periodic,
                    double offered_mbps = 30.0) {
  auto master_config = scenario::per_tti_master_config(stats_period_ttis);
  master_config.default_stats_request->mode = mode;
  scenario::Testbed testbed(std::move(master_config));
  auto& enb = testbed.add_enb(bench::basic_enb());

  apps::RemoteSchedulerConfig remote;
  remote.schedule_ahead_sf = 2;
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>(remote));

  std::vector<lte::Rnti> ues;
  std::vector<std::unique_ptr<traffic::UdpCbrSource>> sources;
  for (int i = 0; i < n_ues; ++i) {
    auto profile = bench::fixed_cqi_ue(8 + i % 8, 5 + i);
    const auto rnti = testbed.add_ue(0, std::move(profile));
    ues.push_back(rnti);
    // Uniform downlink UDP, enough to keep the centralized scheduler busy.
    if (offered_mbps > 0) {
      sources.push_back(std::make_unique<traffic::UdpCbrSource>(
          testbed.sim(),
          [&testbed, rnti](std::uint32_t bytes) { (void)testbed.epc().downlink(rnti, bytes); },
          offered_mbps / n_ues));
      sources.back()->start();
    }
  }

  // Warm up: let attaches complete, then reset the accounting so the sweep
  // measures steady state.
  testbed.run_seconds(0.5);
  auto& agent = *enb.agent;
  const auto up_before = agent.tx_accounting();
  const auto down_before = testbed.master().tx_accounting(enb.agent_id);
  testbed.run_seconds(seconds);
  const auto& up = agent.tx_accounting();
  const auto& down = testbed.master().tx_accounting(enb.agent_id);

  auto mbps = [seconds](std::uint64_t now, std::uint64_t before) {
    return static_cast<double>(now - before) * 8.0 / seconds / 1e6;
  };
  SignalingResult result;
  using C = proto::MessageCategory;
  result.stats_mbps = mbps(up.bytes(C::stats), up_before.bytes(C::stats));
  result.sync_mbps = mbps(up.bytes(C::sync), up_before.bytes(C::sync));
  result.mgmt_mbps = mbps(up.bytes(C::agent_management), up_before.bytes(C::agent_management));
  result.up_total_mbps = mbps(up.total_bytes(), up_before.total_bytes());
  result.commands_mbps = mbps(down.bytes(C::commands), down_before.bytes(C::commands));
  result.down_total_mbps = mbps(down.total_bytes(), down_before.total_bytes());
  return result;
}

/// Wire cost of N per-UE stats messages vs one aggregated report (the
/// mechanism behind Fig. 7a's sublinearity).
void print_aggregation_ablation() {
  bench::print_header("Ablation -- report aggregation (why Fig. 7a is sublinear)");
  std::printf("%8s %22s %22s %9s\n", "UEs", "aggregated (B/TTI)", "per-UE msgs (B/TTI)",
              "saving");
  for (int n : {10, 20, 30, 40, 50}) {
    proto::StatsReply aggregated;
    aggregated.subframe = 1000;
    std::size_t separate = 0;
    for (int i = 0; i < n; ++i) {
      proto::UeStatsReport ue;
      ue.rnti = static_cast<lte::Rnti>(70 + i);
      ue.bsr_bytes = {0, 0, 14000, 0};
      ue.wb_cqi = 10;
      ue.rlc_queue_bytes = 14000;
      aggregated.ue_reports.push_back(ue);
      proto::StatsReply single;
      single.subframe = 1000;
      single.ue_reports.push_back(ue);
      separate += proto::pack(single).size() + net::kFrameHeaderBytes;
    }
    const std::size_t agg = proto::pack(aggregated).size() + net::kFrameHeaderBytes;
    std::printf("%8d %22zu %22zu %8.0f%%\n", n, agg, separate,
                100.0 * (1.0 - static_cast<double>(agg) / static_cast<double>(separate)));
  }
}

}  // namespace

int main() {
  const double kSeconds = 3.0;

  bench::print_header(
      "Fig. 7a -- agent-to-master signaling (per-TTI stats + sync + centralized scheduler)");
  bench::print_note(
      "paper: ~100 Mb/s at 50 UEs on full reports; dominated by stats, then sync,\n"
      "management negligible; sublinear in UEs. Our reports carry the same fields\n"
      "compactly varint-coded, so absolute Mb/s is lower; the composition and\n"
      "sublinearity are the reproduction targets.");
  std::printf("\n%6s %12s %12s %12s %12s %14s\n", "UEs", "stats", "sync", "mgmt", "total",
              "bytes/UE/TTI");
  std::vector<SignalingResult> up_results;
  const std::vector<int> sweep = {10, 20, 30, 40, 50};
  for (int n : sweep) {
    const auto result = run(n, 1, kSeconds);
    up_results.push_back(result);
    std::printf("%6d %9.3f Mb %9.3f Mb %9.3f Mb %9.3f Mb %14.1f\n", n, result.stats_mbps,
                result.sync_mbps, result.mgmt_mbps, result.up_total_mbps,
                result.up_total_mbps * 1e6 / 8.0 / 1000.0 / n);
  }
  const double per_ue_10 = up_results.front().up_total_mbps / 10.0;
  const double per_ue_50 = up_results.back().up_total_mbps / 50.0;
  std::printf("\nsublinearity check: per-UE cost falls from %.4f to %.4f Mb/s/UE (%.0f%%)\n",
              per_ue_10, per_ue_50, 100.0 * (1.0 - per_ue_50 / per_ue_10));

  bench::print_header("Fig. 7b -- master-to-agent signaling (same sweep)");
  bench::print_note(
      "paper: < 4 Mb/s at 50 UEs, almost entirely scheduling commands, growing\n"
      "superlinearly as more TTIs carry multi-UE decisions.");
  std::printf("\n%6s %14s %14s\n", "UEs", "commands", "total");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%6d %11.3f Mb %11.3f Mb\n", sweep[i], up_results[i].commands_mbps,
                up_results[i].down_total_mbps);
  }

  bench::print_header("Ablation -- MAC report periodicity (paper Sec. 5.2.1)");
  std::printf("%22s %14s\n", "report period (TTIs)", "stats Mb/s");
  for (std::uint32_t period : {1u, 2u, 5u, 10u}) {
    const auto result = run(30, period, kSeconds);
    std::printf("%22u %14.3f\n", period, result.stats_mbps);
  }
  // The paper also suggests "event-triggered instead of periodic message
  // transmissions": reports are sent only when their content changed. Under
  // saturating traffic the content changes every TTI (no saving); in an
  // idle network the stream collapses to nothing.
  const auto triggered_busy = run(30, 1, kSeconds, proto::ReportMode::triggered);
  std::printf("%22s %14.3f\n", "triggered (loaded)", triggered_busy.stats_mbps);
  const auto triggered_idle =
      run(30, 1, kSeconds, proto::ReportMode::triggered, /*offered_mbps=*/0.0);
  std::printf("%22s %14.3f\n", "triggered (idle)", triggered_idle.stats_mbps);

  print_aggregation_ablation();
  return 0;
}
