// Section 5.4 reproduction: control delegation performance.
//
//  * VSF load/swap time -- the cost of relinking a CMI slot to a cached
//    implementation (paper: ~103 ns; a cache lookup + type check + pointer
//    swap).
//  * Service continuity -- downlink throughput while the master swaps the
//    agent between local and remote scheduling at increasing frequency,
//    down to one swap per second of simulated time and (mechanically) per
//    TTI; the paper observes no disruption.
//  * Faulty-VSF containment -- a sweep over the three known-bad DL
//    scheduler implementations (throwing, budget-busting, invalid
//    decisions) measuring fallback latency and TTIs left without a
//    decision (docs/delegation_safety.md; should be 0).
#include <chrono>

#include "apps/remote_scheduler.h"
#include "bench/bench_common.h"

using namespace flexran;

namespace {

void bench_swap_time() {
  agent::register_builtin_vsfs();
  agent::VsfCache cache;
  (void)cache.store("mac", "dl_ue_scheduler", "local_rr");
  (void)cache.store("mac", "dl_ue_scheduler", "local_pf");
  agent::MacControlModule mac(cache);
  (void)mac.set_behavior(agent::MacControlModule::kDlSchedulerSlot, "local_rr");

  const int kIters = 2'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    (void)mac.set_behavior(agent::MacControlModule::kDlSchedulerSlot,
                           (i & 1) != 0 ? "local_pf" : "local_rr");
  }
  const auto elapsed = std::chrono::duration<double, std::nano>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  std::printf("VSF swap (cache lookup + type check + relink): %.0f ns/swap over %d swaps\n",
              elapsed / kIters, kIters);
  std::printf("paper: ~103 ns absolute VSF load time -- both are a negligible fraction\n"
              "of the 1 ms TTI, so swapping cannot disrupt service.\n");
}

double run_with_swaps(sim::TimeUs swap_period, double seconds, std::uint64_t* swaps_done) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(bench::basic_enb());
  apps::RemoteSchedulerConfig remote;
  remote.schedule_ahead_sf = 2;
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>(remote));

  const auto rnti = testbed.add_ue(0, bench::fixed_cqi_ue(15));
  bench::saturate_dl(testbed, 0, rnti);
  testbed.run_seconds(0.5);  // warm up, attach

  // Swap the DL scheduler between local and remote every `swap_period`.
  // The swap is applied through the agent's policy path -- the same code a
  // PolicyReconfiguration protocol message executes -- directly at swap
  // time, so arbitrarily fine periods (down to 1 TTI) are exercised without
  // control-channel pipelining getting in the way.
  std::uint64_t swaps = 0;
  if (swap_period > 0) {
    agent::Agent* agent_ptr = enb.agent.get();
    testbed.on_tti([agent_ptr, swap_period, &swaps](std::int64_t tti) {
      if ((tti * sim::kTtiUs) % swap_period != 0) return;
      const bool to_remote = (swaps % 2) == 0;
      (void)agent_ptr->apply_policy(
          to_remote ? "mac:\n  dl_ue_scheduler:\n    behavior: remote\n"
                    : "mac:\n  dl_ue_scheduler:\n    behavior: local_rr\n");
      ++swaps;
    });
  }

  const auto before = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  testbed.run_seconds(seconds);
  if (swaps_done != nullptr) *swaps_done = swaps;
  return scenario::Metrics::mbps(
      testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink) - before, seconds);
}

struct FaultyResult {
  std::uint64_t failures = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t unscheduled = 0;
  double fallback_mean_us = 0.0;
  double fallback_max_us = 0.0;
  double mbps = 0.0;
};

FaultyResult run_with_faulty_vsf(const std::string& impl, double seconds) {
  agent::register_faulty_vsfs();
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(bench::basic_enb());
  const auto rnti = testbed.add_ue(0, bench::fixed_cqi_ue(15));
  bench::saturate_dl(testbed, 0, rnti);
  testbed.run_seconds(0.5);  // warm up, attach

  // Delegate the faulty implementation through the normal updation +
  // policy path, then keep running: the guard must keep the cell scheduled
  // from the local fallback every TTI.
  (void)testbed.master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", impl);
  (void)testbed.master().send_policy(
      enb.agent_id, "mac:\n  dl_ue_scheduler:\n    behavior: " + impl + "\n");
  const auto before = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  testbed.run_seconds(seconds);

  const auto& guard = enb.agent->vsf_guard();
  FaultyResult result;
  result.failures = guard.vsf_failures();
  result.quarantines = guard.quarantines();
  result.fallbacks = guard.fallback_decisions();
  result.unscheduled = guard.unscheduled_slots();
  if (guard.fallback_latency_us().count() > 0) {
    result.fallback_mean_us = guard.fallback_latency_us().mean();
    result.fallback_max_us = guard.fallback_latency_us().max();
  }
  result.mbps = scenario::Metrics::mbps(
      testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink) - before, seconds);
  return result;
}

void bench_faulty_vsfs() {
  bench::print_header("Delegated-control containment: faulty-VSF sweep");
  bench::print_note(
      "a known-bad DL scheduler is delegated mid-run; the guard falls back to\n"
      "the local default within the same TTI and quarantines the implementation\n"
      "after 3 consecutive failures. 'unsched' counts TTIs left without any\n"
      "decision -- the containment invariant is that it stays 0.");
  std::printf("\n%-16s %9s %11s %10s %8s %14s %12s\n", "faulty impl", "failures",
              "quarantines", "fallbacks", "unsched", "fallback us", "DL (Mb/s)");
  std::string json =
      "{" +
      bench::json_header("delegation_containment", "run=2s stats_period=1 quarantine_after=3") +
      ",\"runs\":[";
  bool first = true;
  for (const char* impl : {"faulty_crash", "faulty_overrun", "faulty_invalid"}) {
    const auto r = run_with_faulty_vsf(impl, 2.0);
    std::printf("%-16s %9lu %11lu %10lu %8lu %7.1f/%6.1f %12.2f\n", impl,
                static_cast<unsigned long>(r.failures),
                static_cast<unsigned long>(r.quarantines),
                static_cast<unsigned long>(r.fallbacks),
                static_cast<unsigned long>(r.unscheduled), r.fallback_mean_us,
                r.fallback_max_us, r.mbps);
    char buffer[384];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"impl\":\"%s\",\"failures\":%llu,\"quarantines\":%llu,"
                  "\"fallbacks\":%llu,\"unscheduled\":%llu,\"fallback_mean_us\":%.2f,"
                  "\"fallback_max_us\":%.2f,\"dl_mbps\":%.3f}",
                  first ? "" : ",", impl, static_cast<unsigned long long>(r.failures),
                  static_cast<unsigned long long>(r.quarantines),
                  static_cast<unsigned long long>(r.fallbacks),
                  static_cast<unsigned long long>(r.unscheduled), r.fallback_mean_us,
                  r.fallback_max_us, r.mbps);
    json += buffer;
    first = false;
  }
  json += "]}";
  bench::print_note(
      "\n(fallback us = mean/max wall-clock from failure detection to a validated\n"
      "fallback decision; throughput stays at the local-scheduler rate.)");
  // Machine-readable result: one JSON object on the final line.
  std::printf("%s\n", json.c_str());
}

}  // namespace

int main() {
  bench::print_header("Sec. 5.4 -- control delegation: VSF swap cost");
  bench_swap_time();

  bench::print_header("Sec. 5.4 -- service continuity while swapping local <-> remote");
  bench::print_note(
      "paper: the same ~25 Mb/s downlink regardless of swap frequency, down to\n"
      "per-TTI swapping; the pushed code lives in the agent cache so swaps are\n"
      "free of (re)transfer cost.");
  std::printf("\n%-22s %12s %10s\n", "swap period", "DL (Mb/s)", "swaps");
  const double kSeconds = 4.0;
  struct Case {
    const char* label;
    sim::TimeUs period;
  };
  for (const auto& c : std::initializer_list<Case>{{"no swapping", 0},
                                                   {"1 s", sim::from_seconds(1)},
                                                   {"100 ms", sim::from_ms(100)},
                                                   {"10 ms", sim::from_ms(10)},
                                                   {"1 ms (every TTI)", sim::from_ms(1)}}) {
    std::uint64_t swaps = 0;
    const double mbps = run_with_swaps(c.period, kSeconds, &swaps);
    std::printf("%-22s %12.2f %10lu\n", c.label, mbps, static_cast<unsigned long>(swaps));
  }

  bench_faulty_vsfs();
  return 0;
}
