// Figure 12 reproduction: RAN sharing and on-demand virtualization of radio
// resources (paper Sec. 6.3).
//
// 12a -- dynamic allocation: one MNO + one MVNO, 5 UEs each, uniform
//        downlink UDP. Shares start at 70/30; a policy reconfiguration at
//        t=10 s moves them to 40/60; a second at t=140 s to 80/20. The
//        per-operator throughput follows the shares.
// 12b -- scheduling-policy isolation: 15 UEs per operator, MNO on a fair
//        (equal) policy, MVNO on a premium/secondary group policy (9
//        premium UEs get 70% of the slice). Reports the per-UE throughput
//        CDFs.
#include "apps/eicic.h"  // register_usecase_vsfs
#include "apps/ran_sharing.h"
#include "bench/bench_common.h"
#include "traffic/udp.h"

using namespace flexran;

namespace {

void run_dynamic_allocation() {
  bench::print_header("Fig. 12a -- dynamic MNO/MVNO resource allocation");
  bench::print_note(
      "paper: throughput tracks the configured shares: 70/30 until t=10 s,\n"
      "40/60 until t=140 s, then 80/20.");

  apps::register_usecase_vsfs();
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(bench::basic_enb());

  std::vector<lte::Rnti> mno;
  std::vector<lte::Rnti> mvno;
  std::vector<std::unique_ptr<traffic::UdpCbrSource>> sources;
  auto add_operator_ues = [&](std::vector<lte::Rnti>& out) {
    for (int i = 0; i < 5; ++i) {
      const auto rnti = testbed.add_ue(0, bench::fixed_cqi_ue(15, 3 + i));
      out.push_back(rnti);
      sources.push_back(std::make_unique<traffic::UdpCbrSource>(
          testbed.sim(),
          [&testbed, rnti](std::uint32_t bytes) { (void)testbed.epc().downlink(rnti, bytes); },
          6.0));  // uniform, saturating per operator
      sources.back()->start();
    }
  };
  add_operator_ues(mno);
  add_operator_ues(mvno);

  auto slices = [&](double mno_share) {
    std::vector<apps::SliceSpec> out(2);
    out[0].share = mno_share;
    out[0].rntis = mno;
    out[1].share = 1.0 - mno_share;
    out[1].rntis = mvno;
    return out;
  };
  std::vector<apps::RanSharingApp::Step> steps = {
      {0.0, slices(0.7)}, {10.0, slices(0.4)}, {140.0, slices(0.8)}};
  testbed.master().add_app(std::make_unique<apps::RanSharingApp>(enb.agent_id, steps));

  std::printf("\n%8s %12s %12s %10s\n", "t (s)", "MNO Mb/s", "MVNO Mb/s", "MNO share");
  std::uint64_t mno_prev = 0;
  std::uint64_t mvno_prev = 0;
  const double kWindow = 10.0;
  for (int window = 1; window <= 16; ++window) {
    testbed.run_seconds(kWindow);
    std::uint64_t mno_total = 0;
    std::uint64_t mvno_total = 0;
    for (auto rnti : mno) {
      mno_total += testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
    }
    for (auto rnti : mvno) {
      mvno_total += testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
    }
    const double mno_mbps = scenario::Metrics::mbps(mno_total - mno_prev, kWindow);
    const double mvno_mbps = scenario::Metrics::mbps(mvno_total - mvno_prev, kWindow);
    std::printf("%8.0f %12.2f %12.2f %9.0f%%\n", window * kWindow, mno_mbps, mvno_mbps,
                100.0 * mno_mbps / std::max(mno_mbps + mvno_mbps, 1e-9));
    mno_prev = mno_total;
    mvno_prev = mvno_total;
  }
}

void run_policy_cdf() {
  bench::print_header("Fig. 12b -- per-UE throughput CDF, fair vs group-based policy");
  bench::print_note(
      "paper: MNO UEs (fair) all ~380 kb/s; MVNO premium ~450 kb/s, secondary\n"
      "< 200 kb/s. Our 50-PRB carrier at mixed CQI gives different absolute\n"
      "rates; the step structure of the CDFs is the target.");

  apps::register_usecase_vsfs();
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(bench::basic_enb());

  std::vector<lte::Rnti> mno;
  std::vector<lte::Rnti> mvno;
  std::vector<std::unique_ptr<traffic::UdpCbrSource>> sources;
  for (int i = 0; i < 30; ++i) {
    const auto rnti = testbed.add_ue(0, bench::fixed_cqi_ue(10, 3 + i));
    ((i < 15) ? mno : mvno).push_back(rnti);
    sources.push_back(std::make_unique<traffic::UdpCbrSource>(
        testbed.sim(),
        [&testbed, rnti](std::uint32_t bytes) { (void)testbed.epc().downlink(rnti, bytes); },
        2.0));
    sources.back()->start();
  }

  std::vector<apps::SliceSpec> slices(2);
  slices[0].share = 0.5;
  slices[0].policy = "fair";
  slices[0].rntis = mno;
  slices[1].share = 0.5;
  slices[1].policy = "group";
  slices[1].rntis = mvno;
  slices[1].premium_rntis.assign(mvno.begin(), mvno.begin() + 9);
  slices[1].premium_share = 0.7;
  testbed.master().add_app(std::make_unique<apps::RanSharingApp>(
      enb.agent_id, std::vector<apps::RanSharingApp::Step>{{0.0, slices}}));

  testbed.run_seconds(1.0);  // attach
  std::map<lte::Rnti, std::uint64_t> base;
  for (auto rnti : enb.data_plane->ue_rntis()) {
    base[rnti] = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  }
  const double kSeconds = 20.0;
  testbed.run_seconds(kSeconds);

  auto kbps_of = [&](lte::Rnti rnti) {
    const auto bytes = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
    return scenario::Metrics::mbps(bytes - base[rnti], kSeconds) * 1000.0;
  };
  util::SampleSet mno_rates;
  util::SampleSet premium_rates;
  util::SampleSet secondary_rates;
  for (auto rnti : mno) mno_rates.add(kbps_of(rnti));
  for (std::size_t i = 0; i < mvno.size(); ++i) {
    (i < 9 ? premium_rates : secondary_rates).add(kbps_of(mvno[i]));
  }

  std::printf("\n%-26s %10s %10s %10s %10s\n", "group", "p10", "p50", "p90", "mean (kb/s)");
  auto row = [](const char* label, const util::SampleSet& samples) {
    std::printf("%-26s %10.0f %10.0f %10.0f %10.0f\n", label, samples.quantile(0.1),
                samples.quantile(0.5), samples.quantile(0.9), samples.mean());
  };
  row("MNO (fair, 15 UEs)", mno_rates);
  row("MVNO premium (9 UEs)", premium_rates);
  row("MVNO secondary (6 UEs)", secondary_rates);

  std::printf("\nCDF points (sorted per-UE kb/s):\n");
  auto cdf = [](const char* label, const util::SampleSet& samples) {
    std::printf("%-26s", label);
    for (double v : samples.sorted()) std::printf(" %5.0f", v);
    std::printf("\n");
  };
  cdf("MNO (fair)", mno_rates);
  cdf("MVNO premium", premium_rates);
  cdf("MVNO secondary", secondary_rates);
}

}  // namespace

int main() {
  run_dynamic_allocation();
  run_policy_cdf();
  return 0;
}
