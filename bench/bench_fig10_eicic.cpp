// Figure 10 reproduction: throughput benefits of optimized eICIC
// (paper Sec. 6.1). A macro cell (3 saturated UEs) and a small cell (1 UE,
// lightly loaded) run under three coordination modes:
//   uncoordinated  -- both cells schedule independently, full interference;
//   eICIC          -- static almost-blank subframes: macro mutes 4/10
//                     subframes, the small cell transmits only there;
//   optimized      -- the FlexRAN coordinator centrally schedules ABSs,
//                     small cell first, returning idle ABSs to the macro.
//
// 10a: network throughput ordering optimized > eICIC > uncoordinated
//      (paper: optimized ~2x uncoordinated, ~+22% over eICIC).
// 10b: per-cell split -- the small cell is unaffected by the optimization;
//      the macro takes the entire gain.
#include "bench/bench_common.h"
#include "scenario/eicic_scenario.h"

using namespace flexran;

int main() {
  scenario::EicicScenarioConfig config;
  config.warmup_s = 1.0;
  config.measure_s = 8.0;

  bench::print_header("Fig. 10a -- downlink network throughput per coordination mode");
  bench::print_note(
      "paper (absolute numbers from full-PHY emulation at small scale):\n"
      "uncoordinated ~4.2, eICIC ~6.6, optimized ~8.0 Mb/s. Our interference\n"
      "geometry is harsher (cell-edge UEs), so the uncoordinated case collapses\n"
      "further; the ordering and the optimized-vs-eICIC gain are the targets.");

  scenario::EicicScenarioResult results[3];
  const apps::EicicMode modes[3] = {apps::EicicMode::uncoordinated, apps::EicicMode::eicic,
                                    apps::EicicMode::optimized};
  std::printf("\n%-18s %16s\n", "mode", "network (Mb/s)");
  for (int i = 0; i < 3; ++i) {
    config.mode = modes[i];
    results[i] = scenario::run_eicic_scenario(config);
    std::printf("%-18s %16.2f\n", to_string(modes[i]), results[i].network_mbps);
  }
  std::printf("\noptimized / uncoordinated: %.2fx (paper ~1.9x)\n",
              results[2].network_mbps / results[0].network_mbps);
  std::printf("optimized vs eICIC: +%.0f%% (paper ~+22%%)\n",
              100.0 * (results[2].network_mbps / results[1].network_mbps - 1.0));

  bench::print_header("Fig. 10b -- per-cell throughput, eICIC vs optimized eICIC");
  bench::print_note("paper: small-cell throughput identical; the macro gains the idle ABSs.");
  std::printf("\n%-18s %14s %14s\n", "mode", "small (Mb/s)", "macro (Mb/s)");
  for (int i = 1; i < 3; ++i) {
    std::printf("%-18s %14.2f %14.2f\n", to_string(modes[i]), results[i].small_mbps,
                results[i].macro_mbps);
  }
  return 0;
}
