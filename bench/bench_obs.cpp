// Observability overhead (docs/observability.md): measures what the
// unified metrics layer costs, in two parts.
//
// 1. Instrument micro-costs: ns/op for a raw uint64 increment (the
//    baseline every migrated counter used to pay) vs Counter::inc,
//    Gauge::set and Histogram::observe, plus the cost of a full registry
//    export. The layer's contract is that migrated counters pay NOTHING
//    new (they are read by pull probes at export time only); the atomic
//    instruments exist for genuinely concurrent call sites.
//
// 2. Control-loop latency breakdown: a testbed run with tracing enabled,
//    reporting where a control cycle's wall time goes (updater / events /
//    apps / flush) and the end-to-end control latency quantiles measured
//    by the Envelope timestamp echo. Emits BENCH_latency_breakdown.json.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace {

using namespace flexran;

using Clock = std::chrono::steady_clock;

double ns_per_op(std::uint64_t ops, Clock::time_point start, Clock::time_point end) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count();
  return static_cast<double>(ns) / static_cast<double>(ops);
}

struct MicroCosts {
  double raw_inc_ns = 0.0;
  double counter_inc_ns = 0.0;
  double gauge_set_ns = 0.0;
  double histogram_observe_ns = 0.0;
  double registry_export_us = 0.0;
};

MicroCosts measure_micro() {
  MicroCosts costs;
  constexpr std::uint64_t kOps = 10'000'000;

  volatile std::uint64_t raw = 0;  // volatile defeats dead-store elimination
  auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) raw = raw + 1;
  auto t1 = Clock::now();
  costs.raw_inc_ns = ns_per_op(kOps, t0, t1);

  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench_counter");
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) counter.inc();
  t1 = Clock::now();
  costs.counter_inc_ns = ns_per_op(kOps, t0, t1);

  obs::Gauge& gauge = registry.gauge("bench_gauge");
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) gauge.set(static_cast<double>(i));
  t1 = Clock::now();
  costs.gauge_set_ns = ns_per_op(kOps, t0, t1);

  obs::Histogram& histogram =
      registry.histogram("bench_hist", obs::exponential_bounds(1.0, 2.0, 16));
  t0 = Clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    histogram.observe(static_cast<double>(i & 0xFFFF));
  }
  t1 = Clock::now();
  costs.histogram_observe_ns = ns_per_op(kOps, t0, t1);

  // A registry the size of a real run: ~200 probes like the scenario layer
  // registers, exported once.
  for (int i = 0; i < 200; ++i) {
    registry.register_probe("bench_probe_" + std::to_string(i),
                            [i] { return static_cast<double>(i); });
  }
  constexpr int kExports = 200;
  t0 = Clock::now();
  std::size_t bytes = 0;
  for (int i = 0; i < kExports; ++i) bytes += registry.json().size();
  t1 = Clock::now();
  costs.registry_export_us = ns_per_op(kExports, t0, t1) / 1000.0;
  if (bytes == 0) std::printf("unreachable\n");
  return costs;
}

struct Breakdown {
  std::uint64_t cycles = 0;
  double updater_us_mean = 0.0;
  double event_us_mean = 0.0;
  double apps_us_mean = 0.0;
  double flush_us_mean = 0.0;
  std::uint64_t latency_samples = 0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  std::size_t series = 0;
};

Breakdown measure_breakdown() {
  constexpr double kControlDelayMs = 2.0;
  constexpr double kDurationS = 4.0;

  ctrl::MasterConfig master_config = scenario::per_tti_master_config(/*stats_period_ttis=*/2);
  master_config.obs.enabled = true;
  // Frequent echoes keep master->agent traffic (and hence timestamp-echo
  // latency samples) dense enough for stable quantiles.
  master_config.echo_period_cycles = 100;
  scenario::Testbed testbed(std::move(master_config));

  scenario::EnbSpec spec = bench::basic_enb(1, "obs");
  spec.uplink.delay = sim::from_ms(kControlDelayMs);
  spec.downlink.delay = sim::from_ms(kControlDelayMs);
  scenario::Testbed::Enb& enb = testbed.add_enb(spec);
  const auto rnti = testbed.add_ue(0, bench::fixed_cqi_ue(15));
  bench::saturate_dl(testbed, 0, rnti);

  testbed.run_seconds(kDurationS);

  Breakdown breakdown;
  const auto& traces = testbed.master().cycle_traces();
  breakdown.cycles = traces.recorded();
  breakdown.updater_us_mean = traces.updater_us().mean();
  breakdown.event_us_mean = traces.event_us().mean();
  breakdown.apps_us_mean = traces.apps_us().mean();
  breakdown.flush_us_mean = traces.flush_us().mean();
  breakdown.series = testbed.master().metrics().size();
  const auto* latency = testbed.master().control_latency(enb.agent_id);
  if (latency != nullptr) {
    breakdown.latency_samples = latency->count();
    breakdown.latency_p50_us = latency->p50();
    breakdown.latency_p95_us = latency->p95();
    breakdown.latency_p99_us = latency->p99();
  }
  return breakdown;
}

}  // namespace

int main() {
  util::Logger::instance().set_level(util::LogLevel::error);

  bench::print_header("Observability overhead: instrument micro-costs");
  bench::print_note(
      "Migrated counters pay nothing (pull probes read them at export time\n"
      "only); the atomic instruments below are for genuinely concurrent\n"
      "call sites. Baseline is a plain uint64 increment.");
  const MicroCosts micro = measure_micro();
  std::printf("\n%-26s %10s\n", "operation", "ns/op");
  std::printf("%-26s %10.2f\n", "raw uint64 ++", micro.raw_inc_ns);
  std::printf("%-26s %10.2f\n", "Counter::inc", micro.counter_inc_ns);
  std::printf("%-26s %10.2f\n", "Gauge::set", micro.gauge_set_ns);
  std::printf("%-26s %10.2f\n", "Histogram::observe", micro.histogram_observe_ns);
  std::printf("%-26s %10.2f us (200-probe registry json())\n", "registry export",
              micro.registry_export_us);

  bench::print_header("Control-loop latency breakdown (tracing + timestamp echo)");
  bench::print_note(
      "One eNodeB, 2 ms control delay each way, stats every 2 TTIs, echo\n"
      "every 100 cycles, 4 s run. Stage means from the cycle trace ring;\n"
      "end-to-end latency from the Envelope timestamp echo.");
  const Breakdown breakdown = measure_breakdown();
  std::printf("\ncycles traced: %llu, registry series: %zu\n",
              static_cast<unsigned long long>(breakdown.cycles), breakdown.series);
  std::printf("stage means (us): updater %.2f, events %.2f, apps %.2f, flush %.2f\n",
              breakdown.updater_us_mean, breakdown.event_us_mean, breakdown.apps_us_mean,
              breakdown.flush_us_mean);
  std::printf("control latency (us): p50 %.0f, p95 %.0f, p99 %.0f (%llu samples)\n",
              breakdown.latency_p50_us, breakdown.latency_p95_us, breakdown.latency_p99_us,
              static_cast<unsigned long long>(breakdown.latency_samples));

  // Machine-readable result: one JSON object on the final line.
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      ",\"micro_ns_per_op\":{\"raw_inc\":%.3f,\"counter_inc\":%.3f,\"gauge_set\":%.3f,"
      "\"histogram_observe\":%.3f,\"registry_export_us\":%.3f},"
      "\"breakdown\":{\"cycles\":%llu,\"series\":%zu,\"updater_us_mean\":%.3f,"
      "\"event_us_mean\":%.3f,\"apps_us_mean\":%.3f,\"flush_us_mean\":%.3f,"
      "\"latency_samples\":%llu,\"latency_p50_us\":%.1f,\"latency_p95_us\":%.1f,"
      "\"latency_p99_us\":%.1f}}",
      micro.raw_inc_ns, micro.counter_inc_ns, micro.gauge_set_ns, micro.histogram_observe_ns,
      micro.registry_export_us, static_cast<unsigned long long>(breakdown.cycles),
      breakdown.series, breakdown.updater_us_mean, breakdown.event_us_mean,
      breakdown.apps_us_mean, breakdown.flush_us_mean,
      static_cast<unsigned long long>(breakdown.latency_samples), breakdown.latency_p50_us,
      breakdown.latency_p95_us, breakdown.latency_p99_us);
  const std::string json =
      "{" +
      bench::json_header("latency_breakdown",
                         "delay=2ms stats_period=2 echo_period=100cyc duration=4s") +
      buffer;
  std::printf("%s\n", json.c_str());
  return 0;
}
